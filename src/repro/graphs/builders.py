"""Alternate constructors and structural transforms for :class:`Graph`."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import Graph


def graph_from_edge_list(
    edges: Iterable[Sequence[int]], *, n_vertices: "int | None" = None
) -> Graph:
    """Build a graph from an edge list, inferring ``n_vertices`` if omitted.

    When inferring, the vertex count is ``max endpoint + 1`` (an empty edge
    list with no explicit count yields the empty graph).
    """
    edge_rows = [(int(u), int(v)) for u, v in edges]
    if n_vertices is None:
        n_vertices = max((max(u, v) for u, v in edge_rows), default=-1) + 1
    return Graph(n_vertices, edge_rows)


def graph_from_adjacency_matrix(matrix: np.ndarray) -> Graph:
    """Build a graph from a symmetric 0/1 adjacency matrix.

    Raises :class:`GraphError` on non-square, asymmetric, or self-loop
    carrying matrices.
    """
    array = np.asarray(matrix)
    if array.ndim != 2 or array.shape[0] != array.shape[1]:
        raise GraphError(f"adjacency matrix must be square, got shape {array.shape}")
    if not np.array_equal(array, array.T):
        raise GraphError("adjacency matrix must be symmetric")
    if np.any(np.diag(array) != 0):
        raise GraphError("adjacency matrix must have a zero diagonal (no self-loops)")
    values = np.unique(array)
    if not np.all(np.isin(values, (0, 1))):
        raise GraphError("adjacency matrix entries must be 0 or 1")
    us, vs = np.nonzero(np.triu(array, k=1))
    return Graph(array.shape[0], np.stack([us, vs], axis=1))


def relabel_graph(graph: Graph, mapping: Sequence[int]) -> Graph:
    """Return a copy of ``graph`` with vertex ``i`` renamed ``mapping[i]``.

    ``mapping`` must be a permutation of ``0..n-1``.
    """
    perm = np.asarray(mapping, dtype=np.int64)
    if perm.shape != (graph.n_vertices,):
        raise GraphError(
            f"mapping must have length {graph.n_vertices}, got {perm.shape}"
        )
    if not np.array_equal(np.sort(perm), np.arange(graph.n_vertices)):
        raise GraphError("mapping must be a permutation of 0..n-1")
    new_edges = perm[graph.edges]
    return Graph(graph.n_vertices, new_edges)


def disjoint_union(first: Graph, second: Graph) -> Graph:
    """Disjoint union; vertices of ``second`` are shifted by ``first``'s size."""
    offset = first.n_vertices
    edges = list(map(tuple, first.edges))
    edges.extend((int(u) + offset, int(v) + offset) for u, v in second.edges)
    return Graph(first.n_vertices + second.n_vertices, edges)


def add_edges(graph: Graph, new_edges: Iterable[Sequence[int]]) -> Graph:
    """A new graph equal to ``graph`` plus ``new_edges`` (duplicates rejected)."""
    edges = list(map(tuple, graph.edges))
    edges.extend((int(u), int(v)) for u, v in new_edges)
    return Graph(graph.n_vertices, edges)

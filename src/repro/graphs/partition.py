"""Two-way vertex partitions and their cuts.

The paper's setting is a connected graph ``G`` split into ``G1 = (V1, E1)``
and ``G2 = (V2, E2)`` with cut edges ``E12`` between them, ``n1 <= n2``.
:class:`Partition` captures exactly that: given a side assignment it exposes
the cut edge set, the induced subgraphs (with vertex maps back to ``G``),
and the standard sparsity measures.  Side 0 is always the smaller side, so
``n1``/``n2`` match the paper's convention without callers tracking it.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import PartitionError
from repro.graphs.graph import Graph


class Partition:
    """A two-way partition ``(V1, V2)`` of the vertices of a graph.

    Parameters
    ----------
    graph:
        The underlying graph.
    side:
        Length-``n`` array of 0/1 side labels.  Both sides must be
        non-empty.  Labels are normalized so side 0 is the smaller side
        (``n1 <= n2``); ties keep the caller's labelling.
    """

    __slots__ = (
        "_graph",
        "_side",
        "_vertices_1",
        "_vertices_2",
        "_cut_edge_ids",
        "_internal_edge_ids_1",
        "_internal_edge_ids_2",
    )

    def __init__(self, graph: Graph, side: Sequence[int]) -> None:
        labels = np.asarray(side, dtype=np.int64)
        if labels.shape != (graph.n_vertices,):
            raise PartitionError(
                f"side must have length {graph.n_vertices}, got {labels.shape}"
            )
        unique = np.unique(labels)
        if not np.all(np.isin(unique, (0, 1))):
            raise PartitionError(f"side labels must be 0 or 1, found {unique}")
        if len(unique) < 2:
            raise PartitionError("both sides of a partition must be non-empty")
        if int(np.sum(labels == 0)) > int(np.sum(labels == 1)):
            labels = 1 - labels

        self._graph = graph
        self._side = labels
        self._side.setflags(write=False)
        self._vertices_1 = np.flatnonzero(labels == 0)
        self._vertices_2 = np.flatnonzero(labels == 1)

        edges = graph.edges
        if graph.n_edges:
            end_sides = labels[edges]
            crossing = end_sides[:, 0] != end_sides[:, 1]
            in_side_1 = ~crossing & (end_sides[:, 0] == 0)
            in_side_2 = ~crossing & (end_sides[:, 0] == 1)
            self._cut_edge_ids = np.flatnonzero(crossing)
            self._internal_edge_ids_1 = np.flatnonzero(in_side_1)
            self._internal_edge_ids_2 = np.flatnonzero(in_side_2)
        else:
            empty = np.empty(0, dtype=np.int64)
            self._cut_edge_ids = empty
            self._internal_edge_ids_1 = empty.copy()
            self._internal_edge_ids_2 = empty.copy()
        for array in (
            self._vertices_1,
            self._vertices_2,
            self._cut_edge_ids,
            self._internal_edge_ids_1,
            self._internal_edge_ids_2,
        ):
            array.setflags(write=False)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_vertex_set(cls, graph: Graph, subset: Sequence[int]) -> "Partition":
        """Partition into ``subset`` and its complement."""
        side = np.ones(graph.n_vertices, dtype=np.int64)
        subset_array = np.asarray(list(subset), dtype=np.int64)
        if subset_array.size == 0 or subset_array.size == graph.n_vertices:
            raise PartitionError("subset must be a proper non-empty vertex subset")
        side[subset_array] = 0
        return cls(graph, side)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    @property
    def graph(self) -> Graph:
        """The underlying graph."""
        return self._graph

    @property
    def side(self) -> np.ndarray:
        """Read-only 0/1 side label per vertex (side 0 is the smaller side)."""
        return self._side

    @property
    def vertices_1(self) -> np.ndarray:
        """Vertices of ``V1`` (the smaller side), sorted."""
        return self._vertices_1

    @property
    def vertices_2(self) -> np.ndarray:
        """Vertices of ``V2`` (the larger side), sorted."""
        return self._vertices_2

    @property
    def n1(self) -> int:
        """``|V1|`` (the paper's ``n1``; always ``<= n2``)."""
        return len(self._vertices_1)

    @property
    def n2(self) -> int:
        """``|V2|``."""
        return len(self._vertices_2)

    @property
    def cut_edge_ids(self) -> np.ndarray:
        """Edge ids of the cut ``E12``, sorted."""
        return self._cut_edge_ids

    @property
    def cut_size(self) -> int:
        """``|E12|``, the number of edges crossing the cut."""
        return len(self._cut_edge_ids)

    def internal_edge_ids(self, side: int) -> np.ndarray:
        """Edge ids internal to side 0 (``E1``) or side 1 (``E2``)."""
        if side == 0:
            return self._internal_edge_ids_1
        if side == 1:
            return self._internal_edge_ids_2
        raise PartitionError(f"side must be 0 or 1, got {side}")

    def side_of(self, vertex: int) -> int:
        """Side label (0 or 1) of ``vertex``."""
        if not 0 <= vertex < self._graph.n_vertices:
            raise PartitionError(
                f"vertex {vertex} out of range for graph with "
                f"{self._graph.n_vertices} vertices"
            )
        return int(self._side[vertex])

    # ------------------------------------------------------------------
    # sparsity measures
    # ------------------------------------------------------------------

    @property
    def sparsity(self) -> float:
        """Vertex-normalized cut sparsity ``|E12| / min(n1, n2)``.

        The reciprocal of the paper's Theorem-1 bound: convex algorithms
        need time ``Omega(min(n1, n2) / |E12|) = Omega(1 / sparsity)``.
        """
        return self.cut_size / self.n1

    @property
    def conductance(self) -> float:
        """Edge conductance ``|E12| / min(vol(V1), vol(V2))``.

        ``vol`` counts edge endpoints (degree sum).  Standard Cheeger-style
        measure used by the sweep-cut detector.
        """
        degrees = self._graph.degrees
        vol_1 = int(degrees[self._vertices_1].sum())
        vol_2 = int(degrees[self._vertices_2].sum())
        smaller = min(vol_1, vol_2)
        if smaller == 0:
            return float("inf")
        return self.cut_size / smaller

    @property
    def balance(self) -> float:
        """``n1 / n`` in ``(0, 1/2]``; 1/2 means a perfectly balanced cut."""
        return self.n1 / self._graph.n_vertices

    # ------------------------------------------------------------------
    # induced subgraphs
    # ------------------------------------------------------------------

    def subgraphs(self) -> "tuple[Graph, np.ndarray, Graph, np.ndarray]":
        """Induced subgraphs ``(G1, map1, G2, map2)``.

        ``map1[i]`` is the original vertex id of ``G1``'s vertex ``i`` (and
        likewise ``map2``).  These are the graphs whose vanilla averaging
        times ``Tvan(G1)``, ``Tvan(G2)`` parameterize Algorithm A.
        """
        g1, map1 = self._graph.subgraph(self._vertices_1)
        g2, map2 = self._graph.subgraph(self._vertices_2)
        return g1, map1, g2, map2

    def sides_connected(self) -> tuple[bool, bool]:
        """Whether each induced side is internally connected."""
        g1, _, g2, _ = self.subgraphs()
        return g1.is_connected(), g2.is_connected()

    def require_connected_sides(self) -> None:
        """Raise :class:`PartitionError` unless both sides are connected.

        The paper's setting requires ``G1`` and ``G2`` to be connected
        (vanilla gossip inside a disconnected side cannot average it).
        """
        ok1, ok2 = self.sides_connected()
        if not (ok1 and ok2):
            broken = [name for name, ok in (("G1", ok1), ("G2", ok2)) if not ok]
            raise PartitionError(
                f"partition sides {', '.join(broken)} are not internally connected"
            )

    def cut_edge_endpoints(self) -> np.ndarray:
        """``(|E12|, 2)`` array of cut-edge endpoints, V1 endpoint first."""
        if self.cut_size == 0:
            return np.empty((0, 2), dtype=np.int64)
        pairs = self._graph.edges[self._cut_edge_ids]
        swapped = self._side[pairs[:, 0]] == 1
        out = pairs.copy()
        out[swapped] = out[swapped][:, ::-1]
        return out

    def __repr__(self) -> str:
        return (
            f"Partition(n1={self.n1}, n2={self.n2}, cut_size={self.cut_size}, "
            f"sparsity={self.sparsity:.4g})"
        )

"""Standard graph families used as building blocks for sparse-cut instances.

Deterministic families (complete, path, cycle, star, grid, torus, hypercube,
binary tree, lollipop) take only size parameters.  Random families
(Erdős–Rényi, random-regular, random-geometric) take a seed or generator and
retry until the sample is connected (bounded number of attempts), because
every experiment in the paper assumes connected subgraphs.
"""

from __future__ import annotations

import itertools
import math

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.util.rng import as_generator

#: Attempts before a random family gives up producing a connected sample.
_MAX_CONNECTIVITY_ATTEMPTS = 200


def complete_graph(n: int) -> Graph:
    """The complete graph ``K_n`` (the paper's `G'_1`, `G'_2` halves)."""
    _check_size(n, minimum=1)
    return Graph(n, itertools.combinations(range(n), 2))


def path_graph(n: int) -> Graph:
    """The path ``P_n`` — the poorest-connected graph, a stress baseline."""
    _check_size(n, minimum=1)
    return Graph(n, ((i, i + 1) for i in range(n - 1)))


def cycle_graph(n: int) -> Graph:
    """The cycle ``C_n`` (n >= 3)."""
    _check_size(n, minimum=3)
    edges = [(i, i + 1) for i in range(n - 1)]
    edges.append((n - 1, 0))
    return Graph(n, edges)


def star_graph(n: int) -> Graph:
    """The star ``S_n``: hub 0 joined to ``n - 1`` leaves (n >= 2)."""
    _check_size(n, minimum=2)
    return Graph(n, ((0, i) for i in range(1, n)))


def grid_graph(rows: int, cols: int) -> Graph:
    """The ``rows x cols`` 2-D lattice; vertex ``(r, c)`` is ``r * cols + c``."""
    _check_size(rows, minimum=1, name="rows")
    _check_size(cols, minimum=1, name="cols")
    edges = []
    for r in range(rows):
        for c in range(cols):
            vertex = r * cols + c
            if c + 1 < cols:
                edges.append((vertex, vertex + 1))
            if r + 1 < rows:
                edges.append((vertex, vertex + cols))
    return Graph(rows * cols, edges)


def torus_graph(rows: int, cols: int) -> Graph:
    """The 2-D torus (grid with wraparound); needs rows, cols >= 3."""
    _check_size(rows, minimum=3, name="rows")
    _check_size(cols, minimum=3, name="cols")
    edges = set()
    for r in range(rows):
        for c in range(cols):
            vertex = r * cols + c
            right = r * cols + (c + 1) % cols
            down = ((r + 1) % rows) * cols + c
            edges.add(_norm(vertex, right))
            edges.add(_norm(vertex, down))
    return Graph(rows * cols, sorted(edges))


def hypercube_graph(dimension: int) -> Graph:
    """The ``dimension``-dimensional Boolean hypercube ``Q_d``."""
    _check_size(dimension, minimum=1, name="dimension")
    n = 1 << dimension
    edges = []
    for vertex in range(n):
        for bit in range(dimension):
            neighbor = vertex ^ (1 << bit)
            if vertex < neighbor:
                edges.append((vertex, neighbor))
    return Graph(n, edges)


def binary_tree(depth: int) -> Graph:
    """Complete binary tree of the given depth (depth 0 = single vertex)."""
    if depth < 0:
        raise GraphError(f"depth must be non-negative, got {depth}")
    n = (1 << (depth + 1)) - 1
    edges = []
    for child in range(1, n):
        edges.append(((child - 1) // 2, child))
    return Graph(n, edges)


def lollipop_graph(clique_size: int, path_length: int) -> Graph:
    """``K_m`` with a pendant path of ``path_length`` extra vertices.

    A classical bad case for diffusion: the clique mixes instantly but the
    tail drains slowly.  Useful as a contrast to the dumbbell.
    """
    _check_size(clique_size, minimum=1, name="clique_size")
    if path_length < 0:
        raise GraphError(f"path_length must be non-negative, got {path_length}")
    edges = list(itertools.combinations(range(clique_size), 2))
    previous = clique_size - 1
    for i in range(path_length):
        vertex = clique_size + i
        edges.append((previous, vertex))
        previous = vertex
    return Graph(clique_size + path_length, edges)


def erdos_renyi_graph(
    n: int,
    p: float,
    *,
    seed: "int | np.random.Generator | None" = None,
    require_connected: bool = True,
) -> Graph:
    """``G(n, p)`` random graph, resampled until connected by default."""
    _check_size(n, minimum=1)
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"edge probability must be in [0, 1], got {p}")
    rng = as_generator(seed)
    for _ in range(_MAX_CONNECTIVITY_ATTEMPTS):
        mask = rng.random(n * (n - 1) // 2) < p
        pairs = np.array(list(itertools.combinations(range(n), 2)), dtype=np.int64)
        graph = Graph(n, pairs[mask])
        if not require_connected or graph.is_connected():
            return graph
    raise GraphError(
        f"could not sample a connected G({n}, {p}) in "
        f"{_MAX_CONNECTIVITY_ATTEMPTS} attempts; increase p"
    )


def random_regular_graph(
    n: int,
    degree: int,
    *,
    seed: "int | np.random.Generator | None" = None,
    require_connected: bool = True,
) -> Graph:
    """A uniform-ish random ``degree``-regular graph (Steger-Wormald style).

    Stubs are matched one pair at a time, each time choosing uniformly
    among the *suitable* pairs (distinct vertices, edge not already
    present); if the process paints itself into a corner it restarts.
    Unlike naive pairing-model rejection — whose acceptance probability is
    ``~exp(-(d^2-1)/4)``, hopeless already at ``d = 8`` — this succeeds in
    a handful of restarts for every ``d << n``.  Random regular graphs are
    expanders with high probability, which is exactly the "internally well
    connected" hypothesis of the paper's Theorem 2.
    """
    _check_size(n, minimum=2)
    if degree < 1 or degree >= n:
        raise GraphError(f"degree must be in [1, n-1], got {degree} for n={n}")
    if (n * degree) % 2 != 0:
        raise GraphError(f"n * degree must be even, got n={n}, degree={degree}")
    rng = as_generator(seed)
    for _ in range(_MAX_CONNECTIVITY_ATTEMPTS):
        edges = _steger_wormald_attempt(n, degree, rng)
        if edges is None:
            continue
        graph = Graph(n, edges)
        if not require_connected or graph.is_connected():
            return graph
    raise GraphError(
        f"could not sample a simple connected {degree}-regular graph on {n} "
        f"vertices in {_MAX_CONNECTIVITY_ATTEMPTS} attempts"
    )


def _steger_wormald_attempt(
    n: int, degree: int, rng: np.random.Generator
) -> "list[tuple[int, int]] | None":
    """One attempt at a simple regular pairing; None if it gets stuck."""
    remaining = np.full(n, degree, dtype=np.int64)
    adjacency: list[set[int]] = [set() for _ in range(n)]
    edges: list[tuple[int, int]] = []
    target = n * degree // 2
    while len(edges) < target:
        candidates = np.flatnonzero(remaining > 0)
        # Draw stub-weighted endpoint pairs; retry locally a few times
        # before declaring the attempt stuck.
        placed = False
        for _ in range(200):
            weights = remaining[candidates].astype(np.float64)
            probabilities = weights / weights.sum()
            u, v = rng.choice(candidates, size=2, p=probabilities)
            u, v = int(u), int(v)
            if u == v or v in adjacency[u]:
                continue
            adjacency[u].add(v)
            adjacency[v].add(u)
            remaining[u] -= 1
            remaining[v] -= 1
            edges.append((u, v) if u < v else (v, u))
            placed = True
            break
        if not placed:
            return None
    return edges


def random_geometric_graph(
    n: int,
    radius: float,
    *,
    seed: "int | np.random.Generator | None" = None,
    require_connected: bool = True,
) -> Graph:
    """Random geometric graph on the unit square (connects points < radius).

    The topology of the author's earlier paper [Narayanan, PODC 2007];
    included so the geographic-gossip comparison scenario can run.
    """
    _check_size(n, minimum=1)
    if radius <= 0:
        raise GraphError(f"radius must be positive, got {radius}")
    rng = as_generator(seed)
    for _ in range(_MAX_CONNECTIVITY_ATTEMPTS):
        points = rng.random((n, 2))
        deltas = points[:, None, :] - points[None, :, :]
        distances = np.sqrt(np.sum(deltas**2, axis=-1))
        us, vs = np.nonzero(np.triu(distances < radius, k=1))
        graph = Graph(n, np.stack([us, vs], axis=1))
        if not require_connected or graph.is_connected():
            return graph
    raise GraphError(
        f"could not sample a connected RGG(n={n}, r={radius}) in "
        f"{_MAX_CONNECTIVITY_ATTEMPTS} attempts; increase radius "
        f"(connectivity threshold is ~sqrt(log n / n) = "
        f"{math.sqrt(math.log(max(n, 2)) / n):.3f})"
    )


def _norm(u: int, v: int) -> tuple[int, int]:
    return (u, v) if u < v else (v, u)


def _check_size(n: int, *, minimum: int, name: str = "n") -> None:
    if n < minimum:
        raise GraphError(f"{name} must be at least {minimum}, got {n}")

"""Geometric networks: positioned graphs and greedy geographic routing.

Substrate for the geographic-gossip comparison (the paper's reference [6],
Narayanan PODC 2007, builds on geographic gossip over random geometric
graphs).  A :class:`GeometricNetwork` couples a unit-square point set with
its radius graph and provides the greedy forwarding primitive those
protocols assume: hop to the neighbor closest to the target, stop when no
neighbor improves (a void) or the target is reached.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.util.rng import as_generator


@dataclass(frozen=True)
class GeometricNetwork:
    """A graph whose vertices carry unit-square positions."""

    graph: Graph
    positions: np.ndarray

    def __post_init__(self) -> None:
        array = np.asarray(self.positions, dtype=np.float64)
        if array.shape != (self.graph.n_vertices, 2):
            raise GraphError(
                f"positions must have shape ({self.graph.n_vertices}, 2), "
                f"got {array.shape}"
            )
        object.__setattr__(self, "positions", array)

    def distance(self, u: int, v: int) -> float:
        """Euclidean distance between two vertices."""
        return float(np.linalg.norm(self.positions[u] - self.positions[v]))

    def greedy_route(self, source: int, target: int) -> "list[int] | None":
        """Greedy geographic route ``source -> target``.

        Each hop moves to the neighbor strictly closest to the target's
        position.  Returns the vertex path including both endpoints, or
        ``None`` when greedy forwarding hits a void (no neighbor improves).
        On a connected random geometric graph above the connectivity
        threshold, voids are rare — the standard geographic-gossip
        assumption.
        """
        for vertex in (source, target):
            if not 0 <= vertex < self.graph.n_vertices:
                raise GraphError(
                    f"vertex {vertex} out of range for "
                    f"{self.graph.n_vertices} vertices"
                )
        path = [source]
        current = source
        goal = self.positions[target]
        current_distance = float(np.linalg.norm(self.positions[current] - goal))
        while current != target:
            neighbors = self.graph.neighbors(current)
            if len(neighbors) == 0:
                return None
            offsets = self.positions[neighbors] - goal
            distances = np.sqrt(np.sum(offsets * offsets, axis=1))
            best = int(np.argmin(distances))
            if distances[best] >= current_distance:
                return None  # greedy void
            current = int(neighbors[best])
            current_distance = float(distances[best])
            path.append(current)
        return path


def random_geometric_network(
    n: int,
    radius: "float | None" = None,
    *,
    seed: "int | np.random.Generator | None" = None,
    max_attempts: int = 200,
) -> GeometricNetwork:
    """A connected random geometric network on the unit square.

    ``radius`` defaults to twice the connectivity threshold
    ``sqrt(log n / n)`` — dense enough that greedy routing almost never
    voids, matching the geographic-gossip setting.
    """
    if n < 2:
        raise GraphError(f"need at least two vertices, got {n}")
    if radius is None:
        radius = 2.0 * float(np.sqrt(np.log(n) / n))
    if radius <= 0:
        raise GraphError(f"radius must be positive, got {radius}")
    rng = as_generator(seed)
    for _ in range(max_attempts):
        points = rng.random((n, 2))
        deltas = points[:, None, :] - points[None, :, :]
        distances = np.sqrt(np.sum(deltas**2, axis=-1))
        us, vs = np.nonzero(np.triu(distances < radius, k=1))
        graph = Graph(n, np.stack([us, vs], axis=1))
        if graph.is_connected():
            return GeometricNetwork(graph=graph, positions=points)
    raise GraphError(
        f"could not sample a connected geometric network "
        f"(n={n}, radius={radius:.3f}) in {max_attempts} attempts"
    )


def bridged_geometric_pair(
    n_per_side: int,
    *,
    seed: "int | np.random.Generator | None" = None,
    gap: float = 0.3,
) -> "tuple[GeometricNetwork, np.ndarray]":
    """Two geometric clusters in separated strips, bridged where closest.

    Places one cluster in ``x in [0, (1-gap)/2]`` and the other in
    ``x in [(1+gap)/2, 1]``, connects points within each cluster by the
    usual radius rule, and adds the single closest cross-strip pair as the
    bridge.  Returns the network and the side-label array (a geometric
    realization of the paper's sparse-cut regime).
    """
    if n_per_side < 4:
        raise GraphError(f"need at least 4 vertices per side, got {n_per_side}")
    if not 0.0 < gap < 0.9:
        raise GraphError(f"gap must be in (0, 0.9), got {gap}")
    rng = as_generator(seed)
    strip_width = (1.0 - gap) / 2.0
    radius = 2.5 * float(np.sqrt(np.log(n_per_side) / n_per_side)) * strip_width

    for _ in range(200):
        left = rng.random((n_per_side, 2)) * [strip_width, 1.0]
        right = rng.random((n_per_side, 2)) * [strip_width, 1.0] + [
            strip_width + gap,
            0.0,
        ]
        points = np.vstack([left, right])
        n = 2 * n_per_side
        deltas = points[:, None, :] - points[None, :, :]
        distances = np.sqrt(np.sum(deltas**2, axis=-1))
        close = np.triu(distances < radius, k=1)
        # Keep only intra-strip edges, then add the closest cross pair.
        side = np.concatenate(
            [np.zeros(n_per_side, dtype=np.int64), np.ones(n_per_side, dtype=np.int64)]
        )
        same_side = side[:, None] == side[None, :]
        us, vs = np.nonzero(close & same_side)
        cross = distances[:n_per_side, n_per_side:]
        bridge_left, bridge_right = np.unravel_index(
            int(np.argmin(cross)), cross.shape
        )
        edges = list(zip(us.tolist(), vs.tolist()))
        edges.append((int(bridge_left), int(bridge_right) + n_per_side))
        graph = Graph(n, edges)
        left_ok = graph.subgraph(range(n_per_side))[0].is_connected()
        right_ok = graph.subgraph(range(n_per_side, n))[0].is_connected()
        if left_ok and right_ok:
            return GeometricNetwork(graph=graph, positions=points), side
    raise GraphError(
        "could not sample internally connected geometric clusters; "
        "increase n_per_side"
    )

"""Spectral graph toolkit: Laplacians, algebraic connectivity, Fiedler vectors.

The paper's quantities reduce to Laplacian spectra twice over:

* ``Tvan(G)`` — the vanilla-gossip averaging time — is governed by
  ``lambda_2(L)``: with rate-1 clocks per edge each tick of ``(i, j)``
  removes ``(x_i - x_j)^2 / 2`` from the squared deviation, so
  ``E[var X(t)] <= var X(0) * exp(-lambda_2 t / 2)`` (Dirichlet form).
* Sparse cuts are found by sweeping the Fiedler vector (Cheeger).

Spectra are computed densely (all experiment graphs fit comfortably) and
cached per graph — :class:`~repro.graphs.graph.Graph` is immutable and
hashable, which makes ``lru_cache`` safe.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
import scipy.linalg

from repro.errors import DisconnectedGraphError, GraphError
from repro.graphs.graph import Graph

#: Relative tolerance used when deciding an eigenvalue is "zero".
_ZERO_EIGENVALUE_TOL = 1e-9


def laplacian_matrix(graph: Graph) -> np.ndarray:
    """Dense combinatorial Laplacian ``L = D - A``."""
    adjacency = graph.adjacency_matrix()
    return np.diag(graph.degrees.astype(np.float64)) - adjacency


def normalized_laplacian_matrix(graph: Graph) -> np.ndarray:
    """Dense symmetric normalized Laplacian ``I - D^{-1/2} A D^{-1/2}``.

    Vertices of degree zero contribute identity rows (their normalized
    degree is defined as zero), matching the usual convention.
    """
    adjacency = graph.adjacency_matrix()
    degrees = graph.degrees.astype(np.float64)
    inv_sqrt = np.zeros_like(degrees)
    positive = degrees > 0
    inv_sqrt[positive] = 1.0 / np.sqrt(degrees[positive])
    scaled = adjacency * inv_sqrt[:, None] * inv_sqrt[None, :]
    return np.eye(graph.n_vertices) - scaled


@lru_cache(maxsize=256)
def laplacian_spectrum(graph: Graph) -> np.ndarray:
    """All Laplacian eigenvalues in ascending order (cached, read-only)."""
    if graph.n_vertices == 0:
        raise GraphError("spectrum of the empty graph is undefined")
    values = scipy.linalg.eigvalsh(laplacian_matrix(graph))
    values.setflags(write=False)
    return values


def algebraic_connectivity(graph: Graph) -> float:
    """``lambda_2(L)``, the algebraic connectivity (0 iff disconnected)."""
    if graph.n_vertices < 2:
        raise GraphError("algebraic connectivity needs at least two vertices")
    spectrum = laplacian_spectrum(graph)
    return float(max(spectrum[1], 0.0))


def spectral_gap(graph: Graph) -> float:
    """Alias for :func:`algebraic_connectivity` (the gap above zero)."""
    return algebraic_connectivity(graph)


@lru_cache(maxsize=256)
def _fiedler_cached(graph: Graph) -> np.ndarray:
    matrix = laplacian_matrix(graph)
    _, vectors = scipy.linalg.eigh(matrix, subset_by_index=(0, 1))
    vector = vectors[:, 1].copy()
    # Fix the sign deterministically: first non-zero entry positive.
    for value in vector:
        if abs(value) > _ZERO_EIGENVALUE_TOL:
            if value < 0:
                vector = -vector
            break
    vector.setflags(write=False)
    return vector


def fiedler_vector(graph: Graph) -> np.ndarray:
    """Unit eigenvector of ``lambda_2(L)`` with a deterministic sign.

    Raises :class:`DisconnectedGraphError` for disconnected graphs, whose
    "Fiedler vector" is just an indicator of a component and carries no cut
    information beyond the components themselves.
    """
    if graph.n_vertices < 2:
        raise GraphError("Fiedler vector needs at least two vertices")
    if algebraic_connectivity(graph) <= _ZERO_EIGENVALUE_TOL:
        raise DisconnectedGraphError(
            "Fiedler vector undefined: graph is disconnected (lambda_2 ~ 0)"
        )
    return _fiedler_cached(graph)


def spectral_mixing_time(graph: Graph, *, variance_ratio: float = np.e**-2) -> float:
    """Time for vanilla gossip's *expected* variance to decay to the ratio.

    Solves ``exp(-lambda_2 t / 2) = variance_ratio``, i.e.
    ``t = 2 ln(1 / ratio) / lambda_2``; the default ratio ``e^{-2}`` (the
    paper's Definition 1 threshold) gives ``t = 4 / lambda_2``.  This is
    the library's spectral proxy for ``Tvan(G)`` (fidelity note F2 in
    DESIGN.md).
    """
    if not 0 < variance_ratio < 1:
        raise GraphError(
            f"variance_ratio must be in (0, 1), got {variance_ratio}"
        )
    gap = algebraic_connectivity(graph)
    if gap <= _ZERO_EIGENVALUE_TOL:
        raise DisconnectedGraphError(
            "spectral mixing time is infinite: graph is disconnected"
        )
    return 2.0 * float(np.log(1.0 / variance_ratio)) / gap

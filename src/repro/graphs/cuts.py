"""Sparse-cut detection.

Algorithm A needs to know the cut ``(V1, V2, E12)``.  Planted instances
carry it; for arbitrary graphs the orchestrator finds one here:

* :func:`fiedler_sweep_cut` — the classical Cheeger sweep: order vertices
  by Fiedler value and take the prefix of minimum conductance.  On graphs
  that genuinely have one sparse cut (the paper's regime) the sweep
  recovers it.
* :func:`brute_force_min_conductance_cut` — exact minimum-conductance cut
  by subset enumeration, exponential, used as a test oracle on tiny graphs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.graphs.partition import Partition
from repro.graphs.spectral import fiedler_vector

#: Brute force enumerates 2^(n-1) subsets; refuse beyond this size.
_BRUTE_FORCE_LIMIT = 20


@dataclass(frozen=True)
class CutResult:
    """A detected cut and its quality measures."""

    partition: Partition
    conductance: float
    sparsity: float
    method: str

    def to_dict(self) -> dict:
        """Plain-dict summary for serialization."""
        return {
            "n1": self.partition.n1,
            "n2": self.partition.n2,
            "cut_size": self.partition.cut_size,
            "conductance": self.conductance,
            "sparsity": self.sparsity,
            "method": self.method,
        }


def conductance_of_side(graph: Graph, subset: "np.ndarray | list[int]") -> float:
    """Conductance of the cut ``(subset, complement)``."""
    partition = Partition.from_vertex_set(graph, list(subset))
    return partition.conductance


def fiedler_sweep_cut(
    graph: Graph, *, require_connected_sides: bool = False
) -> CutResult:
    """Minimum-conductance sweep cut along the Fiedler ordering.

    Vertices are sorted by Fiedler value; every prefix/suffix split is
    scored by conductance (computed incrementally in O(m) total) and the
    best is returned.  With ``require_connected_sides=True`` only splits
    whose two sides are internally connected are eligible — Algorithm A
    requires connected sides — and a :class:`GraphError` is raised if no
    such split exists along the sweep.
    """
    n = graph.n_vertices
    if n < 2:
        raise GraphError("cannot cut a graph with fewer than two vertices")
    order = np.argsort(fiedler_vector(graph), kind="stable")
    position = np.empty(n, dtype=np.int64)
    position[order] = np.arange(n)

    degrees = graph.degrees.astype(np.int64)
    total_volume = int(degrees.sum())
    if total_volume == 0:
        raise GraphError("cannot cut a graph with no edges")

    prefix_volume = 0
    cut_size = 0
    best: "tuple[float, int] | None" = None
    scores: list[tuple[int, float]] = []
    # Sweep: move vertices one at a time into the prefix side, maintaining
    # the crossing-edge count incrementally.
    in_prefix = np.zeros(n, dtype=bool)
    for k in range(n - 1):
        vertex = int(order[k])
        in_prefix[vertex] = True
        prefix_volume += int(degrees[vertex])
        for neighbor in graph.neighbors(vertex):
            if in_prefix[neighbor]:
                cut_size -= 1
            else:
                cut_size += 1
        smaller_volume = min(prefix_volume, total_volume - prefix_volume)
        if smaller_volume == 0 or cut_size == 0:
            continue
        conductance = cut_size / smaller_volume
        scores.append((k, conductance))
        if best is None or conductance < best[0]:
            best = (conductance, k)

    if best is None:
        raise GraphError("sweep found no valid cut (graph may be disconnected)")

    candidates = sorted(scores, key=lambda item: item[1])
    for k, conductance in candidates:
        side = np.ones(n, dtype=np.int64)
        side[order[: k + 1]] = 0
        partition = Partition(graph, side)
        if require_connected_sides:
            ok1, ok2 = partition.sides_connected()
            if not (ok1 and ok2):
                continue
        return CutResult(
            partition=partition,
            conductance=partition.conductance,
            sparsity=partition.sparsity,
            method="fiedler_sweep",
        )
    raise GraphError(
        "no sweep cut with internally connected sides exists; "
        "supply the partition explicitly"
    )


def brute_force_min_conductance_cut(graph: Graph) -> CutResult:
    """Exact minimum-conductance cut by enumerating all vertex subsets.

    Exponential in ``n``; guarded to ``n <= {limit}``.  Used as the oracle
    against which the sweep cut is tested.
    """.format(limit=_BRUTE_FORCE_LIMIT)
    n = graph.n_vertices
    if n < 2:
        raise GraphError("cannot cut a graph with fewer than two vertices")
    if n > _BRUTE_FORCE_LIMIT:
        raise GraphError(
            f"brute force cut limited to n <= {_BRUTE_FORCE_LIMIT}, got {n}"
        )
    degrees = graph.degrees.astype(np.int64)
    edges = graph.edges
    best_mask = 0
    best_conductance = float("inf")
    # Fix vertex 0 on side 0 to halve the enumeration (complement symmetry).
    for mask in range(1, 1 << (n - 1)):
        side = np.zeros(n, dtype=bool)
        for bit in range(n - 1):
            if mask >> bit & 1:
                side[bit + 1] = True
        if not side.any() or side.all():
            continue
        crossing = int(np.sum(side[edges[:, 0]] != side[edges[:, 1]]))
        if crossing == 0:
            continue
        vol_in = int(degrees[side].sum())
        smaller = min(vol_in, int(degrees.sum()) - vol_in)
        if smaller == 0:
            continue
        conductance = crossing / smaller
        if conductance < best_conductance:
            best_conductance = conductance
            best_mask = mask
    if best_conductance == float("inf"):
        raise GraphError("no cut found (graph has no edges?)")
    side = np.zeros(n, dtype=np.int64)
    for bit in range(n - 1):
        if best_mask >> bit & 1:
            side[bit + 1] = 1
    partition = Partition(graph, side)
    return CutResult(
        partition=partition,
        conductance=partition.conductance,
        sparsity=partition.sparsity,
        method="brute_force",
    )

"""Sparse-cut instances: two well-connected subgraphs joined by few edges.

These builders produce the graphs the paper reasons about.  Each returns a
:class:`BridgedPair` — the joined graph together with the ground-truth
:class:`~repro.graphs.partition.Partition` and the list of bridge edges —
so experiments never have to re-derive the planted cut.

The headline instance is :func:`dumbbell_graph`: two cliques joined by a
single edge, for which the paper proves convex algorithms need ``Omega(n)``
while Algorithm A needs ``O(log n)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.graphs.partition import Partition
from repro.graphs.topologies import (
    complete_graph,
    erdos_renyi_graph,
    grid_graph,
    random_regular_graph,
)
from repro.util.rng import as_generator


@dataclass(frozen=True)
class BridgedPair:
    """A sparse-cut instance: graph + planted partition + bridge edges.

    Attributes
    ----------
    graph:
        The joined graph ``G``.
    partition:
        The planted partition ``(V1, V2)``; its cut is exactly the bridges.
    bridge_edge_ids:
        Edge ids (in ``graph``) of the bridges, sorted.  The first entry is
        the conventional choice for Algorithm A's designated edge ``e_c``.
    """

    graph: Graph
    partition: Partition
    bridge_edge_ids: np.ndarray

    @property
    def designated_edge(self) -> int:
        """Edge id of the conventional ``e_c`` (lowest-numbered bridge)."""
        return int(self.bridge_edge_ids[0])

    def to_dict(self) -> dict:
        """Summary for serialization (sizes, cut width)."""
        return {
            "n_vertices": self.graph.n_vertices,
            "n_edges": self.graph.n_edges,
            "n1": self.partition.n1,
            "n2": self.partition.n2,
            "cut_size": self.partition.cut_size,
        }


def join_graphs(
    first: Graph,
    second: Graph,
    bridges: Sequence[tuple[int, int]],
) -> BridgedPair:
    """Join two graphs with explicit bridge edges.

    ``bridges`` is a list of ``(u, v)`` pairs with ``u`` a vertex of
    ``first`` and ``v`` a vertex of ``second`` (in their own labellings).
    The second graph's vertices are shifted by ``first.n_vertices``.
    """
    if not bridges:
        raise GraphError("at least one bridge edge is required to join graphs")
    offset = first.n_vertices
    edges = [tuple(map(int, e)) for e in first.edges]
    edges.extend((int(u) + offset, int(v) + offset) for u, v in second.edges)
    seen = set()
    for u, v in bridges:
        if not 0 <= u < first.n_vertices:
            raise GraphError(f"bridge endpoint {u} not a vertex of the first graph")
        if not 0 <= v < second.n_vertices:
            raise GraphError(f"bridge endpoint {v} not a vertex of the second graph")
        if (u, v) in seen:
            raise GraphError(f"duplicate bridge ({u}, {v})")
        seen.add((u, v))
        edges.append((int(u), int(v) + offset))
    graph = Graph(first.n_vertices + second.n_vertices, edges)
    side = np.concatenate(
        [
            np.zeros(first.n_vertices, dtype=np.int64),
            np.ones(second.n_vertices, dtype=np.int64),
        ]
    )
    partition = Partition(graph, side)
    bridge_ids = np.array(
        sorted(graph.edge_id(u, v + offset) for u, v in bridges), dtype=np.int64
    )
    return BridgedPair(graph=graph, partition=partition, bridge_edge_ids=bridge_ids)


def _spread_bridges(
    n1: int, n2: int, n_bridges: int, rng: "np.random.Generator | None"
) -> list[tuple[int, int]]:
    """Choose bridge endpoint pairs, distinct pairs, deterministic if rng None."""
    if n_bridges < 1:
        raise GraphError(f"n_bridges must be at least 1, got {n_bridges}")
    if n_bridges > n1 * n2:
        raise GraphError(
            f"cannot place {n_bridges} distinct bridges between sides of size "
            f"{n1} and {n2}"
        )
    if rng is None:
        pairs = []
        for k in range(n_bridges):
            pairs.append((k % n1, k % n2))
        if len(set(pairs)) != len(pairs):
            pairs = [(k // n2, k % n2) for k in range(n_bridges)]
        return pairs
    chosen: set[tuple[int, int]] = set()
    while len(chosen) < n_bridges:
        u = int(rng.integers(n1))
        v = int(rng.integers(n2))
        chosen.add((u, v))
    return sorted(chosen)


def two_cliques(
    n1: int,
    n2: "int | None" = None,
    *,
    n_bridges: int = 1,
    seed: "int | np.random.Generator | None" = None,
) -> BridgedPair:
    """Two cliques ``K_{n1}``, ``K_{n2}`` joined by ``n_bridges`` edges.

    With ``n2 = n1`` and one bridge this is the paper's dumbbell ``G'``.
    Bridges are placed deterministically unless a seed is given.
    """
    if n2 is None:
        n2 = n1
    rng = as_generator(seed) if seed is not None else None
    bridges = _spread_bridges(n1, n2, n_bridges, rng)
    return join_graphs(complete_graph(n1), complete_graph(n2), bridges)


def dumbbell_graph(n: int) -> BridgedPair:
    """The paper's headline graph: two ``n/2``-cliques, one bridge.

    ``n`` must be even and at least 4.  Convex algorithms average in
    ``Omega(n)``; Algorithm A in ``O(log n)``.
    """
    if n < 4 or n % 2 != 0:
        raise GraphError(f"dumbbell size must be even and >= 4, got {n}")
    return two_cliques(n // 2, n // 2, n_bridges=1)


def two_expanders(
    n1: int,
    n2: "int | None" = None,
    *,
    degree: int = 8,
    n_bridges: int = 1,
    seed: "int | np.random.Generator | None" = None,
) -> BridgedPair:
    """Two random-regular expanders joined by ``n_bridges`` edges.

    The scalable sparse-cut family: random ``d``-regular graphs have
    ``lambda_2(L) = Theta(d)`` w.h.p., so each side is "internally well
    connected" while the instance has only ``n * d / 2`` edges (the
    simulator cost stays near-linear in ``n``, unlike clique pairs).
    """
    if n2 is None:
        n2 = n1
    rng = as_generator(seed)
    g1 = random_regular_graph(n1, degree, seed=rng)
    g2 = random_regular_graph(n2, degree, seed=rng)
    bridges = _spread_bridges(n1, n2, n_bridges, rng)
    return join_graphs(g1, g2, bridges)


def two_grids(
    rows: int,
    cols: int,
    *,
    n_bridges: int = 1,
    seed: "int | np.random.Generator | None" = None,
) -> BridgedPair:
    """Two ``rows x cols`` grids joined by ``n_bridges`` edges.

    Grids are only moderately well connected (``lambda_2 = Theta(1/n)``),
    so this family probes Theorem 2 when ``Tvan(Gi)`` itself is large.
    """
    g = grid_graph(rows, cols)
    rng = as_generator(seed) if seed is not None else None
    bridges = _spread_bridges(g.n_vertices, g.n_vertices, n_bridges, rng)
    return join_graphs(g, grid_graph(rows, cols), bridges)


def two_erdos_renyi(
    n1: int,
    n2: "int | None" = None,
    *,
    p: "float | None" = None,
    n_bridges: int = 1,
    seed: "int | np.random.Generator | None" = None,
) -> BridgedPair:
    """Two connected ``G(n, p)`` samples joined by ``n_bridges`` edges.

    ``p`` defaults to ``3 ln n / n`` (safely above the connectivity
    threshold).
    """
    if n2 is None:
        n2 = n1
    rng = as_generator(seed)
    import math

    p1 = p if p is not None else min(1.0, 3.0 * math.log(max(n1, 2)) / n1)
    p2 = p if p is not None else min(1.0, 3.0 * math.log(max(n2, 2)) / n2)
    g1 = erdos_renyi_graph(n1, p1, seed=rng)
    g2 = erdos_renyi_graph(n2, p2, seed=rng)
    bridges = _spread_bridges(n1, n2, n_bridges, rng)
    return join_graphs(g1, g2, bridges)


def bridged_pair(
    family: str,
    n1: int,
    n2: "int | None" = None,
    *,
    n_bridges: int = 1,
    seed: "int | np.random.Generator | None" = None,
    **family_kwargs: object,
) -> BridgedPair:
    """Dispatch to a named sparse-cut family.

    ``family`` is one of ``"clique"``, ``"expander"``, ``"grid"``, ``"er"``.
    For ``"grid"``, ``n1`` is interpreted as the total side size and is
    factored into the squarest ``rows x cols``.
    """
    builders: dict[str, Callable[..., BridgedPair]] = {
        "clique": two_cliques,
        "expander": two_expanders,
        "er": two_erdos_renyi,
    }
    if family == "grid":
        rows, cols = _squarest_factorization(n1)
        return two_grids(rows, cols, n_bridges=n_bridges, seed=seed)
    if family not in builders:
        raise GraphError(
            f"unknown family {family!r}; expected one of "
            f"{sorted(builders) + ['grid']}"
        )
    return builders[family](
        n1, n2, n_bridges=n_bridges, seed=seed, **family_kwargs
    )


def _squarest_factorization(n: int) -> tuple[int, int]:
    """Factor ``n`` as ``rows * cols`` with the sides as equal as possible."""
    if n < 1:
        raise GraphError(f"size must be positive, got {n}")
    best = (1, n)
    for rows in range(1, int(n**0.5) + 1):
        if n % rows == 0:
            best = (rows, n // rows)
    return best

"""K-way cluster structure: many well-connected clusters, sparse between.

The paper treats one sparse cut.  The natural generalization — several
internally well-connected clusters joined sparsely (a chain of campuses, a
federation of racks) — is what :class:`ClusterPartition` models and what
:func:`spectral_clusters` detects by recursive Fiedler bisection.  The
multi-cut extension of Algorithm A
(:class:`repro.core.multi_cut.MultiClusterAveraging`) is built on top.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import PartitionError
from repro.graphs.graph import Graph


class ClusterPartition:
    """A partition of a graph's vertices into ``k >= 2`` labelled clusters.

    Exposes per-cluster vertex sets, the inter-cluster edge lists, and the
    *quotient* structure (which cluster pairs are adjacent) that the
    multi-cut algorithm schedules its designated edges on.
    """

    def __init__(self, graph: Graph, labels: Sequence[int]) -> None:
        label_array = np.asarray(labels, dtype=np.int64)
        if label_array.shape != (graph.n_vertices,):
            raise PartitionError(
                f"labels must have length {graph.n_vertices}, "
                f"got {label_array.shape}"
            )
        unique = np.unique(label_array)
        if len(unique) < 2:
            raise PartitionError("need at least two clusters")
        if not np.array_equal(unique, np.arange(len(unique))):
            raise PartitionError(
                f"labels must be 0..k-1 with every cluster non-empty, "
                f"found {unique.tolist()}"
            )
        self._graph = graph
        self._labels = label_array
        self._labels.setflags(write=False)
        self._k = len(unique)
        self._members = [
            np.flatnonzero(label_array == c) for c in range(self._k)
        ]
        cut_edges: "dict[tuple[int, int], list[int]]" = {}
        internal: "list[list[int]]" = [[] for _ in range(self._k)]
        for edge_id, (u, v) in enumerate(graph.edges):
            cu, cv = int(label_array[u]), int(label_array[v])
            if cu == cv:
                internal[cu].append(edge_id)
            else:
                key = (cu, cv) if cu < cv else (cv, cu)
                cut_edges.setdefault(key, []).append(edge_id)
        self._cut_edges = {
            key: np.asarray(ids, dtype=np.int64)
            for key, ids in sorted(cut_edges.items())
        }
        self._internal_edges = [
            np.asarray(ids, dtype=np.int64) for ids in internal
        ]

    # ------------------------------------------------------------------

    @property
    def graph(self) -> Graph:
        """The underlying graph."""
        return self._graph

    @property
    def k(self) -> int:
        """Number of clusters."""
        return self._k

    @property
    def labels(self) -> np.ndarray:
        """Read-only per-vertex cluster label."""
        return self._labels

    def members(self, cluster: int) -> np.ndarray:
        """Sorted vertex array of one cluster."""
        self._check_cluster(cluster)
        return self._members[cluster]

    def cluster_size(self, cluster: int) -> int:
        """``|V_c|``."""
        return len(self.members(cluster))

    def internal_edge_ids(self, cluster: int) -> np.ndarray:
        """Edge ids internal to one cluster."""
        self._check_cluster(cluster)
        return self._internal_edges[cluster]

    @property
    def adjacent_cluster_pairs(self) -> "list[tuple[int, int]]":
        """Sorted list of cluster pairs joined by at least one edge."""
        return list(self._cut_edges)

    def cut_edge_ids(self, a: int, b: int) -> np.ndarray:
        """Edge ids between clusters ``a`` and ``b`` (may be empty)."""
        self._check_cluster(a)
        self._check_cluster(b)
        if a == b:
            raise PartitionError("a cut needs two distinct clusters")
        key = (a, b) if a < b else (b, a)
        return self._cut_edges.get(key, np.empty(0, dtype=np.int64))

    @property
    def total_cut_size(self) -> int:
        """Total inter-cluster edges."""
        return int(sum(len(ids) for ids in self._cut_edges.values()))

    def subgraph(self, cluster: int) -> "tuple[Graph, np.ndarray]":
        """Induced subgraph of one cluster (graph, vertex map)."""
        return self._graph.subgraph(self.members(cluster))

    def clusters_connected(self) -> "list[bool]":
        """Whether each cluster is internally connected."""
        return [self.subgraph(c)[0].is_connected() for c in range(self._k)]

    def require_connected_clusters(self) -> None:
        """Raise unless every cluster is internally connected."""
        broken = [
            c for c, ok in enumerate(self.clusters_connected()) if not ok
        ]
        if broken:
            raise PartitionError(
                f"clusters {broken} are not internally connected"
            )

    def quotient_is_connected(self) -> bool:
        """Whether the cluster adjacency (quotient) graph is connected."""
        if self._k == 1:
            return True
        quotient = Graph(self._k, self.adjacent_cluster_pairs)
        return quotient.is_connected()

    def _check_cluster(self, cluster: int) -> None:
        if not 0 <= cluster < self._k:
            raise PartitionError(
                f"cluster {cluster} out of range for k={self._k}"
            )

    def __repr__(self) -> str:
        sizes = [self.cluster_size(c) for c in range(self._k)]
        return (
            f"ClusterPartition(k={self._k}, sizes={sizes}, "
            f"total_cut_size={self.total_cut_size})"
        )


def spectral_clusters(graph: Graph, k: int) -> ClusterPartition:
    """Detect ``k`` clusters by recursive Fiedler bisection.

    Repeatedly splits the currently largest cluster with a sweep cut whose
    sides are internally connected, until ``k`` clusters exist.  On graphs
    that genuinely consist of well-connected clusters joined sparsely
    (the regime of interest) this recovers the planted structure.
    """
    from repro.graphs.cuts import fiedler_sweep_cut

    if k < 2:
        raise PartitionError(f"k must be at least 2, got {k}")
    if k > graph.n_vertices:
        raise PartitionError(
            f"cannot make {k} clusters from {graph.n_vertices} vertices"
        )
    clusters: "list[np.ndarray]" = [np.arange(graph.n_vertices)]
    while len(clusters) < k:
        clusters.sort(key=len, reverse=True)
        target = clusters.pop(0)
        if len(target) < 2:
            raise PartitionError(
                "ran out of splittable clusters before reaching k"
            )
        subgraph, mapping = graph.subgraph(target)
        cut = fiedler_sweep_cut(subgraph, require_connected_sides=True)
        side_1 = mapping[cut.partition.vertices_1]
        side_2 = mapping[cut.partition.vertices_2]
        clusters.append(np.sort(side_1))
        clusters.append(np.sort(side_2))
    labels = np.empty(graph.n_vertices, dtype=np.int64)
    # Deterministic label order: by smallest member vertex.
    for new_label, members in enumerate(
        sorted(clusters, key=lambda c: int(c[0]))
    ):
        labels[members] = new_label
    return ClusterPartition(graph, labels)


def chain_of_cliques(
    clique_size: int, n_cliques: int
) -> "tuple[Graph, ClusterPartition]":
    """``n_cliques`` cliques in a path, consecutive pairs joined by 1 edge.

    The canonical multi-cut instance: every adjacent pair of clusters is a
    sparse cut of its own.
    """
    if clique_size < 2:
        raise PartitionError(f"clique_size must be >= 2, got {clique_size}")
    if n_cliques < 2:
        raise PartitionError(f"n_cliques must be >= 2, got {n_cliques}")
    import itertools

    edges: "list[tuple[int, int]]" = []
    labels = np.empty(clique_size * n_cliques, dtype=np.int64)
    for c in range(n_cliques):
        offset = c * clique_size
        labels[offset : offset + clique_size] = c
        edges.extend(
            (offset + a, offset + b)
            for a, b in itertools.combinations(range(clique_size), 2)
        )
        if c + 1 < n_cliques:
            # Bridge: last vertex of clique c to first of clique c+1.
            edges.append((offset + clique_size - 1, offset + clique_size))
    graph = Graph(clique_size * n_cliques, edges)
    return graph, ClusterPartition(graph, labels)

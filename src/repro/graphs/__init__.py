"""Graph substrate: core structure, topologies, partitions, spectra, cuts."""

from repro.graphs.graph import Graph
from repro.graphs.builders import (
    graph_from_adjacency_matrix,
    graph_from_edge_list,
    relabel_graph,
)
from repro.graphs.partition import Partition
from repro.graphs.topologies import (
    binary_tree,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    hypercube_graph,
    lollipop_graph,
    path_graph,
    random_geometric_graph,
    random_regular_graph,
    star_graph,
    torus_graph,
)
from repro.graphs.composites import (
    BridgedPair,
    bridged_pair,
    dumbbell_graph,
    join_graphs,
    two_cliques,
    two_erdos_renyi,
    two_expanders,
    two_grids,
)
from repro.graphs.spectral import (
    algebraic_connectivity,
    fiedler_vector,
    laplacian_matrix,
    laplacian_spectrum,
    normalized_laplacian_matrix,
    spectral_gap,
)
from repro.graphs.cuts import (
    CutResult,
    brute_force_min_conductance_cut,
    conductance_of_side,
    fiedler_sweep_cut,
)
from repro.graphs.properties import (
    connected_components,
    degree_statistics,
    diameter,
    is_connected,
)
from repro.graphs.clustering import (
    ClusterPartition,
    chain_of_cliques,
    spectral_clusters,
)
from repro.graphs.geometric import (
    GeometricNetwork,
    bridged_geometric_pair,
    random_geometric_network,
)

__all__ = [
    "Graph",
    "graph_from_adjacency_matrix",
    "graph_from_edge_list",
    "relabel_graph",
    "Partition",
    "binary_tree",
    "complete_graph",
    "cycle_graph",
    "erdos_renyi_graph",
    "grid_graph",
    "hypercube_graph",
    "lollipop_graph",
    "path_graph",
    "random_geometric_graph",
    "random_regular_graph",
    "star_graph",
    "torus_graph",
    "BridgedPair",
    "bridged_pair",
    "dumbbell_graph",
    "join_graphs",
    "two_cliques",
    "two_erdos_renyi",
    "two_expanders",
    "two_grids",
    "algebraic_connectivity",
    "fiedler_vector",
    "laplacian_matrix",
    "laplacian_spectrum",
    "normalized_laplacian_matrix",
    "spectral_gap",
    "CutResult",
    "brute_force_min_conductance_cut",
    "conductance_of_side",
    "fiedler_sweep_cut",
    "connected_components",
    "degree_statistics",
    "diameter",
    "is_connected",
    "ClusterPartition",
    "chain_of_cliques",
    "spectral_clusters",
    "GeometricNetwork",
    "bridged_geometric_pair",
    "random_geometric_network",
]

"""Immutable undirected graph with CSR adjacency.

This is the substrate every other subsystem builds on.  Design goals:

* **Immutability** — a :class:`Graph` never changes after construction, so
  simulators, partitions and spectral caches can share one instance safely.
* **Array-first** — vertices are ``0..n-1``; edges live in an ``(m, 2)``
  int64 array with each row normalized to ``u < v``.  The simulation engine
  indexes these arrays millions of times per run, so adjacency is stored in
  CSR form (``indptr`` + flat neighbor/edge-id arrays) rather than dicts.
* **Strict validation** — self-loops and duplicate edges are construction
  errors, not silent merges; the paper's model assigns one Poisson clock per
  edge, so edge multiplicity must be unambiguous.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import EdgeError, VertexError


class Graph:
    """An immutable, simple, undirected graph on vertices ``0..n-1``.

    Parameters
    ----------
    n_vertices:
        Number of vertices.  Isolated vertices are allowed (they simply
        never tick), but most topology builders produce connected graphs.
    edges:
        Iterable of ``(u, v)`` pairs, ``u != v``.  Order within a pair and
        among pairs does not matter; rows are normalized to ``u < v`` and
        stored in sorted order so the *edge index* of a pair is canonical.

    Raises
    ------
    EdgeError
        On self-loops, duplicate edges, or malformed pairs.
    VertexError
        On endpoints outside ``[0, n_vertices)``.
    """

    __slots__ = (
        "_n",
        "_edges",
        "_indptr",
        "_adj_vertices",
        "_adj_edges",
        "_edge_lookup",
        "_degrees",
    )

    def __init__(self, n_vertices: int, edges: Iterable[Sequence[int]]) -> None:
        if n_vertices < 0:
            raise ValueError(f"n_vertices must be non-negative, got {n_vertices}")
        self._n = int(n_vertices)

        edge_array = self._normalize_edges(edges)
        self._edges = edge_array
        self._edges.setflags(write=False)

        self._degrees = np.zeros(self._n, dtype=np.int64)
        if edge_array.size:
            np.add.at(self._degrees, edge_array[:, 0], 1)
            np.add.at(self._degrees, edge_array[:, 1], 1)
        self._degrees.setflags(write=False)

        self._build_csr()
        self._edge_lookup = {
            (int(u), int(v)): i for i, (u, v) in enumerate(edge_array)
        }

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    def _normalize_edges(self, edges: Iterable[Sequence[int]]) -> np.ndarray:
        rows: list[tuple[int, int]] = []
        for pair in edges:
            try:
                u, v = int(pair[0]), int(pair[1])
            except (TypeError, IndexError, ValueError) as exc:
                raise EdgeError(
                    f"malformed edge {pair!r}; expected a (u, v) pair"
                ) from exc
            if u == v:
                raise EdgeError(f"self-loop ({u}, {v}) is not allowed")
            for endpoint in (u, v):
                if not 0 <= endpoint < self._n:
                    raise VertexError(endpoint, self._n)
            if u > v:
                u, v = v, u
            rows.append((u, v))
        if not rows:
            return np.empty((0, 2), dtype=np.int64)
        array = np.array(sorted(rows), dtype=np.int64)
        duplicates = np.all(array[1:] == array[:-1], axis=1) if len(array) > 1 else []
        if np.any(duplicates):
            first = int(np.argmax(duplicates))
            u, v = array[first]
            raise EdgeError(f"duplicate edge ({u}, {v})")
        return array

    def _build_csr(self) -> None:
        m = len(self._edges)
        indptr = np.zeros(self._n + 1, dtype=np.int64)
        indptr[1:] = np.cumsum(self._degrees)
        adj_vertices = np.empty(2 * m, dtype=np.int64)
        adj_edges = np.empty(2 * m, dtype=np.int64)
        cursor = indptr[:-1].copy()
        for edge_id in range(m):
            u, v = self._edges[edge_id]
            adj_vertices[cursor[u]] = v
            adj_edges[cursor[u]] = edge_id
            cursor[u] += 1
            adj_vertices[cursor[v]] = u
            adj_edges[cursor[v]] = edge_id
            cursor[v] += 1
        self._indptr = indptr
        self._adj_vertices = adj_vertices
        self._adj_edges = adj_edges
        for array in (self._indptr, self._adj_vertices, self._adj_edges):
            array.setflags(write=False)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    @property
    def n_vertices(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def n_edges(self) -> int:
        """Number of edges."""
        return len(self._edges)

    @property
    def edges(self) -> np.ndarray:
        """Read-only ``(m, 2)`` array of edges, each row ``u < v``, sorted."""
        return self._edges

    @property
    def degrees(self) -> np.ndarray:
        """Read-only array of vertex degrees."""
        return self._degrees

    def degree(self, vertex: int) -> int:
        """Degree of ``vertex``."""
        self._check_vertex(vertex)
        return int(self._degrees[vertex])

    def neighbors(self, vertex: int) -> np.ndarray:
        """Read-only array of the neighbors of ``vertex``."""
        self._check_vertex(vertex)
        return self._adj_vertices[self._indptr[vertex] : self._indptr[vertex + 1]]

    def incident_edges(self, vertex: int) -> np.ndarray:
        """Read-only array of edge ids incident to ``vertex``."""
        self._check_vertex(vertex)
        return self._adj_edges[self._indptr[vertex] : self._indptr[vertex + 1]]

    def edge_endpoints(self, edge_id: int) -> tuple[int, int]:
        """The ``(u, v)`` endpoints of edge ``edge_id`` with ``u < v``."""
        if not 0 <= edge_id < self.n_edges:
            raise EdgeError(
                f"edge id {edge_id} out of range for graph with {self.n_edges} edges"
            )
        u, v = self._edges[edge_id]
        return int(u), int(v)

    def edge_id(self, u: int, v: int) -> int:
        """Canonical edge id of the edge ``{u, v}``.

        Raises :class:`EdgeError` if no such edge exists.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        key = (u, v) if u < v else (v, u)
        try:
            return self._edge_lookup[key]
        except KeyError:
            raise EdgeError(f"no edge between {u} and {v}") from None

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the edge ``{u, v}`` exists."""
        if u == v or not (0 <= u < self._n and 0 <= v < self._n):
            return False
        key = (u, v) if u < v else (v, u)
        return key in self._edge_lookup

    def _check_vertex(self, vertex: int) -> None:
        if not 0 <= vertex < self._n:
            raise VertexError(vertex, self._n)

    # ------------------------------------------------------------------
    # traversal and structure
    # ------------------------------------------------------------------

    def bfs_order(self, source: int) -> np.ndarray:
        """Vertices reachable from ``source`` in BFS order (numpy array)."""
        self._check_vertex(source)
        seen = np.zeros(self._n, dtype=bool)
        seen[source] = True
        frontier = [source]
        order = [source]
        while frontier:
            next_frontier: list[int] = []
            for vertex in frontier:
                lo, hi = self._indptr[vertex], self._indptr[vertex + 1]
                for neighbor in self._adj_vertices[lo:hi]:
                    if not seen[neighbor]:
                        seen[neighbor] = True
                        next_frontier.append(int(neighbor))
                        order.append(int(neighbor))
            frontier = next_frontier
        return np.array(order, dtype=np.int64)

    def is_connected(self) -> bool:
        """Whether the graph is connected (vacuously true for n <= 1)."""
        if self._n <= 1:
            return True
        return len(self.bfs_order(0)) == self._n

    def subgraph(self, vertices: Sequence[int]) -> "tuple[Graph, np.ndarray]":
        """Induced subgraph on ``vertices``.

        Returns ``(subgraph, mapping)`` where ``mapping[i]`` is the original
        vertex id of subgraph vertex ``i``.  Vertices must be distinct.
        """
        vertex_array = np.asarray(sorted(int(v) for v in vertices), dtype=np.int64)
        if len(np.unique(vertex_array)) != len(vertex_array):
            raise VertexError(int(vertex_array[0]), self._n)
        for v in vertex_array:
            self._check_vertex(int(v))
        new_id = {int(old): new for new, old in enumerate(vertex_array)}
        sub_edges = [
            (new_id[int(u)], new_id[int(v)])
            for u, v in self._edges
            if int(u) in new_id and int(v) in new_id
        ]
        return Graph(len(vertex_array), sub_edges), vertex_array

    def adjacency_matrix(self) -> np.ndarray:
        """Dense ``(n, n)`` 0/1 adjacency matrix (float64).

        Intended for analysis on small/medium graphs; the simulator never
        materializes this.
        """
        matrix = np.zeros((self._n, self._n), dtype=np.float64)
        if self.n_edges:
            matrix[self._edges[:, 0], self._edges[:, 1]] = 1.0
            matrix[self._edges[:, 1], self._edges[:, 0]] = 1.0
        return matrix

    # ------------------------------------------------------------------
    # dunder conveniences
    # ------------------------------------------------------------------

    def __iter__(self) -> Iterator[int]:
        return iter(range(self._n))

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:
        return f"Graph(n_vertices={self._n}, n_edges={self.n_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._n == other._n and np.array_equal(self._edges, other._edges)

    def __hash__(self) -> int:
        return hash((self._n, self._edges.tobytes()))

"""Structural graph properties: connectivity, components, diameter, degrees."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import DisconnectedGraphError
from repro.graphs.graph import Graph


def is_connected(graph: Graph) -> bool:
    """Whether ``graph`` is connected (delegates to the graph itself)."""
    return graph.is_connected()


def connected_components(graph: Graph) -> list[np.ndarray]:
    """Connected components as sorted vertex arrays, largest-vertex order."""
    seen = np.zeros(graph.n_vertices, dtype=bool)
    components: list[np.ndarray] = []
    for start in range(graph.n_vertices):
        if seen[start]:
            continue
        order = graph.bfs_order(start)
        seen[order] = True
        components.append(np.sort(order))
    return components


def shortest_path_lengths(graph: Graph, source: int) -> np.ndarray:
    """BFS distances from ``source``; unreachable vertices get -1."""
    distances = np.full(graph.n_vertices, -1, dtype=np.int64)
    distances[source] = 0
    queue: deque[int] = deque([source])
    while queue:
        vertex = queue.popleft()
        for neighbor in graph.neighbors(vertex):
            if distances[neighbor] < 0:
                distances[neighbor] = distances[vertex] + 1
                queue.append(int(neighbor))
    return distances


def diameter(graph: Graph) -> int:
    """Exact diameter via all-sources BFS (O(n m); fine for analysis sizes).

    Raises :class:`DisconnectedGraphError` on disconnected input.
    """
    if graph.n_vertices == 0:
        raise DisconnectedGraphError("diameter of the empty graph is undefined")
    best = 0
    for source in range(graph.n_vertices):
        distances = shortest_path_lengths(graph, source)
        if np.any(distances < 0):
            raise DisconnectedGraphError("diameter requires a connected graph")
        best = max(best, int(distances.max()))
    return best


@dataclass(frozen=True)
class DegreeStatistics:
    """Summary of a graph's degree sequence."""

    minimum: int
    maximum: int
    mean: float
    is_regular: bool

    def to_dict(self) -> dict:
        """Plain-dict view for serialization."""
        return {
            "minimum": self.minimum,
            "maximum": self.maximum,
            "mean": self.mean,
            "is_regular": self.is_regular,
        }


def degree_statistics(graph: Graph) -> DegreeStatistics:
    """Min/max/mean degree and regularity flag."""
    if graph.n_vertices == 0:
        raise ValueError("degree statistics of the empty graph are undefined")
    degrees = graph.degrees
    return DegreeStatistics(
        minimum=int(degrees.min()),
        maximum=int(degrees.max()),
        mean=float(degrees.mean()),
        is_regular=bool(degrees.min() == degrees.max()),
    )


def density(graph: Graph) -> float:
    """Edge density ``m / (n choose 2)`` (0 for graphs with < 2 vertices)."""
    n = graph.n_vertices
    if n < 2:
        return 0.0
    return graph.n_edges / (n * (n - 1) / 2)

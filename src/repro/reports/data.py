"""Where report data comes from: store, artifact directory, or compute.

:class:`SweepSource` resolves a sweep id (plus scale and seed) to a
:class:`~repro.engine.sweeps.SweepResult`, preferring already-stored
data over recomputation:

1. **Results store** — a content-addressed fingerprint hit returns the
   stored, byte-identical result with zero simulation work; with
   ``compute`` enabled a miss computes *through* the store
   (:func:`~repro.engine.store.run_sweep_cached`), so the next report
   build is a hit.  When the exact fingerprint is absent (typically a
   different code version), the typed query API scans the sweep's done
   runs for one with the same configuration identity.
2. **Artifact directory** — ``sweep_<id>_<fingerprint12>.json`` files
   written by :func:`~repro.experiments.reporting.save_sweep_result`
   (the ``sweep_<id>.json`` latest-alias is accepted when its identity
   matches).
3. **Fresh computation** — :func:`~repro.engine.sweeps.run_sweep`,
   unless ``compute`` is disabled, in which case resolution failure is
   an :class:`~repro.errors.ExperimentError` with the exact command
   that would seed the missing data.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.engine.sweeps import ReplicateBudget, SweepResult, run_sweep
from repro.errors import ExperimentError, SerializationError


def expected_result_fingerprint(spec, seed: int, budget: ReplicateBudget) -> str:
    """The artifact fingerprint a run of ``(spec, seed, budget)`` gets.

    Mirrors :func:`~repro.engine.store.result_fingerprint` — the digest
    over the result's identity fields (name, axes, seed, logical
    budget), no code version — but computed *a priori* from the spec,
    so artifacts can be located without loading them.
    """
    from repro.engine.store import config_fingerprint

    payload = {
        "sweep_name": spec.name,
        "axes": {axis.name: list(axis.values) for axis in spec.axes},
        "seed": seed,
        "budget": budget.logical_dict(),
    }
    return config_fingerprint(payload, code_version=None)


@dataclass
class SweepSource:
    """Resolves sweep ids to results: store, artifacts, then compute.

    Parameters
    ----------
    store:
        An open :class:`~repro.engine.store.ResultsStore`, or ``None``.
    artifact_dir:
        A directory of ``sweep_*.json`` artifacts, or ``None``.
    compute:
        Whether a miss may simulate.  ``False`` turns this source into
        a pure reader — the drift gate's mode, where report values must
        come from recorded data alone.
    n_workers / kernel:
        Scheduling knobs forwarded to computed sweeps (never part of
        the data identity; results are bit-identical across them).
    """

    store: "Any | None" = None
    artifact_dir: "str | Path | None" = None
    compute: bool = True
    n_workers: "int | None" = None
    kernel: "str | None" = None

    def resolve(self, sweep_id: str, *, scale: str, seed: int) -> SweepResult:
        """The sweep's result under the report budget for ``scale``."""
        from repro.experiments.specs_sweeps import get_sweep, report_budget

        spec = get_sweep(sweep_id, scale=scale, seed=seed)
        budget = report_budget(scale)
        if self.store is not None:
            result = self._from_store(spec, seed, budget)
            if result is not None:
                return result
        if self.artifact_dir is not None:
            result = self._from_artifacts(spec, seed, budget)
            if result is not None:
                return result
        if self.compute and self.store is None:
            return run_sweep(
                spec,
                seed=seed,
                budget=budget,
                n_workers=self.n_workers,
                kernel=self.kernel,
            )
        raise ExperimentError(
            f"no stored result for sweep {spec.name} (scale={scale}, "
            f"seed={seed}) and computing is disabled; seed it with: "
            f"repro-experiments sweep {spec.name} --scale {scale} "
            f"--seed {seed} --replicates {budget.min_replicates}"
            + (f" --store {self.store.path}" if self.store is not None else "")
            + (f" --out {self.artifact_dir}" if self.artifact_dir else "")
        )

    # -- store ---------------------------------------------------------

    def _from_store(self, spec, seed, budget) -> "SweepResult | None":
        from repro.engine.store import run_sweep_cached, sweep_fingerprint

        fingerprint = sweep_fingerprint(spec, seed=seed, budget=budget)
        row = self.store.lookup(fingerprint)
        if row is not None and row.status == "done":
            return self.store.load_result(row.run_id)
        # Same configuration recorded under another code version still
        # satisfies a read-only resolution (the drift gate's point is
        # precisely to recompute claims against such data).
        expected = expected_result_fingerprint(spec, seed, budget)
        if not self.compute:
            from repro.engine.store import result_fingerprint

            for _run, result in self.store.results_for_sweep(spec.name):
                if result_fingerprint(result) == expected:
                    return result
            return None
        outcome = run_sweep_cached(
            spec,
            store=self.store,
            seed=seed,
            budget=budget,
            n_workers=self.n_workers,
            kernel=self.kernel,
        )
        return outcome.result

    # -- artifacts -----------------------------------------------------

    def _from_artifacts(self, spec, seed, budget) -> "SweepResult | None":
        from repro.engine.store import result_fingerprint

        base = Path(self.artifact_dir)
        expected = expected_result_fingerprint(spec, seed, budget)
        name = spec.name.lower()
        candidates = [
            base / f"sweep_{name}_{expected[:12]}.json",
            base / f"sweep_{name}.json",
        ]
        for path in candidates:
            if not path.exists():
                continue
            try:
                result = SweepResult.load(path)
            except (SerializationError, KeyError, TypeError, ValueError) as exc:
                raise ExperimentError(
                    f"artifact {path} is not a readable sweep result ({exc})"
                ) from exc
            if result_fingerprint(result) != expected:
                # The latest-alias may point at another seed/scale/budget
                # of the same sweep — not an error, just not our data.
                continue
            return result
        return None

"""The declarative report model: one pipeline for every E1-E14 report.

A :class:`ReportSpec` declares *what* one experiment's report contains —
which sweeps feed it, which provider measures any non-grid data, and
the table/figure/finding/check builders that assemble the rendered
report — and :func:`build_report` is the single path that turns a spec
into an :class:`~repro.experiments.harness.ExperimentReport`.  No
report value is produced anywhere else: sweep-backed experiments read
stored :class:`~repro.engine.sweeps.SweepResult` rows (resolved through
:class:`~repro.reports.data.SweepSource` — results store, artifact
directory, or a fresh computation), and measurement-backed experiments
read their provider's plain-data payload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.engine.sweeps import SweepResult
from repro.errors import ExperimentError
from repro.experiments.harness import ExperimentReport, resolve_scale
from repro.util.tables import Table


@dataclass
class ReportContext:
    """Everything a spec's builders may read while assembling a report.

    ``sweeps`` maps sweep id to the resolved :class:`SweepResult`;
    ``data`` is the provider payload (empty for pure sweep reports).
    :meth:`memo` caches derived series so a table builder and a check
    builder computing the same aggregation share one pass.
    """

    experiment_id: str
    scale: str
    seed: int
    sweeps: "dict[str, SweepResult]"
    data: "Mapping[str, Any]"
    _memo: dict = field(default_factory=dict)

    def sweep(self, sweep_id: str) -> SweepResult:
        """The resolved result for one of the spec's declared sweeps."""
        if sweep_id not in self.sweeps:
            raise ExperimentError(
                f"report {self.experiment_id} did not declare sweep "
                f"{sweep_id!r}; declared: {sorted(self.sweeps)}"
            )
        return self.sweeps[sweep_id]

    def memo(self, key: str, compute: "Callable[[], Any]") -> Any:
        """Cache a derived series under ``key`` for this report build."""
        if key not in self._memo:
            self._memo[key] = compute()
        return self._memo[key]


#: A check builder returns ``(name, passed, detail)``.
CheckBuilder = Callable[[ReportContext], "tuple[str, bool, str]"]


@dataclass(frozen=True)
class ReportSpec:
    """One experiment's report, declared.

    Attributes
    ----------
    experiment_id:
        Short id ("E1"...).
    title:
        Report title — a string or a callable of the context (for
        titles quoting resolved instance sizes).
    paper_claim:
        What the paper predicts, quoted/paraphrased.
    summary:
        One-line description for the CLI ``list`` output and docs.
    default_seed:
        Seed used when the caller passes none; also the seed the claim
        catalogue resolves this experiment's sweeps under, so claims
        and reports share store cache entries.
    sweeps:
        Sweep ids (see :data:`~repro.experiments.specs_sweeps.SWEEPS`)
        resolved through the :class:`~repro.reports.data.SweepSource`
        before any builder runs.
    provider:
        Optional measurement provider ``(scale=..., seed=...) -> dict``
        for data that does not fit a sweep grid; its payload becomes
        ``ctx.data``.
    tables / figures / findings / checks:
        Builders assembling the report from the context, in order.
    """

    experiment_id: str
    title: "str | Callable[[ReportContext], str]"
    paper_claim: str
    summary: str
    default_seed: int
    sweeps: "tuple[str, ...]" = ()
    provider: "Callable[..., Mapping[str, Any]] | None" = None
    tables: "tuple[Callable[[ReportContext], Table], ...]" = ()
    figures: "tuple[Callable[[ReportContext], str], ...]" = ()
    findings: "Callable[[ReportContext], Mapping[str, Any]] | None" = None
    checks: "tuple[CheckBuilder, ...]" = ()

    def __post_init__(self) -> None:
        if not self.sweeps and self.provider is None:
            raise ExperimentError(
                f"report {self.experiment_id} declares neither sweeps nor "
                "a provider: it would have no data to report"
            )


def build_report(
    spec: ReportSpec,
    *,
    scale: "str | None" = None,
    seed: "int | None" = None,
    source: "Any | None" = None,
) -> ExperimentReport:
    """The one pipeline from declared spec to rendered report.

    Resolves the spec's sweeps through ``source`` (default: a
    compute-on-miss :class:`~repro.reports.data.SweepSource`), runs the
    provider if any, then assembles tables, figures, findings and shape
    checks in declaration order.
    """
    from repro.reports.data import SweepSource

    scale = resolve_scale(scale)
    if seed is None:
        seed = spec.default_seed
    if source is None:
        source = SweepSource()
    sweeps = {
        sweep_id: source.resolve(sweep_id, scale=scale, seed=seed)
        for sweep_id in spec.sweeps
    }
    data: "Mapping[str, Any]" = {}
    if spec.provider is not None:
        data = dict(spec.provider(scale=scale, seed=seed))
    ctx = ReportContext(
        experiment_id=spec.experiment_id,
        scale=scale,
        seed=seed,
        sweeps=sweeps,
        data=data,
    )
    title = spec.title(ctx) if callable(spec.title) else spec.title
    report = ExperimentReport(
        experiment_id=spec.experiment_id,
        title=title,
        paper_claim=spec.paper_claim,
    )
    for build_table in spec.tables:
        report.tables.append(build_table(ctx))
    for build_figure in spec.figures:
        report.figures.append(build_figure(ctx))
    if spec.findings is not None:
        report.findings.update(spec.findings(ctx))
    for build_check in spec.checks:
        name, passed, detail = build_check(ctx)
        report.add_check(name, passed, detail)
    return report

"""Data-driven report generation and claims verification.

One declarative pipeline (:class:`~repro.reports.model.ReportSpec` +
:func:`~repro.reports.model.build_report`) renders every E1-E14 report
from stored :class:`~repro.engine.sweeps.SweepResult` rows (resolved
through :class:`~repro.reports.data.SweepSource`: results store,
artifact directory, or fresh computation) and provider payloads; the
claim catalogue (:mod:`repro.reports.claims`) recomputes the paper's
machine-checkable statements from the same stored data for the
``repro-experiments verify-claims`` drift gate.  See ``docs/reports.md``.
"""

from repro.reports.claims import (
    CLAIM_SEEDS,
    CLAIMS,
    CLAIMS_SCHEMA,
    Claim,
    ClaimVerdict,
    claims_bundle,
    evaluate_claims,
    get_claims,
    required_sweeps,
    verdict_table,
)
from repro.reports.data import SweepSource
from repro.reports.model import (
    CheckBuilder,
    ReportContext,
    ReportSpec,
    build_report,
)
from repro.reports.registry import REPORT_SPECS

__all__ = [
    "CLAIMS",
    "CLAIMS_SCHEMA",
    "CLAIM_SEEDS",
    "Claim",
    "ClaimVerdict",
    "CheckBuilder",
    "REPORT_SPECS",
    "ReportContext",
    "ReportSpec",
    "SweepSource",
    "build_report",
    "claims_bundle",
    "evaluate_claims",
    "get_claims",
    "required_sweeps",
    "verdict_table",
]

"""E1-E5 report specs: the scaling claims, assembled from stored rows.

Every builder reads :class:`~repro.engine.sweeps.SweepResult` rows
through the :class:`~repro.reports.model.ReportContext`; instance
bookkeeping (Theorem bounds, epoch lengths) is reconstructed from each
point's *stored params* — ``expand()`` merges the sweep's base params
into every point, so degree/graph-seed/size travel with the data and
the bounds are recomputable from rows alone, even under ``--axis``
overrides.
"""

from __future__ import annotations

from repro.analysis.bounds import (
    dumbbell_predictions,
    theorem1_lower_bound,
    theorem2_upper_bound,
)
from repro.core.epochs import epoch_length_ticks
from repro.graphs.composites import dumbbell_graph
from repro.reports.model import ReportContext, ReportSpec
from repro.util.ascii_plot import line_plot
from repro.util.mathx import fit_power_law
from repro.util.tables import Table


def _skip(name: str, count: int) -> "tuple[str, bool, str]":
    """A vacuous pass for fit checks below the minimum grid size."""
    return name, True, f"skipped: {count} sizes (a fit needs >= 3)"


# ----------------------------------------------------------------------
# E1 — Theorem 1: convex lower bound Omega(n1 / |E12|)
# ----------------------------------------------------------------------


def _e1_series(ctx: ReportContext) -> "list[dict]":
    def compute():
        from repro.experiments.specs_sweeps import build_size_pair

        result = ctx.sweep("E1")
        rows = []
        for n in result.axes["n"]:
            vanilla = result.point(n=n, algorithm="vanilla")
            pair = build_size_pair(
                int(n),
                degree=int(vanilla.params["degree"]),
                seed=int(vanilla.params["seed"]),
            )
            rows.append(
                {
                    "n": int(n),
                    "pair": pair,
                    "vanilla": vanilla.estimate,
                    "lazy": result.point(n=n, algorithm="lazy").estimate,
                    "bound": theorem1_lower_bound(pair.partition),
                }
            )
        return rows

    return ctx.memo("e1_series", compute)


def _e1_table(ctx: ReportContext) -> Table:
    table = Table(
        ["n", "n1", "|E12|", "thm1 bound", "T_av vanilla", "T_av lazy(0.75)",
         "vanilla/bound"],
        title="E1: convex averaging time vs size (cut width 1)",
    )
    for row in _e1_series(ctx):
        partition = row["pair"].partition
        table.add_row(
            [row["n"], partition.n1, partition.cut_size, row["bound"],
             row["vanilla"], row["lazy"], row["vanilla"] / row["bound"]]
        )
    return table


def _e1_figure(ctx: ReportContext) -> str:
    rows = _e1_series(ctx)
    ns = [row["n"] for row in rows]
    return line_plot(
        {
            "vanilla": (ns, [row["vanilla"] for row in rows]),
            "lazy": (ns, [row["lazy"] for row in rows]),
            "thm1 bound": (ns, [row["bound"] for row in rows]),
        },
        title="E1: T_av vs n (log-log); slope ~ 1 = linear growth",
        logx=True,
        logy=True,
    )


def _e1_findings(ctx: ReportContext) -> dict:
    rows = _e1_series(ctx)
    ns = [row["n"] for row in rows]
    return {
        "vanilla_scaling_exponent": fit_power_law(
            ns, [row["vanilla"] for row in rows]
        )[0],
        "lazy_scaling_exponent": fit_power_law(
            ns, [row["lazy"] for row in rows]
        )[0],
    }


def _e1_check_bound(ctx: ReportContext) -> "tuple[str, bool, str]":
    rows = _e1_series(ctx)
    margins = [row["vanilla"] / row["bound"] for row in rows]
    margins += [row["lazy"] / row["bound"] for row in rows]
    return (
        "measured T_av respects the Theorem-1 bound",
        all(margin >= 1.0 for margin in margins),
        f"min measured/bound = {min(margins):.2f}",
    )


def _e1_check_linear(ctx: ReportContext) -> "tuple[str, bool, str]":
    rows = _e1_series(ctx)
    name = "vanilla grows ~linearly in n"
    if len(rows) < 3:
        return _skip(name, len(rows))
    exponent, _ = fit_power_law(
        [row["n"] for row in rows], [row["vanilla"] for row in rows]
    )
    return name, 0.6 <= exponent <= 1.4, f"log-log slope {exponent:.2f} (theory: 1)"


E1 = ReportSpec(
    experiment_id="E1",
    title="Convex lower bound: T_av vs n at one bridge (expander pairs)",
    paper_claim=(
        "Theorem 1: every algorithm in class C has "
        "T_av = Omega(min(n1, n2) / |E12|); with |E12| = 1 this is "
        "linear growth in n."
    ),
    summary="Convex algorithms on single-bridge expander pairs scale linearly.",
    default_seed=7,
    sweeps=("E1",),
    tables=(_e1_table,),
    figures=(_e1_figure,),
    findings=_e1_findings,
    checks=(_e1_check_bound, _e1_check_linear),
)


# ----------------------------------------------------------------------
# E2 — Theorem 2: Algorithm A upper bound O(log n (Tvan1 + Tvan2))
# ----------------------------------------------------------------------


def _e2_series(ctx: ReportContext) -> "list[dict]":
    def compute():
        from repro.experiments.specs_sweeps import build_size_pair

        result = ctx.sweep("E2")
        rows = []
        for n in result.axes["n"]:
            point = result.point(n=n)
            pair = build_size_pair(
                int(n),
                degree=int(point.params["degree"]),
                seed=int(point.params["seed"]),
            )
            rows.append(
                {
                    "n": int(n),
                    "epoch": epoch_length_ticks(pair.partition, constant=3.0),
                    "estimate": point.estimate,
                    "envelope": theorem2_upper_bound(pair.partition, constant=3.0),
                }
            )
        return rows

    return ctx.memo("e2_series", compute)


def _e2_table(ctx: ReportContext) -> Table:
    table = Table(
        ["n", "epoch L", "thm2 envelope", "T_av A", "envelope margin"],
        title="E2: non-convex averaging time vs size (cut width 1)",
    )
    for row in _e2_series(ctx):
        table.add_row(
            [row["n"], row["epoch"], row["envelope"], row["estimate"],
             (row["envelope"] + 2.0) / max(row["estimate"], 1e-9)]
        )
    return table


def _e2_figure(ctx: ReportContext) -> str:
    rows = _e2_series(ctx)
    ns = [row["n"] for row in rows]
    return line_plot(
        {
            "algorithm A": (ns, [row["estimate"] for row in rows]),
            "thm2 envelope": (ns, [row["envelope"] for row in rows]),
        },
        title="E2: T_av(A) vs n (log-log); flat/slow growth",
        logx=True,
        logy=True,
    )


def _e2_findings(ctx: ReportContext) -> dict:
    rows = _e2_series(ctx)
    exponent, _ = fit_power_law(
        [row["n"] for row in rows], [row["estimate"] for row in rows]
    )
    return {"a_scaling_exponent": exponent}


def _e2_check_envelope(ctx: ReportContext) -> "tuple[str, bool, str]":
    rows = _e2_series(ctx)
    # The theorem is an order bound; allow a constant factor on top of
    # the envelope plus the epoch-tick latency the ceiling introduces.
    margins = [row["estimate"] / (row["envelope"] + 2.0) for row in rows]
    return (
        "T_av(A) within a constant factor of the Theorem-2 envelope",
        all(margin <= 4.0 for margin in margins),
        f"max T_av/(envelope+2) = {max(margins):.2f} (<= 4)",
    )


def _e2_check_sublinear(ctx: ReportContext) -> "tuple[str, bool, str]":
    rows = _e2_series(ctx)
    name = "T_av(A) grows sublinearly (polylog regime)"
    if len(rows) < 3:
        return _skip(name, len(rows))
    exponent, _ = fit_power_law(
        [row["n"] for row in rows], [row["estimate"] for row in rows]
    )
    return (
        name,
        exponent <= 0.6,
        f"log-log slope {exponent:.2f} (vanilla in E1 is ~1)",
    )


E2 = ReportSpec(
    experiment_id="E2",
    title="Algorithm A: T_av vs n against the Theorem-2 envelope",
    paper_claim=(
        "Theorem 2: Algorithm A has "
        "T_av = O(log n * (Tvan(G1) + Tvan(G2))); on well-connected "
        "sides this is polylogarithmic in n."
    ),
    summary="Algorithm A on the E1 instances stays inside its envelope.",
    default_seed=11,
    sweeps=("E2",),
    tables=(_e2_table,),
    figures=(_e2_figure,),
    findings=_e2_findings,
    checks=(_e2_check_envelope, _e2_check_sublinear),
)


# ----------------------------------------------------------------------
# E3 — headline: the dumbbell, Omega(n) vs O(log n)
# ----------------------------------------------------------------------


def _e3_series(ctx: ReportContext) -> "list[dict]":
    def compute():
        result = ctx.sweep("E3")
        rows = []
        for n in result.axes["n"]:
            vanilla = result.point(n=n, algorithm="vanilla").estimate
            a_time = result.point(n=n, algorithm="algorithm_a").estimate
            pair = dumbbell_graph(int(n))
            rows.append(
                {
                    "n": int(n),
                    "vanilla": vanilla,
                    "a": a_time,
                    "speedup": vanilla / max(a_time, 1e-9),
                    "bound": theorem1_lower_bound(pair.partition),
                    "envelope": dumbbell_predictions(int(n))[
                        "nonconvex_upper_bound"
                    ],
                }
            )
        return rows

    return ctx.memo("e3_series", compute)


def _e3_table(ctx: ReportContext) -> Table:
    table = Table(
        ["n", "T_av vanilla", "T_av A", "speedup", "thm1 bound",
         "thm2 dumbbell"],
        title="E3: dumbbell averaging times",
    )
    for row in _e3_series(ctx):
        table.add_row(
            [row["n"], row["vanilla"], row["a"], row["speedup"],
             row["bound"], row["envelope"]]
        )
    return table


def _e3_figure(ctx: ReportContext) -> str:
    rows = _e3_series(ctx)
    ns = [row["n"] for row in rows]
    return line_plot(
        {
            "vanilla": (ns, [row["vanilla"] for row in rows]),
            "algorithm A": (ns, [row["a"] for row in rows]),
        },
        title="E3: dumbbell T_av (log-log) - the separation",
        logx=True,
        logy=True,
    )


def _e3_findings(ctx: ReportContext) -> dict:
    rows = _e3_series(ctx)
    return {
        "vanilla_exponent": fit_power_law(
            [row["n"] for row in rows], [row["vanilla"] for row in rows]
        )[0],
        "speedup_at_max_n": rows[-1]["speedup"],
    }


def _e3_check_speedup(ctx: ReportContext) -> "tuple[str, bool, str]":
    rows = _e3_series(ctx)
    return (
        "Algorithm A clearly beats vanilla at the largest size",
        rows[-1]["speedup"] >= 4.0,
        f"speedup at n={rows[-1]['n']}: {rows[-1]['speedup']:.1f}",
    )


def _e3_check_growth(ctx: ReportContext) -> "tuple[str, bool, str]":
    rows = _e3_series(ctx)
    return (
        "speedup grows with n",
        rows[-1]["speedup"] > rows[0]["speedup"],
        f"{rows[0]['speedup']:.1f} -> {rows[-1]['speedup']:.1f}",
    )


def _e3_check_envelope(ctx: ReportContext) -> "tuple[str, bool, str]":
    rows = _e3_series(ctx)
    return (
        "A stays within the logarithmic envelope (x2.5 constant slack)",
        all(row["a"] <= 2.5 * row["envelope"] for row in rows),
        f"max T_av(A) = {max(row['a'] for row in rows):.2f}",
    )


def _e3_check_linear(ctx: ReportContext) -> "tuple[str, bool, str]":
    rows = _e3_series(ctx)
    name = "vanilla grows ~linearly on dumbbells"
    if len(rows) < 3:
        return _skip(name, len(rows))
    exponent, _ = fit_power_law(
        [row["n"] for row in rows], [row["vanilla"] for row in rows]
    )
    return name, 0.6 <= exponent <= 1.4, f"log-log slope {exponent:.2f} (theory: 1)"


E3 = ReportSpec(
    experiment_id="E3",
    title="Dumbbell headline: vanilla Omega(n) vs Algorithm A O(log n)",
    paper_claim=(
        "For G' = two n/2-cliques joined by one edge: any convex "
        "algorithm needs Omega(n) while Algorithm A needs O(log n)."
    ),
    summary="Two cliques + one bridge: the paper's exponential separation.",
    default_seed=13,
    sweeps=("E3",),
    tables=(_e3_table,),
    figures=(_e3_figure,),
    findings=_e3_findings,
    checks=(
        _e3_check_speedup,
        _e3_check_growth,
        _e3_check_envelope,
        _e3_check_linear,
    ),
)


# ----------------------------------------------------------------------
# E4 — cut-width scaling: T_av ~ n1 / |E12| for convex; A insensitive
# ----------------------------------------------------------------------


def _e4_series(ctx: ReportContext) -> "list[dict]":
    def compute():
        from repro.experiments.specs_sweeps import build_width_pair

        result = ctx.sweep("E4")
        rows = []
        for width in result.axes["width"]:
            vanilla = result.point(width=width, algorithm="vanilla")
            pair = build_width_pair(
                int(width),
                half=int(vanilla.params["half"]),
                degree=int(vanilla.params["degree"]),
                seed=int(vanilla.params["seed"]),
            )
            rows.append(
                {
                    "width": int(width),
                    "half": int(vanilla.params["half"]),
                    "vanilla": vanilla.estimate,
                    "a": result.point(
                        width=width, algorithm="algorithm_a"
                    ).estimate,
                    "bound": theorem1_lower_bound(pair.partition),
                }
            )
        return rows

    return ctx.memo("e4_series", compute)


def _e4_table(ctx: ReportContext) -> Table:
    rows = _e4_series(ctx)
    table = Table(
        ["|E12|", "thm1 bound", "T_av vanilla", "T_av A"],
        title=f"E4: cut-width sweep (n = {2 * rows[0]['half']})",
    )
    for row in rows:
        table.add_row([row["width"], row["bound"], row["vanilla"], row["a"]])
    return table


def _e4_figure(ctx: ReportContext) -> str:
    rows = _e4_series(ctx)
    widths = [row["width"] for row in rows]
    return line_plot(
        {
            "vanilla": (widths, [row["vanilla"] for row in rows]),
            "algorithm A": (widths, [row["a"] for row in rows]),
            "thm1 bound": (widths, [row["bound"] for row in rows]),
        },
        title="E4: T_av vs cut width (log-log)",
        logx=True,
        logy=True,
    )


def _e4_findings(ctx: ReportContext) -> dict:
    rows = _e4_series(ctx)
    return {
        "vanilla_drop_factor": rows[0]["vanilla"] / rows[-1]["vanilla"],
        "width_ratio": float(rows[-1]["width"] / rows[0]["width"]),
    }


def _e4_check_drop(ctx: ReportContext) -> "tuple[str, bool, str]":
    rows = _e4_series(ctx)
    drop = rows[0]["vanilla"] / rows[-1]["vanilla"]
    width_ratio = rows[-1]["width"] / rows[0]["width"]
    return (
        "convex time falls substantially with cut width",
        drop >= 0.3 * width_ratio,
        f"T_av(1 bridge)/T_av({rows[-1]['width']} bridges) = {drop:.1f} "
        f"(width grew {width_ratio}x)",
    )


def _e4_check_flat(ctx: ReportContext) -> "tuple[str, bool, str]":
    rows = _e4_series(ctx)
    a_times = [row["a"] for row in rows]
    flatness = max(a_times) / max(min(a_times), 1e-9)
    return (
        "Algorithm A is insensitive to cut width",
        flatness <= 5.0,
        f"max/min T_av(A) across widths = {flatness:.2f}",
    )


def _e4_check_bound(ctx: ReportContext) -> "tuple[str, bool, str]":
    rows = _e4_series(ctx)
    margins = [row["vanilla"] / row["bound"] for row in rows]
    return (
        "vanilla respects Theorem 1 at every width",
        all(margin >= 1.0 for margin in margins),
        f"min measured/bound = {min(margins):.2f}",
    )


E4 = ReportSpec(
    experiment_id="E4",
    title="Cut-width sweep at fixed n (expander pairs)",
    paper_claim=(
        "Theorem 1's bound is Omega(n1/|E12|): doubling the cut width "
        "halves the convex bottleneck, while Algorithm A uses a single "
        "designated edge and is insensitive to the width."
    ),
    summary="Sweep |E12| at fixed n: convex falls ~1/|E12|, A stays flat.",
    default_seed=17,
    sweeps=("E4",),
    tables=(_e4_table,),
    figures=(_e4_figure,),
    findings=_e4_findings,
    checks=(_e4_check_drop, _e4_check_flat, _e4_check_bound),
)


# ----------------------------------------------------------------------
# E5 — balance sweep + gain ablation (fidelity note F1)
# ----------------------------------------------------------------------


def _e5_series(ctx: ReportContext) -> "list[dict]":
    def compute():
        from repro.experiments.specs_sweeps import build_balance_pair

        result = ctx.sweep("E5")
        rows = []
        for fraction in result.axes["fraction"]:
            exact = result.point(fraction=fraction, gain="exact")
            pair = build_balance_pair(
                float(fraction),
                total=int(exact.params["total"]),
                degree=int(exact.params["degree"]),
                seed=int(exact.params["seed"]),
            )
            rows.append(
                {
                    "fraction": float(fraction),
                    "total": int(exact.params["total"]),
                    "pair": pair,
                    "exact": exact,
                    "paper": result.point(fraction=fraction, gain="paper"),
                }
            )
        return rows

    return ctx.memo("e5_series", compute)


def _e5_table(ctx: ReportContext) -> Table:
    rows = _e5_series(ctx)
    table = Table(
        ["n1/n", "n1", "n2", "residual factor n1/n2", "T_av exact",
         "T_av paper-gain"],
        title=f"E5: gain ablation (n = {rows[0]['total']}); "
        "'censored' = never settled",
    )
    for row in rows:
        partition = row["pair"].partition
        paper_cell = (
            "censored"
            if row["paper"].is_censored
            else f"{row['paper'].estimate:.3g}"
        )
        table.add_row(
            [f"{partition.n1 / row['total']:.3f}", partition.n1,
             partition.n2, partition.n1 / partition.n2,
             row["exact"].estimate, paper_cell]
        )
    return table


def _e5_check_exact(ctx: ReportContext) -> "tuple[str, bool, str]":
    rows = _e5_series(ctx)
    return (
        "exact gain converges at every balance",
        all(not row["exact"].is_censored for row in rows),
        "no censored replicate quantile with the harmonic gain",
    )


def _e5_check_balanced(ctx: ReportContext) -> "tuple[str, bool, str]":
    rows = _e5_series(ctx)
    stalled = any(
        row["paper"].is_censored
        for row in rows
        if row["pair"].partition.n1 == row["pair"].partition.n2
    )
    return (
        "paper-literal gain stalls at the balanced cut",
        stalled,
        "the n1-gain swap oscillates forever when n1 = n2 (fidelity note F1)",
    )


def _e5_check_unbalanced(ctx: ReportContext) -> "tuple[str, bool, str]":
    rows = _e5_series(ctx)
    converged = all(
        not row["paper"].is_censored
        for row in rows
        if row["pair"].partition.n1 / row["pair"].partition.n2 <= 0.5
    )
    return (
        "paper-literal gain still converges when clearly unbalanced",
        converged,
        "residual factor n1/n2 <= 1/2 shrinks the imbalance geometrically",
    )


E5 = ReportSpec(
    experiment_id="E5",
    title="Balance sweep and swap-gain ablation",
    paper_claim=(
        "Algorithm A as written uses gain n1; its own inequality (7) "
        "requires the residual imbalance to vanish, which needs the "
        "harmonic gain n1*n2/n. Literal n1 must fail exactly at "
        "balanced cuts and survive at unbalanced ones."
    ),
    summary="Exact vs paper-literal swap gain across partition balances.",
    default_seed=19,
    sweeps=("E5",),
    tables=(_e5_table,),
    checks=(_e5_check_exact, _e5_check_balanced, _e5_check_unbalanced),
)

"""Machine-checkable paper claims, recomputed from stored sweep data.

Each :class:`Claim` is a quantitative statement the paper makes —
a fitted scaling exponent with a tolerance band, a dominance ordering,
a bound inequality — expressed over :class:`~repro.engine.sweeps
.SweepResult` rows alone, so the ``repro-experiments verify-claims``
drift gate can recompute every verdict from the results store without
re-simulating anything.  The tolerance bands are *calibrated envelopes*:
wide enough that an in-distribution rerun passes at any scale, tight
enough that a broken swap rule, a lost bound factor, or a silently
changed budget flips at least one verdict.

The catalogue (:data:`CLAIMS`) covers both theorems (E1/E2), the
dumbbell headline scaling and speedup (E3), the dominance ordering the
proof machinery predicts (E6, evaluated on the E3 grid's stored
samples), cut-width insensitivity (E4), the gain-rule ablation (E5),
and the failure-injection contrasts (E13).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.engine.sweeps import PointResult, SweepResult
from repro.errors import ExperimentError
from repro.util.mathx import fit_power_law
from repro.util.tables import Table

#: Schema tag stamped into ``claims.json`` bundles.
CLAIMS_SCHEMA = "repro-claims/v1"

#: Root seed each claim sweep is resolved under — the owning report's
#: default seed, so claims and reports share store cache entries.
CLAIM_SEEDS = {"E1": 7, "E2": 11, "E3": 13, "E4": 17, "E5": 19, "E13": 53}


@dataclass(frozen=True)
class ClaimVerdict:
    """One claim's recomputed outcome."""

    claim_id: str
    passed: bool
    observed: "float | str"
    expected: str
    detail: str

    def to_dict(self) -> dict:
        """Plain-dict view for the ``claims.json`` bundle."""
        return {
            "claim_id": self.claim_id,
            "passed": self.passed,
            "observed": self.observed,
            "expected": self.expected,
            "detail": self.detail,
        }


def _match_points(
    result: SweepResult, select: "Mapping[str, Any]"
) -> "list[PointResult]":
    """Points whose params agree with every ``select`` entry."""
    return [
        point
        for point in result.points
        if all(point.params.get(key) == value for key, value in select.items())
    ]


def _one_point(result: SweepResult, select: "Mapping[str, Any]") -> PointResult:
    matches = _match_points(result, select)
    if len(matches) != 1:
        raise ExperimentError(
            f"selector {dict(select)!r} matched {len(matches)} points of "
            f"sweep {result.sweep_name} (need exactly 1)"
        )
    return matches[0]


def _fmt(select: "Mapping[str, Any]") -> str:
    return ",".join(f"{k}={v}" for k, v in sorted(select.items()))


@dataclass(frozen=True, kw_only=True)
class Claim:
    """Base: identity plus provenance; subclasses define the predicate."""

    claim_id: str
    experiment_id: str
    sweep: str
    paper_ref: str
    statement: str

    def evaluate(self, results: "Mapping[str, SweepResult]") -> ClaimVerdict:
        """Recompute the verdict from resolved sweep results."""
        raise NotImplementedError

    def _result(self, results: "Mapping[str, SweepResult]") -> SweepResult:
        if self.sweep not in results:
            raise ExperimentError(
                f"claim {self.claim_id} needs sweep {self.sweep!r} but only "
                f"{sorted(results)} were resolved"
            )
        return results[self.sweep]

    def _verdict(
        self, passed: bool, observed: "float | str", expected: str, detail: str
    ) -> ClaimVerdict:
        return ClaimVerdict(
            claim_id=self.claim_id,
            passed=bool(passed),
            observed=observed,
            expected=expected,
            detail=detail,
        )


@dataclass(frozen=True, kw_only=True)
class ExponentClaim(Claim):
    """A power-law fit over one axis must land inside ``[low, high]``."""

    axis: str
    select: "Mapping[str, Any]" = field(default_factory=dict)
    low: float
    high: float

    def evaluate(self, results: "Mapping[str, SweepResult]") -> ClaimVerdict:
        result = self._result(results)
        points = _match_points(result, self.select)
        pairs = sorted(
            (float(p.params[self.axis]), p.estimate)
            for p in points
            if not p.is_censored and math.isfinite(p.estimate)
        )
        expected = f"exponent in [{self.low:g}, {self.high:g}]"
        if len({x for x, _ in pairs}) < 2:
            return self._verdict(
                False, "underdetermined", expected,
                f"only {len(pairs)} finite points match {_fmt(self.select)}; "
                "a power-law fit needs at least two axis values",
            )
        exponent, _ = fit_power_law([x for x, _ in pairs], [y for _, y in pairs])
        censored = len(points) - len(pairs)
        detail = (
            f"fit over {len(pairs)} points of {self.sweep}[{_fmt(self.select)}]"
            + (f" ({censored} censored excluded)" if censored else "")
        )
        return self._verdict(
            self.low <= exponent <= self.high, float(exponent), expected, detail
        )


@dataclass(frozen=True, kw_only=True)
class RatioClaim(Claim):
    """``numerator.estimate / denominator.estimate`` inside ``[low, high]``.

    With ``axis`` set, both selectors are pinned to the largest value of
    that axis present in the result — "at the biggest instance", which
    is well defined at every scale.
    """

    numerator: "Mapping[str, Any]"
    denominator: "Mapping[str, Any]"
    axis: "str | None" = None
    low: float
    high: float

    def evaluate(self, results: "Mapping[str, SweepResult]") -> ClaimVerdict:
        result = self._result(results)
        num_sel = dict(self.numerator)
        den_sel = dict(self.denominator)
        at = ""
        if self.axis is not None:
            pin = max(result.axes[self.axis])
            num_sel[self.axis] = pin
            den_sel[self.axis] = pin
            at = f" at {self.axis}={pin}"
        num = _one_point(result, num_sel)
        den = _one_point(result, den_sel)
        expected = f"ratio in [{self.low:g}, {self.high:g}]"
        detail = f"{_fmt(self.numerator)} / {_fmt(self.denominator)}{at}"
        if den.is_censored or not math.isfinite(den.estimate):
            return self._verdict(
                False, "denominator censored", expected,
                detail + " (denominator did not converge within budget)",
            )
        ratio = num.estimate / den.estimate
        passed = (
            not math.isnan(ratio) and self.low <= ratio <= self.high
        )
        return self._verdict(passed, float(ratio), expected, detail)


@dataclass(frozen=True, kw_only=True)
class BoundClaim(Claim):
    """Every matching estimate respects ``factor * bound(params)``.

    ``bound`` reconstructs the theorem's prediction from the point's own
    stored params (instance sizes, degrees, graph seeds travel with the
    data, so the bound is recomputable from rows alone).  ``side`` is
    ``"lower"`` (estimate must sit at or above) or ``"upper"`` (at or
    below; a censored point fails an upper bound by definition).
    """

    select: "Mapping[str, Any]" = field(default_factory=dict)
    bound: "Callable[[Mapping[str, Any]], float]"
    side: str
    factor: float = 1.0

    def evaluate(self, results: "Mapping[str, SweepResult]") -> ClaimVerdict:
        if self.side not in ("lower", "upper"):
            raise ExperimentError(
                f"claim {self.claim_id}: side must be 'lower' or 'upper', "
                f"got {self.side!r}"
            )
        result = self._result(results)
        points = _match_points(result, self.select)
        if not points:
            raise ExperimentError(
                f"claim {self.claim_id}: selector {_fmt(self.select)!r} "
                f"matched no points of sweep {result.sweep_name}"
            )
        expected = (
            f"every T_av {'>=' if self.side == 'lower' else '<='} "
            f"{self.factor:g} * bound"
        )
        worst: float = math.inf if self.side == "lower" else 0.0
        failures = 0
        for point in points:
            threshold = self.factor * float(self.bound(point.params))
            margin = point.estimate / threshold
            if self.side == "lower":
                worst = min(worst, margin)
                if not point.estimate >= threshold:
                    failures += 1
            else:
                worst = max(worst, margin)
                if not point.estimate <= threshold:
                    failures += 1
        detail = (
            f"{len(points)} points of {self.sweep}"
            + (f"[{_fmt(self.select)}]" if self.select else "")
            + (f"; {failures} violate the bound" if failures else "")
        )
        return self._verdict(failures == 0, float(worst), expected, detail)


@dataclass(frozen=True, kw_only=True)
class SpreadClaim(Claim):
    """max/min of the matching estimates stays below ``max_ratio``."""

    select: "Mapping[str, Any]" = field(default_factory=dict)
    max_ratio: float

    def evaluate(self, results: "Mapping[str, SweepResult]") -> ClaimVerdict:
        result = self._result(results)
        points = _match_points(result, self.select)
        estimates = [
            p.estimate
            for p in points
            if not p.is_censored and math.isfinite(p.estimate)
        ]
        expected = f"max/min <= {self.max_ratio:g}"
        detail = f"{len(points)} points of {self.sweep}[{_fmt(self.select)}]"
        if len(estimates) < 2:
            return self._verdict(
                False, "underdetermined", expected,
                detail + "; fewer than two finite estimates",
            )
        if len(estimates) < len(points):
            return self._verdict(
                False, "censored", expected,
                detail + f"; {len(points) - len(estimates)} censored points "
                "in a set the claim says is insensitive",
            )
        spread = max(estimates) / min(estimates)
        return self._verdict(spread <= self.max_ratio, float(spread), expected, detail)


@dataclass(frozen=True, kw_only=True)
class CensoringClaim(Claim):
    """Named points must censor; named points must converge."""

    censored: "tuple[Mapping[str, Any], ...]" = ()
    finite: "tuple[Mapping[str, Any], ...]" = ()

    def evaluate(self, results: "Mapping[str, SweepResult]") -> ClaimVerdict:
        result = self._result(results)
        wrong: "list[str]" = []
        for select in self.censored:
            if not _one_point(result, select).is_censored:
                wrong.append(f"{_fmt(select)} converged (expected censored)")
        for select in self.finite:
            point = _one_point(result, select)
            if point.is_censored or not math.isfinite(point.estimate):
                wrong.append(f"{_fmt(select)} censored (expected finite)")
        checked = len(self.censored) + len(self.finite)
        expected = (
            f"{len(self.censored)} censored and {len(self.finite)} finite"
        )
        if wrong:
            return self._verdict(
                False, f"{checked - len(wrong)}/{checked} as predicted",
                expected, "; ".join(wrong),
            )
        return self._verdict(
            True, f"{checked}/{checked} as predicted", expected,
            f"censoring pattern of {self.sweep} matches the prediction",
        )


@dataclass(frozen=True, kw_only=True)
class DominanceClaim(Claim):
    """Order-statistic dominance at every value of one axis.

    At each axis value, the sorted replicate samples of the ``upper``
    arm must sit at or above the sorted samples of the ``lower`` arm,
    order statistic by order statistic, up to a multiplicative
    ``margin`` of slack — the empirical form of stochastic dominance
    the paper's coupling argument (Section 4) predicts between the
    convex baseline and Algorithm A.
    """

    axis: str
    upper: "Mapping[str, Any]"
    lower: "Mapping[str, Any]"
    margin: float = 1.0

    def evaluate(self, results: "Mapping[str, SweepResult]") -> ClaimVerdict:
        result = self._result(results)
        expected = f"sorted({_fmt(self.upper)}) * {self.margin:g} >= sorted({_fmt(self.lower)})"
        worst = 0.0
        violations = 0
        compared = 0
        for value in result.axes[self.axis]:
            up = _one_point(result, {**self.upper, self.axis: value})
            lo = _one_point(result, {**self.lower, self.axis: value})
            ups = np.sort(np.asarray(up.samples, dtype=float))
            los = np.sort(np.asarray(lo.samples, dtype=float))
            if np.isnan(ups).any() or np.isnan(los).any():
                return self._verdict(
                    False, "diverged", expected,
                    f"diverged replicates at {self.axis}={value}",
                )
            k = min(len(ups), len(los))
            for u, lo_k in zip(ups[:k], los[:k]):
                compared += 1
                if math.isinf(u):
                    continue
                worst = max(worst, lo_k / u)
                if lo_k > self.margin * u:
                    violations += 1
        detail = (
            f"{compared} order-statistic pairs across "
            f"{self.axis} in {list(result.axes[self.axis])}"
            + (f"; {violations} violations" if violations else "")
        )
        return self._verdict(violations == 0, float(worst), expected, detail)


# ----------------------------------------------------------------------
# bound reconstruction (from stored point params alone)
# ----------------------------------------------------------------------


def _e1_bound(params: "Mapping[str, Any]") -> float:
    """Theorem 1's lower bound for the stored E1 instance."""
    from repro.analysis.bounds import theorem1_lower_bound
    from repro.experiments.specs_sweeps import build_size_pair

    pair = build_size_pair(
        int(params["n"]), degree=int(params["degree"]), seed=int(params["seed"])
    )
    return theorem1_lower_bound(pair.partition)


def _e2_bound(params: "Mapping[str, Any]") -> float:
    """Theorem 2's envelope for the stored E2 instance (legacy check
    shape: ``T_av <= 4 * (bound + 2)``; the +2 absorbs the additive
    settling term at tiny sizes)."""
    from repro.analysis.bounds import theorem2_upper_bound
    from repro.experiments.specs_sweeps import build_size_pair

    pair = build_size_pair(
        int(params["n"]), degree=int(params["degree"]), seed=int(params["seed"])
    )
    return theorem2_upper_bound(pair.partition, constant=3.0) + 2.0


# ----------------------------------------------------------------------
# the catalogue
# ----------------------------------------------------------------------

CLAIMS: "tuple[Claim, ...]" = (
    BoundClaim(
        claim_id="E1-thm1-bound",
        experiment_id="E1",
        sweep="E1",
        paper_ref="Theorem 1",
        statement="Every class-C algorithm needs T_av >= Omega(n1*n2 / (n |E12|)) "
                  "on a single-bridge expander pair.",
        bound=_e1_bound,
        side="lower",
    ),
    BoundClaim(
        claim_id="E2-thm2-envelope",
        experiment_id="E2",
        sweep="E2",
        paper_ref="Theorem 2",
        statement="Algorithm A finishes within a constant multiple of the "
                  "O((n1*n2/n + T_mix) log n) envelope.",
        bound=_e2_bound,
        side="upper",
        factor=4.0,
    ),
    ExponentClaim(
        claim_id="E3-vanilla-linear",
        experiment_id="E3",
        sweep="E3",
        paper_ref="Section 1 (dumbbell headline)",
        statement="Vanilla gossip's averaging time on the dumbbell grows "
                  "linearly in n (the cut bottleneck: Theta(n1*n2/n)).",
        axis="n",
        select={"algorithm": "vanilla"},
        low=0.7,
        high=1.5,
    ),
    RatioClaim(
        claim_id="E3-speedup",
        experiment_id="E3",
        sweep="E3",
        paper_ref="Section 1 (dumbbell headline)",
        statement="At the largest dumbbell, Algorithm A beats vanilla by "
                  "at least 4x.",
        numerator={"algorithm": "vanilla"},
        denominator={"algorithm": "algorithm_a"},
        axis="n",
        low=4.0,
        high=math.inf,
    ),
    DominanceClaim(
        claim_id="E6-dominance",
        experiment_id="E6",
        sweep="E3",
        paper_ref="Section 4 (coupling argument)",
        statement="Algorithm A's averaging-time distribution is stochastically "
                  "dominated by vanilla's at every dumbbell size.",
        axis="n",
        upper={"algorithm": "vanilla"},
        lower={"algorithm": "algorithm_a"},
        margin=1.1,
    ),
    SpreadClaim(
        claim_id="E4-width-insensitivity",
        experiment_id="E4",
        sweep="E4",
        paper_ref="Theorem 2 (T_mix term)",
        statement="Algorithm A's averaging time is insensitive to cut width "
                  "(the swap needs one designated edge, not a wide cut).",
        select={"algorithm": "algorithm_a"},
        max_ratio=5.0,
    ),
    CensoringClaim(
        claim_id="E5-gain-censoring",
        experiment_id="E5",
        sweep="E5",
        paper_ref="Algorithm A, step 2 (DESIGN.md F1)",
        statement="At the balanced partition the paper's printed swap gain "
                  "stalls (censors) while the exact mass-balancing gain "
                  "converges.",
        censored=({"gain": "paper", "fraction": 0.5},),
        finite=({"gain": "exact", "fraction": 0.5},),
    ),
    RatioClaim(
        claim_id="E13-lossy-slowdown",
        experiment_id="E13",
        sweep="E13",
        paper_ref="Section 2 (tick-count model)",
        statement="Dropping 30% of ticks slows vanilla by at most the "
                  "budget-rescaling factor 1/(1-p) plus noise — losses cost "
                  "time, never correctness.",
        numerator={"config": "vanilla_lossy"},
        denominator={"config": "vanilla_healthy"},
        low=1.0,
        high=2.6,
    ),
    CensoringClaim(
        claim_id="E13-failover",
        experiment_id="E13",
        sweep="E13",
        paper_ref="Algorithm A (designated-edge assumption)",
        statement="Killing the designated edge stalls plain Algorithm A, "
                  "while vanilla and the resilient variant route around it "
                  "over the surviving bridges.",
        censored=({"config": "algorithm_a_failing"},),
        finite=(
            {"config": "vanilla_failing"},
            {"config": "resilient_failing"},
        ),
    ),
)


def get_claims(ids: "Sequence[str] | None" = None) -> "tuple[Claim, ...]":
    """The catalogue, optionally narrowed to specific claim ids."""
    if ids is None:
        return CLAIMS
    by_id = {claim.claim_id: claim for claim in CLAIMS}
    unknown = [i for i in ids if i not in by_id]
    if unknown:
        raise ExperimentError(
            f"unknown claim ids {unknown}; available: {sorted(by_id)}"
        )
    return tuple(by_id[i] for i in ids)


def required_sweeps(claims: "Sequence[Claim]") -> "dict[str, int]":
    """Sweep id -> root seed needed to evaluate ``claims``."""
    needed = {}
    for claim in claims:
        if claim.sweep not in CLAIM_SEEDS:
            raise ExperimentError(
                f"claim {claim.claim_id} references sweep {claim.sweep!r} "
                f"with no registered claim seed; known: {sorted(CLAIM_SEEDS)}"
            )
        needed[claim.sweep] = CLAIM_SEEDS[claim.sweep]
    return needed


def evaluate_claims(
    claims: "Sequence[Claim]", results: "Mapping[str, SweepResult]"
) -> "list[ClaimVerdict]":
    """Every claim's verdict, in catalogue order."""
    return [claim.evaluate(results) for claim in claims]


def verdict_table(
    claims: "Sequence[Claim]", verdicts: "Sequence[ClaimVerdict]"
) -> Table:
    """The CLI's verdict table (one row per claim)."""
    table = Table(
        ["claim", "paper ref", "verdict", "observed", "expected"],
        title="claims",
    )
    for claim, verdict in zip(claims, verdicts):
        table.add_row(
            [
                claim.claim_id,
                claim.paper_ref,
                "PASS" if verdict.passed else "FAIL",
                verdict.observed,
                verdict.expected,
            ]
        )
    return table


def claims_bundle(
    claims: "Sequence[Claim]",
    verdicts: "Sequence[ClaimVerdict]",
    *,
    scale: str,
) -> dict:
    """The schema-tagged payload ``verify-claims --out`` writes."""
    return {
        "schema": CLAIMS_SCHEMA,
        "scale": scale,
        "passed": all(v.passed for v in verdicts),
        "claims": [
            {
                "experiment_id": claim.experiment_id,
                "sweep": claim.sweep,
                "paper_ref": claim.paper_ref,
                "statement": claim.statement,
                **verdict.to_dict(),
            }
            for claim, verdict in zip(claims, verdicts)
        ],
    }

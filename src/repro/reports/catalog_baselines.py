"""E8-E10 report specs: baselines, topology families, epoch constant.

E8 reads the measurement provider in
:mod:`repro.experiments.specs_baselines`; E9 and E10 read stored
:class:`~repro.engine.sweeps.SweepResult` rows, reconstructing instance
bookkeeping (regime indicators, epoch lengths, spectral times) from the
params stored with each point.
"""

from __future__ import annotations

from repro.analysis.bounds import theorem2_upper_bound
from repro.core.epochs import epoch_length_ticks
from repro.experiments.specs_baselines import e8_measurements
from repro.graphs.spectral import spectral_mixing_time
from repro.reports.model import ReportContext, ReportSpec
from repro.util.tables import Table


# ----------------------------------------------------------------------
# E8 — baseline comparison on the dumbbell
# ----------------------------------------------------------------------


def _e8_table(ctx: ReportContext) -> Table:
    data = ctx.data
    bound = data["bound"]
    table = Table(
        ["algorithm", "class", "T_av", "vs thm1 bound"],
        title=f"E8: averaging times, dumbbell n = {data['n']} "
        f"(thm1 bound = {bound:.3g})",
    )
    for row in data["rows"]:
        cell = "censored" if row["censored"] else f"{row['tav']:.4g}"
        ratio = "-" if row["censored"] else f"{row['tav'] / bound:.2f}"
        table.add_row([row["label"], row["klass"], cell, ratio])
    return table


def _e8_arm(ctx: ReportContext, label: str) -> dict:
    for row in ctx.data["rows"]:
        if row["label"] == label:
            return row
    raise KeyError(f"E8 measurements have no {label!r} row")


def _e8_best_baseline(ctx: ReportContext) -> float:
    return min(
        row["tav"]
        for row in ctx.data["rows"]
        if row["label"] != "algorithm A" and not row["censored"]
    )


def _e8_findings(ctx: ReportContext) -> dict:
    best = _e8_best_baseline(ctx)
    a_tav = _e8_arm(ctx, "algorithm A")["tav"]
    return {
        "best_baseline_tav": best,
        "algorithm_a_tav": a_tav,
        "advantage": best / max(a_tav, 1e-9),
    }


def _e8_check_converged(ctx: ReportContext) -> "tuple[str, bool, str]":
    arm = _e8_arm(ctx, "algorithm A")
    return (
        "Algorithm A converged",
        not arm["censored"],
        f"T_av = {arm['tav']:.3g}",
    )


def _e8_check_beats(ctx: ReportContext) -> "tuple[str, bool, str]":
    best = _e8_best_baseline(ctx)
    a_tav = _e8_arm(ctx, "algorithm A")["tav"]
    return (
        "Algorithm A beats every baseline",
        a_tav < best,
        f"best baseline {best:.3g} vs A {a_tav:.3g}",
    )


def _e8_check_bound(ctx: ReportContext) -> "tuple[str, bool, str]":
    bound = ctx.data["bound"]
    respects = all(
        row["censored"] or row["tav"] >= bound
        for row in ctx.data["rows"]
        if row["klass"] == "convex C"
    )
    return (
        "every class-C member respects the Theorem-1 bound",
        respects,
        f"bound = {bound:.3g}",
    )


E8 = ReportSpec(
    experiment_id="E8",
    title=lambda ctx: f"Baseline comparison on the dumbbell (n = {ctx.data['n']})",
    paper_claim=(
        "Only the non-convex cross-cut update escapes the Theorem-1 "
        "bottleneck; convex schemes (whatever their schedule), "
        "push-sum, and per-round momentum methods all remain "
        "cut-limited."
    ),
    summary="Every implemented averaging scheme head-to-head on one dumbbell.",
    default_seed=31,
    provider=e8_measurements,
    tables=(_e8_table,),
    findings=_e8_findings,
    checks=(_e8_check_converged, _e8_check_beats, _e8_check_bound),
)


# ----------------------------------------------------------------------
# E9 — topology robustness (and the well-connectedness hypothesis)
# ----------------------------------------------------------------------

_E9_LABELS = {
    "clique": "clique",
    "expander": "expander (ambiguous zone)",
    "erdos_renyi": "erdos-renyi",
    "grid": "grid (negative control)",
}


def _e9_series(ctx: ReportContext) -> "list[dict]":
    def compute():
        from repro.experiments.specs_sweeps import build_family_pair

        result = ctx.sweep("E9")
        rows = []
        for family in result.axes["family"]:
            vanilla = result.point(family=family, algorithm="vanilla")
            params = vanilla.params
            pair = build_family_pair(
                str(family),
                half=int(params["half"]),
                grid_rows=int(params["grid_rows"]),
                grid_cols=int(params["grid_cols"]),
                degree=int(params["degree"]),
                seed=int(params["seed"]),
            )
            a_time = result.point(
                family=family, algorithm="algorithm_a"
            ).estimate
            envelope = theorem2_upper_bound(pair.partition, constant=3.0)
            # Compare A's envelope to the *actual* convex time scale (the
            # whole-graph spectral mixing time), not the Theorem-1
            # constant: that ratio is what decides who wins in practice.
            indicator = envelope / spectral_mixing_time(pair.graph)
            rows.append(
                {
                    "label": _E9_LABELS.get(str(family), str(family)),
                    "n": pair.graph.n_vertices,
                    "indicator": indicator,
                    "vanilla": vanilla.estimate,
                    "a": a_time,
                    "speedup": vanilla.estimate / max(a_time, 1e-9),
                }
            )
        return rows

    return ctx.memo("e9_series", compute)


def _e9_table(ctx: ReportContext) -> Table:
    table = Table(
        ["family", "n", "regime indicator", "T_av vanilla", "T_av A",
         "speedup", "A predicted to win?"],
        title="E9: vanilla vs Algorithm A by family (regime indicator = "
        "thm2 envelope / whole-graph spectral time; < 1 favours A)",
    )
    for row in _e9_series(ctx):
        table.add_row(
            [row["label"], row["n"], row["indicator"], row["vanilla"],
             row["a"], row["speedup"], row["indicator"] < 1.0]
        )
    return table


def _e9_check_prediction(ctx: ReportContext) -> "tuple[str, bool, str]":
    ok = True
    for row in _e9_series(ctx):
        measured_win = row["speedup"] > 1.5
        # Only insist on agreement when the prediction is clear-cut.
        if row["indicator"] < 1.0 / 3.0:
            ok = ok and measured_win
        elif row["indicator"] > 3.0:
            ok = ok and not measured_win
    return (
        "the well-connectedness indicator predicts the winner",
        ok,
        "speedup > 1.5 iff thm2 envelope clearly below the convex time "
        "scale (clear-cut rows only; ambiguous rows reported)",
    )


E9 = ReportSpec(
    experiment_id="E9",
    title="Topology robustness across sparse-cut families",
    paper_claim=(
        "A outperforms class C whenever G1, G2 are internally well "
        "connected relative to the cut; when they are not (grids), "
        "the Theorem-2 envelope exceeds the convex bound and the "
        "advantage is predicted to disappear."
    ),
    summary="Sparse-cut families beyond cliques - incl. a negative control.",
    default_seed=37,
    sweeps=("E9",),
    tables=(_e9_table,),
    checks=(_e9_check_prediction,),
)


# ----------------------------------------------------------------------
# E10 — epoch-constant ablation (fidelity note F4)
# ----------------------------------------------------------------------


def _e10_series(ctx: ReportContext) -> dict:
    def compute():
        from repro.experiments.specs_sweeps import build_epoch_grid_pair

        result = ctx.sweep("E10")
        params = result.points[0].params
        pair = build_epoch_grid_pair(
            grid_rows=int(params["grid_rows"]),
            grid_cols=int(params["grid_cols"]),
        )
        g1, _, g2, _ = pair.partition.subgraphs()
        tvan_sum = spectral_mixing_time(g1) + spectral_mixing_time(g2)
        rows = []
        for constant in result.axes["constant"]:
            point = result.point(constant=constant)
            rows.append(
                {
                    "constant": float(constant),
                    "epoch": epoch_length_ticks(
                        pair.partition, constant=float(constant)
                    ),
                    "estimate": point.estimate,
                    "censored": point.is_censored,
                }
            )
        return {"pair": pair, "tvan_sum": tvan_sum, "rows": rows}

    return ctx.memo("e10_series", compute)


def _e10_table(ctx: ReportContext) -> Table:
    series = _e10_series(ctx)
    table = Table(
        ["C", "epoch L", "epoch time / Tvan sum", "T_av A"],
        title=f"E10: C sweep on a grid pair "
        f"(n = {series['pair'].graph.n_vertices})",
    )
    for row in series["rows"]:
        cell = "censored" if row["censored"] else f"{row['estimate']:.4g}"
        table.add_row(
            [row["constant"], row["epoch"],
             row["epoch"] / series["tvan_sum"], cell]
        )
    return table


def _e10_findings(ctx: ReportContext) -> dict:
    return {"tvan_sum": _e10_series(ctx)["tvan_sum"]}


def _e10_check_healthy(ctx: ReportContext) -> "tuple[str, bool, str]":
    rows = _e10_series(ctx)["rows"]
    healthy = [row for row in rows if row["constant"] >= 1.0]
    return (
        "large C converges",
        all(not row["censored"] for row in healthy),
        f"C in {[row['constant'] for row in healthy]} all settled",
    )


def _e10_check_tiny(ctx: ReportContext) -> "tuple[str, bool, str]":
    rows = _e10_series(ctx)["rows"]
    healthy = [row for row in rows if row["constant"] >= 1.0]
    tiny = [row for row in rows if row["constant"] < 0.1]
    name = "too-small C degrades or stalls"
    if not tiny:
        return name, True, "skipped: no C < 0.1 in this grid"
    # Too-small C must be visibly worse: censored, or far slower than
    # the best healthy configuration.
    best_healthy = min(row["estimate"] for row in healthy)
    degraded = all(
        row["censored"] or row["estimate"] >= 3.0 * best_healthy
        for row in tiny
    )
    return (
        name,
        degraded,
        f"C in {[row['constant'] for row in tiny]}: "
        + ", ".join(
            "censored" if row["censored"] else f"{row['estimate']:.3g}"
            for row in tiny
        )
        + f" vs best healthy {best_healthy:.3g}",
    )


E10 = ReportSpec(
    experiment_id="E10",
    title="Epoch-constant ablation (the paper's C)",
    paper_claim=(
        "Algorithm A needs C large enough that an epoch mixes each "
        "side internally (ineq. 4); with C too small the swap reads "
        "unmixed endpoints and stops making progress."
    ),
    summary="Sweep the paper's unspecified constant C.",
    default_seed=41,
    sweeps=("E10",),
    tables=(_e10_table,),
    findings=_e10_findings,
    checks=(_e10_check_healthy, _e10_check_tiny),
)

"""E11-E14 report specs: extensions beyond the paper's theorems.

E11/E12/E14 read the measurement providers in
:mod:`repro.experiments.specs_extensions`; E13 (failure injection) is
sweep-backed and reads stored :class:`~repro.engine.sweeps.SweepResult`
rows for its five clock/algorithm configurations.
"""

from __future__ import annotations

import math

from repro.experiments.specs_extensions import (
    e11_measurements,
    e12_measurements,
    e14_measurements,
)
from repro.reports.model import ReportContext, ReportSpec
from repro.util.mathx import fit_power_law
from repro.util.tables import Table


# ----------------------------------------------------------------------
# E11 — geographic gossip on geometric random graphs (reference [6])
# ----------------------------------------------------------------------


def _e11_table(ctx: ReportContext) -> Table:
    table = Table(
        ["n", "avg degree", "msgs vanilla", "msgs geographic", "msg ratio",
         "time vanilla", "time geographic"],
        title=f"E11: messages/time to variance ratio "
        f"{ctx.data['target_ratio']:g} (smooth field)",
    )
    for row in ctx.data["rows"]:
        table.add_row(
            [row["n"], row["avg_degree"], row["vanilla_messages"],
             row["geo_messages"],
             row["vanilla_messages"] / row["geo_messages"],
             row["vanilla_time"], row["geo_time"]]
        )
    return table


def _e11_exponents(ctx: ReportContext) -> "tuple[float, float]":
    def compute():
        sizes = [row["n"] for row in ctx.data["rows"]]
        vanilla = fit_power_law(
            sizes, [row["vanilla_messages"] for row in ctx.data["rows"]]
        )[0]
        geo = fit_power_law(
            sizes, [row["geo_messages"] for row in ctx.data["rows"]]
        )[0]
        return vanilla, geo

    return ctx.memo("e11_exponents", compute)


def _e11_findings(ctx: ReportContext) -> dict:
    vanilla, geo = _e11_exponents(ctx)
    return {
        "vanilla_message_exponent": vanilla,
        "geographic_message_exponent": geo,
    }


def _e11_check_exponent(ctx: ReportContext) -> "tuple[str, bool, str]":
    vanilla, geo = _e11_exponents(ctx)
    return (
        "geographic needs asymptotically fewer messages",
        geo < vanilla - 0.15,
        f"message exponents: geographic {geo:.2f} vs vanilla {vanilla:.2f}",
    )


def _e11_check_growth(ctx: ReportContext) -> "tuple[str, bool, str]":
    ratios = [
        row["vanilla_messages"] / row["geo_messages"]
        for row in ctx.data["rows"]
    ]
    return (
        "the message advantage grows with n",
        ratios[-1] > ratios[0],
        f"vanilla/geographic message ratio: "
        f"{ratios[0]:.2f} -> {ratios[-1]:.2f}",
    )


E11 = ReportSpec(
    experiment_id="E11",
    title="Geographic gossip on geometric random graphs (reference [6])",
    paper_claim=(
        "Narayanan PODC'07 (the paper's ref. [6], its non-convexity "
        "precursor): routing to random remote partners beats local "
        "diffusion on geometric graphs — fewer total messages, with "
        "the advantage growing in n."
    ),
    summary="Messages-to-accuracy: geographic rendezvous vs local gossip.",
    default_seed=43,
    provider=e11_measurements,
    tables=(_e11_table,),
    findings=_e11_findings,
    checks=(_e11_check_exponent, _e11_check_growth),
)


# ----------------------------------------------------------------------
# E12 — multi-cut generalization on chains of cliques
# ----------------------------------------------------------------------


def _e12_table(ctx: ReportContext) -> Table:
    table = Table(
        ["clique size", "n", "T_av vanilla", "T_av multi-cut A", "speedup"],
        title=f"E12: chain of {ctx.data['k']} cliques, single bridges",
    )
    for row in ctx.data["rows"]:
        table.add_row(
            [row["clique_size"], row["n"], row["vanilla"], row["multi"],
             row["vanilla"] / max(row["multi"], 1e-9)]
        )
    return table


def _e12_exponents(ctx: ReportContext) -> "tuple[float, float]":
    def compute():
        sizes = [row["clique_size"] for row in ctx.data["rows"]]
        vanilla = fit_power_law(
            sizes, [row["vanilla"] for row in ctx.data["rows"]]
        )[0]
        multi = fit_power_law(
            sizes, [row["multi"] for row in ctx.data["rows"]]
        )[0]
        return vanilla, multi

    return ctx.memo("e12_exponents", compute)


def _e12_findings(ctx: ReportContext) -> dict:
    vanilla, multi = _e12_exponents(ctx)
    return {
        "vanilla_exponent_in_clique_size": vanilla,
        "multi_cut_exponent_in_clique_size": multi,
    }


def _e12_check_detection(ctx: ReportContext) -> "tuple[str, bool, str]":
    return (
        "spectral clustering recovers the planted chain structure",
        ctx.data["detection_ok"],
        f"recursive bisection found the {ctx.data['k']} cliques",
    )


def _e12_check_converges(ctx: ReportContext) -> "tuple[str, bool, str]":
    return (
        "multi-cut A converges on every instance",
        all(math.isfinite(row["multi"]) for row in ctx.data["rows"]),
        "no censored quantile",
    )


def _e12_check_scaling(ctx: ReportContext) -> "tuple[str, bool, str]":
    vanilla, multi = _e12_exponents(ctx)
    return (
        "multi-cut A scales better in clique size than vanilla",
        multi < vanilla - 0.3,
        f"exponents: multi-cut {multi:.2f} vs vanilla {vanilla:.2f}",
    )


def _e12_check_wins(ctx: ReportContext) -> "tuple[str, bool, str]":
    last = ctx.data["rows"][-1]
    return (
        "multi-cut A wins at the largest size",
        last["vanilla"] > 1.5 * last["multi"],
        f"{last['vanilla']:.3g} vs {last['multi']:.3g}",
    )


E12 = ReportSpec(
    experiment_id="E12",
    title=lambda ctx: f"Multi-cut extension: chain of {ctx.data['k']} cliques",
    paper_claim=(
        "Extension beyond the paper (its single-cut assumption is the "
        "natural thing to relax): one designated edge per adjacent "
        "cluster pair, pairwise harmonic gains. Cluster means then mix "
        "like vanilla gossip on the quotient path, so the advantage "
        "over convex gossip should persist and scale."
    ),
    summary="k sparse cuts at once: the multi-cluster extension of A.",
    default_seed=47,
    provider=e12_measurements,
    tables=(_e12_table,),
    findings=_e12_findings,
    checks=(
        _e12_check_detection,
        _e12_check_converges,
        _e12_check_scaling,
        _e12_check_wins,
    ),
)


# ----------------------------------------------------------------------
# E13 — failure injection: the designated edge dies (sweep-backed)
# ----------------------------------------------------------------------

_E13_LABELS = {
    "vanilla_failing": "vanilla (3 bridges, 1 dies)",
    "algorithm_a_failing": "algorithm A (plain)",
    "resilient_failing": "algorithm A (resilient failover)",
    "vanilla_lossy": "vanilla (30% message loss, no deaths)",
    "vanilla_healthy": "vanilla (healthy baseline)",
}


def _e13_series(ctx: ReportContext) -> dict:
    def compute():
        result = ctx.sweep("E13")
        by_config = {}
        for config in result.axes["config"]:
            point = result.point(config=config)
            by_config[str(config)] = point
        half = int(result.points[0].params["half"])
        return {"half": half, "points": by_config}

    return ctx.memo("e13_series", compute)


def _e13_table(ctx: ReportContext) -> Table:
    from repro.experiments.specs_sweeps import E13_DEATH_TIME

    series = _e13_series(ctx)
    table = Table(
        ["configuration", "T_av", "outcome"],
        title=f"E13: dumbbell-with-3-bridges (n = {2 * series['half']}), "
        f"e_c dies at t = {E13_DEATH_TIME:g}",
    )
    for config, point in series["points"].items():
        outcome = "stalls forever" if point.is_censored else "converges"
        cell = "censored" if point.is_censored else f"{point.estimate:.4g}"
        table.add_row([_E13_LABELS.get(config, config), cell, outcome])
    return table


def _e13_findings(ctx: ReportContext) -> dict:
    points = _e13_series(ctx)["points"]
    healthy = points["vanilla_healthy"].estimate
    return {
        "vanilla_healthy_tav": healthy,
        "lossy_slowdown": points["vanilla_lossy"].estimate / healthy,
    }


def _e13_check_stalls(ctx: ReportContext) -> "tuple[str, bool, str]":
    points = _e13_series(ctx)["points"]
    return (
        "plain Algorithm A stalls when e_c dies",
        points["algorithm_a_failing"].is_censored,
        "all cross-cut progress was funneled through the dead link",
    )


def _e13_check_failover(ctx: ReportContext) -> "tuple[str, bool, str]":
    point = _e13_series(ctx)["points"]["resilient_failing"]
    return (
        "the resilient variant converges through failover",
        not point.is_censored,
        f"T_av = {point.estimate:.3g}",
    )


def _e13_check_vanilla(ctx: ReportContext) -> "tuple[str, bool, str]":
    point = _e13_series(ctx)["points"]["vanilla_failing"]
    return (
        "vanilla survives the death (it uses all bridges)",
        not point.is_censored,
        f"T_av = {point.estimate:.3g}",
    )


def _e13_check_slowdown(ctx: ReportContext) -> "tuple[str, bool, str]":
    points = _e13_series(ctx)["points"]
    slowdown = (
        points["vanilla_lossy"].estimate / points["vanilla_healthy"].estimate
    )
    # Independent replicate streams per sweep point (no common random
    # numbers), so the band is wider than the thinning prediction alone.
    return (
        "30% tick loss slows vanilla by ~1/0.7 (Poisson thinning)",
        1.0 <= slowdown <= 2.6,
        f"measured slowdown {slowdown:.2f} (thinning predicts ~1.43)",
    )


E13 = ReportSpec(
    experiment_id="E13",
    title="Failure injection: designated cut edge dies at t = 2",
    paper_claim=(
        "Operational corollary of the paper's design: Algorithm A "
        "funnels all cross-cut progress through e_c, so losing that "
        "one link stalls it forever even though two other bridges "
        "remain; a heartbeat-failover variant recovers, and plain "
        "convex gossip (which uses all bridges) merely slows down."
    ),
    summary="Algorithm A's single point of failure, and the failover fix.",
    default_seed=53,
    sweeps=("E13",),
    tables=(_e13_table,),
    findings=_e13_findings,
    checks=(
        _e13_check_stalls,
        _e13_check_failover,
        _e13_check_vanilla,
        _e13_check_slowdown,
    ),
)


# ----------------------------------------------------------------------
# E14 — bandwidth vs algorithm: boosting the cut edge's clock rate
# ----------------------------------------------------------------------


def _e14_table(ctx: ReportContext) -> Table:
    data = ctx.data
    table = Table(
        ["cut clock rate b", "T_av vanilla (boosted)", "vs b=1"],
        title=f"E14: clique pair n = {2 * data['half']}, one bridge",
    )
    baseline = data["boosted_times"][0]
    for boost, tav in zip(data["boosts"], data["boosted_times"]):
        table.add_row([boost, tav, baseline / tav])
    table.add_row(
        ["algorithm A @ rate 1", data["a_tav"],
         baseline / max(data["a_tav"], 1e-9)]
    )
    return table


def _e14_findings(ctx: ReportContext) -> dict:
    data = ctx.data
    return {
        "speedup_at_first_boost": (
            data["boosted_times"][0] / data["boosted_times"][1]
        ),
        "algorithm_a_equivalent_boost": (
            data["boosted_times"][0] / max(data["a_tav"], 1e-9)
        ),
    }


def _e14_check_linear(ctx: ReportContext) -> "tuple[str, bool, str]":
    data = ctx.data
    gain_small = data["boosted_times"][0] / data["boosted_times"][1]
    boost_small = data["boosts"][1] / data["boosts"][0]
    return (
        "moderate boosts pay off near-linearly",
        0.3 * boost_small <= gain_small <= 1.5 * boost_small,
        f"boost x{boost_small:g} bought x{gain_small:.1f}",
    )


def _e14_check_saturation(ctx: ReportContext) -> "tuple[str, bool, str]":
    data = ctx.data
    total_gain = data["boosted_times"][0] / data["boosted_times"][-1]
    total_boost = data["boosts"][-1] / data["boosts"][0]
    return (
        "boost returns saturate at the internal-mixing floor",
        total_gain < 0.8 * total_boost,
        f"x{total_boost:g} rate bought only x{total_gain:.1f}",
    )


def _e14_check_equivalent(ctx: ReportContext) -> "tuple[str, bool, str]":
    data = ctx.data
    equivalent = data["boosted_times"][0] / max(data["a_tav"], 1e-9)
    return (
        "algorithm A at rate 1 matches a large bandwidth multiplier",
        equivalent >= 2.0,
        f"equivalent to x{equivalent:.1f} cut bandwidth",
    )


E14 = ReportSpec(
    experiment_id="E14",
    title="Bandwidth-vs-algorithm: boosted cut clock vs non-convex swap",
    paper_claim=(
        "Theorem 1's bound counts cut ticks, so multiplying the cut "
        "edge's clock rate by b buys a ~b-fold convex speedup (until "
        "internal mixing dominates); Algorithm A achieves the "
        "bottleneck-free time at rate 1."
    ),
    summary="Is a faster cut clock a substitute for the non-convex update?",
    default_seed=59,
    provider=e14_measurements,
    tables=(_e14_table,),
    findings=_e14_findings,
    checks=(
        _e14_check_linear,
        _e14_check_saturation,
        _e14_check_equivalent,
    ),
)

"""The E1-E14 report catalogue, keyed by experiment id."""

from __future__ import annotations

from repro.reports import (
    catalog_analysis,
    catalog_baselines,
    catalog_extensions,
    catalog_scaling,
)
from repro.reports.model import ReportSpec

#: Every declared report, in experiment order.  The CLI's experiment
#: registry (:mod:`repro.experiments.specs`) and the ``verify-claims``
#: gate both read this table; there is no other report path.
REPORT_SPECS: "dict[str, ReportSpec]" = {
    spec.experiment_id: spec
    for spec in (
        catalog_scaling.E1,
        catalog_scaling.E2,
        catalog_scaling.E3,
        catalog_scaling.E4,
        catalog_scaling.E5,
        catalog_analysis.E6,
        catalog_analysis.E7,
        catalog_baselines.E8,
        catalog_baselines.E9,
        catalog_baselines.E10,
        catalog_extensions.E11,
        catalog_extensions.E12,
        catalog_extensions.E13,
        catalog_extensions.E14,
    )
}

"""E6-E7 report specs: the proof machinery, assembled from provider data.

The measurements live in :mod:`repro.experiments.specs_analysis`
(:func:`e6_measurements` / :func:`e7_measurements`); these specs turn
the plain-data payloads into the tables, figures, findings and checks
the legacy report functions used to build inline.
"""

from __future__ import annotations

import math

import numpy as np

from repro.experiments.specs_analysis import e6_measurements, e7_measurements
from repro.reports.model import ReportContext, ReportSpec
from repro.util.ascii_plot import line_plot
from repro.util.tables import Table


# ----------------------------------------------------------------------
# E6 — stochastic dominance and the dominating walk
# ----------------------------------------------------------------------


def _e6_increments_table(ctx: ReportContext) -> Table:
    data = ctx.data
    log_n = data["log_n"]
    steady = data["steady"]
    table = Table(
        ["quantity", "measured", "paper requirement"],
        title=f"E6a: per-epoch log-variance increments "
        f"(dumbbell n={data['n']}, L={data['epoch']}, "
        f"{data['replicates']} replicates)",
    )
    frac_above = float(np.mean([d >= -1.5 * log_n for d in steady]))
    table.add_row(
        ["max transient D_1", max(data["transient"]),
         f"<= 2 ln n = {2 * log_n:.2f}"]
    )
    table.add_row(["max steady D_2", max(steady), f"<= ln n = {log_n:.2f}"])
    table.add_row(
        ["P[D_2 >= -(3/2) ln n]", frac_above, "<= 1/2 (ineq. 8 analog)"]
    )
    table.add_row(
        ["median steady D_2", float(np.median(steady)),
         f"<< -(3/2) ln n = {-1.5 * log_n:.2f}"]
    )
    return table


def _e6_walk_figure(ctx: ReportContext) -> str:
    walk = ctx.data["walk"]
    dominating = ctx.data["dominating"]
    return line_plot(
        {
            "W_k (steady log-var walk)": (list(range(len(walk))), list(walk)),
            "W~_k (dominating)": (
                list(range(len(dominating))),
                list(dominating),
            ),
        },
        title="E6b: coupled walks - W_k must stay below W~_k",
    )


def _e6_operators_table(ctx: ReportContext) -> Table:
    data = ctx.data
    table = Table(
        ["quantity", "measured", "status"],
        title=f"E6c: epoch operator norms ({data['n_operator_epochs']} "
        "epochs) - fidelity note F5",
    )
    table.add_row(
        ["max ||A_k||", data["max_norm"],
         f"Eq. 12 requires <= n = {data['n']}"]
    )
    table.add_row(
        ["P[||A_k||^2 >= n^-3] (worst-case reading)",
         data["lemma1_worst_case"],
         "Lemma 1 claims <= 1/2; FALSE as operator statement "
         "(post-swap spike direction) - trajectory version in E6a holds"]
    )
    return table


def _e6_tail_table(ctx: ReportContext) -> Table:
    table = Table(
        ["s", "P[S_n >= s sqrt(n)] (MC)", "Hoeffding exp(-s^2/2)"],
        title="E6d: Theorem-3 sub-Gaussian tail of the simple walk (n=400)",
    )
    for row in ctx.data["tails"]:
        table.add_row([row["s"], row["mc"], row["bound"]])
    return table


def _e6_settle_table(ctx: ReportContext) -> Table:
    table = Table(
        ["n", "settling time t0 (epochs)"],
        title="E6e: dominating-walk settling time below -2 "
        "(bounded across n = Theorem 2's epoch count)",
    )
    for row in ctx.data["settle"]:
        table.add_row([row["n"], row["t0"]])
    return table


def _e6_findings(ctx: ReportContext) -> dict:
    data = ctx.data
    log_n = data["log_n"]
    frac_above = float(
        np.mean([d >= -1.5 * log_n for d in data["steady"]])
    )
    return {
        "max_steady_increment": max(data["steady"]),
        "steady_fraction_above_-1.5logn": frac_above,
        "coupling_violations": data["violations"],
        "lemma1_worst_case_probability": data["lemma1_worst_case"],
    }


def _e6_check_increments(ctx: ReportContext) -> "tuple[str, bool, str]":
    max_steady = max(ctx.data["steady"])
    log_n = ctx.data["log_n"]
    return (
        "steady increments bounded by +ln n (Eq.-12 trajectory analog)",
        max_steady <= log_n + 1e-9,
        f"max D_2 = {max_steady:.2f} vs ln n = {log_n:.2f}",
    )


def _e6_check_fraction(ctx: ReportContext) -> "tuple[str, bool, str]":
    log_n = ctx.data["log_n"]
    frac_above = float(
        np.mean([d >= -1.5 * log_n for d in ctx.data["steady"]])
    )
    return (
        "steady increments below -(3/2) ln n at least half the time",
        frac_above <= 0.5,
        f"measured fraction above: {frac_above:.3f}",
    )


def _e6_check_coupling(ctx: ReportContext) -> "tuple[str, bool, str]":
    violations = ctx.data["violations"]
    return (
        "pathwise coupling: W_k <= W~_k throughout",
        violations == 0,
        f"{violations} violations over {len(ctx.data['walk'])} steps",
    )


def _e6_check_norms(ctx: ReportContext) -> "tuple[str, bool, str]":
    max_norm = ctx.data["max_norm"]
    n = ctx.data["n"]
    return (
        "Eq. 12: every ||A_k|| <= n",
        max_norm <= n + 1e-9,
        f"max {max_norm:.3g} vs n = {n}",
    )


def _e6_check_tails(ctx: ReportContext) -> "tuple[str, bool, str]":
    walk_paths = ctx.data["walk_paths"]
    ok = True
    for row in ctx.data["tails"]:
        slack = 2.0 * math.sqrt(
            row["bound"] * (1 - row["bound"]) / walk_paths + 1e-12
        )
        ok = ok and row["mc"] <= row["bound"] + slack + 0.02
    return (
        "Theorem-3 tails within the sub-Gaussian envelope",
        ok,
        "empirical tails below exp(-s^2/2) + MC slack",
    )


def _e6_check_settling(ctx: ReportContext) -> "tuple[str, bool, str]":
    values = [row["t0"] for row in ctx.data["settle"]]
    return (
        "dominating-walk settling time is bounded and does not grow with n",
        max(values) <= 48.0 and values[-1] <= values[0] + 4.0,
        f"t0 across n: {[round(v, 1) for v in values]}",
    )


E6 = ReportSpec(
    experiment_id="E6",
    title="Stochastic dominance: log-variance epochs vs the dominating walk",
    paper_claim=(
        "Per epoch, log var X(T_k^+) moves by at most ~log n upward "
        "and by at least (3/2) log n downward with probability >= 1/2 "
        "(ineq. 8 / Lemma 1 / Eq. 12), so it is dominated pathwise by "
        "the walk with steps +log n / -(3/2) log n; that walk settles "
        "below -2 in O(1) epochs independent of n (via Theorem 3)."
    ),
    summary="Trajectory log-variance walk vs the paper's dominating walk.",
    default_seed=23,
    provider=e6_measurements,
    tables=(
        _e6_increments_table,
        _e6_operators_table,
        _e6_tail_table,
        _e6_settle_table,
    ),
    figures=(_e6_walk_figure,),
    findings=_e6_findings,
    checks=(
        _e6_check_increments,
        _e6_check_fraction,
        _e6_check_coupling,
        _e6_check_norms,
        _e6_check_tails,
        _e6_check_settling,
    ),
)


# ----------------------------------------------------------------------
# E7 — within-epoch potential contraction (inequalities 4-8)
# ----------------------------------------------------------------------


def _e7_rows(ctx: ReportContext) -> "list[dict]":
    def compute():
        rows = []
        for raw in ctx.data["rows"]:
            n = raw["n"]
            rows.append(
                {
                    "n": n,
                    "epoch": raw["epoch"],
                    "median_sigma": float(np.median(raw["sigma_ratios"])),
                    "median_var": float(np.median(raw["var_steady"])),
                    "median_transient": float(np.median(raw["var_transient"])),
                    "max_mu_margin": float(np.max(raw["mu_margins"])),
                }
            )
        return rows

    return ctx.memo("e7_rows", compute)


def _e7_table(ctx: ReportContext) -> Table:
    table = Table(
        ["n", "epoch L", "median sigma contraction (e1)", "n^-3",
         "median var contraction (e2)", "n^-4",
         "max |mu_end|/(n^1.5 sigma_pre)", "median transient var growth (e1)"],
        title="E7: epoch contraction statistics (dumbbells)",
    )
    for row in _e7_rows(ctx):
        n = row["n"]
        table.add_row(
            [n, row["epoch"], row["median_sigma"], n**-3.0,
             row["median_var"], n**-4.0, row["max_mu_margin"],
             row["median_transient"]]
        )
    return table


def _e7_check_sigma(ctx: ReportContext) -> "tuple[str, bool, str]":
    return (
        "median within-epoch sigma contraction beats n^-3",
        all(r["median_sigma"] <= r["n"] ** -3.0 for r in _e7_rows(ctx)),
        "ineq. (4) asks for n^-6 w.p. 1 - 1/(4n); the median comfortably "
        "clears n^-3 at these sizes",
    )


def _e7_check_var(ctx: ReportContext) -> "tuple[str, bool, str]":
    return (
        "median steady-state variance contraction beats n^-4",
        all(r["median_var"] <= r["n"] ** -4.0 for r in _e7_rows(ctx)),
        "ineq. (8), measured on epoch 2",
    )


def _e7_check_mu(ctx: ReportContext) -> "tuple[str, bool, str]":
    return (
        "post-swap imbalance obeys ineq. (7) up to a small constant",
        all(r["max_mu_margin"] <= 3.0 for r in _e7_rows(ctx)),
        "|mu(T+)| <= 3 * n^(3/2) * sigma(T-) across all replicates",
    )


def _e7_check_transient(ctx: ReportContext) -> "tuple[str, bool, str]":
    return (
        "the non-convex transient is real (first epoch can inflate variance)",
        any(r["median_transient"] > 1.0 for r in _e7_rows(ctx)),
        "the paper's 'skew the values in the short term', observed",
    )


E7 = ReportSpec(
    experiment_id="E7",
    title="Within-epoch contraction of sigma and variance",
    paper_claim=(
        "Ineq. (4): sigma shrinks by poly(n) within an epoch w.h.p.; "
        "Ineq. (7): the post-swap imbalance is <= n^(3/2) "
        "sigma(T_{k+1}^-); Ineq. (8): variance contracts by n^-4 per "
        "epoch w.h.p. (measured from the second epoch on; the first "
        "is the documented non-convex transient)."
    ),
    summary="Measure sigma/mu/variance across epochs of Algorithm A.",
    default_seed=29,
    provider=e7_measurements,
    tables=(_e7_table,),
    checks=(
        _e7_check_sigma,
        _e7_check_var,
        _e7_check_mu,
        _e7_check_transient,
    ),
)

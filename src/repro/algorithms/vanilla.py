"""Vanilla gossip: replace both endpoints by their arithmetic mean.

This is the paper's reference algorithm — the one whose per-subgraph
averaging times ``Tvan(G1)``, ``Tvan(G2)`` parameterize Algorithm A — and
the canonical member of the convex class ``C`` (``alpha = 1/2``).  It is
the natural subject of Theorem 1's ``Omega(n1/|E12|)`` lower bound.
"""

from __future__ import annotations

from typing import Sequence

from repro.algorithms.base import GossipAlgorithm


class VanillaGossip(GossipAlgorithm):
    """``x_u, x_v <- (x_u + x_v) / 2`` on every tick.

    Sum-conserving, variance-monotone: each tick removes
    ``(x_u - x_v)^2 / 2`` from the sum of squared deviations.
    """

    name = "vanilla"
    conserves_sum = True
    monotone_variance = True

    def on_tick(
        self,
        edge_id: int,
        u: int,
        v: int,
        time: float,
        tick_count: int,
        values: "Sequence[float]",
    ) -> "tuple[float, float] | None":
        mean = 0.5 * (values[u] + values[v])
        return mean, mean

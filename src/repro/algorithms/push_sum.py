"""Push-sum (sum-weight) gossip, an extension baseline outside class ``C``.

Push-sum (Kempe-Dobra-Gehrke style) tracks per-node mass ``s_i`` and weight
``w_i``; the running estimate is ``x_i = s_i / w_i``.  On a tick of edge
``(u, v)`` a random one of the two endpoints pushes half of its ``(s, w)``
to the other.  The *estimates* are not produced by convex pairwise updates
on ``x`` — push-sum is not a member of class ``C`` — yet mass still crosses
the cut only one push at a time, so it remains cut-limited; benchmark E8
measures it next to Algorithm A to show "outside C" alone is not enough.

Auxiliary state is owned by the algorithm; the engine's value vector holds
the estimates (so variance metrics apply unchanged).  Estimates do not
conserve their sum exactly (the underlying masses ``s`` do), hence
``conserves_sum = False``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.algorithms.base import GossipAlgorithm
from repro.graphs.graph import Graph


class PushSumGossip(GossipAlgorithm):
    """Pairwise push-sum with random push direction per tick."""

    name = "push-sum"
    conserves_sum = False
    monotone_variance = False

    def __init__(self) -> None:
        self._mass: "np.ndarray | None" = None
        self._weight: "np.ndarray | None" = None

    def setup(
        self, graph: Graph, values: np.ndarray, rng: np.random.Generator
    ) -> None:
        super().setup(graph, values, rng)
        self._mass = values.astype(np.float64).copy()
        self._weight = np.ones(graph.n_vertices, dtype=np.float64)

    def on_tick(
        self,
        edge_id: int,
        u: int,
        v: int,
        time: float,
        tick_count: int,
        values: "Sequence[float]",
    ) -> "tuple[float, float] | None":
        assert self._mass is not None and self._weight is not None
        if self._rng.random() < 0.5:
            sender, receiver = u, v
        else:
            sender, receiver = v, u
        half_mass = 0.5 * self._mass[sender]
        half_weight = 0.5 * self._weight[sender]
        self._mass[sender] = half_mass
        self._weight[sender] = half_weight
        self._mass[receiver] += half_mass
        self._weight[receiver] += half_weight
        estimate_u = self._mass[u] / self._weight[u]
        estimate_v = self._mass[v] / self._weight[v]
        return float(estimate_u), float(estimate_v)

    def total_mass(self) -> float:
        """Total conserved mass ``sum(s)`` (equals ``sum(x(0))`` forever)."""
        if self._mass is None:
            raise RuntimeError("setup() has not been called")
        return float(self._mass.sum())

"""Geographic gossip on geometric networks (the paper's reference [6]).

The paper's introduction anchors its non-convexity theme in the author's
earlier result (Narayanan, PODC 2007): on geometric random graphs,
*geographic gossip* — averaging random node pairs found by greedy
position-based routing, instead of adjacent pairs — cuts the total number
of updates needed for averaging.  This module implements that protocol as
a library baseline so the comparison is runnable:

* on each edge tick, with probability ``initiation_probability`` one
  endpoint initiates a *long-range* exchange: it draws a uniformly random
  target node, routes to it greedily through the geometry, and the two
  endpoints of the route average (relay nodes are unchanged — the
  rendezvous abstraction of geographic gossip);
* otherwise the tick is a plain local vanilla update.

Cost accounting is the point of [6]: a local update costs 1 message, a
long-range exchange costs its route length (hops there; the averaged
value returns along the same route).  :attr:`GeographicGossip.message_count`
accumulates the total so experiments can compare *messages-to-accuracy*,
not just wall-clock time.  Routing voids (greedy dead ends) fall back to
a local update, as in the original protocol family.

Fidelity note: [6] additionally uses affine (non-convex) combinations
along the route under partial centralized control to reach ``n^{1+o(1)}``
updates; the routable-rendezvous version implemented here is its standard
substrate (Dimakis-Sarwate-Wainwright style) and is what the experiment
E11 measures.  The substitution is recorded in DESIGN.md section 2.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.algorithms.base import GossipAlgorithm
from repro.errors import AlgorithmError
from repro.graphs.geometric import GeometricNetwork
from repro.graphs.graph import Graph


class GeographicGossip(GossipAlgorithm):
    """Geographic (rendezvous) gossip over a positioned network."""

    conserves_sum = True
    monotone_variance = True  # every update is a pairwise mean

    def __init__(
        self,
        network: GeometricNetwork,
        *,
        initiation_probability: float = 0.3,
    ) -> None:
        if not 0.0 <= initiation_probability <= 1.0:
            raise AlgorithmError(
                f"initiation_probability must be in [0, 1], "
                f"got {initiation_probability}"
            )
        self.network = network
        self.initiation_probability = float(initiation_probability)
        self.name = f"geographic(q={self.initiation_probability:g})"
        self._message_count = 0
        self._long_range_exchanges = 0
        self._void_fallbacks = 0

    @property
    def message_count(self) -> int:
        """Total messages since setup (1 per local update, hops per route)."""
        return self._message_count

    @property
    def long_range_exchanges(self) -> int:
        """Completed long-range exchanges since setup."""
        return self._long_range_exchanges

    @property
    def void_fallbacks(self) -> int:
        """Routing voids that degraded into local updates."""
        return self._void_fallbacks

    def setup(
        self, graph: Graph, values: np.ndarray, rng: np.random.Generator
    ) -> None:
        if graph != self.network.graph:
            raise AlgorithmError(
                "GeographicGossip was configured for a different network"
            )
        super().setup(graph, values, rng)
        self._message_count = 0
        self._long_range_exchanges = 0
        self._void_fallbacks = 0

    def on_tick(
        self,
        edge_id: int,
        u: int,
        v: int,
        time: float,
        tick_count: int,
        values: "Sequence[float]",
    ):
        if self._rng.random() >= self.initiation_probability:
            self._message_count += 1
            mean = 0.5 * (values[u] + values[v])
            return mean, mean
        initiator = u if self._rng.random() < 0.5 else v
        target = int(self._rng.integers(self.network.graph.n_vertices))
        if target == initiator:
            self._message_count += 1
            mean = 0.5 * (values[u] + values[v])
            return mean, mean
        route = self.network.greedy_route(initiator, target)
        if route is None:
            self._void_fallbacks += 1
            self._message_count += 1
            mean = 0.5 * (values[u] + values[v])
            return mean, mean
        hops = len(route) - 1
        # Out along the route, and the averaged value travels back.
        self._message_count += 2 * hops
        self._long_range_exchanges += 1
        mean = 0.5 * (values[initiator] + values[target])
        return [(initiator, mean), (target, mean)]

    def describe(self) -> dict:
        return {
            "name": self.name,
            "initiation_probability": self.initiation_probability,
            "message_count": self._message_count,
            "long_range_exchanges": self._long_range_exchanges,
            "void_fallbacks": self._void_fallbacks,
        }

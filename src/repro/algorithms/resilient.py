"""A failure-resilient variant of Algorithm A.

The paper's Algorithm A funnels *all* cross-cut progress through one
designated edge ``e_c`` — operationally a single point of failure: if that
link dies (see :class:`repro.clocks.unreliable.FailingEdgeClocks`), the
two sides never exchange mass again and the algorithm silently stalls.
Benchmark E13 measures exactly that.

:class:`ResilientSparseCutGossip` adds the obvious recovery rule:

* the designated edge's endpoints emit an implicit heartbeat (its ticks);
* when another cut edge ticks and observes that the designated edge has
  been silent for longer than ``silence_timeout`` (default: three epochs'
  worth of expected ticks), the ticking edge *takes over* as designated —
  a first-to-tick election, deterministic given the tick sequence;
* the new designated edge starts a fresh epoch counter (its first swap
  happens ``epoch_length`` of its own ticks later, preserving the mixing
  guarantee of inequality (4)).

Decentralization assumption (documented, matching the paper's level of
abstraction): cut-edge endpoints can observe the designated edge's
heartbeat.  On a sparse cut this is a constant number of nodes listening
to one link, the same "local knowledge of the cut" Algorithm A itself
already assumes (every cut edge must know whether it is ``e_c``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.algorithms.nonconvex import NonConvexSparseCutGossip
from repro.errors import AlgorithmError
from repro.graphs.graph import Graph
from repro.graphs.partition import Partition


class ResilientSparseCutGossip(NonConvexSparseCutGossip):
    """Algorithm A with designated-edge failover.

    Parameters
    ----------
    partition, epoch_length, designated_edge, gain, oracle_means:
        As for :class:`NonConvexSparseCutGossip`.
    silence_timeout:
        Take over after the designated edge has been silent this long
        (absolute time).  Defaults to ``3 * epoch_length`` — three times
        the expected gap between its ticks... times the epoch; generous
        enough that a healthy rate-1 clock is silent that long with
        probability ``exp(-3 L)``.
    """

    def __init__(
        self,
        partition: Partition,
        *,
        epoch_length: int,
        designated_edge: "int | None" = None,
        gain: "str | float" = "exact",
        oracle_means: bool = False,
        silence_timeout: "float | None" = None,
    ) -> None:
        super().__init__(
            partition,
            epoch_length=epoch_length,
            designated_edge=designated_edge,
            gain=gain,
            oracle_means=oracle_means,
        )
        if silence_timeout is None:
            silence_timeout = 3.0 * float(epoch_length)
        if silence_timeout <= 0:
            raise AlgorithmError(
                f"silence_timeout must be positive, got {silence_timeout}"
            )
        self.silence_timeout = float(silence_timeout)
        self.name = f"algorithm-A-resilient(gain={self._gain_label()})"
        self._initial_designated = self.designated_edge
        self._orient_designated(self.designated_edge)
        self._last_heartbeat = 0.0
        self._ticks_since_designation = 0
        self._takeover_count = 0

    def _orient_designated(self, edge_id: int) -> None:
        """Point the swap endpoints at the given cut edge."""
        graph = self.partition.graph
        u, v = graph.edge_endpoints(edge_id)
        if self.partition.side_of(u) == 0:
            self._endpoint_v1, self._endpoint_v2 = u, v
        else:
            self._endpoint_v1, self._endpoint_v2 = v, u
        self.designated_edge = edge_id

    @property
    def takeover_count(self) -> int:
        """How many failovers have happened since setup."""
        return self._takeover_count

    def setup(
        self, graph: Graph, values: np.ndarray, rng: np.random.Generator
    ) -> None:
        super().setup(graph, values, rng)
        self._orient_designated(self._initial_designated)
        self._last_heartbeat = 0.0
        self._ticks_since_designation = 0
        self._takeover_count = 0

    def on_tick(
        self,
        edge_id: int,
        u: int,
        v: int,
        time: float,
        tick_count: int,
        values: "Sequence[float]",
    ) -> "tuple[float, float] | None":
        if not self._is_cut_edge[edge_id]:
            mean = 0.5 * (values[u] + values[v])
            return mean, mean
        if edge_id != self.designated_edge:
            # A live cut edge observing prolonged silence takes over.
            if time - self._last_heartbeat > self.silence_timeout:
                self._orient_designated(edge_id)
                self._takeover_count += 1
                self._last_heartbeat = time
                self._ticks_since_designation = 1
            return None
        # Heartbeat from the designated edge.
        self._last_heartbeat = time
        self._ticks_since_designation += 1
        if self._ticks_since_designation % self.epoch_length != 0:
            return None
        self._swap_count += 1
        a, b = self._endpoint_v1, self._endpoint_v2
        if self.oracle_means:
            snapshot = np.asarray(values, dtype=np.float64)
            delta = float(
                snapshot[self.partition.vertices_2].mean()
                - snapshot[self.partition.vertices_1].mean()
            )
        else:
            delta = float(values[b] - values[a])
        transfer = self.gain * delta
        new_a = float(values[a]) + transfer
        new_b = float(values[b]) - transfer
        if u == a:
            return new_a, new_b
        return new_b, new_a

    def describe(self) -> dict:
        info = super().describe()
        info["name"] = self.name
        info["silence_timeout"] = self.silence_timeout
        info["takeover_count"] = self._takeover_count
        return info

"""Members of the paper's convex class ``C``.

Class ``C`` (Definition 2) contains the algorithms whose tick updates are

    ``x_i(t+) = alpha * x_i(t-) + beta * x_j(t-)``
    ``x_j(t+) = alpha * x_j(t-) + beta * x_i(t-)``

with ``alpha in [0, 1]`` and ``alpha + beta = 1``.  Every member is
sum-conserving and variance-monotone (the update matrix is symmetric
doubly stochastic), and every member is subject to Theorem 1's
``Omega(min(n1, n2) / |E12|)`` lower bound.  These implementations exist
to probe that bound across the class, not just at ``alpha = 1/2``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.algorithms.base import GossipAlgorithm
from repro.graphs.graph import Graph
from repro.util.validation import check_probability


class ConvexGossip(GossipAlgorithm):
    """Fixed-``alpha`` symmetric convex gossip.

    ``alpha = 1/2`` reproduces vanilla gossip; ``alpha`` closer to 1 is
    "lazier" (each tick moves less mass), scaling the averaging time by
    roughly ``1 / (2 alpha (1 - alpha)) * (1/2)`` relative to vanilla but
    never escaping the Theorem-1 bottleneck.
    """

    conserves_sum = True
    monotone_variance = True

    def __init__(self, alpha: float = 0.5) -> None:
        check_probability(alpha, "alpha")
        self.alpha = float(alpha)
        self.name = f"convex(alpha={self.alpha:g})"

    def on_tick(
        self,
        edge_id: int,
        u: int,
        v: int,
        time: float,
        tick_count: int,
        values: "Sequence[float]",
    ) -> "tuple[float, float] | None":
        a = self.alpha
        b = 1.0 - a
        x_u = values[u]
        x_v = values[v]
        return a * x_u + b * x_v, a * x_v + b * x_u

    def describe(self) -> dict:
        return {"name": self.name, "alpha": self.alpha}


class RandomConvexGossip(GossipAlgorithm):
    """Convex gossip with ``alpha`` drawn fresh per tick from ``[lo, hi]``.

    Still inside class ``C`` (the definition constrains each update, not
    the sequence), so still bound by Theorem 1.  Exists to show the lower
    bound is about the *class*, not one fixed mixing weight.
    """

    conserves_sum = True
    monotone_variance = True

    def __init__(self, low: float = 0.0, high: float = 1.0) -> None:
        check_probability(low, "low")
        check_probability(high, "high")
        if low > high:
            raise ValueError(f"low must be <= high, got ({low}, {high})")
        self.low = float(low)
        self.high = float(high)
        self.name = f"convex(alpha~U[{self.low:g},{self.high:g}])"

    def setup(
        self, graph: Graph, values: np.ndarray, rng: np.random.Generator
    ) -> None:
        super().setup(graph, values, rng)

    def on_tick(
        self,
        edge_id: int,
        u: int,
        v: int,
        time: float,
        tick_count: int,
        values: "Sequence[float]",
    ) -> "tuple[float, float] | None":
        a = self._rng.uniform(self.low, self.high)
        b = 1.0 - a
        x_u = values[u]
        x_v = values[v]
        return a * x_u + b * x_v, a * x_v + b * x_u

    def describe(self) -> dict:
        return {"name": self.name, "low": self.low, "high": self.high}

"""Averaging algorithms: the paper's Algorithm A, class-C members, baselines."""

from repro.algorithms.base import GossipAlgorithm
from repro.algorithms.vanilla import VanillaGossip
from repro.algorithms.convex import (
    ConvexGossip,
    RandomConvexGossip,
)
from repro.algorithms.nonconvex import NonConvexSparseCutGossip
from repro.algorithms.resilient import ResilientSparseCutGossip
from repro.algorithms.geographic import GeographicGossip
from repro.algorithms.two_timescale import TwoTimescaleGossip
from repro.algorithms.push_sum import PushSumGossip
from repro.algorithms.second_order import (
    AsyncSecondOrderGossip,
    SecondOrderDiffusionSync,
    optimal_second_order_beta,
)
from repro.algorithms.registry import available_algorithms, make_algorithm

__all__ = [
    "GossipAlgorithm",
    "VanillaGossip",
    "ConvexGossip",
    "RandomConvexGossip",
    "NonConvexSparseCutGossip",
    "ResilientSparseCutGossip",
    "GeographicGossip",
    "TwoTimescaleGossip",
    "PushSumGossip",
    "AsyncSecondOrderGossip",
    "SecondOrderDiffusionSync",
    "optimal_second_order_beta",
    "available_algorithms",
    "make_algorithm",
]

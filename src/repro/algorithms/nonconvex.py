"""Algorithm A: non-convex gossip for graphs with one sparse cut.

This is the paper's contribution (Section 1.0.1).  The graph comes with a
partition ``(V1, V2)`` (``n1 <= n2``) and a designated cut edge
``e_c = (v_a, v_b)`` with ``v_a in V1``, ``v_b in V2``.  On a tick of:

* an **internal** edge (both endpoints on one side): vanilla averaging —
  both endpoints move to their mean;
* a **cut edge other than** ``e_c``: no update (the cut is silenced so the
  designated edge's bookkeeping sees a clean schedule);
* the **designated edge** ``e_c``: nothing, except on every
  ``L``-th tick of ``e_c`` (``L = ceil(C * (Tvan(G1) + Tvan(G2)) * ln n)``,
  the *epoch length*), when the endpoints perform the non-convex swap

      ``x_a <- x_a + g * (x_b - x_a)``
      ``x_b <- x_b - g * (x_b - x_a)``

  with gain ``g`` far outside ``[0, 1]``.  The swap moves ``g * delta``
  units of mass across the cut in one shot — the whole point of the paper:
  a convex update can move only ``O(1)`` mass per cut tick, which is what
  Theorem 1's ``Omega(n1 / |E12|)`` bound counts.

Gain conventions (fidelity note F1 in DESIGN.md):

* ``gain="paper"`` — ``g = n1``, the literal constant in the paper.  After
  both sides remix internally the imbalance evolves as
  ``delta' = -(n1/n2) * delta``: convergent for unbalanced partitions,
  but a **perpetual oscillation** when ``n1 = n2``.
* ``gain="exact"`` (default) — ``g = n1 * n2 / n``, the harmonic gain that
  zeroes the post-remix imbalance exactly; this is the constant the
  paper's own inequality (7) requires, and it equals ``n1`` up to a factor
  ``n2/n in [1/2, 1)`` — same order, correct fixed point.
* a float — any explicit gain, for ablations.

The decentralized swap uses the *endpoint values* as proxies for the side
means (error controlled by the paper's inequality (3)); pass
``oracle_means=True`` to use the true side means instead — an idealized
variant used by the analysis benchmarks to isolate the proxy noise.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.algorithms.base import GossipAlgorithm
from repro.errors import AlgorithmError
from repro.graphs.graph import Graph
from repro.graphs.partition import Partition


class NonConvexSparseCutGossip(GossipAlgorithm):
    """The paper's Algorithm A.

    Parameters
    ----------
    partition:
        The sparse cut ``(V1, V2)``; both sides must be internally
        connected and the cut must be non-empty.
    epoch_length:
        ``L`` — the swap fires on every ``L``-th tick of the designated
        edge.  Computed by :func:`repro.core.epochs.epoch_length_ticks`
        from ``C``, ``Tvan(G1)``, ``Tvan(G2)``; must be >= 1.
    designated_edge:
        Edge id of ``e_c``; defaults to the lowest-id cut edge.  Must be a
        cut edge.
    gain:
        ``"exact"``, ``"paper"``, or an explicit float (see module
        docstring).
    oracle_means:
        If True, the swap reads the true side means instead of the
        endpoint values (idealized variant for analysis).
    """

    conserves_sum = True
    monotone_variance = False

    def __init__(
        self,
        partition: Partition,
        *,
        epoch_length: int,
        designated_edge: "int | None" = None,
        gain: "str | float" = "exact",
        oracle_means: bool = False,
    ) -> None:
        partition.require_connected_sides()
        if partition.cut_size == 0:
            raise AlgorithmError("Algorithm A needs at least one cut edge")
        if epoch_length < 1:
            raise AlgorithmError(
                f"epoch_length must be a positive integer, got {epoch_length}"
            )
        self.partition = partition
        self.epoch_length = int(epoch_length)
        self.oracle_means = bool(oracle_means)

        cut_ids = partition.cut_edge_ids
        if designated_edge is None:
            designated_edge = int(cut_ids[0])
        if designated_edge not in set(int(e) for e in cut_ids):
            raise AlgorithmError(
                f"designated edge {designated_edge} is not a cut edge of the partition"
            )
        self.designated_edge = int(designated_edge)

        self._gain_spec = gain
        self.gain = self._resolve_gain(gain, partition)
        self.name = f"algorithm-A(gain={self._gain_label()})"

        graph = partition.graph
        u, v = graph.edge_endpoints(self.designated_edge)
        if partition.side_of(u) == 0:
            self._endpoint_v1, self._endpoint_v2 = u, v
        else:
            self._endpoint_v1, self._endpoint_v2 = v, u
        self._is_cut_edge = np.zeros(graph.n_edges, dtype=bool)
        self._is_cut_edge[cut_ids] = True
        self._swap_count = 0

    @staticmethod
    def _resolve_gain(gain: "str | float", partition: Partition) -> float:
        n1, n2 = partition.n1, partition.n2
        n = n1 + n2
        if gain == "exact":
            return n1 * n2 / n
        if gain == "paper":
            return float(n1)
        if isinstance(gain, (int, float)) and not isinstance(gain, bool):
            if gain == 0:
                raise AlgorithmError("gain must be non-zero")
            return float(gain)
        raise AlgorithmError(
            f"gain must be 'exact', 'paper', or a non-zero number, got {gain!r}"
        )

    def _gain_label(self) -> str:
        if isinstance(self._gain_spec, str):
            return self._gain_spec
        return f"{self.gain:g}"

    @property
    def swap_count(self) -> int:
        """How many non-convex swaps have fired since the last setup."""
        return self._swap_count

    def setup(
        self, graph: Graph, values: np.ndarray, rng: np.random.Generator
    ) -> None:
        if graph is not self.partition.graph and graph != self.partition.graph:
            raise AlgorithmError(
                "Algorithm A was configured for a different graph than the "
                "one it is being run on"
            )
        super().setup(graph, values, rng)
        self._swap_count = 0

    def on_tick(
        self,
        edge_id: int,
        u: int,
        v: int,
        time: float,
        tick_count: int,
        values: "Sequence[float]",
    ) -> "tuple[float, float] | None":
        if not self._is_cut_edge[edge_id]:
            mean = 0.5 * (values[u] + values[v])
            return mean, mean
        if edge_id != self.designated_edge:
            return None
        # Paper: fire when k = -1 mod L, i.e. on ticks L, 2L, ... of e_c
        # (tick_count is 1-based).
        if tick_count % self.epoch_length != 0:
            return None
        self._swap_count += 1
        a, b = self._endpoint_v1, self._endpoint_v2
        if self.oracle_means:
            snapshot = np.asarray(values, dtype=np.float64)
            delta = float(
                snapshot[self.partition.vertices_2].mean()
                - snapshot[self.partition.vertices_1].mean()
            )
        else:
            delta = float(values[b] - values[a])
        transfer = self.gain * delta
        new_a = float(values[a]) + transfer
        new_b = float(values[b]) - transfer
        if u == a:
            return new_a, new_b
        return new_b, new_a

    def lockstep_parameters(self) -> dict:
        """The swap's constants as a vectorizable per-tick state machine.

        Algorithm A's ``on_tick`` is a pure function of the edge's class
        and the designated edge's tick count, which is what lets the
        vectorized kernel replay it in lockstep across replicates.  This
        returns everything that kernel needs, precomputed:

        * ``edge_class`` — int8 per edge: ``1`` internal (vanilla
          averaging), ``0`` non-designated cut edge (silenced), ``2``
          the designated edge (epoch bookkeeping);
        * ``epoch_length`` / ``gain`` / ``oracle_means`` — the swap rule;
        * ``endpoint_v1`` / ``endpoint_v2`` — ``v_a in V1`` / ``v_b in
          V2``, the swap's write targets;
        * ``designated_u_is_v1`` — whether the graph stores the
          designated edge as ``(v_a, v_b)`` (fixes the ``(new_a, new_b)``
          vs ``(new_b, new_a)`` return orientation once per
          configuration);
        * ``vertices_1`` / ``vertices_2`` — the partition sides, for the
          ``oracle_means`` variant's side-mean reads;
        * ``graph`` — the partition's graph, so a kernel can reject a
          spec configured for a different graph exactly as ``setup``
          would.
        """
        graph = self.partition.graph
        edge_class = np.ones(graph.n_edges, dtype=np.int8)
        edge_class[self.partition.cut_edge_ids] = 0
        edge_class[self.designated_edge] = 2
        u, _v = graph.edge_endpoints(self.designated_edge)
        return {
            "edge_class": edge_class,
            "epoch_length": self.epoch_length,
            "gain": self.gain,
            "oracle_means": self.oracle_means,
            "endpoint_v1": self._endpoint_v1,
            "endpoint_v2": self._endpoint_v2,
            "designated_u_is_v1": bool(int(u) == int(self._endpoint_v1)),
            "vertices_1": self.partition.vertices_1,
            "vertices_2": self.partition.vertices_2,
            "graph": graph,
        }

    def describe(self) -> dict:
        return {
            "name": self.name,
            "epoch_length": self.epoch_length,
            "designated_edge": self.designated_edge,
            "gain": self.gain,
            "gain_spec": self._gain_spec,
            "oracle_means": self.oracle_means,
            "n1": self.partition.n1,
            "n2": self.partition.n2,
            "cut_size": self.partition.cut_size,
        }

"""Second-order diffusion baseline [Muthukrishnan-Ghosh-Schultz, ToCS 1998].

The paper cites this (reference [5]) as prior art for *non-convex* updates:
second-order diffusive load balancing sets the next value to a linear
combination of the current diffusion step and the **previous** value,

    ``x(t+1) = beta * M x(t) + (1 - beta) * x(t-1)``,

with diffusion matrix ``M = I - h L`` and ``beta in [1, 2)`` — for
``beta > 1`` the coefficient ``1 - beta`` is negative, i.e. the update is
an affine non-convex combination (over successive rounds, not across a
cut; that is the paper's point of difference).

The scheme is synchronous.  We provide:

* :class:`SecondOrderDiffusionSync` — the faithful synchronous iteration,
  with :func:`optimal_second_order_beta` implementing the classical
  optimal ``beta = 2 / (1 + sqrt(1 - rho^2))`` (``rho`` = second-largest
  singular value of ``M``).  One synchronous round is equated to one unit
  of continuous time when compared against edge-clock algorithms (every
  edge clock fires once per unit time in expectation) — substitution
  documented in DESIGN.md section 2.
* :class:`AsyncSecondOrderGossip` — an adaptation to the paper's
  asynchronous edge-clock model: each node remembers its previous value;
  on a tick the endpoints apply the second-order stencil restricted to the
  pair.  Sum conservation is lost (exactly as second-order methods
  sacrifice monotonicity for speed); the engine tracks the drift.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.algorithms.base import GossipAlgorithm
from repro.errors import AlgorithmError
from repro.graphs.graph import Graph
from repro.graphs.spectral import laplacian_matrix


def diffusion_matrix(graph: Graph, *, step: "float | None" = None) -> np.ndarray:
    """The first-order diffusion matrix ``M = I - h L``.

    ``h`` defaults to ``1 / (max_degree + 1)``, which keeps ``M`` doubly
    stochastic with positive diagonal (stable first-order diffusion).
    """
    if graph.n_vertices == 0:
        raise AlgorithmError("diffusion matrix of the empty graph is undefined")
    max_degree = int(graph.degrees.max()) if graph.n_vertices else 0
    h = step if step is not None else 1.0 / (max_degree + 1)
    if h <= 0:
        raise AlgorithmError(f"diffusion step must be positive, got {h}")
    return np.eye(graph.n_vertices) - h * laplacian_matrix(graph)


def second_largest_modulus(matrix: np.ndarray) -> float:
    """Second-largest absolute eigenvalue of a symmetric matrix."""
    values = np.linalg.eigvalsh(matrix)
    moduli = np.sort(np.abs(values))[::-1]
    if len(moduli) < 2:
        return 0.0
    return float(moduli[1])


def optimal_second_order_beta(graph: Graph, *, step: "float | None" = None) -> float:
    """The classical optimal second-order parameter for the graph.

    ``beta = 2 / (1 + sqrt(1 - rho^2))`` where ``rho`` is the
    second-largest eigenvalue modulus of ``M``; lies in ``[1, 2)``.
    """
    rho = second_largest_modulus(diffusion_matrix(graph, step=step))
    rho = min(rho, 1.0 - 1e-12)
    return 2.0 / (1.0 + math.sqrt(1.0 - rho * rho))


class SecondOrderDiffusionSync:
    """Faithful synchronous second-order diffusion.

    Not a :class:`~repro.algorithms.base.GossipAlgorithm` — it has its own
    round-based driver.  :meth:`run` iterates until the variance ratio
    drops below ``target_ratio`` or ``max_rounds`` is hit, and returns the
    round-indexed variance trace (round ``r`` is compared to continuous
    time ``t = r`` in cross-model benchmarks).
    """

    name = "second-order-diffusion"

    def __init__(
        self,
        graph: Graph,
        *,
        beta: "float | None" = None,
        step: "float | None" = None,
    ) -> None:
        self.graph = graph
        self.matrix = diffusion_matrix(graph, step=step)
        self.beta = (
            beta
            if beta is not None
            else optimal_second_order_beta(graph, step=step)
        )
        if not 0.0 < self.beta < 2.0:
            raise AlgorithmError(f"beta must be in (0, 2), got {self.beta}")

    def run(
        self,
        initial_values: np.ndarray,
        *,
        target_ratio: float = math.e**-2,
        max_rounds: int = 100_000,
    ) -> "tuple[np.ndarray, list[float]]":
        """Iterate; returns ``(final_values, per-round variance trace)``.

        The trace includes the round-0 variance, so ``trace[r]`` is the
        variance after ``r`` rounds.
        """
        x_prev = np.asarray(initial_values, dtype=np.float64).copy()
        if x_prev.shape != (self.graph.n_vertices,):
            raise AlgorithmError(
                f"initial values must have shape ({self.graph.n_vertices},), "
                f"got {x_prev.shape}"
            )
        if max_rounds < 1:
            raise AlgorithmError(f"max_rounds must be positive, got {max_rounds}")
        variance_0 = float(np.var(x_prev))
        trace = [variance_0]
        if variance_0 == 0.0:
            return x_prev, trace
        # First round is plain first-order diffusion (no x(t-1) yet).
        x_curr = self.matrix @ x_prev
        trace.append(float(np.var(x_curr)))
        for _ in range(max_rounds - 1):
            if trace[-1] / variance_0 <= target_ratio:
                break
            x_next = self.beta * (self.matrix @ x_curr) + (1.0 - self.beta) * x_prev
            x_prev, x_curr = x_curr, x_next
            trace.append(float(np.var(x_curr)))
        return x_curr, trace

    def rounds_to_ratio(
        self,
        initial_values: np.ndarray,
        *,
        target_ratio: float = math.e**-2,
        max_rounds: int = 100_000,
    ) -> int:
        """Rounds until the variance ratio first drops to ``target_ratio``.

        Returns ``max_rounds`` if the target was never reached (callers
        treat that as a censored measurement).
        """
        _, trace = self.run(
            initial_values, target_ratio=target_ratio, max_rounds=max_rounds
        )
        variance_0 = trace[0]
        if variance_0 == 0.0:
            return 0
        for round_index, value in enumerate(trace):
            if value / variance_0 <= target_ratio:
                return round_index
        return max_rounds


class AsyncSecondOrderGossip(GossipAlgorithm):
    """Per-edge adaptation of second-order diffusion to the edge-clock model.

    Each node remembers its previous value.  On a tick of ``(u, v)`` the
    pairwise mean plays the role of ``M x`` restricted to the pair:

        ``x_u <- beta * mean + (1 - beta) * prev_u``
        ``x_v <- beta * mean + (1 - beta) * prev_v``

    For ``beta = 1`` this is vanilla gossip; for ``beta > 1`` it
    extrapolates past the mean using the node's own history (momentum).
    The pair update is not sum-conserving for ``beta != 1`` (momentum
    injects mass); the engine's exact bookkeeping tracks the drift, and
    benchmark E8 reports both speed and drift.
    """

    conserves_sum = False
    monotone_variance = False

    def __init__(self, beta: float = 1.5) -> None:
        if not 0.0 < beta < 2.0:
            raise AlgorithmError(f"beta must be in (0, 2), got {beta}")
        self.beta = float(beta)
        self.name = f"async-second-order(beta={self.beta:g})"
        self._previous: "np.ndarray | None" = None

    def setup(
        self, graph: Graph, values: np.ndarray, rng: np.random.Generator
    ) -> None:
        super().setup(graph, values, rng)
        self._previous = values.astype(np.float64).copy()

    def on_tick(
        self,
        edge_id: int,
        u: int,
        v: int,
        time: float,
        tick_count: int,
        values: "Sequence[float]",
    ) -> "tuple[float, float] | None":
        assert self._previous is not None
        mean = 0.5 * (values[u] + values[v])
        new_u = self.beta * mean + (1.0 - self.beta) * self._previous[u]
        new_v = self.beta * mean + (1.0 - self.beta) * self._previous[v]
        self._previous[u] = values[u]
        self._previous[v] = values[v]
        return float(new_u), float(new_v)

    def describe(self) -> dict:
        return {"name": self.name, "beta": self.beta}

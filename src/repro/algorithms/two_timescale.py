"""Two-time-scale gossip baseline (after Borkar [1], Konda-Tsitsiklis [4]).

The paper's related-work section points to averaging schemes with two time
scales.  There is no canonical distributed-averaging instantiation in
those references (they treat general stochastic approximation), so we
implement the natural one for a sparse-cut graph — documented substitution,
see DESIGN.md section 2:

* internal edges run at the fast scale: plain vanilla averaging;
* cut edges run at a slow scale: a convex step ``x <- x + step * (x_j - x_i)``
  whose ``step`` is either a small constant or a decaying harmonic schedule
  ``step_0 / (1 + k / tau)`` in the cut's own tick count ``k``.

Every update here is convex (``step in (0, 1/2]``), so the scheme is a
member of class ``C`` and Theorem 1 applies to it: the benchmark E8 shows
two time scales alone do **not** escape the ``Omega(n1/|E12|)`` bottleneck
— only the non-convex gain does.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.algorithms.base import GossipAlgorithm
from repro.errors import AlgorithmError
from repro.graphs.graph import Graph
from repro.graphs.partition import Partition


class TwoTimescaleGossip(GossipAlgorithm):
    """Fast intra-side averaging, slow convex cross-cut averaging.

    Parameters
    ----------
    partition:
        The sparse cut; cut edges get the slow scale.
    slow_step:
        Base step for cut-edge updates, in ``(0, 1/2]``.
    schedule:
        ``"constant"`` — every cut tick uses ``slow_step``;
        ``"harmonic"`` — cut tick ``k`` (1-based, counted across all cut
        edges) uses ``slow_step / (1 + (k - 1) / tau)``.
    tau:
        Decay horizon of the harmonic schedule (ignored for constant).
    """

    conserves_sum = True
    monotone_variance = True  # every update is symmetric convex

    def __init__(
        self,
        partition: Partition,
        *,
        slow_step: float = 0.1,
        schedule: str = "constant",
        tau: float = 10.0,
    ) -> None:
        if not 0.0 < slow_step <= 0.5:
            raise AlgorithmError(
                f"slow_step must be in (0, 1/2], got {slow_step}"
            )
        if schedule not in ("constant", "harmonic"):
            raise AlgorithmError(
                f"schedule must be 'constant' or 'harmonic', got {schedule!r}"
            )
        if tau <= 0:
            raise AlgorithmError(f"tau must be positive, got {tau}")
        self.partition = partition
        self.slow_step = float(slow_step)
        self.schedule = schedule
        self.tau = float(tau)
        self.name = f"two-timescale({schedule}, step={slow_step:g})"

        graph = partition.graph
        self._is_cut_edge = np.zeros(graph.n_edges, dtype=bool)
        self._is_cut_edge[partition.cut_edge_ids] = True
        self._cut_ticks = 0

    def setup(
        self, graph: Graph, values: np.ndarray, rng: np.random.Generator
    ) -> None:
        if graph != self.partition.graph:
            raise AlgorithmError(
                "TwoTimescaleGossip was configured for a different graph"
            )
        super().setup(graph, values, rng)
        self._cut_ticks = 0

    def _current_step(self) -> float:
        if self.schedule == "constant":
            return self.slow_step
        return self.slow_step / (1.0 + (self._cut_ticks - 1) / self.tau)

    def on_tick(
        self,
        edge_id: int,
        u: int,
        v: int,
        time: float,
        tick_count: int,
        values: "Sequence[float]",
    ) -> "tuple[float, float] | None":
        if not self._is_cut_edge[edge_id]:
            mean = 0.5 * (values[u] + values[v])
            return mean, mean
        self._cut_ticks += 1
        step = self._current_step()
        x_u = values[u]
        x_v = values[v]
        return x_u + step * (x_v - x_u), x_v + step * (x_u - x_v)

    def describe(self) -> dict:
        return {
            "name": self.name,
            "slow_step": self.slow_step,
            "schedule": self.schedule,
            "tau": self.tau,
        }

"""The gossip-algorithm protocol.

An averaging algorithm, in the paper's model, is a rule that reacts to the
tick of an edge ``e = (u, v)`` by rewriting the values of ``u`` and ``v``
(possibly using auxiliary per-node state the algorithm maintains itself).
The simulation engine owns the value vector, the clock and all metric
bookkeeping; algorithms only implement :meth:`GossipAlgorithm.on_tick`.

``on_tick`` takes plain positional arguments rather than a context object:
the engine calls it once per clock tick — millions of times per run — and
per-call object allocation is the difference between seconds and minutes
on the benchmark sweeps.

Two declared capabilities let the engine and estimators specialize:

* ``conserves_sum`` — whether updates preserve ``sum(x)`` exactly (all of
  the paper's algorithms do; push-sum estimates and the async second-order
  adaptation do not).
* ``monotone_variance`` — whether ``var X(t)`` is non-increasing along
  every trajectory (true for the convex class ``C``; false for Algorithm
  A).  Averaging-time estimators use this to stop at the *first* threshold
  crossing instead of scanning for the last one.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.graphs.graph import Graph


class GossipAlgorithm(abc.ABC):
    """Base class for pairwise averaging algorithms.

    Lifecycle: the engine calls :meth:`setup` once per run (binding the
    graph, the initial values and a random stream), then :meth:`on_tick`
    once per clock tick.  ``on_tick`` returns either ``None`` (no update —
    e.g. Algorithm A on a silenced cut edge) or the pair of new values for
    ``(u, v)``; the engine applies them and maintains variance/sum
    bookkeeping incrementally.

    Algorithms must be reusable: calling :meth:`setup` again must fully
    reset any auxiliary state.
    """

    #: Short machine name; registry key and table label.
    name: str = "abstract"

    #: Whether updates preserve sum(x) exactly (see module docstring).
    conserves_sum: bool = True

    #: Whether var X(t) is non-increasing along every trajectory.
    monotone_variance: bool = False

    def setup(
        self,
        graph: Graph,
        values: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        """Bind to a run.  Default implementation stores the graph and rng.

        Subclasses overriding this must call ``super().setup(...)``.
        """
        if np.asarray(values).shape != (graph.n_vertices,):
            raise ValueError(
                f"values must have shape ({graph.n_vertices},), "
                f"got {np.asarray(values).shape}"
            )
        self._graph = graph
        self._rng = rng

    @abc.abstractmethod
    def on_tick(
        self,
        edge_id: int,
        u: int,
        v: int,
        time: float,
        tick_count: int,
        values: "Sequence[float]",
    ) -> "tuple[float, float] | None":
        """React to a tick of edge ``edge_id = (u, v)`` at ``time``.

        Parameters
        ----------
        edge_id:
            The edge whose clock ticked.
        u, v:
            Its endpoints (``u < v``, the graph's canonical order).
        time:
            Absolute tick time.
        tick_count:
            How many times this edge has ticked so far, **including**
            this tick (1-based).  Algorithm A's epoch schedule lives on
            this counter.
        values:
            The current value vector (indexable; treat as read-only and
            return the new endpoint values instead of writing in place,
            so the engine's incremental statistics stay exact).

        Returns
        -------
        ``(new_value_u, new_value_v)`` to apply (fast path — must be a
        plain tuple), a **list** of ``(vertex, new_value)`` pairs for
        algorithms that rewrite nodes other than the tick's endpoints
        (e.g. multi-hop geographic gossip), or ``None`` for a no-op.
        """

    def describe(self) -> dict:
        """Human/serialization-friendly description of the configuration."""
        return {"name": self.name}

    def __repr__(self) -> str:
        fields = ", ".join(
            f"{key}={value!r}"
            for key, value in self.describe().items()
            if key != "name"
        )
        return f"{type(self).__name__}({fields})"

"""Name-based algorithm factory.

Experiments refer to algorithms by short names ("vanilla",
"algorithm-a", ...); this registry turns a name plus keyword arguments into
a configured instance.  Algorithms that need the sparse cut receive the
partition through the ``partition`` keyword.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.algorithms.base import GossipAlgorithm
from repro.algorithms.convex import ConvexGossip, RandomConvexGossip
from repro.algorithms.geographic import GeographicGossip
from repro.algorithms.nonconvex import NonConvexSparseCutGossip
from repro.algorithms.push_sum import PushSumGossip
from repro.algorithms.resilient import ResilientSparseCutGossip
from repro.algorithms.second_order import AsyncSecondOrderGossip
from repro.algorithms.two_timescale import TwoTimescaleGossip
from repro.algorithms.vanilla import VanillaGossip
from repro.errors import AlgorithmError

_FACTORIES: "dict[str, Callable[..., GossipAlgorithm]]" = {
    "vanilla": VanillaGossip,
    "convex": ConvexGossip,
    "random-convex": RandomConvexGossip,
    "algorithm-a": NonConvexSparseCutGossip,
    "algorithm-a-resilient": ResilientSparseCutGossip,
    "two-timescale": TwoTimescaleGossip,
    "push-sum": PushSumGossip,
    "async-second-order": AsyncSecondOrderGossip,
    "geographic": GeographicGossip,
}


def available_algorithms() -> list[str]:
    """Sorted list of registered algorithm names."""
    return sorted(_FACTORIES)


def make_algorithm(name: str, **kwargs: Any) -> GossipAlgorithm:
    """Instantiate a registered algorithm by name.

    >>> make_algorithm("vanilla").name
    'vanilla'
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise AlgorithmError(
            f"unknown algorithm {name!r}; available: {available_algorithms()}"
        ) from None
    return factory(**kwargs)


def register_algorithm(
    name: str, factory: "Callable[..., GossipAlgorithm]", *, overwrite: bool = False
) -> None:
    """Register a custom algorithm factory under ``name``.

    Library users extend the experiment harness this way (see
    ``examples/custom_algorithm.py``).
    """
    if name in _FACTORIES and not overwrite:
        raise AlgorithmError(
            f"algorithm {name!r} already registered; pass overwrite=True to replace"
        )
    _FACTORIES[name] = factory

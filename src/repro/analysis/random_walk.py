"""Random-walk toolkit backing the paper's Section-3 argument.

Three objects from the proof of Theorem 2:

* the **simple random walk** ``S_k`` (+1/-1 fair steps) and its
  sub-Gaussian maximal tail (the paper's Theorem 3:
  ``P[S_n >= s sqrt(n)] <= c e^{-beta s^2}``);
* the **dominating walk** ``W~_k`` with increments ``+log n`` w.p. 1/2 and
  ``-(3/2) log n`` w.p. 1/2 — the paper couples ``log var X(T_k^+)``
  below it;
* the **settling time** ``inf { t0 : P[ forall T > t0 : W~_T <= -2 ] > 1 - 1/e }``
  — the quantity that upper-bounds the number of epochs Algorithm A needs.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import AnalysisError
from repro.util.rng import as_generator


def simple_random_walk_paths(
    n_steps: int, n_paths: int, *, seed: "int | np.random.Generator | None" = None
) -> np.ndarray:
    """``(n_paths, n_steps + 1)`` array of fair +-1 walks from 0."""
    if n_steps < 1 or n_paths < 1:
        raise AnalysisError("n_steps and n_paths must be positive")
    rng = as_generator(seed)
    steps = rng.choice((-1.0, 1.0), size=(n_paths, n_steps))
    paths = np.zeros((n_paths, n_steps + 1))
    paths[:, 1:] = np.cumsum(steps, axis=1)
    return paths


def theorem3_tail_bound(s: float, *, c: float = 2.0, beta: float = 0.5) -> float:
    """The paper's Theorem-3 envelope ``c * exp(-beta s^2)``.

    For the simple walk, Hoeffding gives ``P[S_n >= s sqrt(n)] <=
    exp(-s^2 / 2)``, i.e. the bound holds with ``c = 1``, ``beta = 1/2``;
    the defaults ``c = 2`` cover the two-sided version.
    """
    if s < 0:
        raise AnalysisError(f"s must be non-negative, got {s}")
    return c * math.exp(-beta * s * s)


def tail_probability_estimate(
    n_steps: int,
    s: float,
    *,
    n_paths: int = 4_000,
    seed: "int | np.random.Generator | None" = None,
) -> float:
    """Monte-Carlo estimate of ``P[S_n >= s sqrt(n)]`` for the fair walk."""
    paths = simple_random_walk_paths(n_steps, n_paths, seed=seed)
    final = paths[:, -1]
    return float(np.mean(final >= s * math.sqrt(n_steps)))


def dominating_walk_increments(
    n_steps: int,
    n: int,
    *,
    n_paths: int = 1,
    seed: "int | np.random.Generator | None" = None,
) -> np.ndarray:
    """Increments of the paper's dominating walk ``W~`` for graph size ``n``.

    Each increment is ``+log n`` with probability 1/2 and ``-(3/2) log n``
    with probability 1/2 (Eqs. 13-14).  Shape ``(n_paths, n_steps)``.
    """
    if n < 2:
        raise AnalysisError(f"graph size n must be >= 2, got {n}")
    if n_steps < 1 or n_paths < 1:
        raise AnalysisError("n_steps and n_paths must be positive")
    rng = as_generator(seed)
    log_n = math.log(n)
    coins = rng.random((n_paths, n_steps)) < 0.5
    return np.where(coins, log_n, -1.5 * log_n)


def dominating_walk_paths(
    n_steps: int,
    n: int,
    *,
    n_paths: int = 1,
    seed: "int | np.random.Generator | None" = None,
) -> np.ndarray:
    """Paths of ``W~`` from 0; shape ``(n_paths, n_steps + 1)``.

    ``E[W~_k] = -k log(n) / 4`` (mean increment
    ``(1/2)(log n) + (1/2)(-(3/2) log n) = -(1/4) log n``; the paper
    states ``-(1/2) log n`` — a small arithmetic slip that does not affect
    the argument, since only negativity of the drift is used).
    """
    increments = dominating_walk_increments(
        n_steps, n, n_paths=n_paths, seed=seed
    )
    paths = np.zeros((increments.shape[0], n_steps + 1))
    paths[:, 1:] = np.cumsum(increments, axis=1)
    return paths


def time_to_stay_below(paths: np.ndarray, level: float) -> np.ndarray:
    """For each path, the first index after which it never exceeds ``level``.

    Returns, per path, the smallest ``t0`` such that ``path[T] <= level``
    for all ``T > t0`` *within the simulated horizon*; paths still above
    the level at the end are censored to ``n_steps`` (the horizon).
    """
    array = np.asarray(paths, dtype=np.float64)
    if array.ndim != 2:
        raise AnalysisError("paths must be a 2-D array (n_paths, n_steps+1)")
    n_paths, length = array.shape
    out = np.empty(n_paths, dtype=np.int64)
    for i in range(n_paths):
        above = np.flatnonzero(array[i] > level)
        # Position 0 (value 0 > negative level) always counts; the last
        # index above the level is the settling time.
        out[i] = int(above[-1]) if above.size else 0
    return out


def settling_time_estimate(
    n: int,
    *,
    level: float = -2.0,
    confidence: float = 1.0 - 1.0 / math.e,
    horizon: int = 512,
    n_paths: int = 2_000,
    seed: "int | np.random.Generator | None" = None,
) -> float:
    """Monte-Carlo ``t0`` with ``P[forall T > t0: W~_T <= level] >= confidence``.

    The paper's final step shows this ``t0`` is a constant independent of
    ``n``; the E6 benchmark tabulates it across ``n`` to exhibit that.
    """
    if not 0 < confidence < 1:
        raise AnalysisError(f"confidence must be in (0, 1), got {confidence}")
    paths = dominating_walk_paths(horizon, n, n_paths=n_paths, seed=seed)
    times = time_to_stay_below(paths, level)
    return float(np.quantile(times, confidence))

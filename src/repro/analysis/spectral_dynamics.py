"""Exact expected dynamics of vanilla gossip, in closed form.

Under rate-1 edge clocks, vanilla gossip's expected value vector obeys the
heat equation on the graph:

    ``d/dt E[x(t)] = -(1/2) L E[x(t)]``  =>  ``E[x(t)] = exp(-t L / 2) x0``

and the expected *squared deviation* obeys a second-moment linear system
whose eigen-decomposition this module computes exactly.  For the squared
deviation the relevant identity is cleaner than the full second moment:
projecting ``x0`` on the Laplacian eigenbasis ``(lambda_k, u_k)``,

    ``E[Phi(t)] = sum_k  c_k(t) <x0, u_k>^2``  with  ``Phi = |x - mean|^2``

where each mode's coefficient solves a linear ODE driven by the edge-tick
quadratic contraction.  We implement the exact first-moment propagator and
a rigorous **upper envelope** for the variance,

    ``E[var(t)] <= var(0) * exp(-lambda_2 t / 2)``,

(the Dirichlet-form bound behind the library's ``Tvan`` proxy) plus the
matching per-mode *expected-value* variance ``var(E[x(t)])``, which is a
lower envelope since ``var`` is convex.  The sandwich

    ``var(E[x(t)]) <= E[var(t)] <= var(0) e^{-lambda_2 t / 2}``

is what the validation experiment checks the Monte-Carlo engine against.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
import scipy.linalg

from repro.errors import AnalysisError
from repro.graphs.graph import Graph
from repro.graphs.spectral import laplacian_matrix


class VanillaMeanDynamics:
    """Closed-form ``E[x(t)]`` for vanilla gossip on a fixed graph.

    Diagonalizes ``L`` once; evaluation at any ``t`` is then a couple of
    matrix-vector products.
    """

    def __init__(self, graph: Graph) -> None:
        if graph.n_vertices < 2:
            raise AnalysisError("dynamics need at least two vertices")
        self.graph = graph
        laplacian = laplacian_matrix(graph)
        eigenvalues, eigenvectors = scipy.linalg.eigh(laplacian)
        self._eigenvalues = eigenvalues
        self._eigenvectors = eigenvectors

    @property
    def eigenvalues(self) -> np.ndarray:
        """Laplacian eigenvalues in ascending order."""
        return self._eigenvalues.copy()

    def expected_values(self, x0: "Sequence[float]", t: float) -> np.ndarray:
        """``E[x(t)] = exp(-t L / 2) x0`` exactly."""
        if t < 0:
            raise AnalysisError(f"time must be non-negative, got {t}")
        vector = np.asarray(x0, dtype=np.float64)
        if vector.shape != (self.graph.n_vertices,):
            raise AnalysisError(
                f"x0 must have shape ({self.graph.n_vertices},), "
                f"got {vector.shape}"
            )
        coefficients = self._eigenvectors.T @ vector
        damped = coefficients * np.exp(-0.5 * self._eigenvalues * t)
        return self._eigenvectors @ damped

    def variance_of_expected(self, x0: "Sequence[float]", t: float) -> float:
        """``var(E[x(t)])`` — a lower envelope for ``E[var(x(t))]``.

        (Jensen: ``var`` is convex in ``x``.)
        """
        return float(np.var(self.expected_values(x0, t)))

    def variance_upper_envelope(self, x0: "Sequence[float]", t: float) -> float:
        """``var(0) * exp(-lambda_2 t / 2)`` — the Dirichlet-form bound."""
        if t < 0:
            raise AnalysisError(f"time must be non-negative, got {t}")
        vector = np.asarray(x0, dtype=np.float64)
        gap = float(max(self._eigenvalues[1], 0.0))
        return float(np.var(vector)) * float(np.exp(-0.5 * gap * t))

    def half_life_of_mode(self, mode: int) -> float:
        """Time for eigen-mode ``mode`` of ``E[x]`` to halve."""
        if not 1 <= mode < self.graph.n_vertices:
            raise AnalysisError(
                f"mode must be in [1, {self.graph.n_vertices - 1}], got {mode}"
            )
        eigenvalue = float(self._eigenvalues[mode])
        if eigenvalue <= 0:
            return float("inf")
        return 2.0 * float(np.log(2.0)) / eigenvalue


def monte_carlo_expected_variance(
    graph: Graph,
    x0: "Sequence[float]",
    times: "Sequence[float]",
    *,
    n_replicates: int = 32,
    seed: "int | None" = None,
) -> np.ndarray:
    """``E[var(x(t))]`` at the given times, estimated by simulation.

    Used by the validation test: the estimate must fall inside the
    closed-form sandwich of :class:`VanillaMeanDynamics`.
    """
    from repro.algorithms.vanilla import VanillaGossip
    from repro.engine.recorder import TraceRecorder
    from repro.engine.simulator import Simulator
    from repro.util.rng import spawn_generators

    grid = np.asarray(times, dtype=np.float64)
    if grid.ndim != 1 or grid.size == 0:
        raise AnalysisError("times must be a non-empty 1-D sequence")
    if np.any(np.diff(grid) <= 0) or grid[0] < 0:
        raise AnalysisError("times must be non-negative and increasing")
    if n_replicates < 1:
        raise AnalysisError("n_replicates must be positive")
    horizon = float(grid[-1])
    accumulator = np.zeros(grid.size)
    for rng in spawn_generators(seed, n_replicates):
        # Sample every event: the step interpolation below must resolve
        # the grid times, and validation sizes are small.
        recorder = TraceRecorder(sample_every=1)
        simulator = Simulator(graph, VanillaGossip(), x0, seed=rng)
        simulator.run(max_time=horizon * 1.01, recorder=recorder)
        sampled_times = recorder.times
        sampled_variances = recorder.variances
        # Step interpolation: variance at time t is the last sample <= t.
        indices = np.searchsorted(sampled_times, grid, side="right") - 1
        indices = np.clip(indices, 0, len(sampled_times) - 1)
        accumulator += sampled_variances[indices]
    return accumulator / n_replicates

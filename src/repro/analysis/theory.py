"""Closed-form spectral facts for standard families (test oracles).

Known algebraic connectivities let the spectral toolkit be validated
without trusting the numerics it is itself built on, and the expected
variance decay rate gives a per-state version of the Dirichlet-form
argument behind the ``Tvan`` spectral proxy.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import AnalysisError
from repro.graphs.graph import Graph
from repro.graphs.spectral import laplacian_matrix


def exact_algebraic_connectivity(family: str, n: int) -> float:
    """``lambda_2(L)`` for named families.

    Supported: ``complete`` (= n), ``path`` (= 2(1 - cos(pi/n))),
    ``cycle`` (= 2(1 - cos(2 pi/n))), ``star`` (= 1),
    ``hypercube`` (= 2, n = dimension).
    """
    if n < 2:
        raise AnalysisError(f"need n >= 2, got {n}")
    if family == "complete":
        return float(n)
    if family == "path":
        return 2.0 * (1.0 - math.cos(math.pi / n))
    if family == "cycle":
        return 2.0 * (1.0 - math.cos(2.0 * math.pi / n))
    if family == "star":
        return 1.0
    if family == "hypercube":
        return 2.0
    raise AnalysisError(
        f"unknown family {family!r}; expected complete/path/cycle/star/hypercube"
    )


def expected_variance_decay_rate(graph: Graph, values: "Sequence[float]") -> float:
    """Instantaneous expected decay of ``sum_i (x_i - mean)^2``.

    Under rate-1 edge clocks and vanilla updates, the generator gives

        ``d/dt E[Phi(x(t))] = - (1/2) x^T L x``

    (each edge tick removes ``(x_i - x_j)^2 / 2``; edges tick at rate 1).
    Returned as a positive rate; zero exactly when ``x`` is constant on
    every connected component.
    """
    array = np.asarray(values, dtype=np.float64)
    if array.shape != (graph.n_vertices,):
        raise AnalysisError(
            f"values must have shape ({graph.n_vertices},), got {array.shape}"
        )
    dirichlet = float(array @ laplacian_matrix(graph) @ array)
    return 0.5 * dirichlet


def vanilla_variance_halving_time(graph: Graph) -> float:
    """Time for expected variance to halve: ``2 ln 2 / lambda_2``."""
    from repro.graphs.spectral import algebraic_connectivity

    gap = algebraic_connectivity(graph)
    if gap <= 0:
        raise AnalysisError("halving time infinite: graph disconnected")
    return 2.0 * math.log(2.0) / gap

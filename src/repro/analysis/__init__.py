"""Executable proof machinery: potentials, epoch operators, walks, bounds."""

from repro.analysis.potential import PotentialDecomposition, decompose
from repro.analysis.operators import (
    EpochOperatorSample,
    expected_update_matrix,
    operator_norm,
    sample_epoch_operators,
)
from repro.analysis.random_walk import (
    dominating_walk_increments,
    dominating_walk_paths,
    simple_random_walk_paths,
    tail_probability_estimate,
    theorem3_tail_bound,
    time_to_stay_below,
)
from repro.analysis.dominance import (
    couple_with_dominating_walk,
    empirical_cdf,
    stochastically_dominates,
)
from repro.analysis.bounds import (
    dumbbell_predictions,
    theorem1_lower_bound,
    theorem2_upper_bound,
)
from repro.analysis.theory import (
    exact_algebraic_connectivity,
    expected_variance_decay_rate,
)
from repro.analysis.spectral_dynamics import (
    VanillaMeanDynamics,
    monte_carlo_expected_variance,
)
from repro.analysis.epoch_trace import EpochRecord, epoch_potential_trace

__all__ = [
    "PotentialDecomposition",
    "decompose",
    "EpochOperatorSample",
    "expected_update_matrix",
    "operator_norm",
    "sample_epoch_operators",
    "dominating_walk_increments",
    "dominating_walk_paths",
    "simple_random_walk_paths",
    "tail_probability_estimate",
    "theorem3_tail_bound",
    "time_to_stay_below",
    "couple_with_dominating_walk",
    "empirical_cdf",
    "stochastically_dominates",
    "dumbbell_predictions",
    "theorem1_lower_bound",
    "theorem2_upper_bound",
    "exact_algebraic_connectivity",
    "expected_variance_decay_rate",
    "VanillaMeanDynamics",
    "monte_carlo_expected_variance",
    "EpochRecord",
    "epoch_potential_trace",
]

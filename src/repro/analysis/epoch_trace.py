"""Epoch-boundary traces of the Section-3 potentials.

The paper's inequalities (4)-(8) constrain how ``sigma`` and ``mu`` evolve
across one epoch of Algorithm A (``T_k^+ -> T_{k+1}^-`` mixing, then the
swap to ``T_{k+1}^+``).  The engine samples traces on an event grid, not
at epoch boundaries, so this module drives its own exact replay: the same
Poisson clock model, the same updates, but with the state captured
immediately before and after every swap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.algorithms.nonconvex import NonConvexSparseCutGossip
from repro.analysis.potential import decompose
from repro.clocks.poisson import PoissonEdgeClocks
from repro.errors import AnalysisError
from repro.graphs.partition import Partition
from repro.util.rng import as_generator


@dataclass(frozen=True)
class EpochRecord:
    """Potentials around one epoch ``k``.

    ``*_start`` is just after the previous swap (``T_k^+``; for the first
    epoch, the initial state), ``*_pre_swap`` just before this epoch's
    swap (``T_{k+1}^-``), ``*_end`` just after it (``T_{k+1}^+``).
    """

    sigma_start: float
    sigma_pre_swap: float
    sigma_end: float
    mu_start: float
    mu_pre_swap: float
    mu_end: float
    variance_start: float
    variance_end: float
    duration: float

    @property
    def sigma_contraction(self) -> float:
        """``sigma(T_{k+1}^-) / sigma(T_k^+)`` (inf if start was 0)."""
        if self.sigma_start == 0.0:
            return float("inf") if self.sigma_pre_swap > 0 else 0.0
        return self.sigma_pre_swap / self.sigma_start

    @property
    def variance_contraction(self) -> float:
        """``var(T_{k+1}^+) / var(T_k^+)`` — inequality (8)'s subject."""
        if self.variance_start == 0.0:
            return float("inf") if self.variance_end > 0 else 0.0
        return self.variance_end / self.variance_start


def epoch_potential_trace(
    partition: Partition,
    initial_values: "Sequence[float]",
    *,
    epoch_length: int,
    n_epochs: int,
    gain: "str | float" = "exact",
    seed: "int | np.random.Generator | None" = None,
) -> list[EpochRecord]:
    """Replay Algorithm A capturing potentials at every epoch boundary."""
    if n_epochs < 1:
        raise AnalysisError(f"n_epochs must be positive, got {n_epochs}")
    algorithm = NonConvexSparseCutGossip(
        partition, epoch_length=epoch_length, gain=gain
    )
    graph = partition.graph
    values = np.asarray(initial_values, dtype=np.float64).copy()
    if values.shape != (graph.n_vertices,):
        raise AnalysisError(
            f"initial_values must have shape ({graph.n_vertices},), "
            f"got {values.shape}"
        )
    rng = as_generator(seed)
    clocks = PoissonEdgeClocks(graph.n_edges, seed=rng)
    algorithm.setup(graph, values, rng)

    edges_u = graph.edges[:, 0]
    edges_v = graph.edges[:, 1]
    tick_counts = np.zeros(graph.n_edges, dtype=np.int64)

    records: list[EpochRecord] = []
    start = decompose(values, partition)
    epoch_start_time = 0.0
    while len(records) < n_epochs:
        times, edge_ids = clocks.next_batch(4096)
        for t, e in zip(times.tolist(), edge_ids.tolist()):
            tick_counts[e] += 1
            u, v = int(edges_u[e]), int(edges_v[e])
            is_swap_tick = (
                e == algorithm.designated_edge
                and tick_counts[e] % epoch_length == 0
            )
            if is_swap_tick:
                pre = decompose(values, partition)
            result = algorithm.on_tick(e, u, v, t, int(tick_counts[e]), values)
            if result is not None:
                values[u], values[v] = result
            if is_swap_tick:
                end = decompose(values, partition)
                records.append(
                    EpochRecord(
                        sigma_start=start.sigma,
                        sigma_pre_swap=pre.sigma,
                        sigma_end=end.sigma,
                        mu_start=start.paper_mu,
                        mu_pre_swap=pre.paper_mu,
                        mu_end=end.paper_mu,
                        variance_start=start.variance,
                        variance_end=end.variance,
                        duration=t - epoch_start_time,
                    )
                )
                start = end
                epoch_start_time = t
                if len(records) >= n_epochs:
                    break
    return records

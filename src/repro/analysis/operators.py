"""Epoch operators ``A_k`` and their norms (the paper's Lemma 1 / Eq. 12).

The paper composes all linear updates between consecutive swap instants
``T_k^+ -> T_{k+1}^+`` into a random operator ``A_k`` and shows

* ``P[ ||A_k||^2 >= n^{-3} ] <= 1/2``  (Lemma 1, for large enough C), and
* ``||A_k|| <= n`` always (Eq. 12),

which together drive the dominating-random-walk argument.  Every update of
Algorithm A is *value-independent* and linear (vanilla ticks replace two
rows by their mean; the swap applies fixed coefficients), so an epoch
operator can be materialized exactly by pushing the identity matrix
through one epoch's tick sequence.  :func:`sample_epoch_operators` does
exactly that, drawing tick sequences from the same Poisson model the
simulator uses.

Note the operators act on the *zero-mean subspace* in the relevant sense:
``A_k`` always fixes the all-ones vector (every update conserves each
side's... in fact the global sum), so norms are reported both on the full
space and restricted to the subspace orthogonal to ``1`` — the latter is
the one that controls variance contraction and the one Lemma 1 is about.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.algorithms.nonconvex import NonConvexSparseCutGossip
from repro.clocks.poisson import PoissonEdgeClocks
from repro.errors import AnalysisError
from repro.graphs.graph import Graph
from repro.graphs.partition import Partition
from repro.util.rng import as_generator


def expected_update_matrix(graph: Graph) -> np.ndarray:
    """Mean per-tick update matrix of vanilla gossip on ``graph``.

    A uniformly random edge ``(i, j)`` averages its endpoints; the
    expectation over the edge choice is

        ``W = I - (1 / 2m) * L``

    whose second-largest eigenvalue controls per-tick variance decay in
    the discrete chain (Boyd et al.'s object of study).
    """
    if graph.n_edges == 0:
        raise AnalysisError("expected update matrix needs at least one edge")
    from repro.graphs.spectral import laplacian_matrix

    return np.eye(graph.n_vertices) - laplacian_matrix(graph) / (2.0 * graph.n_edges)


def operator_norm(matrix: np.ndarray, *, zero_mean_subspace: bool = False) -> float:
    """Spectral norm; optionally restricted orthogonal to the ones vector.

    The restriction projects both sides with ``P = I - J/n`` and takes the
    largest singular value of ``P A P`` — the contraction factor relevant
    to variance dynamics (the ones direction is conserved and carries no
    variance).
    """
    array = np.asarray(matrix, dtype=np.float64)
    if array.ndim != 2 or array.shape[0] != array.shape[1]:
        raise AnalysisError(f"operator must be square, got shape {array.shape}")
    if zero_mean_subspace:
        n = array.shape[0]
        projector = np.eye(n) - np.full((n, n), 1.0 / n)
        array = projector @ array @ projector
    return float(np.linalg.norm(array, ord=2))


@dataclass(frozen=True)
class EpochOperatorSample:
    """One sampled epoch operator and its summary statistics."""

    matrix: np.ndarray
    norm: float
    norm_zero_mean: float
    n_ticks: int
    duration: float

    @property
    def log_norm_zero_mean(self) -> float:
        """``log ||A_k||`` on the variance-carrying subspace (floored)."""
        return math.log(max(self.norm_zero_mean, 1e-300))


def sample_epoch_operators(
    partition: Partition,
    *,
    epoch_length: int,
    n_epochs: int,
    gain: "str | float" = "exact",
    seed: "int | np.random.Generator | None" = None,
) -> list[EpochOperatorSample]:
    """Sample ``n_epochs`` i.i.d. epoch operators of Algorithm A.

    Each epoch runs from just after one swap to just after the next
    (the paper's ``T_k^+ -> T_{k+1}^+``): ticks are drawn from the Poisson
    edge-clock model, vanilla row-averages are applied for internal edges,
    non-designated cut ticks are skipped, and the epoch ends with the
    non-convex swap row operation.  The identity matrix is pushed through
    the whole sequence, so ``matrix`` is exactly ``A_k``.
    """
    if n_epochs < 1:
        raise AnalysisError(f"n_epochs must be positive, got {n_epochs}")
    algorithm = NonConvexSparseCutGossip(
        partition, epoch_length=epoch_length, gain=gain
    )
    graph = partition.graph
    n = graph.n_vertices
    rng = as_generator(seed)
    clocks = PoissonEdgeClocks(graph.n_edges, seed=rng)
    edges_u = graph.edges[:, 0]
    edges_v = graph.edges[:, 1]
    designated = algorithm.designated_edge
    is_cut = np.zeros(graph.n_edges, dtype=bool)
    is_cut[partition.cut_edge_ids] = True
    a, b = algorithm._endpoint_v1, algorithm._endpoint_v2
    g = algorithm.gain

    samples: list[EpochOperatorSample] = []
    matrix = np.eye(n)
    ticks_in_epoch = 0
    designated_ticks = 0
    epoch_start_time = 0.0
    last_time = 0.0
    while len(samples) < n_epochs:
        times, edge_ids = clocks.next_batch(4096)
        for t, e in zip(times.tolist(), edge_ids.tolist()):
            last_time = t
            ticks_in_epoch += 1
            if not is_cut[e]:
                u, v = int(edges_u[e]), int(edges_v[e])
                mean_row = 0.5 * (matrix[u] + matrix[v])
                matrix[u] = mean_row
                matrix[v] = mean_row
                continue
            if e != designated:
                continue
            designated_ticks += 1
            if designated_ticks % epoch_length != 0:
                continue
            # The swap closes the epoch: x_a += g * (x_b - x_a), mirrored.
            row_a = matrix[a].copy()
            row_b = matrix[b].copy()
            matrix[a] = row_a + g * (row_b - row_a)
            matrix[b] = row_b - g * (row_b - row_a)
            samples.append(
                EpochOperatorSample(
                    matrix=matrix,
                    norm=operator_norm(matrix),
                    norm_zero_mean=operator_norm(matrix, zero_mean_subspace=True),
                    n_ticks=ticks_in_epoch,
                    duration=last_time - epoch_start_time,
                )
            )
            matrix = np.eye(n)
            ticks_in_epoch = 0
            epoch_start_time = last_time
            if len(samples) >= n_epochs:
                break
    return samples


def log_norm_walk(samples: "list[EpochOperatorSample]") -> np.ndarray:
    """The paper's ``W_k = sum_i log ||A_i||`` (zero-mean-subspace norms).

    Index 0 is ``W_0 = 0``; index ``k`` sums the first ``k`` samples.
    """
    increments = np.array([s.log_norm_zero_mean for s in samples], dtype=np.float64)
    return np.concatenate([[0.0], np.cumsum(increments)])


def lemma1_empirical_probability(
    samples: "list[EpochOperatorSample]", *, threshold_exponent: float = -3.0
) -> float:
    """Fraction of epochs with ``||A_k||^2 >= n^threshold_exponent``.

    Lemma 1 claims this is at most 1/2 for large enough ``C``.
    """
    if not samples:
        raise AnalysisError("no samples")
    n = samples[0].matrix.shape[0]
    threshold = n**threshold_exponent
    hits = sum(1 for s in samples if s.norm_zero_mean**2 >= threshold)
    return hits / len(samples)

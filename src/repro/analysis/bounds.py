"""Closed-form theorem bounds for paper-vs-measured comparisons.

These are the numbers EXPERIMENTS.md quotes next to every measurement:
Theorem 1's convex lower bound with the constant the paper's Section-2
derivation actually produces, Theorem 2's envelope, and the dumbbell
headline predictions.
"""

from __future__ import annotations

import math

from repro.errors import AnalysisError
from repro.graphs.partition import Partition
from repro.graphs.spectral import spectral_mixing_time


def theorem1_lower_bound(partition: Partition) -> float:
    """Theorem 1: ``T_av >= (1 - 1/e)^2 * n1 / (4 |E12|)`` for class C.

    Derivation (paper Section 2): each cut tick moves the side mean by at
    most ``2/n1``; cut ticks by time ``t`` are Poisson with mean
    ``t |E12|``; requiring the mean displacement to reach order 1 with the
    definition's confidence yields the constant ``(1 - 1/e)^2 / 4``.
    """
    if partition.cut_size == 0:
        raise AnalysisError("lower bound undefined for an empty cut")
    factor = (1.0 - 1.0 / math.e) ** 2 / 4.0
    return factor * partition.n1 / partition.cut_size


def theorem2_upper_bound(
    partition: Partition, *, constant: float = 3.0
) -> float:
    """Theorem 2's envelope ``C * ln n * (Tvan(G1) + Tvan(G2))``.

    ``Tvan`` is taken as the spectral proxy (DESIGN.md F2).  This is an
    order bound — the interesting comparisons are ratios across ``n``.
    """
    if constant <= 0:
        raise AnalysisError(f"constant must be positive, got {constant}")
    g1, _, g2, _ = partition.subgraphs()
    tvan = spectral_mixing_time(g1) + spectral_mixing_time(g2)
    n = partition.graph.n_vertices
    return constant * math.log(n) * tvan


def dumbbell_predictions(n: int, *, constant: float = 3.0) -> dict:
    """The paper's headline numbers for the dumbbell ``G'`` of size ``n``.

    * convex lower bound: ``Omega(n)`` — returned with Theorem 1's
      constant for ``n1 = n/2``, ``|E12| = 1``;
    * Algorithm A upper bound: ``O(log n)`` — returned as
      ``C * ln n * 2 * Tvan(K_{n/2})`` with the spectral
      ``Tvan(K_m) = 4/m`` (``lambda_2(L(K_m)) = m``), i.e.
      ``16 C ln(n) / n`` — plus one unit for the ceiling on the epoch
      length (the designated edge must tick at least once per epoch, and
      a tick takes ``Exp(1)`` time).
    """
    if n < 4 or n % 2:
        raise AnalysisError(f"dumbbell size must be even and >= 4, got {n}")
    half = n // 2
    convex_lower = (1.0 - 1.0 / math.e) ** 2 / 4.0 * half
    tvan_half = 4.0 / half
    nonconvex_upper = constant * math.log(n) * 2.0 * tvan_half + 1.0
    return {
        "n": n,
        "convex_lower_bound": convex_lower,
        "nonconvex_upper_bound": nonconvex_upper,
        "predicted_speedup_at_least": convex_lower / nonconvex_upper,
    }

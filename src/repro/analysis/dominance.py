"""Stochastic dominance: the paper's key coupling, made empirical.

The proof of Theorem 2 couples the log-variance walk
``W_k = sum_i log ||A_i||`` with the dominating walk ``W~_k`` so that
``W_k <= W~_k`` pathwise.  The coupling works because of two facts about
each increment (Lemma 1 and Eq. 12):

* ``log ||A_k|| <= -(3/2) log n`` with probability at least 1/2, and
* ``log ||A_k|| <= log n`` always.

Given those, draw one uniform ``U`` per epoch: if the increment lands in
its own lower half (``U < 1/2``) pair it with the dominating step
``-(3/2) log n``; otherwise pair it with ``+log n``.  Both coordinates
are marginally correct and the domination holds pathwise.  This module
implements exactly that construction on *sampled* increments, plus a
quantile-based check of first-order stochastic dominance between sample
sets.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import AnalysisError


def empirical_cdf(samples: "Sequence[float]"):
    """Return ``F(t) = P[X <= t]`` built from samples (right-continuous)."""
    array = np.sort(np.asarray(samples, dtype=np.float64))
    if array.size == 0:
        raise AnalysisError("cannot build a CDF from zero samples")

    def cdf(t: float) -> float:
        return float(np.searchsorted(array, t, side="right")) / array.size

    return cdf


def stochastically_dominates(
    upper: "Sequence[float]",
    lower: "Sequence[float]",
    *,
    tolerance: float = 0.0,
) -> bool:
    """First-order dominance check: ``upper >= lower`` at every quantile.

    Compares the two sample sets on a shared quantile grid; ``tolerance``
    absorbs Monte-Carlo noise (in distribution units).
    """
    a = np.asarray(upper, dtype=np.float64)
    b = np.asarray(lower, dtype=np.float64)
    if a.size == 0 or b.size == 0:
        raise AnalysisError("dominance check needs non-empty sample sets")
    grid = np.linspace(0.0, 1.0, 101)
    qa = np.quantile(a, grid)
    qb = np.quantile(b, grid)
    return bool(np.all(qa >= qb - tolerance))


def couple_with_dominating_walk(
    log_norm_increments: "Sequence[float]",
    n: int,
    *,
    seed: "int | np.random.Generator | None" = None,
) -> "tuple[np.ndarray, np.ndarray]":
    """Build the paper's pathwise coupling from sampled increments.

    Parameters
    ----------
    log_norm_increments:
        Sampled ``log ||A_k||`` values (one per epoch).
    n:
        Graph size (sets the dominating step sizes).

    Returns
    -------
    ``(walk, dominating_walk)`` — cumulative paths of equal length
    (index 0 = 0).  The construction pairs each increment with a
    dominating step that is marginally ``+-``-correct *and* pathwise
    above it, using the increment's own rank as the coin: increments in
    the lower half of the empirical distribution get the ``-(3/2) log n``
    step, the rest get ``+log n``.  If the sampled increments violate the
    paper's premises (some increment above ``log n``, or fewer than half
    below ``-(3/2) log n``), the domination may fail — callers assert on
    the returned paths, which is the point of the experiment.
    """
    increments = np.asarray(log_norm_increments, dtype=np.float64)
    if increments.size == 0:
        raise AnalysisError("need at least one increment")
    if n < 2:
        raise AnalysisError(f"graph size n must be >= 2, got {n}")
    log_n = math.log(n)
    # Rank-based coin: lower-half increments pair with the down step.
    order = np.argsort(np.argsort(increments, kind="stable"), kind="stable")
    lower_half = order < (increments.size // 2 + increments.size % 2)
    dominating = np.where(lower_half, -1.5 * log_n, log_n)
    walk = np.concatenate([[0.0], np.cumsum(increments)])
    dom_walk = np.concatenate([[0.0], np.cumsum(dominating)])
    return walk, dom_walk


def dominance_violations(walk: np.ndarray, dominating: np.ndarray) -> int:
    """Count positions where the walk exceeds its dominating partner."""
    a = np.asarray(walk, dtype=np.float64)
    b = np.asarray(dominating, dtype=np.float64)
    if a.shape != b.shape:
        raise AnalysisError("paths must have equal shape")
    return int(np.sum(a > b + 1e-12))

"""The paper's Section-3 potential decomposition ``(mu1, mu2, sigma)``.

For a partition ``(V1, V2)`` and value vector ``x`` with global average
``x_av``, the squared deviation splits *exactly* as

    ``var X = sigma^2 + (n1 (mu1 - x_av)^2 + n2 (mu2 - x_av)^2) / n``

where ``mu_i`` is the mean of side ``i`` and ``sigma^2`` is the
within-side variance (the paper's ``sigma(t)``).  The paper writes
``var X(t) = mu(t)^2 + sigma(t)^2`` with ``mu = |mu1| + |mu2|`` (for
``x_av = 0``); that is an upper bound, not an identity — this module
exposes both the exact split and the paper's ``mu`` so the analysis
benchmarks can show the (bounded) gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.graphs.partition import Partition


@dataclass(frozen=True)
class PotentialDecomposition:
    """The decomposition of ``var X`` induced by a partition.

    Attributes
    ----------
    mu1, mu2:
        Side means.
    global_mean:
        ``x_av``.
    sigma:
        Within-side root-mean-square deviation (the paper's ``sigma``).
    imbalance:
        The cross-cut term ``(n1 (mu1-x_av)^2 + n2 (mu2-x_av)^2) / n``.
    variance:
        Total population variance; equals ``sigma^2 + imbalance`` exactly.
    """

    mu1: float
    mu2: float
    global_mean: float
    sigma: float
    imbalance: float
    variance: float

    @property
    def paper_mu(self) -> float:
        """The paper's ``mu = |mu1 - x_av| + |mu2 - x_av|``."""
        return abs(self.mu1 - self.global_mean) + abs(self.mu2 - self.global_mean)

    @property
    def paper_upper_bound(self) -> float:
        """The paper's claimed envelope ``mu^2 + sigma^2`` (>= variance)."""
        return self.paper_mu**2 + self.sigma**2

    def to_dict(self) -> dict:
        """Plain-dict view for serialization."""
        return {
            "mu1": self.mu1,
            "mu2": self.mu2,
            "global_mean": self.global_mean,
            "sigma": self.sigma,
            "imbalance": self.imbalance,
            "variance": self.variance,
            "paper_mu": self.paper_mu,
        }


def decompose(
    values: "Sequence[float]", partition: Partition
) -> PotentialDecomposition:
    """Compute the exact potential decomposition of ``values``."""
    array = np.asarray(values, dtype=np.float64)
    n = partition.graph.n_vertices
    if array.shape != (n,):
        raise ValueError(f"values must have shape ({n},), got {array.shape}")
    side_1 = array[partition.vertices_1]
    side_2 = array[partition.vertices_2]
    mu1 = float(side_1.mean())
    mu2 = float(side_2.mean())
    global_mean = float(array.mean())
    within = float(np.sum((side_1 - mu1) ** 2) + np.sum((side_2 - mu2) ** 2)) / n
    sigma = float(np.sqrt(within))
    imbalance = (
        partition.n1 * (mu1 - global_mean) ** 2
        + partition.n2 * (mu2 - global_mean) ** 2
    ) / n
    variance = float(np.var(array))
    return PotentialDecomposition(
        mu1=mu1,
        mu2=mu2,
        global_mean=global_mean,
        sigma=sigma,
        imbalance=imbalance,
        variance=variance,
    )


def sigma_probe(partition: Partition):
    """A recorder probe returning ``sigma`` (for :class:`TraceRecorder`)."""

    def probe(values: np.ndarray) -> float:
        return decompose(values, partition).sigma

    return probe


def imbalance_probe(partition: Partition):
    """A recorder probe returning the paper's ``mu`` potential."""

    def probe(values: np.ndarray) -> float:
        return decompose(values, partition).paper_mu

    return probe

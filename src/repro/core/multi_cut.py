"""Multi-cluster extension of Algorithm A (the paper's natural next step).

The paper handles exactly one sparse cut.  For ``k`` well-connected
clusters joined sparsely, the same idea composes: designate one edge per
*adjacent cluster pair*, silence the other inter-cluster edges, run
vanilla inside clusters, and let each designated edge perform the
non-convex swap on every ``L_ab``-th of its own ticks with the pairwise
harmonic gain ``|V_a||V_b| / (|V_a|+|V_b|)`` — the gain that equalizes
*that pair's* means.  At the cluster level this is vanilla gossip on the
quotient graph with (noisy) perfect pairwise averaging, so the cluster
means converge whenever the quotient is connected; within clusters the
paper's epoch argument applies per cut.

This is an **extension beyond the paper** (no theorem claimed); benchmark
E12 measures it against vanilla and against naive single-cut Algorithm A
on chains of cliques.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.algorithms.base import GossipAlgorithm
from repro.core.epochs import DEFAULT_EPOCH_CONSTANT
from repro.engine.results import RunResult
from repro.engine.simulator import Simulator
from repro.errors import AlgorithmError
from repro.graphs.clustering import ClusterPartition, spectral_clusters
from repro.graphs.graph import Graph
from repro.graphs.spectral import spectral_mixing_time


class MultiCutGossip(GossipAlgorithm):
    """Per-cut non-convex swaps across a k-cluster structure.

    Parameters
    ----------
    clusters:
        The cluster structure; every cluster must be internally connected
        and the quotient graph connected.
    epoch_lengths:
        Mapping ``(a, b) -> L_ab`` (cluster pairs, ``a < b``) or a single
        int used for every cut.
    """

    conserves_sum = True
    monotone_variance = False

    def __init__(
        self,
        clusters: ClusterPartition,
        *,
        epoch_lengths: "dict[tuple[int, int], int] | int",
    ) -> None:
        clusters.require_connected_clusters()
        if not clusters.quotient_is_connected():
            raise AlgorithmError(
                "cluster quotient graph is disconnected; averaging across "
                "all clusters is impossible"
            )
        self.clusters = clusters
        graph = clusters.graph
        pairs = clusters.adjacent_cluster_pairs
        if isinstance(epoch_lengths, int):
            epoch_lengths = {pair: epoch_lengths for pair in pairs}
        missing = [pair for pair in pairs if pair not in epoch_lengths]
        if missing:
            raise AlgorithmError(f"missing epoch lengths for cuts {missing}")
        for pair, length in epoch_lengths.items():
            if length < 1:
                raise AlgorithmError(
                    f"epoch length for cut {pair} must be >= 1, got {length}"
                )
        self.epoch_lengths = dict(epoch_lengths)
        self.name = f"multi-cut-A(k={clusters.k})"

        # Designated edge per adjacent pair: the lowest edge id.
        self._swap_plan: "dict[int, tuple[int, int, float, int]]" = {}
        self._is_inter_cluster = np.zeros(graph.n_edges, dtype=bool)
        for a, b in pairs:
            edge_ids = clusters.cut_edge_ids(a, b)
            self._is_inter_cluster[edge_ids] = True
            designated = int(edge_ids[0])
            u, v = graph.edge_endpoints(designated)
            if clusters.labels[u] == a:
                low, high = u, v
            else:
                low, high = v, u
            size_a = clusters.cluster_size(a)
            size_b = clusters.cluster_size(b)
            gain = size_a * size_b / (size_a + size_b)
            self._swap_plan[designated] = (
                low,
                high,
                gain,
                self.epoch_lengths[(a, b)],
            )
        self._swap_counts = {edge: 0 for edge in self._swap_plan}

    @property
    def designated_edges(self) -> "list[int]":
        """Edge ids carrying swaps, sorted."""
        return sorted(self._swap_plan)

    def swap_count(self, edge_id: int) -> int:
        """Swaps performed by one designated edge since setup."""
        if edge_id not in self._swap_counts:
            raise AlgorithmError(f"edge {edge_id} is not a designated edge")
        return self._swap_counts[edge_id]

    def setup(
        self, graph: Graph, values: np.ndarray, rng: np.random.Generator
    ) -> None:
        if graph != self.clusters.graph:
            raise AlgorithmError(
                "MultiCutGossip was configured for a different graph"
            )
        super().setup(graph, values, rng)
        self._swap_counts = {edge: 0 for edge in self._swap_plan}

    def on_tick(
        self,
        edge_id: int,
        u: int,
        v: int,
        time: float,
        tick_count: int,
        values: "Sequence[float]",
    ) -> "tuple[float, float] | None":
        if not self._is_inter_cluster[edge_id]:
            mean = 0.5 * (values[u] + values[v])
            return mean, mean
        plan = self._swap_plan.get(edge_id)
        if plan is None:
            return None
        low, high, gain, epoch_length = plan
        if tick_count % epoch_length != 0:
            return None
        self._swap_counts[edge_id] += 1
        delta = float(values[high]) - float(values[low])
        transfer = gain * delta
        new_low = float(values[low]) + transfer
        new_high = float(values[high]) - transfer
        if u == low:
            return new_low, new_high
        return new_high, new_low

    def describe(self) -> dict:
        return {
            "name": self.name,
            "k": self.clusters.k,
            "designated_edges": self.designated_edges,
            "epoch_lengths": {
                f"{a}-{b}": length
                for (a, b), length in sorted(self.epoch_lengths.items())
            },
        }


class MultiClusterAveraging:
    """Orchestrator: detect/accept k clusters, size epochs, run swaps.

    The k-cluster analog of
    :class:`~repro.core.sparse_cut_averaging.SparseCutAveraging`.
    """

    def __init__(
        self,
        graph: Graph,
        *,
        clusters: "ClusterPartition | None" = None,
        n_clusters: "int | None" = None,
        epoch_constant: float = DEFAULT_EPOCH_CONSTANT,
    ) -> None:
        if not graph.is_connected():
            raise AlgorithmError(
                "MultiClusterAveraging requires a connected graph"
            )
        if epoch_constant <= 0:
            raise AlgorithmError(
                f"epoch_constant must be positive, got {epoch_constant}"
            )
        if clusters is None:
            if n_clusters is None:
                raise AlgorithmError(
                    "provide either a ClusterPartition or n_clusters"
                )
            clusters = spectral_clusters(graph, n_clusters)
        elif clusters.graph != graph:
            raise AlgorithmError("clusters were built for a different graph")
        clusters.require_connected_clusters()
        self.graph = graph
        self.clusters = clusters
        self.epoch_constant = float(epoch_constant)
        self._tvan: "list[float] | None" = None
        self._epochs: "dict[tuple[int, int], int] | None" = None

    def cluster_vanilla_times(self) -> "list[float]":
        """Spectral ``Tvan`` of every cluster (cached)."""
        if self._tvan is None:
            times = []
            for c in range(self.clusters.k):
                subgraph, _ = self.clusters.subgraph(c)
                if subgraph.n_vertices < 2:
                    times.append(0.0)
                else:
                    times.append(spectral_mixing_time(subgraph))
            self._tvan = times
        return list(self._tvan)

    def epoch_lengths(self) -> "dict[tuple[int, int], int]":
        """Per-cut ``L_ab = ceil(C (Tvan_a + Tvan_b) ln n)`` (cached)."""
        if self._epochs is None:
            tvan = self.cluster_vanilla_times()
            log_n = math.log(self.graph.n_vertices)
            self._epochs = {
                (a, b): max(
                    1,
                    int(
                        math.ceil(
                            self.epoch_constant * (tvan[a] + tvan[b]) * log_n
                        )
                    ),
                )
                for a, b in self.clusters.adjacent_cluster_pairs
            }
        return dict(self._epochs)

    def build_algorithm(self) -> MultiCutGossip:
        """A fresh configured :class:`MultiCutGossip`."""
        return MultiCutGossip(
            self.clusters, epoch_lengths=self.epoch_lengths()
        )

    def run(
        self,
        initial_values: "Sequence[float]",
        *,
        seed: "int | None" = None,
        **run_kwargs: object,
    ) -> RunResult:
        """Simulate once from ``initial_values``."""
        simulator = Simulator(
            self.graph, self.build_algorithm(), initial_values, seed=seed
        )
        return simulator.run(**run_kwargs)  # type: ignore[arg-type]

    def summary(self) -> dict:
        """Configuration overview for logging."""
        return {
            "k": self.clusters.k,
            "cluster_sizes": [
                self.clusters.cluster_size(c) for c in range(self.clusters.k)
            ],
            "adjacent_pairs": self.clusters.adjacent_cluster_pairs,
            "total_cut_size": self.clusters.total_cut_size,
            "tvan": self.cluster_vanilla_times(),
            "epoch_lengths": {
                f"{a}-{b}": length
                for (a, b), length in sorted(self.epoch_lengths().items())
            },
        }

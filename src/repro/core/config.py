"""Configuration dataclasses for the high-level API."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.epochs import DEFAULT_EPOCH_CONSTANT
from repro.errors import AlgorithmError


@dataclass(frozen=True)
class AlgorithmAConfig:
    """Tunable knobs of Algorithm A, with paper-faithful defaults.

    Attributes
    ----------
    epoch_constant:
        The paper's ``C`` (default 3; the paper only says ``C >> 1``).
    gain:
        Swap gain convention: ``"exact"`` (default; the harmonic gain the
        paper's analysis needs), ``"paper"`` (the literal ``n1``), or a
        float (see :mod:`repro.algorithms.nonconvex`).
    tvan_method:
        How ``Tvan(Gi)`` is estimated for the epoch length:
        ``"spectral"`` (default) or ``"empirical"``.
    oracle_means:
        Idealized swap using true side means (analysis only).
    epoch_length_override:
        Explicit ``L``, bypassing the formula (ablations).
    designated_edge:
        Explicit edge id for ``e_c``; default is the lowest-id cut edge.
    """

    epoch_constant: float = DEFAULT_EPOCH_CONSTANT
    gain: "str | float" = "exact"
    tvan_method: str = "spectral"
    oracle_means: bool = False
    epoch_length_override: "int | None" = None
    designated_edge: "int | None" = None

    def __post_init__(self) -> None:
        if self.epoch_constant <= 0:
            raise AlgorithmError(
                f"epoch_constant must be positive, got {self.epoch_constant}"
            )
        if self.tvan_method not in ("spectral", "empirical"):
            raise AlgorithmError(
                f"tvan_method must be 'spectral' or 'empirical', "
                f"got {self.tvan_method!r}"
            )
        if self.epoch_length_override is not None and self.epoch_length_override < 1:
            raise AlgorithmError(
                f"epoch_length_override must be >= 1, "
                f"got {self.epoch_length_override}"
            )

    def to_dict(self) -> dict:
        """Plain-dict view for serialization."""
        return {
            "epoch_constant": self.epoch_constant,
            "gain": self.gain,
            "tvan_method": self.tvan_method,
            "oracle_means": self.oracle_means,
            "epoch_length_override": self.epoch_length_override,
            "designated_edge": self.designated_edge,
        }

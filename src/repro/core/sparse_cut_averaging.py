"""The "adopt me" front door: sparse-cut averaging end to end.

:class:`SparseCutAveraging` packages the paper's pipeline the way a
downstream user wants it:

1. take a graph (and optionally the known partition — otherwise detect
   the sparse cut with a Fiedler sweep);
2. estimate ``Tvan(G1)``, ``Tvan(G2)`` and derive the epoch length;
3. build Algorithm A;
4. run it, or estimate its averaging time, or compare it against the
   convex lower bound.

>>> from repro.graphs import dumbbell_graph
>>> pair = dumbbell_graph(32)
>>> sca = SparseCutAveraging(pair.graph, partition=pair.partition)
>>> result = sca.run([float(i) for i in range(32)], seed=0, target_ratio=1e-4)
>>> bool(result.variance_ratio <= 1e-4)
True
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from repro.algorithms.nonconvex import NonConvexSparseCutGossip
from repro.core.config import AlgorithmAConfig
from repro.core.epochs import (
    epoch_length_ticks,
    vanilla_time_empirical,
    vanilla_time_spectral,
)
from repro.engine.averaging_time import (
    AveragingTimeEstimate,
    estimate_averaging_time,
)
from repro.engine.results import RunResult
from repro.engine.simulator import Simulator
from repro.errors import AlgorithmError
from repro.graphs.cuts import fiedler_sweep_cut
from repro.graphs.graph import Graph
from repro.graphs.partition import Partition


class SparseCutAveraging:
    """Configure and drive Algorithm A on a graph with one sparse cut.

    Parameters
    ----------
    graph:
        A connected graph.
    partition:
        The sparse cut, if known (planted instances carry one).  When
        omitted, a Fiedler sweep cut with internally connected sides is
        detected automatically.
    config:
        Algorithm knobs; defaults are paper-faithful.
    """

    def __init__(
        self,
        graph: Graph,
        *,
        partition: "Partition | None" = None,
        config: "AlgorithmAConfig | None" = None,
    ) -> None:
        if not graph.is_connected():
            raise AlgorithmError("SparseCutAveraging requires a connected graph")
        self.graph = graph
        self.config = config if config is not None else AlgorithmAConfig()
        if partition is None:
            cut = fiedler_sweep_cut(graph, require_connected_sides=True)
            self.partition = cut.partition
            self.cut_method = cut.method
        else:
            if partition.graph != graph:
                raise AlgorithmError(
                    "partition was built for a different graph"
                )
            partition.require_connected_sides()
            self.partition = partition
            self.cut_method = "provided"
        self._tvan_1: "float | None" = None
        self._tvan_2: "float | None" = None
        self._epoch_length: "int | None" = None

    # ------------------------------------------------------------------
    # derived quantities (computed lazily, cached)
    # ------------------------------------------------------------------

    def vanilla_times(self, *, seed: "int | None" = None) -> "tuple[float, float]":
        """``(Tvan(G1), Tvan(G2))`` under the configured estimator."""
        if self._tvan_1 is None or self._tvan_2 is None:
            g1, _, g2, _ = self.partition.subgraphs()
            if self.config.tvan_method == "spectral":
                self._tvan_1 = vanilla_time_spectral(g1)
                self._tvan_2 = vanilla_time_spectral(g2)
            else:
                self._tvan_1 = vanilla_time_empirical(g1, seed=seed)
                self._tvan_2 = vanilla_time_empirical(
                    g2, seed=None if seed is None else seed + 1
                )
        return self._tvan_1, self._tvan_2

    def epoch_length(self) -> int:
        """The swap period ``L`` (ticks of the designated edge)."""
        if self._epoch_length is None:
            if self.config.epoch_length_override is not None:
                self._epoch_length = self.config.epoch_length_override
            else:
                self._epoch_length = epoch_length_ticks(
                    self.partition,
                    constant=self.config.epoch_constant,
                    method=self.config.tvan_method,
                )
        return self._epoch_length

    def build_algorithm(self) -> NonConvexSparseCutGossip:
        """A fresh Algorithm A instance configured for this cut."""
        return NonConvexSparseCutGossip(
            self.partition,
            epoch_length=self.epoch_length(),
            designated_edge=self.config.designated_edge,
            gain=self.config.gain,
            oracle_means=self.config.oracle_means,
        )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(
        self,
        initial_values: "Sequence[float]",
        *,
        seed: "int | None" = None,
        **run_kwargs: object,
    ) -> RunResult:
        """Simulate Algorithm A once from ``initial_values``."""
        simulator = Simulator(
            self.graph, self.build_algorithm(), initial_values, seed=seed
        )
        return simulator.run(**run_kwargs)  # type: ignore[arg-type]

    def averaging_time(
        self,
        initial_values: (
            "Sequence[float] | Callable[[np.random.Generator], Sequence[float]]"
        ),
        *,
        n_replicates: int = 8,
        seed: "int | None" = None,
        max_time: "float | None" = None,
        max_events: "int | None" = None,
    ) -> AveragingTimeEstimate:
        """Monte-Carlo ``T_av`` of Algorithm A on this instance.

        ``max_time`` defaults to ``50 * theorem2_upper_bound()`` — safely
        past the theory prediction, so censoring signals a real problem.
        """
        budget = max_time if max_time is not None else 50.0 * max(
            self.theorem2_upper_bound(), 1.0
        )
        return estimate_averaging_time(
            self.graph,
            self.build_algorithm,
            initial_values,
            n_replicates=n_replicates,
            seed=seed,
            max_time=budget,
            max_events=max_events,
        )

    # ------------------------------------------------------------------
    # theory comparisons
    # ------------------------------------------------------------------

    def theorem1_lower_bound(self) -> float:
        """Theorem 1: no convex algorithm beats this ``T_av`` here.

        ``(1 - 1/e)^2 * n1 / (4 |E12|)`` — the constant the paper's own
        Section-2 derivation yields.
        """
        factor = (1.0 - 1.0 / math.e) ** 2 / 4.0
        return factor * self.partition.n1 / self.partition.cut_size

    def theorem2_upper_bound(self) -> float:
        """Theorem 2's envelope ``C * ln n * (Tvan(G1) + Tvan(G2))``.

        Uses the configured ``Tvan`` estimator; an *order* bound, not a
        sharp constant.
        """
        tvan_1, tvan_2 = self.vanilla_times()
        n = self.graph.n_vertices
        return self.config.epoch_constant * math.log(n) * (tvan_1 + tvan_2)

    def summary(self) -> dict:
        """Everything a caller wants to log about this configuration."""
        tvan_1, tvan_2 = self.vanilla_times()
        return {
            "n_vertices": self.graph.n_vertices,
            "n_edges": self.graph.n_edges,
            "n1": self.partition.n1,
            "n2": self.partition.n2,
            "cut_size": self.partition.cut_size,
            "cut_method": self.cut_method,
            "sparsity": self.partition.sparsity,
            "conductance": self.partition.conductance,
            "tvan_g1": tvan_1,
            "tvan_g2": tvan_2,
            "epoch_length": self.epoch_length(),
            "theorem1_lower_bound_convex": self.theorem1_lower_bound(),
            "theorem2_upper_bound": self.theorem2_upper_bound(),
            "config": self.config.to_dict(),
        }

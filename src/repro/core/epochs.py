"""Epoch-length computation for Algorithm A.

The paper's schedule fires the non-convex swap on every

    ``L = ceil( C * (Tvan(G1) + Tvan(G2)) * ln n )``

-th tick of the designated cut edge, where ``Tvan(Gi)`` is the vanilla
averaging time of side ``i`` run in isolation and ``C >> 1`` is an
unspecified absolute constant (default 3 here; fidelity note F4).

Two ``Tvan`` estimators are provided (fidelity note F2):

* **spectral** (default): ``Tvan_spec(G) = 4 / lambda_2(L(G))``, the time
  for the expected variance to decay by ``e^{-2}`` under rate-1 edge
  clocks.  Deterministic, cheap, and what the orchestrator uses.
* **empirical**: a Monte-Carlo estimate of the paper's Definition-1
  quantile on the subgraph (slower; used to validate the spectral proxy).

Because the designated edge ticks at rate 1, ``L`` ticks take about ``L``
absolute time units, which is exactly the internal-mixing budget the
paper's inequality (4) needs between swaps.
"""

from __future__ import annotations

import math

import numpy as np

from repro.engine.averaging_time import estimate_averaging_time
from repro.errors import AlgorithmError
from repro.graphs.graph import Graph
from repro.graphs.partition import Partition
from repro.graphs.spectral import spectral_mixing_time

#: Default value of the paper's unspecified constant ``C``.
DEFAULT_EPOCH_CONSTANT = 3.0


def vanilla_time_spectral(graph: Graph) -> float:
    """Spectral proxy for ``Tvan(G)``: ``4 / lambda_2(L(G))``.

    A single-vertex graph is already averaged; its ``Tvan`` is 0 (the
    degenerate-but-legal case of a one-node side of a cut).
    """
    if graph.n_vertices < 2:
        return 0.0
    return spectral_mixing_time(graph)


def vanilla_time_empirical(
    graph: Graph,
    *,
    n_replicates: int = 8,
    seed: "int | None" = None,
    max_time: "float | None" = None,
) -> float:
    """Monte-Carlo ``Tvan(G)``: Definition-1 estimate for vanilla gossip.

    The initial vector is a worst-case-ish eigen-aligned one: the sign
    pattern of the Fiedler vector (slowest-mixing direction), scaled to
    zero mean.  ``max_time`` defaults to ``50 x`` the spectral proxy.
    """
    from repro.algorithms.vanilla import VanillaGossip
    from repro.graphs.spectral import fiedler_vector

    if graph.n_vertices < 2:
        raise AlgorithmError("Tvan needs at least two vertices")
    direction = np.sign(fiedler_vector(graph))
    direction = direction - direction.mean()
    if not np.any(direction):
        direction = np.zeros(graph.n_vertices)
        direction[0] = 1.0
        direction -= direction.mean()
    budget = max_time if max_time is not None else 50.0 * vanilla_time_spectral(graph)
    estimate = estimate_averaging_time(
        graph,
        VanillaGossip,
        direction,
        n_replicates=n_replicates,
        seed=seed,
        max_time=budget,
    )
    if estimate.is_censored:
        raise AlgorithmError(
            f"empirical Tvan did not converge within max_time={budget}; "
            f"increase the budget"
        )
    return estimate.estimate


def epoch_length_ticks(
    partition: Partition,
    *,
    constant: float = DEFAULT_EPOCH_CONSTANT,
    method: str = "spectral",
    seed: "int | None" = None,
) -> int:
    """The paper's epoch length ``L`` for a given sparse cut.

    ``method`` is ``"spectral"`` or ``"empirical"`` (see module
    docstring).  The ceiling guarantees ``L >= 1``: on well-connected
    sides the raw product is below 1 and the swap simply fires on every
    tick of the designated edge.
    """
    if constant <= 0:
        raise AlgorithmError(f"epoch constant C must be positive, got {constant}")
    g1, _, g2, _ = partition.subgraphs()
    if method == "spectral":
        tvan_1 = vanilla_time_spectral(g1)
        tvan_2 = vanilla_time_spectral(g2)
    elif method == "empirical":
        tvan_1 = vanilla_time_empirical(g1, seed=seed)
        tvan_2 = vanilla_time_empirical(g2, seed=None if seed is None else seed + 1)
    else:
        raise AlgorithmError(
            f"method must be 'spectral' or 'empirical', got {method!r}"
        )
    n = partition.graph.n_vertices
    raw = constant * (tvan_1 + tvan_2) * math.log(n)
    return max(1, int(math.ceil(raw)))

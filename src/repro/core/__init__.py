"""High-level public API: configure and run Algorithm A end to end."""

from repro.core.epochs import (
    epoch_length_ticks,
    vanilla_time_empirical,
    vanilla_time_spectral,
)
from repro.core.config import AlgorithmAConfig
from repro.core.sparse_cut_averaging import SparseCutAveraging
from repro.core.multi_cut import MultiClusterAveraging, MultiCutGossip

__all__ = [
    "epoch_length_ticks",
    "vanilla_time_empirical",
    "vanilla_time_spectral",
    "AlgorithmAConfig",
    "SparseCutAveraging",
    "MultiClusterAveraging",
    "MultiCutGossip",
]

"""repro — reproduction of Narayanan, "Distributed averaging in the
presence of a sparse cut" (PODC 2008).

The package implements the paper's model (i.i.d. rate-1 Poisson clocks on
edges), its contribution (Algorithm A, non-convex gossip across a sparse
cut), the convex class ``C`` it lower-bounds, the related-work baselines
it cites, and an experiment harness regenerating every claim.

Quick start
-----------
>>> from repro import SparseCutAveraging, dumbbell_graph
>>> pair = dumbbell_graph(64)
>>> sca = SparseCutAveraging(pair.graph, partition=pair.partition)
>>> result = sca.run(list(range(64)), seed=0, target_ratio=1e-4)
>>> bool(round(result.values.mean(), 6) == 31.5)
True

See README.md for the guided tour and DESIGN.md for the system inventory.
"""

from repro.core import (
    AlgorithmAConfig,
    SparseCutAveraging,
    epoch_length_ticks,
    vanilla_time_empirical,
    vanilla_time_spectral,
)
from repro.engine import (
    AlgorithmFactory,
    AveragingTimeEstimate,
    ExecutionBackend,
    MonteCarloRunner,
    PointConfig,
    ProcessPoolBackend,
    ReplicateBudget,
    RunResult,
    SerialBackend,
    Simulator,
    SweepAxis,
    SweepResult,
    SweepRunner,
    SweepSpec,
    TraceRecorder,
    epsilon_averaging_time,
    estimate_averaging_time,
    run_sweep,
    shutdown_shared_backends,
    simulate,
)
from repro.algorithms import (
    ConvexGossip,
    GossipAlgorithm,
    NonConvexSparseCutGossip,
    PushSumGossip,
    SecondOrderDiffusionSync,
    TwoTimescaleGossip,
    VanillaGossip,
    available_algorithms,
    make_algorithm,
)
from repro.graphs import (
    BridgedPair,
    Graph,
    Partition,
    bridged_pair,
    complete_graph,
    dumbbell_graph,
    fiedler_sweep_cut,
    two_cliques,
    two_expanders,
)
from repro.analysis import (
    decompose,
    dumbbell_predictions,
    theorem1_lower_bound,
    theorem2_upper_bound,
)
from repro.experiments import run_experiment

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "AlgorithmAConfig",
    "SparseCutAveraging",
    "epoch_length_ticks",
    "vanilla_time_empirical",
    "vanilla_time_spectral",
    # engine
    "AlgorithmFactory",
    "AveragingTimeEstimate",
    "ExecutionBackend",
    "MonteCarloRunner",
    "PointConfig",
    "ProcessPoolBackend",
    "ReplicateBudget",
    "RunResult",
    "SerialBackend",
    "Simulator",
    "SweepAxis",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "TraceRecorder",
    "epsilon_averaging_time",
    "run_sweep",
    "estimate_averaging_time",
    "shutdown_shared_backends",
    "simulate",
    # algorithms
    "ConvexGossip",
    "GossipAlgorithm",
    "NonConvexSparseCutGossip",
    "PushSumGossip",
    "SecondOrderDiffusionSync",
    "TwoTimescaleGossip",
    "VanillaGossip",
    "available_algorithms",
    "make_algorithm",
    # graphs
    "BridgedPair",
    "Graph",
    "Partition",
    "bridged_pair",
    "complete_graph",
    "dumbbell_graph",
    "fiedler_sweep_cut",
    "two_cliques",
    "two_expanders",
    # analysis
    "decompose",
    "dumbbell_predictions",
    "theorem1_lower_bound",
    "theorem2_upper_bound",
    # experiments
    "run_experiment",
]

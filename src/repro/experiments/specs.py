"""Experiment registry: E1-E10 by id.

Each entry maps to a function ``(scale, seed) -> ExperimentReport``.
``run_experiment`` is the single entry point used by the CLI, the
integration tests (scale="smoke") and the benchmark suite
(scale="default").
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ExperimentError
from repro.experiments.harness import ExperimentReport
from repro.experiments.specs_analysis import (
    e6_stochastic_dominance,
    e7_epoch_contraction,
)
from repro.experiments.specs_baselines import (
    e10_epoch_constant,
    e8_baselines,
    e9_topologies,
)
from repro.experiments.specs_extensions import (
    e11_geographic_gossip,
    e12_multi_cut,
    e13_failure_injection,
    e14_rate_boost,
)
from repro.experiments.specs_scaling import (
    e1_convex_lower_bound,
    e2_nonconvex_upper_bound,
    e3_dumbbell_headline,
    e4_cut_width,
    e5_balance_gain_ablation,
)

#: All registered experiments, in paper-claim order (E1-E10 reproduce the
#: paper's claims; E11-E14 are the documented extensions).
EXPERIMENTS: "dict[str, Callable[..., ExperimentReport]]" = {
    "E1": e1_convex_lower_bound,
    "E2": e2_nonconvex_upper_bound,
    "E3": e3_dumbbell_headline,
    "E4": e4_cut_width,
    "E5": e5_balance_gain_ablation,
    "E6": e6_stochastic_dominance,
    "E7": e7_epoch_contraction,
    "E8": e8_baselines,
    "E9": e9_topologies,
    "E10": e10_epoch_constant,
    "E11": e11_geographic_gossip,
    "E12": e12_multi_cut,
    "E13": e13_failure_injection,
    "E14": e14_rate_boost,
}


def get_experiment(experiment_id: str) -> "Callable[..., ExperimentReport]":
    """Look up an experiment function by id (case-insensitive)."""
    key = experiment_id.upper()
    if key not in EXPERIMENTS:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[key]


def run_experiment(
    experiment_id: str, *, scale: "str | None" = None, seed: "int | None" = None
) -> ExperimentReport:
    """Run one experiment and return its report."""
    function = get_experiment(experiment_id)
    kwargs: dict = {"scale": scale}
    if seed is not None:
        kwargs["seed"] = seed
    return function(**kwargs)

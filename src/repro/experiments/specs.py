"""Experiment registry: E1-E14 by id.

Each entry maps to a function ``(scale, seed, source) ->
ExperimentReport`` built from the declarative report catalogue in
:mod:`repro.reports.registry`.  ``run_experiment`` is the single entry
point used by the CLI, the integration tests (scale="smoke") and the
benchmark suite (scale="default").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.errors import ExperimentError
from repro.experiments.harness import ExperimentReport
from repro.reports.model import ReportSpec, build_report
from repro.reports.registry import REPORT_SPECS

if TYPE_CHECKING:
    from repro.reports.data import SweepSource


def _runner(spec: ReportSpec) -> "Callable[..., ExperimentReport]":
    def run(
        scale: "str | None" = None,
        seed: "int | None" = None,
        source: "SweepSource | None" = None,
    ) -> ExperimentReport:
        return build_report(spec, scale=scale, seed=seed, source=source)

    run.__name__ = f"run_{spec.experiment_id.lower()}"
    run.__qualname__ = run.__name__
    run.__doc__ = spec.summary
    return run


#: All registered experiments, in paper-claim order (E1-E10 reproduce the
#: paper's claims; E11-E14 are the documented extensions).
EXPERIMENTS: "dict[str, Callable[..., ExperimentReport]]" = {
    experiment_id: _runner(spec)
    for experiment_id, spec in REPORT_SPECS.items()
}


def get_experiment(experiment_id: str) -> "Callable[..., ExperimentReport]":
    """Look up an experiment function by id (case-insensitive)."""
    key = experiment_id.upper()
    if key not in EXPERIMENTS:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[key]


def run_experiment(
    experiment_id: str,
    *,
    scale: "str | None" = None,
    seed: "int | None" = None,
    source: "SweepSource | None" = None,
) -> ExperimentReport:
    """Run one experiment and return its report."""
    function = get_experiment(experiment_id)
    kwargs: dict = {"scale": scale}
    if seed is not None:
        kwargs["seed"] = seed
    if source is not None:
        kwargs["source"] = source
    return function(**kwargs)

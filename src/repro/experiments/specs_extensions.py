"""E11/E12/E14 measurement providers: extensions beyond the theorems.

E11 reproduces the motivation of the paper's reference [6] (geographic
gossip); E12 evaluates the multi-cut generalization; E14 asks the
systems question Theorem 1 implies — is a faster cut *clock*
(bandwidth) a substitute for the non-convex *algorithm*?  E13 (failure
injection) is sweep-backed: its grid is declared in
:mod:`repro.experiments.specs_sweeps` and its report assembled in
:mod:`repro.reports` from stored sweep data.

These functions are *providers* for the declarative report pipeline in
:mod:`repro.reports`: they run the measurements and return plain data —
every table, figure, finding and shape check is assembled there, never
here.
"""

from __future__ import annotations

import math

import numpy as np

from repro.algorithms.geographic import GeographicGossip
from repro.algorithms.vanilla import VanillaGossip
from repro.clocks.poisson import PoissonClockFactory
from repro.engine.averaging_time import estimate_averaging_time
from repro.engine.simulator import simulate
from repro.experiments.harness import (
    measure_averaging_time,
    pick,
    resolve_scale,
)
from repro.experiments.specs_scaling import (
    MAX_EVENTS,
    _algorithm_a_factory,
    convex_budget,
    nonconvex_budget,
)
from repro.experiments.workloads import cut_aligned
from repro.graphs.clustering import chain_of_cliques, spectral_clusters
from repro.graphs.composites import two_cliques
from repro.graphs.geometric import random_geometric_network

#: Variance target the E11 message counts are measured to.
E11_TARGET_RATIO = 1e-2


def e11_measurements(scale: "str | None" = None, seed: int = 43) -> dict:
    """Messages-to-accuracy: geographic rendezvous vs local gossip.

    [6]'s motivation: on random geometric graphs, local gossip needs
    ``~n^2`` pairwise updates to average (diffusion), while routing to
    random remote partners needs ``~n^{1.5}`` messages.  Measures total
    messages to a fixed variance target from the *smooth* worst-case
    field (value = x-coordinate, the slow diffusion mode).
    """
    scale = resolve_scale(scale)
    sizes = pick(scale, smoke=[64, 100], default=[100, 256, 484],
                 full=[100, 256, 484, 900])
    replicates = pick(scale, smoke=2, default=3, full=5)

    rows = []
    for index, n in enumerate(sizes):
        radius = 1.3 * math.sqrt(math.log(n) / n)
        network = random_geometric_network(n, radius=radius, seed=seed + index)
        field = network.positions[:, 0].copy()
        field -= field.mean()
        v_msgs, g_msgs, v_time, g_time = [], [], [], []
        for rep in range(replicates):
            run_seed = seed + 100 * index + rep
            vanilla_run = simulate(
                network.graph, VanillaGossip(), field, seed=run_seed,
                target_ratio=E11_TARGET_RATIO, max_events=MAX_EVENTS,
            )
            geographic = GeographicGossip(network, initiation_probability=1.0)
            geo_run = simulate(
                network.graph, geographic, field, seed=run_seed,
                target_ratio=E11_TARGET_RATIO, max_events=MAX_EVENTS,
            )
            v_msgs.append(vanilla_run.n_updates)
            g_msgs.append(geographic.message_count)
            v_time.append(vanilla_run.duration)
            g_time.append(geo_run.duration)
        rows.append(
            {
                "n": n,
                "avg_degree": 2 * network.graph.n_edges / n,
                "vanilla_messages": float(np.mean(v_msgs)),
                "geo_messages": float(np.mean(g_msgs)),
                "vanilla_time": float(np.mean(v_time)),
                "geo_time": float(np.mean(g_time)),
            }
        )
    return {"sizes": sizes, "target_ratio": E11_TARGET_RATIO, "rows": rows}


def e12_measurements(scale: "str | None" = None, seed: int = 47) -> dict:
    """k sparse cuts at once: the multi-cluster extension of Algorithm A."""
    from repro.core.multi_cut import MultiClusterAveraging
    from repro.experiments.specs_sweeps import REPORT_REPLICATES

    scale = resolve_scale(scale)
    clique_sizes = pick(scale, smoke=[8, 16], default=[16, 32, 64],
                        full=[16, 32, 64, 128])
    k = pick(scale, smoke=3, default=4, full=4)
    replicates = REPORT_REPLICATES[scale]

    rows = []
    detection_ok = True
    for index, clique_size in enumerate(clique_sizes):
        graph, clusters = chain_of_cliques(clique_size, k)
        # Cross-check the detector on the planted structure (cheap sizes).
        if graph.n_vertices <= 128:
            detected = spectral_clusters(graph, k)
            sizes_match = sorted(
                detected.cluster_size(c) for c in range(k)
            ) == sorted(clusters.cluster_size(c) for c in range(k))
            detection_ok = detection_ok and sizes_match
        # Adversarial field: +1 on the first half of cliques, -1 on the rest.
        x0 = np.where(clusters.labels < k / 2.0, 1.0, -1.0)
        x0 = x0 - x0.mean()
        mca = MultiClusterAveraging(graph, clusters=clusters)
        budget = 40.0 * (
            sum(mca.cluster_vanilla_times()) * math.log(graph.n_vertices)
            * k * k
            + max(mca.epoch_lengths().values()) * k * k
        )
        est_vanilla = estimate_averaging_time(
            graph, VanillaGossip, x0,
            n_replicates=replicates, seed=seed + 100 + index,
            max_time=budget, max_events=MAX_EVENTS,
        )
        est_multi = estimate_averaging_time(
            graph, mca.build_algorithm, x0,
            n_replicates=replicates, seed=seed + 200 + index,
            max_time=budget, max_events=MAX_EVENTS,
        )
        rows.append(
            {
                "clique_size": clique_size,
                "n": graph.n_vertices,
                "vanilla": est_vanilla.estimate,
                "multi": est_multi.estimate,
            }
        )
    return {
        "clique_sizes": clique_sizes,
        "k": k,
        "detection_ok": detection_ok,
        "rows": rows,
    }


def e14_measurements(scale: "str | None" = None, seed: int = 59) -> dict:
    """Boosted cut clock vs the non-convex swap on one clique pair.

    Theorem 1 counts cut *ticks*: with the designated cut edge ticking at
    rate ``b`` the convex bound relaxes to ``Omega(n1 / (b |E12|))``.
    """
    from repro.experiments.specs_sweeps import REPORT_REPLICATES

    scale = resolve_scale(scale)
    half = pick(scale, smoke=24, default=48, full=96)
    boosts = pick(scale, smoke=[1, 4, 64], default=[1, 4, 16, 64, 256],
                  full=[1, 4, 16, 64, 256])
    replicates = REPORT_REPLICATES[scale]

    pair = two_cliques(half, half, n_bridges=1)
    x0 = cut_aligned(pair.partition)
    cut_edge = pair.designated_edge
    budget = convex_budget(pair)

    boosted_times = []
    for index, boost in enumerate(boosts):
        rates = np.ones(pair.graph.n_edges)
        rates[cut_edge] = float(boost)
        clock_factory = PoissonClockFactory(pair.graph.n_edges, rates=rates)

        estimate = estimate_averaging_time(
            pair.graph, VanillaGossip, x0,
            n_replicates=replicates, seed=seed + 10 * index,
            max_time=budget, max_events=MAX_EVENTS,
            clock_factory=clock_factory,
        )
        boosted_times.append(estimate.estimate)
    factory_a, _ = _algorithm_a_factory(pair)
    est_a = measure_averaging_time(
        pair.graph, factory_a, x0,
        n_replicates=replicates, seed=seed + 999,
        max_time=max(nonconvex_budget(pair), budget), max_events=MAX_EVENTS,
    )
    return {
        "half": half,
        "boosts": boosts,
        "boosted_times": boosted_times,
        "a_tav": est_a.estimate,
    }

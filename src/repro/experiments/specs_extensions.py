"""Experiments E11-E14: extensions beyond the paper's theorems.

E11 reproduces the motivation of the paper's reference [6] (geographic
gossip); E12 evaluates the multi-cut generalization; E13 injects failures
(the designated edge is a single point of failure); E14 asks the systems
question Theorem 1 implies — is a faster cut *clock* (bandwidth) a
substitute for the non-convex *algorithm*?
"""

from __future__ import annotations

import math

import numpy as np

from repro.algorithms.geographic import GeographicGossip
from repro.algorithms.nonconvex import NonConvexSparseCutGossip
from repro.algorithms.resilient import ResilientSparseCutGossip
from repro.algorithms.vanilla import VanillaGossip
from repro.clocks.poisson import PoissonClockFactory
from repro.clocks.unreliable import (
    FailingPoissonClockFactory,
    LossyPoissonClockFactory,
)
from repro.core.epochs import epoch_length_ticks
from repro.core.multi_cut import MultiClusterAveraging
from repro.engine.averaging_time import estimate_averaging_time
from repro.engine.backends import AlgorithmFactory
from repro.errors import ExperimentError
from repro.engine.simulator import simulate
from repro.experiments.harness import (
    ExperimentReport,
    measure_averaging_time,
    pick,
    resolve_scale,
)
from repro.experiments.specs_scaling import (
    MAX_EVENTS,
    _algorithm_a_factory,
    convex_budget,
    nonconvex_budget,
)
from repro.experiments.specs_sweeps import REPORT_REPLICATES
from repro.experiments.workloads import cut_aligned
from repro.graphs.clustering import chain_of_cliques, spectral_clusters
from repro.graphs.composites import two_cliques
from repro.graphs.geometric import random_geometric_network
from repro.util.mathx import fit_power_law
from repro.util.tables import Table


# ----------------------------------------------------------------------
# E11 — geographic gossip on geometric random graphs (reference [6])
# ----------------------------------------------------------------------


def e11_geographic_gossip(
    scale: "str | None" = None, seed: int = 43
) -> ExperimentReport:
    """Messages-to-accuracy: geographic rendezvous vs local gossip.

    [6]'s motivation: on random geometric graphs, local gossip needs
    ``~n^2`` pairwise updates to average (diffusion), while routing to
    random remote partners needs ``~n^{1.5}`` messages.  We measure total
    messages to a fixed variance target from the *smooth* worst-case field
    (value = x-coordinate, the slow diffusion mode) and fit exponents.
    """
    scale = resolve_scale(scale)
    sizes = pick(scale, smoke=[64, 100], default=[100, 256, 484],
                 full=[100, 256, 484, 900])
    replicates = pick(scale, smoke=2, default=3, full=5)
    target_ratio = 1e-2

    report = ExperimentReport(
        experiment_id="E11",
        title="Geographic gossip on geometric random graphs (reference [6])",
        paper_claim=(
            "Narayanan PODC'07 (the paper's ref. [6], its non-convexity "
            "precursor): routing to random remote partners beats local "
            "diffusion on geometric graphs — fewer total messages, with "
            "the advantage growing in n."
        ),
    )
    table = Table(
        ["n", "avg degree", "msgs vanilla", "msgs geographic", "msg ratio",
         "time vanilla", "time geographic"],
        title=f"E11: messages/time to variance ratio {target_ratio:g} "
        "(smooth field)",
    )
    vanilla_messages, geo_messages, ratios = [], [], []
    for index, n in enumerate(sizes):
        radius = 1.3 * math.sqrt(math.log(n) / n)
        network = random_geometric_network(n, radius=radius, seed=seed + index)
        field = network.positions[:, 0].copy()
        field -= field.mean()
        v_msgs, g_msgs, v_time, g_time = [], [], [], []
        for rep in range(replicates):
            run_seed = seed + 100 * index + rep
            vanilla_run = simulate(
                network.graph, VanillaGossip(), field, seed=run_seed,
                target_ratio=target_ratio, max_events=MAX_EVENTS,
            )
            geographic = GeographicGossip(network, initiation_probability=1.0)
            geo_run = simulate(
                network.graph, geographic, field, seed=run_seed,
                target_ratio=target_ratio, max_events=MAX_EVENTS,
            )
            v_msgs.append(vanilla_run.n_updates)
            g_msgs.append(geographic.message_count)
            v_time.append(vanilla_run.duration)
            g_time.append(geo_run.duration)
        mean_v = float(np.mean(v_msgs))
        mean_g = float(np.mean(g_msgs))
        table.add_row(
            [n, 2 * network.graph.n_edges / n, mean_v, mean_g,
             mean_v / mean_g, float(np.mean(v_time)), float(np.mean(g_time))]
        )
        vanilla_messages.append(mean_v)
        geo_messages.append(mean_g)
        ratios.append(mean_v / mean_g)
    report.tables.append(table)

    exponent_vanilla, _ = fit_power_law(sizes, vanilla_messages)
    exponent_geo, _ = fit_power_law(sizes, geo_messages)
    report.findings["vanilla_message_exponent"] = exponent_vanilla
    report.findings["geographic_message_exponent"] = exponent_geo
    report.add_check(
        "geographic needs asymptotically fewer messages",
        exponent_geo < exponent_vanilla - 0.15,
        f"message exponents: geographic {exponent_geo:.2f} vs vanilla "
        f"{exponent_vanilla:.2f}",
    )
    report.add_check(
        "the message advantage grows with n",
        ratios[-1] > ratios[0],
        f"vanilla/geographic message ratio: {ratios[0]:.2f} -> {ratios[-1]:.2f}",
    )
    return report


# ----------------------------------------------------------------------
# E12 — multi-cut generalization on chains of cliques
# ----------------------------------------------------------------------


def e12_multi_cut(scale: "str | None" = None, seed: int = 47) -> ExperimentReport:
    """k sparse cuts at once: the multi-cluster extension of Algorithm A."""
    scale = resolve_scale(scale)
    clique_sizes = pick(scale, smoke=[8, 16], default=[16, 32, 64],
                        full=[16, 32, 64, 128])
    k = pick(scale, smoke=3, default=4, full=4)
    replicates = REPORT_REPLICATES[scale]

    report = ExperimentReport(
        experiment_id="E12",
        title=f"Multi-cut extension: chain of {k} cliques",
        paper_claim=(
            "Extension beyond the paper (its single-cut assumption is the "
            "natural thing to relax): one designated edge per adjacent "
            "cluster pair, pairwise harmonic gains. Cluster means then mix "
            "like vanilla gossip on the quotient path, so the advantage "
            "over convex gossip should persist and scale."
        ),
    )
    table = Table(
        ["clique size", "n", "T_av vanilla", "T_av multi-cut A", "speedup"],
        title=f"E12: chain of {k} cliques, single bridges",
    )
    vanilla_times, multi_times = [], []
    detection_ok = True
    for index, clique_size in enumerate(clique_sizes):
        graph, clusters = chain_of_cliques(clique_size, k)
        # Cross-check the detector on the planted structure (cheap sizes).
        if graph.n_vertices <= 128:
            detected = spectral_clusters(graph, k)
            sizes_match = sorted(
                detected.cluster_size(c) for c in range(k)
            ) == sorted(clusters.cluster_size(c) for c in range(k))
            detection_ok = detection_ok and sizes_match
        # Adversarial field: +1 on the first half of cliques, -1 on the rest.
        x0 = np.where(clusters.labels < k / 2.0, 1.0, -1.0)
        x0 = x0 - x0.mean()
        mca = MultiClusterAveraging(graph, clusters=clusters)
        budget = 40.0 * (
            sum(mca.cluster_vanilla_times()) * math.log(graph.n_vertices)
            * k * k
            + max(mca.epoch_lengths().values()) * k * k
        )
        est_vanilla = estimate_averaging_time(
            graph, VanillaGossip, x0,
            n_replicates=replicates, seed=seed + 100 + index,
            max_time=budget, max_events=MAX_EVENTS,
        )
        est_multi = estimate_averaging_time(
            graph, mca.build_algorithm, x0,
            n_replicates=replicates, seed=seed + 200 + index,
            max_time=budget, max_events=MAX_EVENTS,
        )
        speedup = est_vanilla.estimate / max(est_multi.estimate, 1e-9)
        table.add_row(
            [clique_size, graph.n_vertices, est_vanilla.estimate,
             est_multi.estimate, speedup]
        )
        vanilla_times.append(est_vanilla.estimate)
        multi_times.append(est_multi.estimate)
    report.tables.append(table)

    exponent_vanilla, _ = fit_power_law(clique_sizes, vanilla_times)
    exponent_multi, _ = fit_power_law(clique_sizes, multi_times)
    report.findings["vanilla_exponent_in_clique_size"] = exponent_vanilla
    report.findings["multi_cut_exponent_in_clique_size"] = exponent_multi
    report.add_check(
        "spectral clustering recovers the planted chain structure",
        detection_ok,
        f"recursive bisection found the {k} cliques",
    )
    report.add_check(
        "multi-cut A converges on every instance",
        all(math.isfinite(t) for t in multi_times),
        "no censored quantile",
    )
    report.add_check(
        "multi-cut A scales better in clique size than vanilla",
        exponent_multi < exponent_vanilla - 0.3,
        f"exponents: multi-cut {exponent_multi:.2f} vs vanilla "
        f"{exponent_vanilla:.2f}",
    )
    report.add_check(
        "multi-cut A wins at the largest size",
        vanilla_times[-1] > 1.5 * multi_times[-1],
        f"{vanilla_times[-1]:.3g} vs {multi_times[-1]:.3g}",
    )
    return report


# ----------------------------------------------------------------------
# E13 — failure injection: the designated edge dies
# ----------------------------------------------------------------------


def e13_failure_injection(
    scale: "str | None" = None, seed: int = 53
) -> ExperimentReport:
    """Algorithm A's single point of failure, and the failover fix."""
    scale = resolve_scale(scale)
    half = pick(scale, smoke=12, default=24, full=48)
    replicates = REPORT_REPLICATES[scale]
    death_time = 2.0

    pair = two_cliques(half, half, n_bridges=3)
    x0 = cut_aligned(pair.partition)
    epoch = epoch_length_ticks(pair.partition, constant=3.0)
    designated = pair.designated_edge

    report = ExperimentReport(
        experiment_id="E13",
        title="Failure injection: designated cut edge dies at t = 2",
        paper_claim=(
            "Operational corollary of the paper's design: Algorithm A "
            "funnels all cross-cut progress through e_c, so losing that "
            "one link stalls it forever even though two other bridges "
            "remain; a heartbeat-failover variant recovers, and plain "
            "convex gossip (which uses all bridges) merely slows down."
        ),
    )

    # Picklable factories (not closures) so replicates can fan out to
    # worker processes.
    failing_clock = FailingPoissonClockFactory(
        pair.graph.n_edges, {designated: death_time}
    )

    budget = 3.0 * convex_budget(pair)
    rows = [
        (
            "vanilla (3 bridges, 1 dies)",
            VanillaGossip,
            failing_clock,
        ),
        (
            "algorithm A (plain)",
            AlgorithmFactory(
                NonConvexSparseCutGossip, pair.partition, epoch_length=epoch
            ),
            failing_clock,
        ),
        (
            "algorithm A (resilient failover)",
            AlgorithmFactory(
                ResilientSparseCutGossip, pair.partition, epoch_length=epoch
            ),
            failing_clock,
        ),
        (
            "vanilla (30% message loss, no deaths)",
            VanillaGossip,
            LossyPoissonClockFactory(pair.graph.n_edges, 0.3),
        ),
    ]
    table = Table(
        ["configuration", "T_av", "outcome"],
        title=f"E13: dumbbell-with-3-bridges (n = {2 * half}), "
        f"e_c dies at t = {death_time:g}",
    )
    loss_label = "vanilla (30% message loss, no deaths)"
    measured: dict[str, float] = {}
    censored: dict[str, bool] = {}
    loss_seed: "int | None" = None
    for index, (label, factory, clock_factory) in enumerate(rows):
        if label == loss_label:
            loss_seed = seed + index
        estimate = estimate_averaging_time(
            pair.graph, factory, x0,
            n_replicates=replicates, seed=seed + index,
            max_time=budget, max_events=MAX_EVENTS,
            clock_factory=clock_factory,
        )
        measured[label] = estimate.estimate
        censored[label] = estimate.is_censored
        outcome = "stalls forever" if estimate.is_censored else "converges"
        cell = "censored" if estimate.is_censored else f"{estimate.estimate:.4g}"
        table.add_row([label, cell, outcome])
    report.tables.append(table)

    # Baseline without failures, for the slowdown findings.  Reuses the
    # lossy row's root seed so both estimates see the *same* underlying
    # Poisson tick sequence (common random numbers — the lossy factory
    # draws its drop decisions from a sibling stream, so its ticks are an
    # exact thinning of this baseline's): the slowdown ratio measures the
    # loss effect rather than replicate noise.
    if loss_seed is None:  # label drift would silently unpair the seeds
        raise ExperimentError(f"E13 rows is missing the {loss_label!r} row")
    healthy = estimate_averaging_time(
        pair.graph, VanillaGossip, x0,
        n_replicates=replicates, seed=loss_seed,
        max_time=budget, max_events=MAX_EVENTS,
    )
    report.findings["vanilla_healthy_tav"] = healthy.estimate
    report.findings["lossy_slowdown"] = (
        measured[loss_label] / healthy.estimate
    )

    report.add_check(
        "plain Algorithm A stalls when e_c dies",
        censored["algorithm A (plain)"],
        "all cross-cut progress was funneled through the dead link",
    )
    report.add_check(
        "the resilient variant converges through failover",
        not censored["algorithm A (resilient failover)"],
        f"T_av = {measured['algorithm A (resilient failover)']:.3g}",
    )
    report.add_check(
        "vanilla survives the death (it uses all bridges)",
        not censored["vanilla (3 bridges, 1 dies)"],
        f"T_av = {measured['vanilla (3 bridges, 1 dies)']:.3g}",
    )
    slowdown = report.findings["lossy_slowdown"]
    report.add_check(
        "30% tick loss slows vanilla by ~1/0.7 (Poisson thinning)",
        1.1 <= slowdown <= 2.2,
        f"measured slowdown {slowdown:.2f} (thinning predicts ~1.43)",
    )
    return report


# ----------------------------------------------------------------------
# E14 — bandwidth vs algorithm: boosting the cut edge's clock rate
# ----------------------------------------------------------------------


def e14_rate_boost(scale: "str | None" = None, seed: int = 59) -> ExperimentReport:
    """Is a faster cut clock a substitute for the non-convex update?

    Theorem 1 counts cut *ticks*: with the designated cut edge ticking at
    rate ``b`` the convex bound relaxes to ``Omega(n1 / (b |E12|))``.  So
    bandwidth does substitute — linearly and at linear cost — while the
    algorithmic fix gets the whole factor at rate 1.
    """
    scale = resolve_scale(scale)
    half = pick(scale, smoke=24, default=48, full=96)
    boosts = pick(scale, smoke=[1, 4, 64], default=[1, 4, 16, 64, 256],
                  full=[1, 4, 16, 64, 256])
    replicates = REPORT_REPLICATES[scale]

    pair = two_cliques(half, half, n_bridges=1)
    x0 = cut_aligned(pair.partition)
    cut_edge = pair.designated_edge
    budget = convex_budget(pair)

    report = ExperimentReport(
        experiment_id="E14",
        title="Bandwidth-vs-algorithm: boosted cut clock vs non-convex swap",
        paper_claim=(
            "Theorem 1's bound counts cut ticks, so multiplying the cut "
            "edge's clock rate by b buys a ~b-fold convex speedup (until "
            "internal mixing dominates); Algorithm A achieves the "
            "bottleneck-free time at rate 1."
        ),
    )
    table = Table(
        ["cut clock rate b", "T_av vanilla (boosted)", "vs b=1"],
        title=f"E14: clique pair n = {2 * half}, one bridge",
    )
    boosted_times = []
    for index, boost in enumerate(boosts):
        rates = np.ones(pair.graph.n_edges)
        rates[cut_edge] = float(boost)
        clock_factory = PoissonClockFactory(pair.graph.n_edges, rates=rates)

        estimate = estimate_averaging_time(
            pair.graph, VanillaGossip, x0,
            n_replicates=replicates, seed=seed + 10 * index,
            max_time=budget, max_events=MAX_EVENTS,
            clock_factory=clock_factory,
        )
        boosted_times.append(estimate.estimate)
        table.add_row(
            [boost, estimate.estimate, boosted_times[0] / estimate.estimate]
        )
    factory_a, _ = _algorithm_a_factory(pair)
    est_a = measure_averaging_time(
        pair.graph, factory_a, x0,
        n_replicates=replicates, seed=seed + 999,
        max_time=max(nonconvex_budget(pair), budget), max_events=MAX_EVENTS,
    )
    table.add_row(["algorithm A @ rate 1", est_a.estimate,
                   boosted_times[0] / max(est_a.estimate, 1e-9)])
    report.tables.append(table)

    gain_small = boosted_times[0] / boosted_times[1]
    boost_small = boosts[1] / boosts[0]
    report.findings["speedup_at_first_boost"] = gain_small
    report.findings["algorithm_a_equivalent_boost"] = (
        boosted_times[0] / max(est_a.estimate, 1e-9)
    )
    report.add_check(
        "moderate boosts pay off near-linearly",
        0.3 * boost_small <= gain_small <= 1.5 * boost_small,
        f"boost x{boost_small:g} bought x{gain_small:.1f}",
    )
    report.add_check(
        "boost returns saturate at the internal-mixing floor",
        boosted_times[0] / boosted_times[-1]
        < 0.8 * (boosts[-1] / boosts[0]),
        f"x{boosts[-1]:g} rate bought only "
        f"x{boosted_times[0] / boosted_times[-1]:.1f}",
    )
    report.add_check(
        "algorithm A at rate 1 matches a large bandwidth multiplier",
        boosted_times[0] / max(est_a.estimate, 1e-9) >= 2.0,
        f"equivalent to x{boosted_times[0] / max(est_a.estimate, 1e-9):.1f} "
        "cut bandwidth",
    )
    return report

"""Initial-value workloads for averaging experiments.

All workloads are zero-mean by default so the target consensus value is 0
and variance ratios are directly comparable across instances.  The
central one is :func:`cut_aligned` — the adversarial vector from the
paper's own Theorem-1 proof (+1 on ``V1``, ``-n1/n2`` on ``V2``), which
maximally loads the cut and stands in for the definition's ``sup_x``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import ExperimentError
from repro.graphs.graph import Graph
from repro.graphs.partition import Partition
from repro.util.rng import as_generator


def cut_aligned(partition: Partition) -> np.ndarray:
    """The paper's worst case: ``+1`` on ``V1``, ``-n1/n2`` on ``V2``.

    Zero-mean by construction; all initial variance sits across the cut.
    """
    values = np.empty(partition.graph.n_vertices, dtype=np.float64)
    values[partition.vertices_1] = 1.0
    values[partition.vertices_2] = -partition.n1 / partition.n2
    return values


def gaussian(
    n: int,
    *,
    rng: "np.random.Generator | int | None" = None,
    scale: float = 1.0,
    zero_mean: bool = True,
) -> np.ndarray:
    """I.i.d. normal values (a benign, cut-agnostic workload)."""
    if n < 1:
        raise ExperimentError(f"n must be positive, got {n}")
    if scale <= 0:
        raise ExperimentError(f"scale must be positive, got {scale}")
    generator = as_generator(rng)
    values = generator.normal(0.0, scale, size=n)
    if zero_mean:
        values = values - values.mean()
    return values


def spike(n: int, *, vertex: int = 0, zero_mean: bool = True) -> np.ndarray:
    """A single loaded node (the load-balancing "hot spot" scenario)."""
    if n < 1:
        raise ExperimentError(f"n must be positive, got {n}")
    if not 0 <= vertex < n:
        raise ExperimentError(f"vertex {vertex} out of range for n={n}")
    values = np.zeros(n, dtype=np.float64)
    values[vertex] = float(n)
    if zero_mean:
        values = values - values.mean()
    return values


def linear_gradient(n: int, *, zero_mean: bool = True) -> np.ndarray:
    """Values proportional to the vertex index (a smooth field)."""
    if n < 1:
        raise ExperimentError(f"n must be positive, got {n}")
    values = np.arange(n, dtype=np.float64)
    if zero_mean:
        values = values - values.mean()
    return values


def bimodal_noise(
    partition: Partition,
    *,
    rng: "np.random.Generator | int | None" = None,
    noise: float = 0.1,
) -> np.ndarray:
    """Cut-aligned signal plus i.i.d. Gaussian noise (realistic sensors).

    Models two instrument clusters whose readings differ systematically
    across the cut and fluctuate within each side.
    """
    if noise < 0:
        raise ExperimentError(f"noise must be non-negative, got {noise}")
    generator = as_generator(rng)
    values = cut_aligned(partition)
    values = values + generator.normal(0.0, noise, size=values.shape)
    return values - values.mean()


class FixedWorkload:
    """Picklable sampler returning the same vector for every replicate."""

    def __init__(self, values: np.ndarray) -> None:
        self.values = np.asarray(values, dtype=np.float64)

    def __call__(self, rng: np.random.Generator) -> np.ndarray:
        return self.values


class GaussianWorkload:
    """Picklable sampler: i.i.d. zero-mean normals per replicate."""

    def __init__(self, n: int, *, scale: float = 1.0) -> None:
        self.n = int(n)
        self.scale = float(scale)

    def __call__(self, rng: np.random.Generator) -> np.ndarray:
        return gaussian(self.n, rng=rng, scale=self.scale)


class BimodalNoiseWorkload:
    """Picklable sampler: cut-aligned signal plus fresh noise per replicate."""

    def __init__(self, partition: Partition, *, noise: float = 0.1) -> None:
        self.partition = partition
        self.noise = float(noise)

    def __call__(self, rng: np.random.Generator) -> np.ndarray:
        return bimodal_noise(self.partition, rng=rng, noise=self.noise)


def make_workload(
    name: str,
    *,
    graph: Graph,
    partition: "Partition | None" = None,
) -> "Callable[[np.random.Generator], np.ndarray]":
    """Factory: workload name -> per-replicate sampler ``rng -> values``.

    Deterministic workloads ignore the rng; partition-dependent ones
    require ``partition``.  Names: ``cut_aligned``, ``gaussian``,
    ``spike``, ``linear_gradient``, ``bimodal_noise``.  Samplers are
    picklable objects, so they work under process-pool replication
    (:mod:`repro.engine.backends`) as well as serially.
    """
    n = graph.n_vertices

    def need_partition() -> Partition:
        if partition is None:
            raise ExperimentError(f"workload {name!r} requires a partition")
        return partition

    if name == "cut_aligned":
        return FixedWorkload(cut_aligned(need_partition()))
    if name == "gaussian":
        return GaussianWorkload(n)
    if name == "spike":
        return FixedWorkload(spike(n))
    if name == "linear_gradient":
        return FixedWorkload(linear_gradient(n))
    if name == "bimodal_noise":
        return BimodalNoiseWorkload(need_partition())
    raise ExperimentError(
        f"unknown workload {name!r}; expected cut_aligned/gaussian/spike/"
        f"linear_gradient/bimodal_noise"
    )

"""Initial-value workloads for averaging experiments.

All workloads are zero-mean by default so the target consensus value is 0
and variance ratios are directly comparable across instances.  The
central one is :func:`cut_aligned` — the adversarial vector from the
paper's own Theorem-1 proof (+1 on ``V1``, ``-n1/n2`` on ``V2``), which
maximally loads the cut and stands in for the definition's ``sup_x``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import ExperimentError
from repro.graphs.graph import Graph
from repro.graphs.partition import Partition
from repro.util.rng import as_generator


def cut_aligned(partition: Partition) -> np.ndarray:
    """The paper's worst case: ``+1`` on ``V1``, ``-n1/n2`` on ``V2``.

    Zero-mean by construction; all initial variance sits across the cut.
    """
    values = np.empty(partition.graph.n_vertices, dtype=np.float64)
    values[partition.vertices_1] = 1.0
    values[partition.vertices_2] = -partition.n1 / partition.n2
    return values


def gaussian(
    n: int,
    *,
    rng: "np.random.Generator | int | None" = None,
    scale: float = 1.0,
    zero_mean: bool = True,
) -> np.ndarray:
    """I.i.d. normal values (a benign, cut-agnostic workload)."""
    if n < 1:
        raise ExperimentError(f"n must be positive, got {n}")
    if scale <= 0:
        raise ExperimentError(f"scale must be positive, got {scale}")
    generator = as_generator(rng)
    values = generator.normal(0.0, scale, size=n)
    if zero_mean:
        values = values - values.mean()
    return values


def spike(n: int, *, vertex: int = 0, zero_mean: bool = True) -> np.ndarray:
    """A single loaded node (the load-balancing "hot spot" scenario)."""
    if n < 1:
        raise ExperimentError(f"n must be positive, got {n}")
    if not 0 <= vertex < n:
        raise ExperimentError(f"vertex {vertex} out of range for n={n}")
    values = np.zeros(n, dtype=np.float64)
    values[vertex] = float(n)
    if zero_mean:
        values = values - values.mean()
    return values


def linear_gradient(n: int, *, zero_mean: bool = True) -> np.ndarray:
    """Values proportional to the vertex index (a smooth field)."""
    if n < 1:
        raise ExperimentError(f"n must be positive, got {n}")
    values = np.arange(n, dtype=np.float64)
    if zero_mean:
        values = values - values.mean()
    return values


def bimodal_noise(
    partition: Partition,
    *,
    rng: "np.random.Generator | int | None" = None,
    noise: float = 0.1,
) -> np.ndarray:
    """Cut-aligned signal plus i.i.d. Gaussian noise (realistic sensors).

    Models two instrument clusters whose readings differ systematically
    across the cut and fluctuate within each side.
    """
    if noise < 0:
        raise ExperimentError(f"noise must be non-negative, got {noise}")
    generator = as_generator(rng)
    values = cut_aligned(partition)
    values = values + generator.normal(0.0, noise, size=values.shape)
    return values - values.mean()


def make_workload(
    name: str,
    *,
    graph: Graph,
    partition: "Partition | None" = None,
) -> "Callable[[np.random.Generator], np.ndarray]":
    """Factory: workload name -> per-replicate sampler ``rng -> values``.

    Deterministic workloads ignore the rng; partition-dependent ones
    require ``partition``.  Names: ``cut_aligned``, ``gaussian``,
    ``spike``, ``linear_gradient``, ``bimodal_noise``.
    """
    n = graph.n_vertices

    def need_partition() -> Partition:
        if partition is None:
            raise ExperimentError(f"workload {name!r} requires a partition")
        return partition

    if name == "cut_aligned":
        fixed = cut_aligned(need_partition())
        return lambda rng: fixed
    if name == "gaussian":
        return lambda rng: gaussian(n, rng=rng)
    if name == "spike":
        fixed_spike = spike(n)
        return lambda rng: fixed_spike
    if name == "linear_gradient":
        fixed_gradient = linear_gradient(n)
        return lambda rng: fixed_gradient
    if name == "bimodal_noise":
        part = need_partition()
        return lambda rng: bimodal_noise(part, rng=rng)
    raise ExperimentError(
        f"unknown workload {name!r}; expected cut_aligned/gaussian/spike/"
        f"linear_gradient/bimodal_noise"
    )

"""Experiments E1-E5: the paper's quantitative claims as measurements.

Each function regenerates one "table/figure" a systems version of the
paper would have shown, with scale presets (smoke/default/full) so the
same code serves integration tests and the benchmark suite.
"""

from __future__ import annotations

from repro.algorithms.nonconvex import NonConvexSparseCutGossip
from repro.algorithms.vanilla import VanillaGossip
from repro.analysis.bounds import theorem1_lower_bound, theorem2_upper_bound
from repro.core.epochs import epoch_length_ticks
from repro.engine.backends import AlgorithmFactory
from repro.experiments.harness import (
    ExperimentReport,
    measure_averaging_time,
    resolve_scale,
)
from repro.engine.sweeps import run_sweep
from repro.experiments.workloads import cut_aligned
from repro.graphs.composites import BridgedPair, dumbbell_graph
from repro.graphs.spectral import spectral_mixing_time
from repro.util.ascii_plot import line_plot
from repro.util.mathx import fit_power_law
from repro.util.tables import Table

#: Default events cap per replicate (a generous runaway guard).
MAX_EVENTS = 20_000_000


def convex_budget(pair: BridgedPair) -> float:
    """A run-time cap safely above any convex algorithm's T_av here.

    Convex T_av is within a small factor of the whole-graph spectral
    mixing time; 10x that (plus the Theorem-1 floor) never censors a
    healthy run, while monotone runs stop at the first crossing anyway.
    """
    return 10.0 * (
        theorem1_lower_bound(pair.partition)
        + spectral_mixing_time(pair.graph)
    )


def nonconvex_budget(pair: BridgedPair, *, constant: float = 3.0) -> float:
    """A run-time cap safely above Algorithm A's T_av here."""
    bound = theorem2_upper_bound(pair.partition, constant=constant)
    return 50.0 * (bound + 2.0)


def _algorithm_a_factory(pair: BridgedPair, *, constant: float = 3.0, gain="exact"):
    epoch = epoch_length_ticks(pair.partition, constant=constant)
    # A picklable factory (not a closure) so experiments can fan
    # replicates out to worker processes.
    factory = AlgorithmFactory(
        NonConvexSparseCutGossip, pair.partition, epoch_length=epoch, gain=gain
    )
    return factory, epoch


# ----------------------------------------------------------------------
# E1 — Theorem 1: convex lower bound Omega(n1 / |E12|)
# ----------------------------------------------------------------------


def e1_convex_lower_bound(
    scale: "str | None" = None, seed: int = 7
) -> ExperimentReport:
    """Convex algorithms on single-bridge expander pairs scale linearly.

    The size x algorithm grid runs through the sweep scheduler (one
    backend batch per round, shared-state shipping); this function only
    aggregates the resulting :class:`SweepResult` — there is no second
    estimator path to drift from.
    """
    scale = resolve_scale(scale)
    from repro.experiments.specs_sweeps import (
        E1_SIZES,
        EXPANDER_DEGREE,
        build_size_pair,
        e1_sweep,
        report_budget,
    )

    sizes = list(E1_SIZES[scale])
    degree = EXPANDER_DEGREE[scale]
    result = run_sweep(
        e1_sweep(scale, seed=seed), seed=seed, budget=report_budget(scale)
    )

    report = ExperimentReport(
        experiment_id="E1",
        title="Convex lower bound: T_av vs n at one bridge (expander pairs)",
        paper_claim=(
            "Theorem 1: every algorithm in class C has "
            "T_av = Omega(min(n1, n2) / |E12|); with |E12| = 1 this is "
            "linear growth in n."
        ),
    )
    table = Table(
        ["n", "n1", "|E12|", "thm1 bound", "T_av vanilla", "T_av lazy(0.75)",
         "vanilla/bound"],
        title="E1: convex averaging time vs size (cut width 1)",
    )
    ns, vanilla_times, lazy_times, bounds = [], [], [], []
    for n in sizes:
        pair = build_size_pair(n, degree=degree, seed=seed)
        est_vanilla = result.point(n=n, algorithm="vanilla").estimate
        est_lazy = result.point(n=n, algorithm="lazy").estimate
        bound = theorem1_lower_bound(pair.partition)
        table.add_row(
            [n, pair.partition.n1, pair.partition.cut_size, bound,
             est_vanilla, est_lazy, est_vanilla / bound]
        )
        ns.append(pair.graph.n_vertices)
        vanilla_times.append(est_vanilla)
        lazy_times.append(est_lazy)
        bounds.append(bound)
    report.tables.append(table)
    report.figures.append(
        line_plot(
            {
                "vanilla": (ns, vanilla_times),
                "lazy": (ns, lazy_times),
                "thm1 bound": (ns, bounds),
            },
            title="E1: T_av vs n (log-log); slope ~ 1 = linear growth",
            logx=True,
            logy=True,
        )
    )

    exponent, _ = fit_power_law(ns, vanilla_times)
    report.findings["vanilla_scaling_exponent"] = exponent
    report.findings["lazy_scaling_exponent"] = fit_power_law(ns, lazy_times)[0]
    above = all(t >= b for t, b in zip(vanilla_times, bounds)) and all(
        t >= b for t, b in zip(lazy_times, bounds)
    )
    report.add_check(
        "measured T_av respects the Theorem-1 bound",
        above,
        "min measured/bound = "
        + format(
            min(
                t / b
                for t, b in zip(vanilla_times + lazy_times, bounds + bounds)
            ),
            ".2f",
        ),
    )
    if len(ns) >= 3:
        report.add_check(
            "vanilla grows ~linearly in n",
            0.6 <= exponent <= 1.4,
            f"log-log slope {exponent:.2f} (theory: 1)",
        )
    return report


# ----------------------------------------------------------------------
# E2 — Theorem 2: Algorithm A upper bound O(log n (Tvan1 + Tvan2))
# ----------------------------------------------------------------------


def e2_nonconvex_upper_bound(
    scale: "str | None" = None, seed: int = 11
) -> ExperimentReport:
    """Algorithm A on the same instances stays inside its envelope.

    Like E1, the size grid runs through the sweep scheduler and this
    function aggregates the :class:`SweepResult` — bounds and epochs are
    recomputed from the shared pair constructor, never re-measured.
    """
    scale = resolve_scale(scale)
    from repro.experiments.specs_sweeps import (
        E1_SIZES,
        EXPANDER_DEGREE,
        build_size_pair,
        e2_sweep,
        report_budget,
    )

    sizes = list(E1_SIZES[scale])
    degree = EXPANDER_DEGREE[scale]
    result = run_sweep(
        e2_sweep(scale, seed=seed), seed=seed, budget=report_budget(scale)
    )

    report = ExperimentReport(
        experiment_id="E2",
        title="Algorithm A: T_av vs n against the Theorem-2 envelope",
        paper_claim=(
            "Theorem 2: Algorithm A has "
            "T_av = O(log n * (Tvan(G1) + Tvan(G2))); on well-connected "
            "sides this is polylogarithmic in n."
        ),
    )
    table = Table(
        ["n", "epoch L", "thm2 envelope", "T_av A", "envelope margin"],
        title="E2: non-convex averaging time vs size (cut width 1)",
    )
    ns, a_times, envelopes = [], [], []
    for n in sizes:
        pair = build_size_pair(n, degree=degree, seed=seed)
        _, epoch = _algorithm_a_factory(pair)
        estimate = result.point(n=n).estimate
        envelope = theorem2_upper_bound(pair.partition, constant=3.0)
        table.add_row(
            [n, epoch, envelope, estimate,
             (envelope + 2.0) / max(estimate, 1e-9)]
        )
        ns.append(pair.graph.n_vertices)
        a_times.append(estimate)
        envelopes.append(envelope)
    report.tables.append(table)
    report.figures.append(
        line_plot(
            {"algorithm A": (ns, a_times), "thm2 envelope": (ns, envelopes)},
            title="E2: T_av(A) vs n (log-log); flat/slow growth",
            logx=True,
            logy=True,
        )
    )
    exponent, _ = fit_power_law(ns, a_times)
    report.findings["a_scaling_exponent"] = exponent
    # The theorem is an order bound; allow a constant factor on top of the
    # envelope plus the epoch-tick latency the ceiling introduces.
    inside = all(t <= 4.0 * (env + 2.0) for t, env in zip(a_times, envelopes))
    report.add_check(
        "T_av(A) within a constant factor of the Theorem-2 envelope",
        inside,
        f"max T_av/(envelope+2) = "
        f"{max(t / (env + 2.0) for t, env in zip(a_times, envelopes)):.2f} (<= 4)",
    )
    if len(ns) >= 3:
        report.add_check(
            "T_av(A) grows sublinearly (polylog regime)",
            exponent <= 0.6,
            f"log-log slope {exponent:.2f} (vanilla in E1 is ~1)",
        )
    return report


# ----------------------------------------------------------------------
# E3 — headline: the dumbbell, Omega(n) vs O(log n)
# ----------------------------------------------------------------------


def e3_dumbbell_headline(
    scale: "str | None" = None, seed: int = 13
) -> ExperimentReport:
    """Two cliques + one bridge: the paper's exponential separation.

    Sizes start at 32: below that, Algorithm A's first-swap latency (the
    designated edge must tick ``L`` times before any mass crosses) eats
    the whole budget and the asymptotic separation has not kicked in yet
    — an honest small-``n`` effect worth knowing about, reported in
    EXPERIMENTS.md.
    """
    scale = resolve_scale(scale)
    # The size grid is declared once, as the E3 SweepSpec's axis
    # (specs_sweeps is the single source of truth for ported grids).
    from repro.experiments.specs_sweeps import E3_SIZES, REPORT_REPLICATES

    sizes = list(E3_SIZES[scale])
    replicates = REPORT_REPLICATES[scale]

    report = ExperimentReport(
        experiment_id="E3",
        title="Dumbbell headline: vanilla Omega(n) vs Algorithm A O(log n)",
        paper_claim=(
            "For G' = two n/2-cliques joined by one edge: any convex "
            "algorithm needs Omega(n) while Algorithm A needs O(log n)."
        ),
    )
    table = Table(
        ["n", "T_av vanilla", "T_av A", "speedup", "thm1 bound", "thm2 dumbbell"],
        title="E3: dumbbell averaging times",
    )
    ns, vanilla_times, a_times, speedups = [], [], [], []
    for index, n in enumerate(sizes):
        pair = dumbbell_graph(n)
        x0 = cut_aligned(pair.partition)
        est_vanilla = measure_averaging_time(
            pair.graph, VanillaGossip, x0,
            n_replicates=replicates, seed=seed + 100 + index,
            max_time=convex_budget(pair), max_events=MAX_EVENTS,
        )
        factory, _ = _algorithm_a_factory(pair)
        est_a = measure_averaging_time(
            pair.graph, factory, x0,
            n_replicates=replicates, seed=seed + 200 + index,
            max_time=nonconvex_budget(pair), max_events=MAX_EVENTS,
        )
        speedup = est_vanilla.estimate / max(est_a.estimate, 1e-9)
        from repro.analysis.bounds import dumbbell_predictions

        envelope = dumbbell_predictions(n)["nonconvex_upper_bound"]
        table.add_row(
            [n, est_vanilla.estimate, est_a.estimate, speedup,
             theorem1_lower_bound(pair.partition), envelope]
        )
        ns.append(n)
        vanilla_times.append(est_vanilla.estimate)
        a_times.append(est_a.estimate)
        speedups.append(speedup)
    report.tables.append(table)
    report.figures.append(
        line_plot(
            {"vanilla": (ns, vanilla_times), "algorithm A": (ns, a_times)},
            title="E3: dumbbell T_av (log-log) - the separation",
            logx=True,
            logy=True,
        )
    )
    exponent_vanilla, _ = fit_power_law(ns, vanilla_times)
    report.findings["vanilla_exponent"] = exponent_vanilla
    report.findings["speedup_at_max_n"] = speedups[-1]
    report.add_check(
        "Algorithm A clearly beats vanilla at the largest size",
        speedups[-1] >= 4.0,
        f"speedup at n={ns[-1]}: {speedups[-1]:.1f}",
    )
    report.add_check(
        "speedup grows with n",
        speedups[-1] > speedups[0],
        f"{speedups[0]:.1f} -> {speedups[-1]:.1f}",
    )
    from repro.analysis.bounds import dumbbell_predictions

    report.add_check(
        "A stays within the logarithmic envelope (x2.5 constant slack)",
        all(
            t <= 2.5 * dumbbell_predictions(n)["nonconvex_upper_bound"]
            for t, n in zip(a_times, ns)
        ),
        f"max T_av(A) = {max(a_times):.2f}",
    )
    if len(ns) >= 3:
        report.add_check(
            "vanilla grows ~linearly on dumbbells",
            0.6 <= exponent_vanilla <= 1.4,
            f"log-log slope {exponent_vanilla:.2f} (theory: 1)",
        )
    return report


# ----------------------------------------------------------------------
# E4 — cut-width scaling: T_av ~ n1 / |E12| for convex; A insensitive
# ----------------------------------------------------------------------


def e4_cut_width(scale: "str | None" = None, seed: int = 17) -> ExperimentReport:
    """Sweep |E12| at fixed n: convex time falls ~1/|E12|, A stays flat."""
    scale = resolve_scale(scale)
    # Width grid, pair size and pair construction come from the E4
    # SweepSpec declaration (specs_sweeps is the single source of truth
    # for ported grids, so sweep and report measure the same instances).
    from repro.experiments.specs_sweeps import (
        E4_HALF,
        E4_WIDTHS,
        EXPANDER_DEGREE,
        REPORT_REPLICATES,
        build_width_pair,
    )

    half = E4_HALF[scale]
    degree = EXPANDER_DEGREE[scale]
    widths = list(E4_WIDTHS[scale])
    replicates = REPORT_REPLICATES[scale]

    report = ExperimentReport(
        experiment_id="E4",
        title="Cut-width sweep at fixed n (expander pairs)",
        paper_claim=(
            "Theorem 1's bound is Omega(n1/|E12|): doubling the cut width "
            "halves the convex bottleneck, while Algorithm A uses a single "
            "designated edge and is insensitive to the width."
        ),
    )
    table = Table(
        ["|E12|", "thm1 bound", "T_av vanilla", "T_av A"],
        title=f"E4: cut-width sweep (n = {2 * half})",
    )
    vanilla_times, a_times, bounds = [], [], []
    for index, width in enumerate(widths):
        pair = build_width_pair(width, half=half, degree=degree, seed=seed)
        x0 = cut_aligned(pair.partition)
        est_vanilla = measure_averaging_time(
            pair.graph, VanillaGossip, x0,
            n_replicates=replicates, seed=seed + 100 + index,
            max_time=convex_budget(pair), max_events=MAX_EVENTS,
        )
        factory, _ = _algorithm_a_factory(pair)
        est_a = measure_averaging_time(
            pair.graph, factory, x0,
            n_replicates=replicates, seed=seed + 200 + index,
            max_time=nonconvex_budget(pair), max_events=MAX_EVENTS,
        )
        bound = theorem1_lower_bound(pair.partition)
        table.add_row([width, bound, est_vanilla.estimate, est_a.estimate])
        vanilla_times.append(est_vanilla.estimate)
        a_times.append(est_a.estimate)
        bounds.append(bound)
    report.tables.append(table)
    report.figures.append(
        line_plot(
            {
                "vanilla": (widths, vanilla_times),
                "algorithm A": (widths, a_times),
                "thm1 bound": (widths, bounds),
            },
            title="E4: T_av vs cut width (log-log)",
            logx=True,
            logy=True,
        )
    )
    drop = vanilla_times[0] / vanilla_times[-1]
    width_ratio = widths[-1] / widths[0]
    report.findings["vanilla_drop_factor"] = drop
    report.findings["width_ratio"] = float(width_ratio)
    report.add_check(
        "convex time falls substantially with cut width",
        drop >= 0.3 * width_ratio,
        f"T_av(1 bridge)/T_av({widths[-1]} bridges) = {drop:.1f} "
        f"(width grew {width_ratio}x)",
    )
    flatness = max(a_times) / max(min(a_times), 1e-9)
    report.add_check(
        "Algorithm A is insensitive to cut width",
        flatness <= 5.0,
        f"max/min T_av(A) across widths = {flatness:.2f}",
    )
    report.add_check(
        "vanilla respects Theorem 1 at every width",
        all(t >= b for t, b in zip(vanilla_times, bounds)),
        f"min measured/bound = "
        f"{min(t / b for t, b in zip(vanilla_times, bounds)):.2f}",
    )
    return report


# ----------------------------------------------------------------------
# E5 — balance sweep + gain ablation (fidelity note F1)
# ----------------------------------------------------------------------


def e5_balance_gain_ablation(
    scale: "str | None" = None, seed: int = 19
) -> ExperimentReport:
    """Exact vs paper-literal swap gain across partition balances.

    The paper's gain ``n1`` leaves a residual imbalance factor
    ``-(n1/n2)`` per swap: fine when the cut is unbalanced, a perpetual
    oscillation at ``n1 = n2``.  The exact (harmonic) gain ``n1 n2 / n``
    zeroes it.  This is the repository's documented deviation (DESIGN.md
    F1), shown here as data.
    """
    scale = resolve_scale(scale)
    from repro.experiments.specs_sweeps import (
        E5_FRACTIONS,
        E5_TOTAL,
        EXPANDER_DEGREE,
        build_balance_pair,
        e5_sweep,
        report_budget,
    )

    total = E5_TOTAL[scale]
    degree = EXPANDER_DEGREE[scale]
    fractions = list(E5_FRACTIONS[scale])
    result = run_sweep(
        e5_sweep(scale, seed=seed), seed=seed, budget=report_budget(scale)
    )

    report = ExperimentReport(
        experiment_id="E5",
        title="Balance sweep and swap-gain ablation",
        paper_claim=(
            "Algorithm A as written uses gain n1; its own inequality (7) "
            "requires the residual imbalance to vanish, which needs the "
            "harmonic gain n1*n2/n. Literal n1 must fail exactly at "
            "balanced cuts and survive at unbalanced ones."
        ),
    )
    table = Table(
        ["n1/n", "n1", "n2", "residual factor n1/n2", "T_av exact",
         "T_av paper-gain"],
        title=f"E5: gain ablation (n = {total}); 'censored' = never settled",
    )
    exact_ok = True
    paper_failed_balanced = False
    paper_ok_unbalanced = True
    for fraction in fractions:
        pair = build_balance_pair(
            fraction, total=total, degree=degree, seed=seed
        )
        est_exact = result.point(fraction=fraction, gain="exact")
        est_paper = result.point(fraction=fraction, gain="paper")
        paper_cell = (
            "censored" if est_paper.is_censored else f"{est_paper.estimate:.3g}"
        )
        table.add_row(
            [f"{pair.partition.n1 / total:.3f}", pair.partition.n1,
             pair.partition.n2, pair.partition.n1 / pair.partition.n2,
             est_exact.estimate, paper_cell]
        )
        exact_ok = exact_ok and not est_exact.is_censored
        balanced = pair.partition.n1 == pair.partition.n2
        if balanced:
            paper_failed_balanced = paper_failed_balanced or est_paper.is_censored
        elif pair.partition.n1 / pair.partition.n2 <= 0.5:
            paper_ok_unbalanced = paper_ok_unbalanced and not est_paper.is_censored
    report.tables.append(table)
    report.add_check(
        "exact gain converges at every balance",
        exact_ok,
        "no censored replicate quantile with the harmonic gain",
    )
    report.add_check(
        "paper-literal gain stalls at the balanced cut",
        paper_failed_balanced,
        "the n1-gain swap oscillates forever when n1 = n2 (fidelity note F1)",
    )
    report.add_check(
        "paper-literal gain still converges when clearly unbalanced",
        paper_ok_unbalanced,
        "residual factor n1/n2 <= 1/2 shrinks the imbalance geometrically",
    )
    return report

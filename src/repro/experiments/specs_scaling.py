"""Shared measurement budgets for the paper's experiments.

The per-experiment report assembly lives in :mod:`repro.reports` (one
declarative :class:`~repro.reports.model.ReportSpec` path over stored
:class:`~repro.engine.sweeps.SweepResult` data); this module keeps only
the physics every sweep builder and report shares — how long a run may
take before it is censored, and how Algorithm A is instantiated.
"""

from __future__ import annotations

from repro.algorithms.nonconvex import NonConvexSparseCutGossip
from repro.analysis.bounds import theorem1_lower_bound, theorem2_upper_bound
from repro.core.epochs import epoch_length_ticks
from repro.engine.backends import AlgorithmFactory
from repro.graphs.composites import BridgedPair
from repro.graphs.spectral import spectral_mixing_time

#: Default events cap per replicate (a generous runaway guard).
MAX_EVENTS = 20_000_000


def convex_budget(pair: BridgedPair) -> float:
    """A run-time cap safely above any convex algorithm's T_av here.

    Convex T_av is within a small factor of the whole-graph spectral
    mixing time; 10x that (plus the Theorem-1 floor) never censors a
    healthy run, while monotone runs stop at the first crossing anyway.
    """
    return 10.0 * (
        theorem1_lower_bound(pair.partition)
        + spectral_mixing_time(pair.graph)
    )


def nonconvex_budget(pair: BridgedPair, *, constant: float = 3.0) -> float:
    """A run-time cap safely above Algorithm A's T_av here."""
    bound = theorem2_upper_bound(pair.partition, constant=constant)
    return 50.0 * (bound + 2.0)


def _algorithm_a_factory(pair: BridgedPair, *, constant: float = 3.0, gain="exact"):
    epoch = epoch_length_ticks(pair.partition, constant=constant)
    # A picklable factory (not a closure) so experiments can fan
    # replicates out to worker processes.
    factory = AlgorithmFactory(
        NonConvexSparseCutGossip, pair.partition, epoch_length=epoch, gain=gain
    )
    return factory, epoch

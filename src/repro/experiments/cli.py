"""Command-line entry point: ``python -m repro.experiments.cli``.

Examples
--------
Run one experiment at the default scale and print its report::

    python -m repro.experiments.cli run E3

Run everything at smoke scale, saving artifacts::

    python -m repro.experiments.cli run all --scale smoke --out results/
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.harness import SCALES
from repro.experiments.reporting import render_summary, save_report
from repro.experiments.specs import EXPERIMENTS, run_experiment


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument(
        "experiment",
        help=f"experiment id ({', '.join(sorted(EXPERIMENTS))}) or 'all'",
    )
    run.add_argument("--scale", choices=SCALES, default=None)
    run.add_argument("--seed", type=int, default=None)
    run.add_argument("--out", default=None, help="directory for artifacts")

    subparsers.add_parser("list", help="list available experiments")
    return parser


def main(argv: "list[str] | None" = None) -> int:
    """CLI main; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for experiment_id, function in EXPERIMENTS.items():
            doc = (function.__doc__ or "").strip().splitlines()
            summary = doc[0] if doc else ""
            print(f"{experiment_id}: {summary}")
        return 0

    if args.experiment.lower() == "all":
        ids = list(EXPERIMENTS)
    else:
        ids = [args.experiment]
    reports = []
    for experiment_id in ids:
        report = run_experiment(experiment_id, scale=args.scale, seed=args.seed)
        reports.append(report)
        print(report.render())
        print()
        if args.out:
            text_path, json_path = save_report(report, args.out)
            print(f"saved {text_path} and {json_path}")
    print(render_summary(reports))
    return 0 if all(r.all_checks_passed for r in reports) else 1


if __name__ == "__main__":
    sys.exit(main())

"""Command-line entry point: ``python -m repro.experiments.cli``.

Examples
--------
Run one experiment at the default scale and print its report::

    python -m repro.experiments.cli run E3

Run everything at smoke scale, saving artifacts::

    python -m repro.experiments.cli run all --scale smoke --out results/

Fan Monte-Carlo replicates out over 4 worker processes (results are
bit-identical to serial for the same seed — see
:mod:`repro.engine.backends`)::

    python -m repro.experiments.cli run E3 --workers 4
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.engine.backends import (
    WORKERS_ENV_VAR,
    default_n_workers,
    scoped_shared_backends,
)
from repro.errors import SimulationError
from repro.experiments.harness import SCALES
from repro.experiments.reporting import render_summary, save_report
from repro.experiments.specs import EXPERIMENTS, run_experiment


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument(
        "experiment",
        help=f"experiment id ({', '.join(sorted(EXPERIMENTS))}) or 'all'",
    )
    run.add_argument("--scale", choices=SCALES, default=None)
    run.add_argument("--seed", type=int, default=None)
    run.add_argument("--out", default=None, help="directory for artifacts")
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for Monte-Carlo replicates (default: "
        f"${WORKERS_ENV_VAR} or serial); results are identical to serial "
        "for the same seed",
    )

    subparsers.add_parser("list", help="list available experiments")
    return parser


def main(argv: "list[str] | None" = None) -> int:
    """CLI main; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for experiment_id, function in EXPERIMENTS.items():
            doc = (function.__doc__ or "").strip().splitlines()
            summary = doc[0] if doc else ""
            print(f"{experiment_id}: {summary}")
        return 0

    if args.workers is not None and args.workers < 1:
        print(f"--workers must be positive, got {args.workers}",
              file=sys.stderr)
        return 2
    if args.workers is None:
        # Surface a bad REPRO_WORKERS value before any report output
        # instead of as a traceback inside the first estimator call.
        try:
            default_n_workers()
        except SimulationError as exc:
            print(exc, file=sys.stderr)
            return 2

    if args.experiment.lower() == "all":
        ids = list(EXPERIMENTS)
    else:
        ids = [args.experiment]
    # Experiments read the worker count from the environment (the same
    # global mechanism as the REPRO_SCALE fallback), so one flag
    # parallelizes every estimator call; restore the variable afterwards
    # so programmatic main() calls leave no trace.
    saved_workers = os.environ.get(WORKERS_ENV_VAR)
    if args.workers is not None:
        os.environ[WORKERS_ENV_VAR] = str(args.workers)
    try:
        # Leave no trace in long-lived hosts: pools this run creates are
        # released on exit, pools the host already had warm are kept.
        with scoped_shared_backends():
            reports = []
            for experiment_id in ids:
                report = run_experiment(
                    experiment_id, scale=args.scale, seed=args.seed
                )
                reports.append(report)
                print(report.render())
                print()
                if args.out:
                    text_path, json_path = save_report(report, args.out)
                    print(f"saved {text_path} and {json_path}")
            print(render_summary(reports))
            return 0 if all(r.all_checks_passed for r in reports) else 1
    finally:
        if args.workers is not None:
            if saved_workers is None:
                os.environ.pop(WORKERS_ENV_VAR, None)
            else:
                os.environ[WORKERS_ENV_VAR] = saved_workers


if __name__ == "__main__":
    sys.exit(main())

"""Command-line entry point: ``python -m repro.experiments.cli``.

Examples
--------
Run one experiment at the default scale and print its report::

    python -m repro.experiments.cli run E3

Run everything at smoke scale, saving artifacts::

    python -m repro.experiments.cli run all --scale smoke --out results/

Fan Monte-Carlo replicates out over 4 worker processes (results are
bit-identical to serial for the same seed — see
:mod:`repro.engine.backends`)::

    python -m repro.experiments.cli run E3 --workers 4

Run a whole parameter sweep through the sharded scheduler (every
configuration x replicate work unit shares one worker pool and each
configuration's graph ships to every worker once; results are
bit-identical across backends, worker counts, round sizes and shipping
modes — see :mod:`repro.engine.sweeps`)::

    python -m repro.experiments.cli sweep E3 --axis n=64,128,256 \
        --workers 4 --target-ci 0.05 --out results/

All grid experiments are declared as sweeps — E1/E2/E5/E10 run through
the same scheduler the E1/E2/E5/E10 reports aggregate::

    python -m repro.experiments.cli sweep E10 --scale smoke --workers 2

Run a sweep on the fault-tolerant cluster backend (2 locally spawned
TCP workers; byte-identical artifacts, even under worker crashes — see
:mod:`repro.engine.cluster` and docs/sweeps.md)::

    python -m repro.experiments.cli sweep E3 --backend cluster --workers 2

Attach a worker to a running coordinator (same machine or another
host)::

    python -m repro.experiments.cli worker --connect 192.0.2.10:7733
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.engine.backends import (
    WORKERS_ENV_VAR,
    ExecutionBackend,
    default_n_workers,
    registered_backends,
    scoped_shared_backends,
)
from repro.engine.kernels import KERNEL_CHOICES, KERNEL_ENV_VAR, default_kernel
from repro.engine.store import STORE_ENV_VAR, ResultsStore, run_sweep_cached
from repro.engine.wire import AUTH_TOKEN_ENV_VAR
from repro.engine.sweeps import ReplicateBudget, SweepRunner
from repro.errors import ReproError, SimulationError, StoreError
from repro.experiments.harness import SCALES
from repro.experiments.reporting import (
    render_summary,
    render_sweep_stats,
    render_sweep_table,
    save_report,
    save_sweep_result,
)
from repro.experiments.specs import EXPERIMENTS, run_experiment
from repro.experiments.specs_sweeps import (
    SWEEPS,
    axis_override_from_text,
    get_sweep,
    resolve_sweep_budget,
)
from repro.util.tables import Table


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument(
        "experiment",
        help=f"experiment id ({', '.join(sorted(EXPERIMENTS))}) or 'all'",
    )
    run.add_argument("--scale", choices=SCALES, default=None)
    run.add_argument("--seed", type=int, default=None)
    run.add_argument("--out", default=None, help="directory for artifacts")
    run.add_argument(
        "--store",
        default=None,
        metavar="DB",
        help="resolve the report's sweeps through the persistent results "
        f"store (default: ${STORE_ENV_VAR} when set): stored rows are "
        "reused byte-identically, misses compute and record",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for Monte-Carlo replicates (default: "
        f"${WORKERS_ENV_VAR} or serial); results are identical to serial "
        "for the same seed",
    )
    run.add_argument(
        "--kernel",
        choices=KERNEL_CHOICES,
        default=None,
        help="simulation kernel for replicate execution (default: "
        f"${KERNEL_ENV_VAR} or auto); 'vectorized' advances eligible "
        "same-configuration replicate batches in numpy lockstep — "
        "results are bit-identical across kernels for the same seed",
    )

    sweep = subparsers.add_parser(
        "sweep",
        help="run a declared parameter sweep through the sharded scheduler",
    )
    sweep.add_argument(
        "sweep_id",
        help=f"sweep id ({', '.join(sorted(SWEEPS))})",
    )
    sweep.add_argument(
        "--axis",
        action="append",
        default=[],
        metavar="NAME=V1,V2,...",
        help="override one axis's values (repeatable), e.g. n=64,128,256",
    )
    sweep.add_argument("--scale", choices=SCALES, default=None)
    sweep.add_argument(
        "--seed",
        type=int,
        default=0,
        help="sweep root seed (per-configuration streams derive from it)",
    )
    sweep.add_argument(
        "--backend",
        choices=registered_backends(),
        default=None,
        help="execution backend for the configuration x replicate fan-out "
        "(default: chosen from --workers); 'cluster' spawns --workers "
        "local TCP workers and tolerates their failure — results are "
        "byte-identical across all backends for the same seed",
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the configuration x replicate fan-out "
        f"(default: ${WORKERS_ENV_VAR} or serial); results are identical "
        "across worker counts for the same seed",
    )
    sweep.add_argument(
        "--kernel",
        choices=KERNEL_CHOICES,
        default=None,
        help="simulation kernel for replicate execution (default: "
        f"${KERNEL_ENV_VAR} or auto); results are bit-identical across "
        "kernels for the same seed",
    )
    sweep.add_argument(
        "--target-ci",
        type=float,
        default=None,
        metavar="W",
        help="adaptive budget: stop a configuration once the bootstrap CI "
        "on the target quantile has relative width <= W",
    )
    sweep.add_argument(
        "--min-replicates",
        type=int,
        default=None,
        metavar="N",
        help="adaptive budget floor (never settle on fewer replicates)",
    )
    sweep.add_argument(
        "--max-replicates",
        type=int,
        default=None,
        metavar="N",
        help="adaptive budget cap (points hitting it are flagged "
        "budget_exhausted)",
    )
    sweep.add_argument(
        "--round-size",
        type=int,
        default=None,
        metavar="N",
        help="replicates added per adaptive round after the floor",
    )
    sweep.add_argument(
        "--replicates",
        type=int,
        default=None,
        metavar="N",
        help="fixed budget: exactly N replicates per configuration "
        "(disables the adaptive rule)",
    )
    sweep.add_argument("--out", default=None, help="directory for sweep JSON")
    sweep.add_argument(
        "--store",
        default=None,
        metavar="DB",
        help="route the sweep through the persistent results store "
        f"(default: ${STORE_ENV_VAR} when set): a fingerprint already "
        "in the database is a cache hit returning the stored "
        "byte-identical result with zero simulation work; a miss "
        "computes and records it",
    )
    sweep.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="JSON checkpoint written after each round; an existing file "
        "resumes the sweep, skipping settled configurations",
    )
    sweep.add_argument(
        "--no-shared-state",
        action="store_true",
        help="pickle each configuration's state into every replicate spec "
        "instead of shipping it once per worker (measurement/debugging "
        "only; results are bit-identical either way)",
    )
    sweep.add_argument(
        "--auth-token",
        default=None,
        metavar="TOKEN",
        help="cluster backend only: shared secret for the worker HMAC "
        f"handshake (default: ${AUTH_TOKEN_ENV_VAR}); workers attaching "
        "with a different token are rejected before any payload is "
        "deserialized",
    )
    sweep.add_argument(
        "--worker-fault",
        action="append",
        default=[],
        metavar="SPEC",
        help="cluster backend only (testing/chaos): arm the Nth spawned "
        "worker with a fault plan (repeatable; comma-separated tokens "
        "die-after:N, drop-after:N, disconnect-after:N, drain-after:N, "
        "slow-start:SECONDS, duplicate-results, slow:SECONDS)",
    )

    worker = subparsers.add_parser(
        "worker",
        help="attach a cluster worker process to a running coordinator",
    )
    worker.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="the coordinator's address (ClusterBackend prints/exposes it "
        "via its .address property)",
    )
    worker.add_argument(
        "--heartbeat-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="liveness heartbeat period (must be well under the "
        "coordinator's heartbeat timeout)",
    )
    worker.add_argument(
        "--auth-token",
        default=None,
        metavar="TOKEN",
        help="shared secret for the coordinator HMAC handshake (default: "
        f"${AUTH_TOKEN_ENV_VAR}; prefer the environment variable — argv "
        "is visible in `ps`)",
    )
    worker.add_argument(
        "--drain-after",
        type=int,
        default=None,
        metavar="N",
        help="detach gracefully after N results (finish the in-flight "
        "replicate, deliver it, say goodbye); SIGTERM drains the same way",
    )
    worker.add_argument(
        "--max-reconnects",
        type=int,
        default=5,
        metavar="N",
        help="consecutive reconnect attempts after a lost connection "
        "before giving up (backoff uses decorrelated jitter)",
    )
    worker.add_argument(
        "--reconnect-backoff",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="base delay seeding the reconnect backoff",
    )
    worker.add_argument(
        "--fault",
        default=None,
        metavar="SPEC",
        help="fault-injection plan (testing/chaos only): comma-separated "
        "die-after:N, drop-after:N, disconnect-after:N, drain-after:N, "
        "slow-start:SECONDS, duplicate-results, slow:SECONDS",
    )

    store = subparsers.add_parser(
        "store",
        help="inspect and maintain the persistent results store",
    )
    store.add_argument(
        "--db",
        default=None,
        metavar="PATH",
        help=f"store database (default: ${STORE_ENV_VAR})",
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_list = store_sub.add_parser("list", help="list stored runs")
    store_list.add_argument(
        "--sweep", default=None, metavar="ID", help="filter by sweep name"
    )
    store_list.add_argument(
        "--status",
        default=None,
        choices=("queued", "running", "done", "failed"),
        help="filter by run status",
    )
    store_show = store_sub.add_parser(
        "show", help="show one run's provenance and result table"
    )
    store_show.add_argument("run_id", help="run id (see `store list`)")
    store_gc = store_sub.add_parser(
        "gc", help="reap failed/stale rows (and optionally expire old runs)"
    )
    store_gc.add_argument(
        "--older-than-days",
        type=float,
        default=None,
        metavar="D",
        help="also expire done runs created more than D days ago",
    )
    store_gc.add_argument(
        "--keep-incomplete",
        action="store_true",
        help="leave queued/running rows alone (use while a service or "
        "sweep is mid-flight against this store)",
    )
    store_export = store_sub.add_parser(
        "export", help="write a run's stored bytes to a JSON file"
    )
    store_export.add_argument("run_id", help="run id (see `store list`)")
    store_export.add_argument(
        "--out", required=True, metavar="PATH", help="output JSON path"
    )

    serve = subparsers.add_parser(
        "serve",
        help="HTTP sweep service: submit -> run_id, poll status, fetch "
        "results (content-addressed dedup via the results store)",
    )
    serve.add_argument(
        "--store",
        default=None,
        metavar="DB",
        help=f"store database (default: ${STORE_ENV_VAR})",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7734)
    serve.add_argument(
        "--backend",
        choices=registered_backends(),
        default=None,
        help="the long-lived execution backend computations run on; "
        "'cluster' keeps a persistent TCP worker fleet warm across "
        "submissions",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker count for the service's backend",
    )
    serve.add_argument(
        "--kernel",
        choices=KERNEL_CHOICES,
        default=None,
        help="default simulation kernel for computed sweeps",
    )
    serve.add_argument(
        "--for-seconds",
        type=float,
        default=None,
        metavar="S",
        help="serve for S seconds then exit cleanly (smoke tests; "
        "default: serve until interrupted)",
    )

    kernel = subparsers.add_parser(
        "kernel",
        help="inspect simulation-kernel eligibility for a sweep",
    )
    kernel_sub = kernel.add_subparsers(dest="kernel_command", required=True)
    explain = kernel_sub.add_parser(
        "explain",
        help="print the vectorized kernel's eligibility verdict per "
        "configuration (machine-readable reason codes for demotions)",
    )
    explain.add_argument(
        "sweep_id",
        help=f"sweep id ({', '.join(sorted(SWEEPS))})",
    )
    explain.add_argument("--scale", choices=SCALES, default=None)
    explain.add_argument(
        "--axis",
        action="append",
        default=[],
        metavar="NAME=V1,V2,...",
        help="override one axis's values (repeatable), e.g. n=64,128,256",
    )

    verify = subparsers.add_parser(
        "verify-claims",
        help="recompute the paper's machine-checkable claims from stored "
        "sweep data and exit nonzero on drift",
    )
    verify.add_argument(
        "--claims",
        default=None,
        metavar="ID,ID,...",
        help="verify only these claim ids (default: the whole catalogue)",
    )
    verify.add_argument("--scale", choices=SCALES, default=None)
    verify.add_argument(
        "--store",
        default=None,
        metavar="DB",
        help="resolve claim sweeps through the persistent results store "
        f"(default: ${STORE_ENV_VAR} when set)",
    )
    verify.add_argument(
        "--artifacts",
        default=None,
        metavar="DIR",
        help="also look for sweep_<id>*.json artifacts in DIR (identity-"
        "checked by fingerprint before use)",
    )
    verify.add_argument(
        "--no-compute",
        action="store_true",
        help="never simulate: fail with a seeding hint if a claim's sweep "
        "is in neither the store nor the artifact directory (this is "
        "how CI proves the gate is data-driven)",
    )
    verify.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="write claims.json + claims.txt (and the resolved sweep "
        "artifacts) to DIR",
    )
    verify.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for any sweep that must be computed",
    )
    verify.add_argument(
        "--kernel",
        choices=KERNEL_CHOICES,
        default=None,
        help="simulation kernel for any sweep that must be computed",
    )

    subparsers.add_parser("list", help="list available experiments")
    return parser


def _sweep_budget(args) -> ReplicateBudget:
    """Resolve the budget flags (fixed wins; adaptive flags overlay the
    scale default) — the flag-shaped face of
    :func:`~repro.experiments.specs_sweeps.resolve_sweep_budget`,
    which the HTTP service shares."""
    return resolve_sweep_budget(
        args.scale,
        replicates=args.replicates,
        target_ci=args.target_ci,
        min_replicates=args.min_replicates,
        max_replicates=args.max_replicates,
        round_size=args.round_size,
    )


def _resolve_sweep_backend(args) -> "object | str | None":
    """Map the sweep CLI's cluster knobs onto a backend argument.

    The plain named backends go through the registry untouched; the
    cluster-only flags (--auth-token, --worker-fault) require
    constructing the ClusterBackend directly.
    """
    if args.backend != "cluster":
        if args.auth_token is not None or args.worker_fault:
            raise SimulationError(
                "--auth-token/--worker-fault only apply to --backend cluster"
            )
        return args.backend
    from repro.engine.cluster import ClusterBackend

    n_workers = args.workers
    if n_workers is None and os.environ.get(WORKERS_ENV_VAR):
        n_workers = default_n_workers()
    return ClusterBackend(
        n_workers,
        auth_token=args.auth_token,
        worker_faults=args.worker_fault or None,
    )


def _store_db_path(raw: "str | None") -> str:
    """Resolve a store database path from a flag or the environment."""
    path = raw or os.environ.get(STORE_ENV_VAR)
    if not path:
        raise StoreError(
            f"no store database given; pass --db/--store or set ${STORE_ENV_VAR}"
        )
    return path


def _run_sweep_command(args) -> int:
    spec = get_sweep(args.sweep_id, scale=args.scale)
    for override in args.axis:
        name, values = axis_override_from_text(override)
        spec = spec.with_axis(name, values)
    budget = _sweep_budget(args)
    store = (
        ResultsStore(_store_db_path(args.store))
        if (args.store or os.environ.get(STORE_ENV_VAR))
        else None
    )
    cache_hit = False
    runner = None
    with scoped_shared_backends():
        # Backend resolution must happen inside the scope: it registers
        # the shared worker pool, and only pools created inside the
        # block are released on exit.
        backend = _resolve_sweep_backend(args)
        try:
            if store is not None:
                outcome = run_sweep_cached(
                    spec,
                    store=store,
                    seed=args.seed,
                    budget=budget,
                    backend=backend,
                    n_workers=args.workers,
                    checkpoint_path=args.checkpoint,
                    share_state=not args.no_shared_state,
                    kernel=args.kernel,
                )
                result, stats = outcome.result, outcome.stats
                cache_hit = outcome.cache_hit
            else:
                runner = SweepRunner(
                    spec,
                    seed=args.seed,
                    budget=budget,
                    backend=backend,
                    n_workers=args.workers,
                    checkpoint_path=args.checkpoint,
                    share_state=not args.no_shared_state,
                    kernel=args.kernel,
                )
                result = runner.run()
                stats = runner.stats
        finally:
            # Backends owning external resources (the cluster backend's
            # worker fleet and listener) release them here; serial and
            # the scoped shared process pools make this a no-op.  On the
            # store path only a constructed instance needs releasing —
            # named backends resolve inside run_sweep_cached's runner
            # and the scope exit reclaims any shared pool, while a
            # cache hit never touches a backend at all.
            if isinstance(backend, ExecutionBackend):
                backend.shutdown()
            elif runner is not None:
                runner.backend.shutdown()
    print(render_sweep_table(result).render())
    print()
    if cache_hit:
        print(
            f"store: cache hit — run {outcome.run_id} served from "
            f"{store.path} with zero simulation work"
        )
    else:
        print(render_sweep_stats(result, stats))
        if store is not None:
            print(
                f"store: recorded run {outcome.run_id} "
                f"(fingerprint {outcome.fingerprint[:12]})"
            )
    if args.out:
        path = save_sweep_result(result, args.out)
        print(f"saved {path}")
    exhausted = sum(p.budget_exhausted for p in result.points)
    if exhausted:
        print(f"warning: {exhausted} configuration(s) hit the replicate cap")
    return 0


def _run_verify_claims_command(args) -> int:
    """``verify-claims``: the data-driven drift gate.

    Resolves every sweep the selected claims need through one
    :class:`~repro.reports.data.SweepSource` (store, then artifacts,
    then — unless ``--no-compute`` — a fresh run), re-evaluates the
    claim catalogue against the resolved rows, and exits 1 if any claim
    drifted out of its declared tolerance.
    """
    from pathlib import Path

    from repro.experiments.harness import resolve_scale
    from repro.reports import (
        claims_bundle,
        evaluate_claims,
        get_claims,
        required_sweeps,
        verdict_table,
    )
    from repro.reports.data import SweepSource
    from repro.util.serialization import to_json_file

    ids = None
    if args.claims:
        ids = [token.strip() for token in args.claims.split(",") if token.strip()]
    claims = get_claims(ids)
    scale = resolve_scale(args.scale)
    store = (
        ResultsStore(_store_db_path(args.store))
        if (args.store or os.environ.get(STORE_ENV_VAR))
        else None
    )
    source = SweepSource(
        store=store,
        artifact_dir=args.artifacts,
        compute=not args.no_compute,
        n_workers=args.workers,
        kernel=args.kernel,
    )
    results = {}
    with scoped_shared_backends():
        for name, seed in sorted(required_sweeps(claims).items()):
            results[name] = source.resolve(name, scale=scale, seed=seed)
    verdicts = evaluate_claims(claims, results)
    table = verdict_table(claims, verdicts)
    print(table.render())
    print()
    n_pass = sum(1 for v in verdicts if v.passed)
    print(f"claims: {n_pass}/{len(verdicts)} passed at scale {scale!r}")
    bundle = claims_bundle(claims, verdicts, scale=scale)
    if args.out:
        base = Path(args.out)
        base.mkdir(parents=True, exist_ok=True)
        to_json_file(bundle, base / "claims.json")
        (base / "claims.txt").write_text(table.render() + "\n", encoding="utf-8")
        for result in results.values():
            save_sweep_result(result, base)
        print(f"saved claims bundle to {base}")
    return 0 if bundle["passed"] else 1


def _run_worker_command(args) -> int:
    from repro.engine.cluster import run_worker

    host, _, port_text = args.connect.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        port = -1
    if not host or not 0 < port < 65536:
        print(
            f"--connect expects HOST:PORT, got {args.connect!r}",
            file=sys.stderr,
        )
        return 2
    if args.heartbeat_interval <= 0:
        print(
            f"--heartbeat-interval must be positive, got {args.heartbeat_interval}",
            file=sys.stderr,
        )
        return 2
    if args.drain_after is not None and args.drain_after < 1:
        print(
            f"--drain-after must be >= 1, got {args.drain_after}",
            file=sys.stderr,
        )
        return 2
    if args.max_reconnects < 0:
        print(
            f"--max-reconnects must be >= 0, got {args.max_reconnects}",
            file=sys.stderr,
        )
        return 2
    if args.reconnect_backoff <= 0:
        print(
            f"--reconnect-backoff must be positive, got {args.reconnect_backoff}",
            file=sys.stderr,
        )
        return 2
    return run_worker(
        host,
        port,
        fault=args.fault,
        heartbeat_interval=args.heartbeat_interval,
        auth_token=args.auth_token,
        drain_after=args.drain_after,
        max_reconnects=args.max_reconnects,
        reconnect_backoff=args.reconnect_backoff,
    )


def _run_store_command(args) -> int:
    store = ResultsStore(_store_db_path(args.db))
    if args.store_command == "list":
        runs = store.runs(sweep_name=args.sweep, status=args.status)
        if not runs:
            print("store: no matching runs")
            return 0
        table = Table(
            [
                "run id",
                "sweep",
                "status",
                "points",
                "reps",
                "commit",
                "created (UTC)",
            ],
            title=f"results store {store.path}: {len(runs)} run(s)",
        )
        for run in runs:
            table.add_row(
                [
                    run.run_id,
                    run.sweep_name,
                    run.status,
                    "" if run.n_points is None else run.n_points,
                    "" if run.total_replicates is None else run.total_replicates,
                    (run.git_commit or "")[:12],
                    run.created_utc,
                ]
            )
        print(table.render())
        return 0
    if args.store_command == "show":
        run = store.get(args.run_id)
        for key, value in run.to_dict().items():
            print(f"{key}: {'' if value is None else value}")
        if run.status == "done":
            print()
            print(render_sweep_table(store.load_result(run.run_id)).render())
        return 0
    if args.store_command == "gc":
        removed = store.gc(
            older_than_days=args.older_than_days,
            include_incomplete=not args.keep_incomplete,
        )
        print(f"store: removed {len(removed)} run(s)")
        for run_id in removed:
            print(f"  {run_id}")
        return 0
    # export — the only remaining subcommand (argparse enforces choices).
    path = store.export(args.run_id, args.out)
    print(f"exported {args.run_id} to {path}")
    return 0


def _run_kernel_command(args) -> int:
    """``kernel explain``: the eligibility verdict per sweep point."""
    from repro.engine.kernels import eligibility
    from repro.engine.sweeps import PointConfig

    spec = get_sweep(args.sweep_id, scale=args.scale)
    for override in args.axis:
        name, values = axis_override_from_text(override)
        spec = spec.with_axis(name, values)
    points = spec.expand()
    axis_names = [axis.name for axis in spec.axes]
    table = Table(
        ["point", *axis_names, "verdict", "reasons"],
        title=f"vectorized-kernel eligibility: sweep {spec.name!r} "
        f"({len(points)} configuration(s))",
    )
    n_eligible = 0
    for point in points:
        config = spec.builder(**point.params)
        if not isinstance(config, PointConfig):
            raise SimulationError(
                f"sweep {spec.name!r} builder returned "
                f"{type(config).__name__}, expected PointConfig"
            )
        monotone = bool(config.algorithm_factory().monotone_variance)
        verdict = eligibility(
            algorithm_factory=config.algorithm_factory,
            clock_factory=config.clock_factory,
            run_kwargs=SweepRunner._run_kwargs(config, monotone),
        )
        n_eligible += bool(verdict)
        table.add_row(
            [
                point.index,
                *(point.params[name] for name in axis_names),
                "vectorized" if verdict else "scalar",
                "" if verdict else verdict.describe(),
            ]
        )
    print(table.render())
    print(
        f"{n_eligible}/{len(points)} configuration(s) take the vectorized "
        "lockstep path; the rest run the scalar event loop "
        "(see docs/kernels.md for the eligibility rules)"
    )
    return 0


def _run_serve_command(args) -> int:
    import time as _time

    from repro.engine.service import SweepService

    store = ResultsStore(_store_db_path(args.store))
    with scoped_shared_backends():
        backend = _resolve_serve_backend(args)
        service = SweepService(
            store,
            backend=backend,
            n_workers=args.workers,
            host=args.host,
            port=args.port,
            kernel=args.kernel,
        )
        service.start()
        try:
            print(f"serving sweeps on {service.url} (store: {store.path})")
            sys.stdout.flush()
            if args.for_seconds is not None:
                _time.sleep(args.for_seconds)
            else:
                while True:
                    _time.sleep(3600)
        except KeyboardInterrupt:
            pass
        finally:
            service.shutdown()
    return 0


def _resolve_serve_backend(args) -> "object | str | None":
    """The serve command's backend knob — cluster spawns a persistent
    local fleet sized by --workers; other names go through the registry."""
    if args.backend != "cluster":
        return args.backend
    from repro.engine.cluster import ClusterBackend

    return ClusterBackend(args.workers)


def main(argv: "list[str] | None" = None) -> int:
    """CLI main; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for experiment_id, function in EXPERIMENTS.items():
            doc = (function.__doc__ or "").strip().splitlines()
            summary = doc[0] if doc else ""
            sweepable = " [sweepable]" if experiment_id in SWEEPS else ""
            print(f"{experiment_id}: {summary}{sweepable}")
        return 0

    if args.command == "worker":
        try:
            return _run_worker_command(args)
        except ReproError as exc:
            print(exc, file=sys.stderr)
            return 2

    if args.command == "store":
        # Dispatched before the --workers guard: the store namespace has
        # no workers attribute (pure metadata command, nothing computes).
        try:
            return _run_store_command(args)
        except ReproError as exc:
            print(exc, file=sys.stderr)
            return 2

    if args.command == "kernel":
        # Also dispatched before the --workers guard: pure inspection,
        # nothing computes and the namespace has no workers attribute.
        try:
            return _run_kernel_command(args)
        except ReproError as exc:
            print(exc, file=sys.stderr)
            return 2

    if args.workers is not None and args.workers < 1:
        print(f"--workers must be positive, got {args.workers}", file=sys.stderr)
        return 2

    if args.command == "serve":
        try:
            return _run_serve_command(args)
        except ReproError as exc:
            print(exc, file=sys.stderr)
            return 2

    if args.command == "verify-claims":
        try:
            return _run_verify_claims_command(args)
        except ReproError as exc:
            print(exc, file=sys.stderr)
            return 2

    if args.command == "sweep":
        try:
            return _run_sweep_command(args)
        except ReproError as exc:
            print(exc, file=sys.stderr)
            return 2
    if args.workers is None:
        # Surface a bad REPRO_WORKERS value before any report output
        # instead of as a traceback inside the first estimator call.
        try:
            default_n_workers()
        except SimulationError as exc:
            print(exc, file=sys.stderr)
            return 2
    if args.kernel is None:
        # Same early surfacing for a bad REPRO_KERNEL value.
        try:
            default_kernel()
        except SimulationError as exc:
            print(exc, file=sys.stderr)
            return 2

    if args.experiment.lower() == "all":
        ids = list(EXPERIMENTS)
    else:
        ids = [args.experiment]
    # Experiments read the worker count from the environment (the same
    # global mechanism as the REPRO_SCALE fallback), so one flag
    # parallelizes every estimator call; restore the variable afterwards
    # so programmatic main() calls leave no trace.
    saved_workers = os.environ.get(WORKERS_ENV_VAR)
    if args.workers is not None:
        os.environ[WORKERS_ENV_VAR] = str(args.workers)
    saved_kernel = os.environ.get(KERNEL_ENV_VAR)
    if args.kernel is not None:
        os.environ[KERNEL_ENV_VAR] = args.kernel
    try:
        # Leave no trace in long-lived hosts: pools this run creates are
        # released on exit, pools the host already had warm are kept.
        run_store = (
            ResultsStore(_store_db_path(args.store))
            if (args.store or os.environ.get(STORE_ENV_VAR))
            else None
        )
        source = None
        if run_store is not None:
            from repro.reports.data import SweepSource

            source = SweepSource(
                store=run_store, n_workers=args.workers, kernel=args.kernel
            )
        with scoped_shared_backends():
            reports = []
            for experiment_id in ids:
                report = run_experiment(
                    experiment_id,
                    scale=args.scale,
                    seed=args.seed,
                    source=source,
                )
                reports.append(report)
                print(report.render())
                print()
                if args.out:
                    text_path, json_path = save_report(report, args.out)
                    print(f"saved {text_path} and {json_path}")
            print(render_summary(reports))
            return 0 if all(r.all_checks_passed for r in reports) else 1
    finally:
        if args.workers is not None:
            if saved_workers is None:
                os.environ.pop(WORKERS_ENV_VAR, None)
            else:
                os.environ[WORKERS_ENV_VAR] = saved_workers
        if args.kernel is not None:
            if saved_kernel is None:
                os.environ.pop(KERNEL_ENV_VAR, None)
            else:
                os.environ[KERNEL_ENV_VAR] = saved_kernel


if __name__ == "__main__":
    sys.exit(main())

"""Sweep declarations: the paper's grid experiments as :class:`SweepSpec`.

Every grid-shaped claim — convex lower bound vs size (E1), non-convex
upper bound vs size (E2), the dumbbell headline (E3), cut width (E4),
balance/gain ablation (E5), topology families (E9) and the
epoch-constant ablation (E10) — is declared here once so the sweep
scheduler (:mod:`repro.engine.sweeps`) can fan the **whole grid** out
over one worker pool.  The per-scale grid values defined here are the
single source of truth — the report functions in
:mod:`repro.experiments.specs_scaling` / ``specs_baselines`` consume
:class:`~repro.engine.sweeps.SweepResult` aggregations of these same
grids, so the sweep path and the report path cannot drift apart.

Every builder is a module-level function returning a
:class:`~repro.engine.sweeps.PointConfig` built from picklable pieces
(:class:`~repro.engine.backends.AlgorithmFactory`, plain graphs), so
sweep replicates fan out to worker processes unchanged — and the
runner's shared-state shipping can install each point's graph once per
worker.

The kernel layer (:mod:`repro.engine.kernels`) composes with every
sweep declared here: the convex arms (``"vanilla"``, ``"convex"``)
take the dense lockstep loop and the ``"algorithm_a"`` arms take the
epoch-aware generalized loop (per-row epoch state machine over the
designated edge), so every sweep advances whole replicate windows in
numpy lockstep — with bit-identical :class:`SweepResult` output
either way, so ``--kernel`` is purely a throughput knob.  Run
``repro-experiments kernel explain <sweep-id>`` for per-configuration
eligibility verdicts.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.algorithms.convex import ConvexGossip
from repro.algorithms.nonconvex import NonConvexSparseCutGossip
from repro.algorithms.resilient import ResilientSparseCutGossip
from repro.algorithms.vanilla import VanillaGossip
from repro.clocks.unreliable import (
    FailingPoissonClockFactory,
    LossyPoissonClockFactory,
)
from repro.core.epochs import epoch_length_ticks
from repro.engine.backends import AlgorithmFactory
from repro.engine.sweeps import (
    PointConfig,
    ReplicateBudget,
    SweepAxis,
    SweepSpec,
)
from repro.errors import ExperimentError
from repro.experiments.harness import resolve_scale
from repro.experiments.specs_scaling import (
    MAX_EVENTS,
    _algorithm_a_factory,
    convex_budget,
    nonconvex_budget,
)
from repro.experiments.workloads import cut_aligned
from repro.graphs.composites import (
    BridgedPair,
    dumbbell_graph,
    two_cliques,
    two_erdos_renyi,
    two_expanders,
    two_grids,
)

#: The algorithm axis shared by every ported sweep: the paper's headline
#: comparison is always convex baseline vs Algorithm A.
ALGORITHMS = ("vanilla", "algorithm_a")

# Per-scale grid values (single source of truth; the report functions
# read these same tables).
E1_SIZES = {
    "smoke": (24, 48),
    "default": (32, 64, 128, 256),
    "full": (64, 128, 256, 512),
}
#: E1's algorithm axis: the two convex class-C members the report plots.
E1_ALGORITHMS = ("vanilla", "lazy")
#: Per-scale expander degree used by every expander-pair grid.
EXPANDER_DEGREE = {"smoke": 4, "default": 8, "full": 8}
E5_FRACTIONS = {
    "smoke": (0.25, 0.5),
    "default": (0.125, 0.25, 0.375, 0.5),
    "full": (0.125, 0.25, 0.375, 0.5),
}
E5_TOTAL = {"smoke": 32, "default": 128, "full": 256}
#: E5's gain axis: the documented deviation (DESIGN.md F1) vs the paper.
E5_GAINS = ("exact", "paper")
E10_CONSTANTS = {
    "smoke": (0.02, 3.0),
    "default": (0.02, 0.2, 1.0, 3.0, 10.0),
    "full": (0.02, 0.2, 1.0, 3.0, 10.0, 30.0),
}
E10_GRID_DIMS = {"smoke": (3, 3), "default": (4, 6), "full": (5, 8)}
E3_SIZES = {
    "smoke": (32, 48),
    "default": (32, 64, 128),
    "full": (32, 64, 128, 256),
}
E4_WIDTHS = {
    "smoke": (1, 4),
    "default": (1, 2, 4, 8, 16),
    "full": (1, 2, 4, 8, 16, 32),
}
E4_HALF = {"smoke": 16, "default": 64, "full": 128}
E9_FAMILIES = {
    "smoke": ("clique", "grid"),
    "default": ("clique", "expander", "erdos_renyi", "grid"),
    "full": ("clique", "expander", "erdos_renyi", "grid"),
}
E9_HALF = {"smoke": 16, "default": 48, "full": 96}
E9_GRID_DIMS = {"smoke": (3, 3), "default": (6, 8), "full": (6, 8)}
#: E13's configuration axis: what runs against the unreliable clocks.
E13_CONFIGS = (
    "vanilla_failing",
    "algorithm_a_failing",
    "resilient_failing",
    "vanilla_lossy",
    "vanilla_healthy",
)
E13_HALF = {"smoke": 12, "default": 24, "full": 48}
#: When the designated cut edge dies (simulation time units).
E13_DEATH_TIME = 2.0
#: Per-tick message-loss probability for the lossy arm.
E13_LOSS_RATE = 0.3
#: Cut width of the E13 instance: two spare bridges survive the death.
E13_BRIDGES = 3


def _point_config(pair: BridgedPair, algorithm: str) -> PointConfig:
    """The measurement every ported sweep point runs: T_av of one
    algorithm on one bridged pair under the cut-aligned workload.

    Both arms vectorize: ``"vanilla"`` through the dense lockstep loop,
    ``"algorithm_a"`` through the epoch-aware generalized loop — see
    ``docs/kernels.md``.
    """
    x0 = cut_aligned(pair.partition)
    if algorithm == "vanilla":
        factory: "Callable[..., Any]" = VanillaGossip
        budget = convex_budget(pair)
    elif algorithm == "algorithm_a":
        factory, _ = _algorithm_a_factory(pair)
        # Grid-like families mix slowly; never give A less time than the
        # convex scale needs (mirrors the E9 report function).
        budget = max(nonconvex_budget(pair), convex_budget(pair))
    else:
        raise ExperimentError(
            f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
        )
    return PointConfig(
        graph=pair.graph,
        algorithm_factory=factory,
        initial_values=x0,
        max_time=budget,
        max_events=MAX_EVENTS,
    )


# ----------------------------------------------------------------------
# point builders (module-level: the configs they build must pickle)
# ----------------------------------------------------------------------


def build_size_pair(n: int, *, degree: int, seed: int) -> BridgedPair:
    """Construct one E1/E2 expander pair of total size ``n``, one bridge.

    Shared by the E1/E2 sweep builders and their report functions — the
    graph seed is keyed by ``n`` itself (not the grid position), so both
    paths measure the same instance even under ``--axis`` overrides.
    """
    half = int(n) // 2
    return two_expanders(
        half, half, degree=int(degree), n_bridges=1,
        seed=int(seed) + int(n),
    )


def e1_build_point(
    *, n: int, algorithm: str, degree: int, seed: int
) -> PointConfig:
    """E1 convex-bound point: one class-C member on a single-bridge pair."""
    pair = build_size_pair(n, degree=degree, seed=seed)
    if algorithm == "vanilla":
        factory: "Callable[..., Any]" = VanillaGossip
    elif algorithm == "lazy":
        factory = AlgorithmFactory(ConvexGossip, 0.75)
    else:
        raise ExperimentError(
            f"unknown algorithm {algorithm!r}; expected one of {E1_ALGORITHMS}"
        )
    return PointConfig(
        graph=pair.graph,
        algorithm_factory=factory,
        initial_values=cut_aligned(pair.partition),
        max_time=convex_budget(pair),
        max_events=MAX_EVENTS,
    )


def e2_build_point(*, n: int, degree: int, seed: int) -> PointConfig:
    """E2 envelope point: Algorithm A on a single-bridge pair of size ``n``.

    E2 keeps its own graph seed (11, vs E1's 7 — the legacy report
    functions' seeds), so the two experiments measure independently
    drawn expander pairs of the same shape, not one shared instance.
    """
    pair = build_size_pair(n, degree=degree, seed=seed)
    factory, _ = _algorithm_a_factory(pair)
    return PointConfig(
        graph=pair.graph,
        algorithm_factory=factory,
        initial_values=cut_aligned(pair.partition),
        max_time=nonconvex_budget(pair),
        max_events=MAX_EVENTS,
    )


def e3_build_point(*, n: int, algorithm: str) -> PointConfig:
    """E3 dumbbell headline point: two n/2-cliques joined by one edge."""
    return _point_config(dumbbell_graph(int(n)), algorithm)


def build_balance_pair(
    fraction: float, *, total: int, degree: int, seed: int
) -> BridgedPair:
    """Construct one E5 pair with ``n1 ~ fraction * total`` vertices.

    ``n1`` is rounded to even so ``n1 * degree`` stays even for the
    expander pairing model; the graph seed is keyed by the resulting
    ``n1``, so report and sweep measure the same instance.
    """
    n1 = int(round(int(total) * float(fraction)))
    n1 += n1 % 2
    n2 = int(total) - n1
    return two_expanders(n1, n2, degree=int(degree), n_bridges=1, seed=int(seed) + n1)


def e5_build_point(
    *, fraction: float, gain: str, total: int, degree: int, seed: int
) -> PointConfig:
    """E5 ablation point: Algorithm A under one swap gain at one balance."""
    if gain not in E5_GAINS:
        raise ExperimentError(f"unknown gain {gain!r}; expected one of {E5_GAINS}")
    pair = build_balance_pair(fraction, total=total, degree=degree, seed=seed)
    factory, _ = _algorithm_a_factory(pair, gain=gain)
    return PointConfig(
        graph=pair.graph,
        algorithm_factory=factory,
        initial_values=cut_aligned(pair.partition),
        max_time=nonconvex_budget(pair),
        max_events=MAX_EVENTS,
    )


def build_epoch_grid_pair(*, grid_rows: int, grid_cols: int) -> BridgedPair:
    """The E10 instance: a single-bridge pair of slow-mixing grids."""
    return two_grids(int(grid_rows), int(grid_cols), n_bridges=1)


def e10_build_point(
    *, constant: float, grid_rows: int, grid_cols: int
) -> PointConfig:
    """E10 ablation point: Algorithm A with epoch constant ``C``.

    The run budget never shrinks below the ``C = 3`` budget (a tiny C
    shortens the *epoch*, not the time the swap needs), and never below
    the convex scale (grids mix slowly).
    """
    pair = build_epoch_grid_pair(grid_rows=grid_rows, grid_cols=grid_cols)
    factory, _ = _algorithm_a_factory(pair, constant=float(constant))
    budget = max(
        nonconvex_budget(pair, constant=max(float(constant), 3.0)),
        convex_budget(pair),
    )
    return PointConfig(
        graph=pair.graph,
        algorithm_factory=factory,
        initial_values=cut_aligned(pair.partition),
        max_time=budget,
        max_events=MAX_EVENTS,
    )


def build_width_pair(
    width: int, *, half: int, degree: int, seed: int
) -> BridgedPair:
    """Construct one E4 expander pair with ``width`` bridges.

    Shared by the E4 sweep builder and the E4 report function — the
    graph seed is keyed by the width itself (not the grid position), so
    both paths measure the same instance even under ``--axis`` overrides.
    """
    return two_expanders(
        int(half), int(half), degree=int(degree),
        n_bridges=int(width), seed=int(seed) + int(width),
    )


def e4_build_point(
    *, width: int, algorithm: str, half: int, degree: int, seed: int
) -> PointConfig:
    """E4 cut-width point: expander pair with ``width`` bridges."""
    pair = build_width_pair(width, half=half, degree=degree, seed=seed)
    return _point_config(pair, algorithm)


def build_family_pair(
    family: str,
    *,
    half: int,
    grid_rows: int,
    grid_cols: int,
    degree: int,
    seed: int,
) -> BridgedPair:
    """Construct one E9 sparse-cut family instance.

    Shared by the E9 sweep builder and the E9 report function, so the
    two paths measure the same graphs.
    """
    half = int(half)
    if family == "clique":
        return dumbbell_graph(2 * half)
    if family == "expander":
        return two_expanders(half, degree=int(degree), n_bridges=1, seed=int(seed))
    if family == "erdos_renyi":
        return two_erdos_renyi(half, n_bridges=1, seed=int(seed) + 1)
    if family == "grid":
        return two_grids(int(grid_rows), int(grid_cols), n_bridges=1)
    raise ExperimentError(
        f"unknown family {family!r}; expected clique/expander/"
        "erdos_renyi/grid"
    )


def e9_build_point(
    *,
    family: str,
    algorithm: str,
    half: int,
    grid_rows: int,
    grid_cols: int,
    degree: int,
    seed: int,
) -> PointConfig:
    """E9 topology point: one sparse-cut family instance."""
    pair = build_family_pair(
        family, half=half, grid_rows=grid_rows, grid_cols=grid_cols,
        degree=degree, seed=seed,
    )
    return _point_config(pair, algorithm)


def e13_build_point(*, config: str, half: int) -> PointConfig:
    """E13 failure-injection point: one configuration vs unreliable clocks.

    The instance is a clique pair with :data:`E13_BRIDGES` bridges; the
    failing arms kill the designated edge's clock at
    :data:`E13_DEATH_TIME`, the lossy arm drops each tick with
    probability :data:`E13_LOSS_RATE`, and ``vanilla_healthy`` is the
    unperturbed baseline the slowdown claim divides by.
    """
    half = int(half)
    pair = two_cliques(half, half, n_bridges=E13_BRIDGES)
    epoch = epoch_length_ticks(pair.partition, constant=3.0)
    failing_clock = FailingPoissonClockFactory(
        pair.graph.n_edges, {pair.designated_edge: E13_DEATH_TIME}
    )
    if config == "vanilla_failing":
        factory: "Callable[..., Any]" = VanillaGossip
        clock: "Any | None" = failing_clock
    elif config == "algorithm_a_failing":
        factory = AlgorithmFactory(
            NonConvexSparseCutGossip, pair.partition, epoch_length=epoch
        )
        clock = failing_clock
    elif config == "resilient_failing":
        factory = AlgorithmFactory(
            ResilientSparseCutGossip, pair.partition, epoch_length=epoch
        )
        clock = failing_clock
    elif config == "vanilla_lossy":
        factory = VanillaGossip
        clock = LossyPoissonClockFactory(pair.graph.n_edges, E13_LOSS_RATE)
    elif config == "vanilla_healthy":
        factory = VanillaGossip
        clock = None
    else:
        raise ExperimentError(
            f"unknown config {config!r}; expected one of {E13_CONFIGS}"
        )
    return PointConfig(
        graph=pair.graph,
        algorithm_factory=factory,
        initial_values=cut_aligned(pair.partition),
        clock_factory=clock,
        max_time=3.0 * convex_budget(pair),
        max_events=MAX_EVENTS,
    )


# ----------------------------------------------------------------------
# sweep declarations
# ----------------------------------------------------------------------


def e1_sweep(scale: "str | None" = None, seed: int = 7) -> SweepSpec:
    """E1 as a grid: total size x convex algorithm on expander pairs."""
    scale = resolve_scale(scale)
    return SweepSpec(
        name="E1",
        axes=(
            SweepAxis("n", E1_SIZES[scale]),
            SweepAxis("algorithm", E1_ALGORITHMS),
        ),
        builder=e1_build_point,
        base_params={"degree": EXPANDER_DEGREE[scale], "seed": seed},
    )


def e2_sweep(scale: "str | None" = None, seed: int = 11) -> SweepSpec:
    """E2 as a grid: Algorithm A across the same sizes E1 sweeps."""
    scale = resolve_scale(scale)
    return SweepSpec(
        name="E2",
        axes=(SweepAxis("n", E1_SIZES[scale]),),
        builder=e2_build_point,
        base_params={"degree": EXPANDER_DEGREE[scale], "seed": seed},
    )


def e5_sweep(scale: "str | None" = None, seed: int = 19) -> SweepSpec:
    """E5 as a grid: partition balance x swap gain at fixed total size."""
    scale = resolve_scale(scale)
    return SweepSpec(
        name="E5",
        axes=(
            SweepAxis("fraction", E5_FRACTIONS[scale]),
            SweepAxis("gain", E5_GAINS),
        ),
        builder=e5_build_point,
        base_params={
            "total": E5_TOTAL[scale],
            "degree": EXPANDER_DEGREE[scale],
            "seed": seed,
        },
    )


def e10_sweep(scale: "str | None" = None, seed: int = 41) -> SweepSpec:
    """E10 as a grid: the paper's epoch constant C on a grid pair.

    ``seed`` is accepted for registry uniformity but unused: the grid
    pair is deterministic and Monte-Carlo streams come from the sweep
    root seed, not the declaration.
    """
    scale = resolve_scale(scale)
    rows, cols = E10_GRID_DIMS[scale]
    return SweepSpec(
        name="E10",
        axes=(SweepAxis("constant", E10_CONSTANTS[scale]),),
        builder=e10_build_point,
        base_params={"grid_rows": rows, "grid_cols": cols},
    )


def e3_sweep(scale: "str | None" = None, seed: int = 13) -> SweepSpec:
    """E3 as a grid: dumbbell size x algorithm."""
    scale = resolve_scale(scale)
    return SweepSpec(
        name="E3",
        axes=(
            SweepAxis("n", E3_SIZES[scale]),
            SweepAxis("algorithm", ALGORITHMS),
        ),
        builder=e3_build_point,
    )


def e4_sweep(scale: "str | None" = None, seed: int = 17) -> SweepSpec:
    """E4 as a grid: cut width x algorithm at fixed n."""
    scale = resolve_scale(scale)
    return SweepSpec(
        name="E4",
        axes=(
            SweepAxis("width", E4_WIDTHS[scale]),
            SweepAxis("algorithm", ALGORITHMS),
        ),
        builder=e4_build_point,
        base_params={
            "half": E4_HALF[scale],
            "degree": EXPANDER_DEGREE[scale],
            "seed": seed,
        },
    )


def e9_sweep(scale: "str | None" = None, seed: int = 37) -> SweepSpec:
    """E9 as a grid: sparse-cut family x algorithm."""
    scale = resolve_scale(scale)
    rows, cols = E9_GRID_DIMS[scale]
    return SweepSpec(
        name="E9",
        axes=(
            SweepAxis("family", E9_FAMILIES[scale]),
            SweepAxis("algorithm", ALGORITHMS),
        ),
        builder=e9_build_point,
        base_params={
            "half": E9_HALF[scale],
            "grid_rows": rows,
            "grid_cols": cols,
            "degree": EXPANDER_DEGREE[scale],
            "seed": seed,
        },
    )


def e13_sweep(scale: "str | None" = None, seed: int = 53) -> SweepSpec:
    """E13 as a grid: failure-injection configurations on one clique pair.

    ``seed`` is accepted for registry uniformity but unused: the clique
    pair is deterministic and Monte-Carlo streams (including the clock
    death/loss draws) come from the sweep root seed.
    """
    scale = resolve_scale(scale)
    return SweepSpec(
        name="E13",
        axes=(SweepAxis("config", E13_CONFIGS),),
        builder=e13_build_point,
        base_params={"half": E13_HALF[scale]},
    )


#: Registered sweeps, keyed by experiment id.
SWEEPS: "dict[str, Callable[..., SweepSpec]]" = {
    "E1": e1_sweep,
    "E2": e2_sweep,
    "E3": e3_sweep,
    "E4": e4_sweep,
    "E5": e5_sweep,
    "E9": e9_sweep,
    "E10": e10_sweep,
    "E13": e13_sweep,
}


def get_sweep(sweep_id: str, *, scale: "str | None" = None,
              seed: "int | None" = None) -> SweepSpec:
    """Look up and instantiate a sweep declaration (case-insensitive)."""
    key = sweep_id.upper()
    if key not in SWEEPS:
        raise ExperimentError(
            f"no sweep declared for {sweep_id!r}; available: {sorted(SWEEPS)}"
        )
    kwargs: "dict[str, Any]" = {"scale": scale}
    if seed is not None:
        kwargs["seed"] = seed
    return SWEEPS[key](**kwargs)


#: Per-scale replicate counts the report path has always used.
REPORT_REPLICATES = {"smoke": 3, "default": 6, "full": 10}


def report_budget(scale: "str | None" = None) -> ReplicateBudget:
    """Fixed budget matching the legacy report replicate counts.

    The rewritten report functions (E1/E2/E5/E10) run their grids through
    the sweep scheduler under this budget, so a report costs exactly what
    the one-configuration-at-a-time path used to cost.
    """
    return ReplicateBudget.fixed(REPORT_REPLICATES[resolve_scale(scale)])


def default_sweep_budget(scale: "str | None" = None) -> ReplicateBudget:
    """Scale-matched adaptive budget.

    The floor matches the legacy fixed replicate count of each scale, so
    a sweep is never *less* certain than the report path; the cap gives
    the adaptive rule room to tighten noisy grid points.
    """
    scale = resolve_scale(scale)
    floor = REPORT_REPLICATES[scale]
    return ReplicateBudget.adaptive(
        target_ci=0.5,
        min_replicates=floor,
        max_replicates=4 * floor,
        round_size=max(floor // 2, 1),
    )


def resolve_sweep_budget(
    scale: "str | None" = None,
    *,
    replicates: "int | None" = None,
    target_ci: "float | None" = None,
    min_replicates: "int | None" = None,
    max_replicates: "int | None" = None,
    round_size: "int | None" = None,
) -> ReplicateBudget:
    """Budget resolution shared by the CLI flags and the HTTP service.

    A ``replicates`` value wins outright (fixed budget, adaptive rule
    disabled); otherwise any adaptive overrides overlay the
    scale-matched :func:`default_sweep_budget`.
    """
    if replicates is not None:
        return ReplicateBudget.fixed(replicates)
    base = default_sweep_budget(scale)
    overrides = {
        key: value
        for key, value in {
            "target_ci": target_ci,
            "min_replicates": min_replicates,
            "max_replicates": max_replicates,
            "round_size": round_size,
        }.items()
        if value is not None
    }
    if not overrides:
        return base
    merged = base.to_dict()
    merged.update(overrides)
    return ReplicateBudget.from_dict(merged)


def axis_values_from_payload(values: Any) -> list:
    """Validate a JSON axis override (service submissions) into values.

    Accepts a non-empty list of scalars (the same literal forms the
    grid tables use); anything else is an :class:`ExperimentError`.
    """
    if not isinstance(values, (list, tuple)) or not values:
        raise ExperimentError(
            f"axis override must be a non-empty list of values, got {values!r}"
        )
    for value in values:
        if not isinstance(value, (int, float, str)) or isinstance(value, bool):
            raise ExperimentError(
                f"axis values must be numbers or strings, got {value!r}"
            )
    return list(values)


def axis_override_from_text(text: str) -> "tuple[str, list]":
    """Parse a CLI ``--axis name=v1,v2,...`` override.

    Values are coerced to int, then float, then kept as strings — the
    same literal forms the grid tables above use.
    """
    if "=" not in text:
        raise ExperimentError(f"--axis expects name=v1,v2,... got {text!r}")
    name, _, raw_values = text.partition("=")
    name = name.strip()
    values: "list[Any]" = []
    for token in raw_values.split(","):
        token = token.strip()
        if not token:
            continue
        try:
            values.append(int(token))
            continue
        except ValueError:
            pass
        try:
            values.append(float(token))
            continue
        except ValueError:
            values.append(token)
    if not name or not values:
        raise ExperimentError(f"--axis expects name=v1,v2,... got {text!r}")
    return name, values

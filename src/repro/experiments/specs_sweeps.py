"""Sweep declarations: E3/E4/E9 grids as :class:`SweepSpec` objects.

The scaling experiments are grids (size x algorithm, cut width x
algorithm, family x algorithm) measured point by point; this module
declares those grids once so the sweep scheduler
(:mod:`repro.engine.sweeps`) can fan the **whole grid** out over one
worker pool.  The per-scale grid values defined here are the single
source of truth — the legacy report functions in
:mod:`repro.experiments.specs_scaling` / ``specs_baselines`` read their
sizes from the same tables, so the sweep path and the report path can
never drift apart.

Every builder is a module-level function returning a
:class:`~repro.engine.sweeps.PointConfig` built from picklable pieces
(:class:`~repro.engine.backends.AlgorithmFactory`, plain graphs), so
sweep replicates fan out to worker processes unchanged.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.algorithms.vanilla import VanillaGossip
from repro.engine.sweeps import (
    PointConfig,
    ReplicateBudget,
    SweepAxis,
    SweepSpec,
)
from repro.errors import ExperimentError
from repro.experiments.harness import pick, resolve_scale
from repro.experiments.specs_scaling import (
    MAX_EVENTS,
    _algorithm_a_factory,
    convex_budget,
    nonconvex_budget,
)
from repro.experiments.workloads import cut_aligned
from repro.graphs.composites import (
    BridgedPair,
    dumbbell_graph,
    two_erdos_renyi,
    two_expanders,
    two_grids,
)

#: The algorithm axis shared by every ported sweep: the paper's headline
#: comparison is always convex baseline vs Algorithm A.
ALGORITHMS = ("vanilla", "algorithm_a")

# Per-scale grid values (single source of truth; the legacy report
# functions read these same tables).
E3_SIZES = {
    "smoke": (32, 48),
    "default": (32, 64, 128),
    "full": (32, 64, 128, 256),
}
E4_WIDTHS = {
    "smoke": (1, 4),
    "default": (1, 2, 4, 8, 16),
    "full": (1, 2, 4, 8, 16, 32),
}
E4_HALF = {"smoke": 16, "default": 64, "full": 128}
E9_FAMILIES = {
    "smoke": ("clique", "grid"),
    "default": ("clique", "expander", "erdos_renyi", "grid"),
    "full": ("clique", "expander", "erdos_renyi", "grid"),
}
E9_HALF = {"smoke": 16, "default": 48, "full": 96}
E9_GRID_DIMS = {"smoke": (3, 3), "default": (6, 8), "full": (6, 8)}


def _point_config(pair: BridgedPair, algorithm: str) -> PointConfig:
    """The measurement every ported sweep point runs: T_av of one
    algorithm on one bridged pair under the cut-aligned workload."""
    x0 = cut_aligned(pair.partition)
    if algorithm == "vanilla":
        factory: "Callable[..., Any]" = VanillaGossip
        budget = convex_budget(pair)
    elif algorithm == "algorithm_a":
        factory, _ = _algorithm_a_factory(pair)
        # Grid-like families mix slowly; never give A less time than the
        # convex scale needs (mirrors the E9 report function).
        budget = max(nonconvex_budget(pair), convex_budget(pair))
    else:
        raise ExperimentError(
            f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
        )
    return PointConfig(
        graph=pair.graph,
        algorithm_factory=factory,
        initial_values=x0,
        max_time=budget,
        max_events=MAX_EVENTS,
    )


# ----------------------------------------------------------------------
# point builders (module-level: the configs they build must pickle)
# ----------------------------------------------------------------------


def e3_build_point(*, n: int, algorithm: str) -> PointConfig:
    """E3 dumbbell headline point: two n/2-cliques joined by one edge."""
    return _point_config(dumbbell_graph(int(n)), algorithm)


def build_width_pair(
    width: int, *, half: int, degree: int, seed: int
) -> BridgedPair:
    """Construct one E4 expander pair with ``width`` bridges.

    Shared by the E4 sweep builder and the E4 report function — the
    graph seed is keyed by the width itself (not the grid position), so
    both paths measure the same instance even under ``--axis`` overrides.
    """
    return two_expanders(
        int(half), int(half), degree=int(degree),
        n_bridges=int(width), seed=int(seed) + int(width),
    )


def e4_build_point(
    *, width: int, algorithm: str, half: int, degree: int, seed: int
) -> PointConfig:
    """E4 cut-width point: expander pair with ``width`` bridges."""
    pair = build_width_pair(width, half=half, degree=degree, seed=seed)
    return _point_config(pair, algorithm)


def build_family_pair(
    family: str,
    *,
    half: int,
    grid_rows: int,
    grid_cols: int,
    degree: int,
    seed: int,
) -> BridgedPair:
    """Construct one E9 sparse-cut family instance.

    Shared by the E9 sweep builder and the E9 report function, so the
    two paths measure the same graphs.
    """
    half = int(half)
    if family == "clique":
        return dumbbell_graph(2 * half)
    if family == "expander":
        return two_expanders(half, degree=int(degree), n_bridges=1,
                             seed=int(seed))
    if family == "erdos_renyi":
        return two_erdos_renyi(half, n_bridges=1, seed=int(seed) + 1)
    if family == "grid":
        return two_grids(int(grid_rows), int(grid_cols), n_bridges=1)
    raise ExperimentError(
        f"unknown family {family!r}; expected clique/expander/"
        "erdos_renyi/grid"
    )


def e9_build_point(
    *,
    family: str,
    algorithm: str,
    half: int,
    grid_rows: int,
    grid_cols: int,
    degree: int,
    seed: int,
) -> PointConfig:
    """E9 topology point: one sparse-cut family instance."""
    pair = build_family_pair(
        family, half=half, grid_rows=grid_rows, grid_cols=grid_cols,
        degree=degree, seed=seed,
    )
    return _point_config(pair, algorithm)


# ----------------------------------------------------------------------
# sweep declarations
# ----------------------------------------------------------------------


def e3_sweep(scale: "str | None" = None, seed: int = 13) -> SweepSpec:
    """E3 as a grid: dumbbell size x algorithm."""
    scale = resolve_scale(scale)
    return SweepSpec(
        name="E3",
        axes=(
            SweepAxis("n", E3_SIZES[scale]),
            SweepAxis("algorithm", ALGORITHMS),
        ),
        builder=e3_build_point,
    )


def e4_sweep(scale: "str | None" = None, seed: int = 17) -> SweepSpec:
    """E4 as a grid: cut width x algorithm at fixed n."""
    scale = resolve_scale(scale)
    return SweepSpec(
        name="E4",
        axes=(
            SweepAxis("width", E4_WIDTHS[scale]),
            SweepAxis("algorithm", ALGORITHMS),
        ),
        builder=e4_build_point,
        base_params={
            "half": E4_HALF[scale],
            "degree": pick(scale, smoke=4, default=8, full=8),
            "seed": seed,
        },
    )


def e9_sweep(scale: "str | None" = None, seed: int = 37) -> SweepSpec:
    """E9 as a grid: sparse-cut family x algorithm."""
    scale = resolve_scale(scale)
    rows, cols = E9_GRID_DIMS[scale]
    return SweepSpec(
        name="E9",
        axes=(
            SweepAxis("family", E9_FAMILIES[scale]),
            SweepAxis("algorithm", ALGORITHMS),
        ),
        builder=e9_build_point,
        base_params={
            "half": E9_HALF[scale],
            "grid_rows": rows,
            "grid_cols": cols,
            "degree": pick(scale, smoke=4, default=8, full=8),
            "seed": seed,
        },
    )


#: Registered sweeps, keyed by experiment id.
SWEEPS: "dict[str, Callable[..., SweepSpec]]" = {
    "E3": e3_sweep,
    "E4": e4_sweep,
    "E9": e9_sweep,
}


def get_sweep(sweep_id: str, *, scale: "str | None" = None,
              seed: "int | None" = None) -> SweepSpec:
    """Look up and instantiate a sweep declaration (case-insensitive)."""
    key = sweep_id.upper()
    if key not in SWEEPS:
        raise ExperimentError(
            f"no sweep declared for {sweep_id!r}; available: {sorted(SWEEPS)}"
        )
    kwargs: "dict[str, Any]" = {"scale": scale}
    if seed is not None:
        kwargs["seed"] = seed
    return SWEEPS[key](**kwargs)


def default_sweep_budget(scale: "str | None" = None) -> ReplicateBudget:
    """Scale-matched adaptive budget.

    The floor matches the legacy fixed replicate count of each scale, so
    a sweep is never *less* certain than the report path; the cap gives
    the adaptive rule room to tighten noisy grid points.
    """
    scale = resolve_scale(scale)
    floor = pick(scale, smoke=3, default=6, full=10)
    return ReplicateBudget.adaptive(
        target_ci=0.5,
        min_replicates=floor,
        max_replicates=4 * floor,
        round_size=max(floor // 2, 1),
    )


def axis_override_from_text(text: str) -> "tuple[str, list]":
    """Parse a CLI ``--axis name=v1,v2,...`` override.

    Values are coerced to int, then float, then kept as strings — the
    same literal forms the grid tables above use.
    """
    if "=" not in text:
        raise ExperimentError(
            f"--axis expects name=v1,v2,... got {text!r}"
        )
    name, _, raw_values = text.partition("=")
    name = name.strip()
    values: "list[Any]" = []
    for token in raw_values.split(","):
        token = token.strip()
        if not token:
            continue
        try:
            values.append(int(token))
            continue
        except ValueError:
            pass
        try:
            values.append(float(token))
            continue
        except ValueError:
            values.append(token)
    if not name or not values:
        raise ExperimentError(
            f"--axis expects name=v1,v2,... got {text!r}"
        )
    return name, values

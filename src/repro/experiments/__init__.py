"""Experiment harness: workloads, specs E1-E10, reporting, CLI."""

from repro.experiments.workloads import (
    bimodal_noise,
    cut_aligned,
    gaussian,
    linear_gradient,
    make_workload,
    spike,
)
from repro.experiments.harness import (
    ExperimentReport,
    ShapeCheck,
    measure_averaging_time,
)
from repro.experiments.specs import EXPERIMENTS, get_experiment, run_experiment
from repro.experiments.specs_sweeps import (
    SWEEPS,
    default_sweep_budget,
    get_sweep,
)

__all__ = [
    "bimodal_noise",
    "cut_aligned",
    "gaussian",
    "linear_gradient",
    "make_workload",
    "spike",
    "ExperimentReport",
    "ShapeCheck",
    "measure_averaging_time",
    "EXPERIMENTS",
    "get_experiment",
    "run_experiment",
    "SWEEPS",
    "default_sweep_budget",
    "get_sweep",
]

"""Experiments E8-E10: baselines, topology robustness, epoch-constant ablation."""

from __future__ import annotations

import math

from repro.algorithms.convex import ConvexGossip, RandomConvexGossip
from repro.algorithms.push_sum import PushSumGossip
from repro.algorithms.second_order import (
    AsyncSecondOrderGossip,
    SecondOrderDiffusionSync,
)
from repro.algorithms.two_timescale import TwoTimescaleGossip
from repro.algorithms.vanilla import VanillaGossip
from repro.analysis.bounds import theorem1_lower_bound, theorem2_upper_bound
from repro.core.epochs import epoch_length_ticks
from repro.engine.backends import AlgorithmFactory
from repro.experiments.harness import (
    ExperimentReport,
    measure_averaging_time,
    pick,
    resolve_scale,
)
from repro.experiments.specs_scaling import (
    MAX_EVENTS,
    _algorithm_a_factory,
    convex_budget,
    nonconvex_budget,
)
from repro.experiments.workloads import cut_aligned
from repro.graphs.composites import dumbbell_graph
from repro.util.tables import Table


# ----------------------------------------------------------------------
# E8 — baseline comparison on the dumbbell
# ----------------------------------------------------------------------


def e8_baselines(scale: "str | None" = None, seed: int = 31) -> ExperimentReport:
    """Every implemented averaging scheme head-to-head on one dumbbell.

    The table a practitioner wants: class-C members (vanilla, lazy,
    random-alpha), the related-work schemes the paper cites (two-time-
    scale [1,4]; second-order diffusion [5], both synchronous-faithful and
    async-adapted), push-sum (outside class C but still cut-limited), and
    Algorithm A.  One synchronous round counts as one time unit (every
    edge ticks once per unit time in expectation; DESIGN.md section 2).
    """
    from repro.experiments.specs_sweeps import REPORT_REPLICATES

    scale = resolve_scale(scale)
    n = pick(scale, smoke=48, default=64, full=128)
    replicates = REPORT_REPLICATES[scale]

    pair = dumbbell_graph(n)
    x0 = cut_aligned(pair.partition)
    budget = convex_budget(pair)

    report = ExperimentReport(
        experiment_id="E8",
        title=f"Baseline comparison on the dumbbell (n = {n})",
        paper_claim=(
            "Only the non-convex cross-cut update escapes the Theorem-1 "
            "bottleneck; convex schemes (whatever their schedule), "
            "push-sum, and per-round momentum methods all remain "
            "cut-limited."
        ),
    )
    table = Table(
        ["algorithm", "class", "T_av", "vs thm1 bound"],
        title=f"E8: averaging times, dumbbell n = {n} "
        f"(thm1 bound = {theorem1_lower_bound(pair.partition):.3g})",
    )
    bound = theorem1_lower_bound(pair.partition)

    factories = [
        ("vanilla", "convex C", VanillaGossip),
        ("lazy convex (a=0.75)", "convex C", AlgorithmFactory(ConvexGossip, 0.75)),
        ("random convex", "convex C", RandomConvexGossip),
        (
            "two-timescale (const)",
            "convex C",
            AlgorithmFactory(TwoTimescaleGossip, pair.partition, slow_step=0.1),
        ),
        (
            "two-timescale (harmonic)",
            "convex C",
            AlgorithmFactory(
                TwoTimescaleGossip,
                pair.partition, slow_step=0.5, schedule="harmonic", tau=20.0,
            ),
        ),
        ("push-sum", "non-C, convex mass", PushSumGossip),
        (
            "async 2nd-order (b=1.5)",
            "non-C, momentum",
            AlgorithmFactory(AsyncSecondOrderGossip, 1.5),
        ),
    ]
    results: dict[str, float] = {}
    censored: dict[str, bool] = {}
    for index, (label, klass, factory) in enumerate(factories):
        estimate = measure_averaging_time(
            pair.graph, factory, x0,
            n_replicates=replicates, seed=seed + 10 * index,
            max_time=budget, max_events=MAX_EVENTS,
        )
        results[label] = estimate.estimate
        censored[label] = estimate.is_censored
        cell = "censored" if estimate.is_censored else f"{estimate.estimate:.4g}"
        ratio = (
            "-" if estimate.is_censored else f"{estimate.estimate / bound:.2f}"
        )
        table.add_row([label, klass, cell, ratio])

    # Synchronous second-order diffusion: rounds ~ time units.
    sync = SecondOrderDiffusionSync(pair.graph)
    rounds = sync.rounds_to_ratio(x0, target_ratio=math.e**-2, max_rounds=50_000)
    results["sync 2nd-order (rounds)"] = float(rounds)
    censored["sync 2nd-order (rounds)"] = rounds >= 50_000
    table.add_row(
        ["sync 2nd-order [5]", "non-C, momentum", float(rounds),
         f"{rounds / bound:.2f}"]
    )

    factory_a, _ = _algorithm_a_factory(pair)
    est_a = measure_averaging_time(
        pair.graph, factory_a, x0,
        n_replicates=replicates, seed=seed + 999,
        max_time=nonconvex_budget(pair), max_events=MAX_EVENTS,
    )
    results["algorithm A"] = est_a.estimate
    censored["algorithm A"] = est_a.is_censored
    table.add_row(
        ["algorithm A", "non-convex cut swap", est_a.estimate,
         f"{est_a.estimate / bound:.2f}"]
    )
    report.tables.append(table)

    finite_baselines = {
        label: value
        for label, value in results.items()
        if label != "algorithm A" and not censored[label]
    }
    best_baseline = min(finite_baselines.values())
    report.findings["best_baseline_tav"] = best_baseline
    report.findings["algorithm_a_tav"] = est_a.estimate
    report.findings["advantage"] = best_baseline / max(est_a.estimate, 1e-9)
    report.add_check(
        "Algorithm A converged",
        not est_a.is_censored,
        f"T_av = {est_a.estimate:.3g}",
    )
    report.add_check(
        "Algorithm A beats every baseline",
        est_a.estimate < best_baseline,
        f"best baseline {best_baseline:.3g} vs A {est_a.estimate:.3g}",
    )
    convex_labels = [lab for lab, klass, _ in factories if klass == "convex C"]
    convex_respect = all(
        censored[label] or results[label] >= bound for label in convex_labels
    )
    report.add_check(
        "every class-C member respects the Theorem-1 bound",
        convex_respect,
        f"bound = {bound:.3g}",
    )
    return report


# ----------------------------------------------------------------------
# E9 — topology robustness (and the well-connectedness hypothesis)
# ----------------------------------------------------------------------


def e9_topologies(scale: "str | None" = None, seed: int = 37) -> ExperimentReport:
    """Sparse-cut families beyond cliques — including a negative control.

    Grid pairs have ``Tvan(G_i) = Theta(n_i)``, so the paper's hypothesis
    "internally well connected" fails: Theorem 2's envelope
    ``C ln n (Tvan1 + Tvan2)`` exceeds the convex bound and Algorithm A
    is *predicted* to lose there.  The check asserts the regime indicator
    ``(Tvan1 + Tvan2) ln n << n1 / |E12|`` forecasts the winner for every
    family — that is the paper's actual claim.
    """
    scale = resolve_scale(scale)
    # Family grid and instance parameters come from the E9 SweepSpec
    # declaration (specs_sweeps is the single source of truth for ported
    # grids); the pair construction is shared with the sweep builder.
    from repro.experiments.specs_sweeps import (
        E9_FAMILIES,
        E9_GRID_DIMS,
        E9_HALF,
        EXPANDER_DEGREE,
        REPORT_REPLICATES,
        build_family_pair,
    )

    replicates = REPORT_REPLICATES[scale]
    labels = {
        "clique": "clique",
        "expander": "expander (ambiguous zone)",
        "erdos_renyi": "erdos-renyi",
        "grid": "grid (negative control)",
    }
    rows, cols = E9_GRID_DIMS[scale]
    families = [
        (
            labels[family],
            build_family_pair(
                family,
                half=E9_HALF[scale],
                grid_rows=rows,
                grid_cols=cols,
                degree=EXPANDER_DEGREE[scale],
                seed=seed,
            ),
        )
        for family in E9_FAMILIES[scale]
    ]

    report = ExperimentReport(
        experiment_id="E9",
        title="Topology robustness across sparse-cut families",
        paper_claim=(
            "A outperforms class C whenever G1, G2 are internally well "
            "connected relative to the cut; when they are not (grids), "
            "the Theorem-2 envelope exceeds the convex bound and the "
            "advantage is predicted to disappear."
        ),
    )
    table = Table(
        ["family", "n", "regime indicator", "T_av vanilla", "T_av A",
         "speedup", "A predicted to win?"],
        title="E9: vanilla vs Algorithm A by family (regime indicator = "
        "thm2 envelope / whole-graph spectral time; < 1 favours A)",
    )
    from repro.graphs.spectral import spectral_mixing_time

    predictions_ok = True
    for index, (label, pair) in enumerate(families):
        x0 = cut_aligned(pair.partition)
        est_vanilla = measure_averaging_time(
            pair.graph, VanillaGossip, x0,
            n_replicates=replicates, seed=seed + 100 + index,
            max_time=convex_budget(pair), max_events=MAX_EVENTS,
        )
        factory, _ = _algorithm_a_factory(pair)
        est_a = measure_averaging_time(
            pair.graph, factory, x0,
            n_replicates=replicates, seed=seed + 200 + index,
            max_time=max(nonconvex_budget(pair), convex_budget(pair)),
            max_events=MAX_EVENTS,
        )
        envelope = theorem2_upper_bound(pair.partition, constant=3.0)
        # Compare A's envelope to the *actual* convex time scale (the
        # whole-graph spectral mixing time), not the Theorem-1 constant:
        # that ratio is what decides who wins in practice.
        convex_scale = spectral_mixing_time(pair.graph)
        indicator = envelope / convex_scale
        predicted_win = indicator < 1.0
        speedup = est_vanilla.estimate / max(est_a.estimate, 1e-9)
        measured_win = speedup > 1.5
        # Only insist on agreement when the prediction is clear-cut.
        if indicator < 1.0 / 3.0:
            predictions_ok = predictions_ok and measured_win
        elif indicator > 3.0:
            predictions_ok = predictions_ok and not measured_win
        table.add_row(
            [label, pair.graph.n_vertices, indicator, est_vanilla.estimate,
             est_a.estimate, speedup, predicted_win]
        )
    report.tables.append(table)
    report.add_check(
        "the well-connectedness indicator predicts the winner",
        predictions_ok,
        "speedup > 1.5 iff thm2 envelope clearly below the convex time "
        "scale (clear-cut rows only; ambiguous rows reported)",
    )
    return report


# ----------------------------------------------------------------------
# E10 — epoch-constant ablation (fidelity note F4)
# ----------------------------------------------------------------------


def e10_epoch_constant(scale: "str | None" = None, seed: int = 41) -> ExperimentReport:
    """Sweep the paper's unspecified constant C.

    On slow-mixing sides (grid pairs), epochs shorter than the internal
    mixing time fire the swap on unmixed endpoint values and convergence
    degrades or dies — the reason the paper needs ``C >> 1``.  On fast
    sides (expanders) larger C only wastes time linearly.

    The C grid itself runs through the sweep scheduler (E10 SweepSpec in
    ``specs_sweeps``); this function aggregates the resulting
    :class:`SweepResult` and recomputes the epoch bookkeeping from the
    shared pair constructor.
    """
    scale = resolve_scale(scale)
    from repro.engine.sweeps import run_sweep
    from repro.experiments.specs_sweeps import (
        E10_CONSTANTS,
        E10_GRID_DIMS,
        build_epoch_grid_pair,
        e10_sweep,
        report_budget,
    )

    constants = list(E10_CONSTANTS[scale])
    rows, cols = E10_GRID_DIMS[scale]
    grid_pair = build_epoch_grid_pair(grid_rows=rows, grid_cols=cols)
    result = run_sweep(
        e10_sweep(scale), seed=seed, budget=report_budget(scale)
    )

    report = ExperimentReport(
        experiment_id="E10",
        title="Epoch-constant ablation (the paper's C)",
        paper_claim=(
            "Algorithm A needs C large enough that an epoch mixes each "
            "side internally (ineq. 4); with C too small the swap reads "
            "unmixed endpoints and stops making progress."
        ),
    )
    table = Table(
        ["C", "epoch L", "epoch time / Tvan sum", "T_av A"],
        title=f"E10: C sweep on a grid pair (n = {grid_pair.graph.n_vertices})",
    )
    g1, _, g2, _ = grid_pair.partition.subgraphs()
    from repro.graphs.spectral import spectral_mixing_time

    tvan_sum = spectral_mixing_time(g1) + spectral_mixing_time(g2)
    times: dict[float, float] = {}
    censored: dict[float, bool] = {}
    for constant in constants:
        epoch = epoch_length_ticks(grid_pair.partition, constant=constant)
        point = result.point(constant=constant)
        times[constant] = point.estimate
        censored[constant] = point.is_censored
        cell = "censored" if point.is_censored else f"{point.estimate:.4g}"
        table.add_row([constant, epoch, epoch / tvan_sum, cell])
    report.tables.append(table)

    healthy = [c for c in constants if c >= 1.0]
    tiny = [c for c in constants if c < 0.1]
    report.add_check(
        "large C converges",
        all(not censored[c] for c in healthy),
        f"C in {healthy} all settled",
    )
    if tiny:
        # Too-small C must be visibly worse: censored, or far slower than
        # the best healthy configuration.
        best_healthy = min(times[c] for c in healthy)
        degraded = all(
            censored[c] or times[c] >= 3.0 * best_healthy for c in tiny
        )
        report.add_check(
            "too-small C degrades or stalls",
            degraded,
            f"C in {tiny}: "
            + ", ".join(
                "censored" if censored[c] else f"{times[c]:.3g}" for c in tiny
            )
            + f" vs best healthy {best_healthy:.3g}",
        )
    report.findings["tvan_sum"] = tvan_sum
    return report

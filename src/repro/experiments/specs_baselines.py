"""E8 measurement provider: every averaging baseline on one dumbbell.

E9 (topology families) and E10 (epoch-constant ablation) are
sweep-backed — their grids are declared in
:mod:`repro.experiments.specs_sweeps` and their reports assembled in
:mod:`repro.reports` from stored :class:`~repro.engine.sweeps
.SweepResult` data.  E8's zoo of algorithm factories does not fit a
grid axis, so it stays a *provider*: this module runs the measurements
and returns plain data; tables, findings and shape checks are assembled
by the declarative pipeline in :mod:`repro.reports`, never here.
"""

from __future__ import annotations

import math

from repro.algorithms.convex import ConvexGossip, RandomConvexGossip
from repro.algorithms.push_sum import PushSumGossip
from repro.algorithms.second_order import (
    AsyncSecondOrderGossip,
    SecondOrderDiffusionSync,
)
from repro.algorithms.two_timescale import TwoTimescaleGossip
from repro.algorithms.vanilla import VanillaGossip
from repro.analysis.bounds import theorem1_lower_bound
from repro.engine.backends import AlgorithmFactory
from repro.experiments.harness import (
    measure_averaging_time,
    pick,
    resolve_scale,
)
from repro.experiments.specs_scaling import (
    MAX_EVENTS,
    _algorithm_a_factory,
    convex_budget,
    nonconvex_budget,
)
from repro.experiments.workloads import cut_aligned
from repro.graphs.composites import dumbbell_graph

#: Rounds cap for the synchronous second-order baseline.
E8_SYNC_MAX_ROUNDS = 50_000


def e8_measurements(scale: "str | None" = None, seed: int = 31) -> dict:
    """Measure every implemented averaging scheme on one dumbbell.

    Returns one row per arm (label, algorithm class, T_av, censored) in
    table order: the class-C members (vanilla, lazy, random-alpha), the
    related-work schemes the paper cites (two-time-scale [1,4];
    second-order diffusion [5], both synchronous-faithful and
    async-adapted), push-sum (outside class C but still cut-limited),
    the synchronous second-order baseline in rounds, and Algorithm A.
    One synchronous round counts as one time unit (every edge ticks once
    per unit time in expectation; DESIGN.md section 2).
    """
    from repro.experiments.specs_sweeps import REPORT_REPLICATES

    scale = resolve_scale(scale)
    n = pick(scale, smoke=48, default=64, full=128)
    replicates = REPORT_REPLICATES[scale]

    pair = dumbbell_graph(n)
    x0 = cut_aligned(pair.partition)
    budget = convex_budget(pair)
    bound = theorem1_lower_bound(pair.partition)

    factories = [
        ("vanilla", "convex C", VanillaGossip),
        ("lazy convex (a=0.75)", "convex C", AlgorithmFactory(ConvexGossip, 0.75)),
        ("random convex", "convex C", RandomConvexGossip),
        (
            "two-timescale (const)",
            "convex C",
            AlgorithmFactory(TwoTimescaleGossip, pair.partition, slow_step=0.1),
        ),
        (
            "two-timescale (harmonic)",
            "convex C",
            AlgorithmFactory(
                TwoTimescaleGossip,
                pair.partition, slow_step=0.5, schedule="harmonic", tau=20.0,
            ),
        ),
        ("push-sum", "non-C, convex mass", PushSumGossip),
        (
            "async 2nd-order (b=1.5)",
            "non-C, momentum",
            AlgorithmFactory(AsyncSecondOrderGossip, 1.5),
        ),
    ]
    rows = []
    for index, (label, klass, factory) in enumerate(factories):
        estimate = measure_averaging_time(
            pair.graph, factory, x0,
            n_replicates=replicates, seed=seed + 10 * index,
            max_time=budget, max_events=MAX_EVENTS,
        )
        rows.append(
            {
                "label": label,
                "klass": klass,
                "tav": estimate.estimate,
                "censored": estimate.is_censored,
            }
        )

    # Synchronous second-order diffusion: rounds ~ time units.
    sync = SecondOrderDiffusionSync(pair.graph)
    rounds = sync.rounds_to_ratio(
        x0, target_ratio=math.e**-2, max_rounds=E8_SYNC_MAX_ROUNDS
    )
    rows.append(
        {
            "label": "sync 2nd-order [5]",
            "klass": "non-C, momentum",
            "tav": float(rounds),
            "censored": rounds >= E8_SYNC_MAX_ROUNDS,
        }
    )

    factory_a, _ = _algorithm_a_factory(pair)
    est_a = measure_averaging_time(
        pair.graph, factory_a, x0,
        n_replicates=replicates, seed=seed + 999,
        max_time=nonconvex_budget(pair), max_events=MAX_EVENTS,
    )
    rows.append(
        {
            "label": "algorithm A",
            "klass": "non-convex cut swap",
            "tav": est_a.estimate,
            "censored": est_a.is_censored,
        }
    )
    return {"n": n, "bound": bound, "rows": rows}

"""Shared experiment machinery: reports, shape checks, measurement helpers.

Every experiment spec produces an :class:`ExperimentReport` — the tables,
rendered figures, measured scalars and *shape checks* that together
reproduce one claim of the paper.  Shape checks encode what the paper
actually predicts (orderings, scaling exponents, bound satisfaction), not
absolute constants (DESIGN.md, fidelity note F2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.algorithms.base import GossipAlgorithm
from repro.engine.averaging_time import (
    AveragingTimeEstimate,
    estimate_averaging_time,
)
from repro.errors import ExperimentError
from repro.graphs.graph import Graph
from repro.util.tables import Table


@dataclass(frozen=True)
class ShapeCheck:
    """One verified prediction: name, pass/fail, human-readable detail."""

    name: str
    passed: bool
    detail: str

    def to_dict(self) -> dict:
        """Plain-dict view for serialization."""
        return {"name": self.name, "passed": self.passed, "detail": self.detail}


@dataclass
class ExperimentReport:
    """Everything one experiment produced.

    Attributes
    ----------
    experiment_id:
        Short id ("E1"...).
    title:
        One-line description.
    paper_claim:
        What the paper predicts, quoted/paraphrased.
    tables:
        Rendered :class:`Table` objects (the regenerated "tables").
    figures:
        Rendered ASCII figures (the regenerated "figures").
    findings:
        Measured scalars worth quoting (exponents, speedups, bounds).
    checks:
        Shape checks; ``all_checks_passed`` summarizes them.
    """

    experiment_id: str
    title: str
    paper_claim: str
    tables: "list[Table]" = field(default_factory=list)
    figures: "list[str]" = field(default_factory=list)
    findings: dict = field(default_factory=dict)
    checks: "list[ShapeCheck]" = field(default_factory=list)

    @property
    def all_checks_passed(self) -> bool:
        """True when every shape check passed."""
        return all(check.passed for check in self.checks)

    def add_check(self, name: str, passed: bool, detail: str) -> None:
        """Record one shape check."""
        self.checks.append(ShapeCheck(name=name, passed=bool(passed), detail=detail))

    def render(self) -> str:
        """Full human-readable report."""
        lines = [
            f"== {self.experiment_id}: {self.title} ==",
            f"paper claim: {self.paper_claim}",
            "",
        ]
        for table in self.tables:
            lines.append(table.render())
            lines.append("")
        for figure in self.figures:
            lines.append(figure)
            lines.append("")
        if self.findings:
            lines.append("findings:")
            for key, value in self.findings.items():
                if isinstance(value, float):
                    lines.append(f"  {key} = {value:.4g}")
                else:
                    lines.append(f"  {key} = {value}")
            lines.append("")
        lines.append("shape checks:")
        for check in self.checks:
            status = "PASS" if check.passed else "FAIL"
            lines.append(f"  [{status}] {check.name}: {check.detail}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """Serializable summary (tables as row lists)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "paper_claim": self.paper_claim,
            "findings": self.findings,
            "checks": [check.to_dict() for check in self.checks],
            "all_checks_passed": self.all_checks_passed,
            "tables": [
                {"columns": table.columns, "rows": table.to_rows()}
                for table in self.tables
            ],
        }


def measure_averaging_time(
    graph: Graph,
    algorithm_factory: "Callable[[], GossipAlgorithm]",
    initial_values: (
        "Sequence[float] | Callable[[np.random.Generator], Sequence[float]]"
    ),
    *,
    n_replicates: int,
    seed: int,
    max_time: float,
    max_events: "int | None" = None,
    n_workers: "int | None" = None,
) -> AveragingTimeEstimate:
    """Thin wrapper over the estimator with experiment-friendly defaults.

    ``n_workers`` defaults to the ``REPRO_WORKERS`` environment variable
    (which the CLI's ``--workers`` flag sets), so a whole experiment run
    fans its replicates out without touching every call site; estimates
    are bit-identical to serial execution for the same seed.
    """
    return estimate_averaging_time(
        graph,
        algorithm_factory,
        initial_values,
        n_replicates=n_replicates,
        seed=seed,
        max_time=max_time,
        max_events=max_events,
        n_workers=n_workers,
    )


# ----------------------------------------------------------------------
# scale presets
# ----------------------------------------------------------------------

#: Named experiment scales.  "smoke" keeps integration tests fast;
#: "default" is what the benchmark suite runs; "full" is closest to the
#: paper's asymptotic regime (minutes of wall time).
SCALES = ("smoke", "default", "full")


def resolve_scale(scale: "str | None") -> str:
    """Validate a scale name, applying the REPRO_SCALE env default."""
    import os

    if scale is None:
        scale = os.environ.get("REPRO_SCALE", "default")
    if scale not in SCALES:
        raise ExperimentError(f"unknown scale {scale!r}; expected one of {SCALES}")
    return scale


def pick(scale: str, *, smoke, default, full):
    """Select a per-scale parameter value."""
    return {"smoke": smoke, "default": default, "full": full}[scale]

"""E6-E7 measurement providers: the proof machinery, measured.

E6 measures the stochastic-dominance argument (the per-epoch
log-variance walk, its dominating biased walk, Theorem 3's tail, the
constant settling time); E7 the per-epoch potential inequalities (4)-(8).

A fidelity finding surfaced here (DESIGN.md note F5): the paper's Lemma 1,
*read as a worst-case operator-norm statement* ``P[||A_k||^2 >= n^-3] <=
1/2``, is false — the epoch operator always maps the cross-cut imbalance
direction to a post-swap spike of norm ~ gain.  What is true (and what
the walk argument actually needs) is the **trajectory** version, the
paper's inequality (8): the variance of the *actual state* contracts by
``poly(n)`` per epoch w.h.p., because the state at an epoch boundary is
never an adversarial unit vector — it is itself a post-swap state whose
spike the next epoch mixes away.  E6 therefore measures the trajectory
increments ``D_k = log(var X(T_{k+1}^+) / var X(T_k^+))`` and couples
*those* with the dominating walk; the operator norms are measured too.

These functions are *providers* for the declarative report pipeline in
:mod:`repro.reports`: they run the measurements and return plain data —
every table, figure, finding and shape check is assembled there, never
here, so E6/E7 report values flow through the same audited path as the
sweep-backed experiments.
"""

from __future__ import annotations

import math

from repro.analysis.dominance import (
    couple_with_dominating_walk,
    dominance_violations,
)
from repro.analysis.epoch_trace import epoch_potential_trace
from repro.analysis.operators import (
    lemma1_empirical_probability,
    sample_epoch_operators,
)
from repro.analysis.random_walk import (
    settling_time_estimate,
    tail_probability_estimate,
    theorem3_tail_bound,
)
from repro.core.epochs import epoch_length_ticks
from repro.experiments.harness import pick, resolve_scale
from repro.experiments.workloads import bimodal_noise
from repro.graphs.composites import dumbbell_graph
from repro.util.mathx import safe_log

#: The simple-walk size Theorem 3's tail is sampled at (E6d).
E6_TAIL_WALK_N = 400
#: The tail quantiles sampled against the Hoeffding envelope (E6d).
E6_TAIL_POINTS = (0.5, 1.0, 1.5, 2.0)
#: The walk sizes whose settling time must stay bounded (E6e).
E6_SETTLE_SIZES = (16, 64, 256, 1024)


def _trajectory_increments(
    pair, *, epoch_length: int, replicates: int, seed: int
) -> "tuple[list[float], list[float]]":
    """Per-epoch log-variance increments (transient D_1, steady D_2).

    Each replicate starts from a fresh noisy cut-aligned state and runs
    two epochs; ``D_k = log(var(T_{k+1}^+) / var(T_k^+))``.
    """
    transient, steady = [], []
    for rep in range(replicates):
        x0 = bimodal_noise(pair.partition, rng=seed + rep, noise=0.5)
        records = epoch_potential_trace(
            pair.partition,
            x0,
            epoch_length=epoch_length,
            n_epochs=2,
            seed=seed + 10_000 + rep,
        )
        transient.append(safe_log(records[0].variance_contraction))
        steady.append(safe_log(records[1].variance_contraction))
    return transient, steady


def e6_measurements(scale: "str | None" = None, seed: int = 23) -> dict:
    """Measure the dominance machinery on one dumbbell (raw data only)."""
    scale = resolve_scale(scale)
    n = pick(scale, smoke=16, default=32, full=64)
    replicates = pick(scale, smoke=16, default=60, full=150)
    n_operator_epochs = pick(scale, smoke=12, default=40, full=100)
    walk_paths = pick(scale, smoke=300, default=2_000, full=10_000)

    pair = dumbbell_graph(n)
    epoch = epoch_length_ticks(pair.partition, constant=3.0)

    transient, steady = _trajectory_increments(
        pair, epoch_length=epoch, replicates=replicates, seed=seed
    )
    walk, dominating = couple_with_dominating_walk(steady, n, seed=seed)
    violations = dominance_violations(walk, dominating)

    samples = sample_epoch_operators(
        pair.partition, epoch_length=epoch, n_epochs=n_operator_epochs,
        seed=seed + 7,
    )

    tails = [
        {
            "s": s,
            "mc": tail_probability_estimate(
                E6_TAIL_WALK_N, s, n_paths=walk_paths, seed=seed + 1
            ),
            "bound": theorem3_tail_bound(s, c=1.0, beta=0.5),
        }
        for s in E6_TAIL_POINTS
    ]
    settle = [
        {
            "n": walk_n,
            "t0": settling_time_estimate(
                walk_n, n_paths=walk_paths, seed=seed + walk_n
            ),
        }
        for walk_n in E6_SETTLE_SIZES
    ]
    return {
        "n": n,
        "epoch": epoch,
        "log_n": math.log(n),
        "replicates": replicates,
        "n_operator_epochs": n_operator_epochs,
        "walk_paths": walk_paths,
        "transient": transient,
        "steady": steady,
        "walk": walk.tolist(),
        "dominating": dominating.tolist(),
        "violations": int(violations),
        "max_norm": max(s.norm for s in samples),
        "lemma1_worst_case": lemma1_empirical_probability(samples),
        "tails": tails,
        "settle": settle,
    }


def e7_measurements(scale: "str | None" = None, seed: int = 29) -> dict:
    """Measure per-epoch contraction statistics across dumbbell sizes."""
    scale = resolve_scale(scale)
    sizes = pick(scale, smoke=[16], default=[16, 32, 64], full=[16, 32, 64, 128])
    replicates = pick(scale, smoke=4, default=10, full=20)

    rows = []
    for index, n in enumerate(sizes):
        pair = dumbbell_graph(n)
        epoch = epoch_length_ticks(pair.partition, constant=3.0)
        sigma_ratios, var_transient, var_steady, mu_margins = [], [], [], []
        for rep in range(replicates):
            x0 = bimodal_noise(
                pair.partition, rng=seed + 1000 * index + rep, noise=0.5
            )
            records = epoch_potential_trace(
                pair.partition,
                x0,
                epoch_length=epoch,
                n_epochs=2,
                seed=seed + 2000 * index + rep,
            )
            first, second = records[0], records[1]
            sigma_ratios.append(first.sigma_contraction)
            var_transient.append(first.variance_contraction)
            var_steady.append(second.variance_contraction)
            denominator = n**1.5 * first.sigma_pre_swap + 1e-12
            mu_margins.append(first.mu_end / denominator)
        rows.append(
            {
                "n": n,
                "epoch": epoch,
                "sigma_ratios": sigma_ratios,
                "var_transient": var_transient,
                "var_steady": var_steady,
                "mu_margins": mu_margins,
            }
        )
    return {"sizes": sizes, "replicates": replicates, "rows": rows}

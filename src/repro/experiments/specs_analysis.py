"""Experiments E6-E7: the proof machinery, measured.

E6 reproduces the stochastic-dominance argument (the per-epoch
log-variance walk, its dominating biased walk, Theorem 3's tail, the
constant settling time); E7 the per-epoch potential inequalities (4)-(8).

A fidelity finding surfaced here (DESIGN.md note F5): the paper's Lemma 1,
*read as a worst-case operator-norm statement* ``P[||A_k||^2 >= n^-3] <=
1/2``, is false — the epoch operator always maps the cross-cut imbalance
direction to a post-swap spike of norm ~ gain.  What is true (and what
the walk argument actually needs) is the **trajectory** version, the
paper's inequality (8): the variance of the *actual state* contracts by
``poly(n)`` per epoch w.h.p., because the state at an epoch boundary is
never an adversarial unit vector — it is itself a post-swap state whose
spike the next epoch mixes away.  E6 therefore measures the trajectory
increments ``D_k = log(var X(T_{k+1}^+) / var X(T_k^+))`` and couples
*those* with the dominating walk; the operator norms are reported too,
with Eq. 12 (``||A_k|| <= n``) checked and the Lemma-1 gap documented.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.dominance import (
    couple_with_dominating_walk,
    dominance_violations,
)
from repro.analysis.epoch_trace import epoch_potential_trace
from repro.analysis.operators import (
    lemma1_empirical_probability,
    sample_epoch_operators,
)
from repro.analysis.random_walk import (
    settling_time_estimate,
    tail_probability_estimate,
    theorem3_tail_bound,
)
from repro.core.epochs import epoch_length_ticks
from repro.experiments.harness import ExperimentReport, pick, resolve_scale
from repro.experiments.workloads import bimodal_noise
from repro.graphs.composites import dumbbell_graph
from repro.util.ascii_plot import line_plot
from repro.util.mathx import safe_log
from repro.util.tables import Table


def _trajectory_increments(
    pair, *, epoch_length: int, replicates: int, seed: int
) -> "tuple[list[float], list[float]]":
    """Per-epoch log-variance increments (transient D_1, steady D_2).

    Each replicate starts from a fresh noisy cut-aligned state and runs
    two epochs; ``D_k = log(var(T_{k+1}^+) / var(T_k^+))``.
    """
    transient, steady = [], []
    for rep in range(replicates):
        x0 = bimodal_noise(pair.partition, rng=seed + rep, noise=0.5)
        records = epoch_potential_trace(
            pair.partition,
            x0,
            epoch_length=epoch_length,
            n_epochs=2,
            seed=seed + 10_000 + rep,
        )
        transient.append(safe_log(records[0].variance_contraction))
        steady.append(safe_log(records[1].variance_contraction))
    return transient, steady


# ----------------------------------------------------------------------
# E6 — stochastic dominance and the dominating walk
# ----------------------------------------------------------------------


def e6_stochastic_dominance(
    scale: "str | None" = None, seed: int = 23
) -> ExperimentReport:
    """Trajectory log-variance walk vs the paper's dominating walk."""
    scale = resolve_scale(scale)
    n = pick(scale, smoke=16, default=32, full=64)
    replicates = pick(scale, smoke=16, default=60, full=150)
    n_operator_epochs = pick(scale, smoke=12, default=40, full=100)
    walk_paths = pick(scale, smoke=300, default=2_000, full=10_000)

    pair = dumbbell_graph(n)
    epoch = epoch_length_ticks(pair.partition, constant=3.0)
    log_n = math.log(n)

    report = ExperimentReport(
        experiment_id="E6",
        title="Stochastic dominance: log-variance epochs vs the dominating walk",
        paper_claim=(
            "Per epoch, log var X(T_k^+) moves by at most ~log n upward "
            "and by at least (3/2) log n downward with probability >= 1/2 "
            "(ineq. 8 / Lemma 1 / Eq. 12), so it is dominated pathwise by "
            "the walk with steps +log n / -(3/2) log n; that walk settles "
            "below -2 in O(1) epochs independent of n (via Theorem 3)."
        ),
    )

    transient, steady = _trajectory_increments(
        pair, epoch_length=epoch, replicates=replicates, seed=seed
    )
    increments_table = Table(
        ["quantity", "measured", "paper requirement"],
        title=f"E6a: per-epoch log-variance increments "
        f"(dumbbell n={n}, L={epoch}, {replicates} replicates)",
    )
    max_transient = max(transient)
    max_steady = max(steady)
    frac_above = float(np.mean([d >= -1.5 * log_n for d in steady]))
    increments_table.add_row(
        ["max transient D_1", max_transient, f"<= 2 ln n = {2 * log_n:.2f}"]
    )
    increments_table.add_row(
        ["max steady D_2", max_steady, f"<= ln n = {log_n:.2f}"]
    )
    increments_table.add_row(
        ["P[D_2 >= -(3/2) ln n]", frac_above, "<= 1/2 (ineq. 8 analog)"]
    )
    increments_table.add_row(
        ["median steady D_2", float(np.median(steady)),
         f"<< -(3/2) ln n = {-1.5 * log_n:.2f}"]
    )
    report.tables.append(increments_table)

    walk, dominating = couple_with_dominating_walk(steady, n, seed=seed)
    violations = dominance_violations(walk, dominating)
    report.figures.append(
        line_plot(
            {
                "W_k (steady log-var walk)": (
                    list(range(len(walk))),
                    walk.tolist(),
                ),
                "W~_k (dominating)": (
                    list(range(len(dominating))),
                    dominating.tolist(),
                ),
            },
            title="E6b: coupled walks - W_k must stay below W~_k",
        )
    )

    # Operator-norm view: Eq. 12 holds; Lemma 1 (worst-case reading) does
    # not — the documented fidelity note F5.
    samples = sample_epoch_operators(
        pair.partition, epoch_length=epoch, n_epochs=n_operator_epochs,
        seed=seed + 7,
    )
    max_norm = max(s.norm for s in samples)
    lemma1_worst_case = lemma1_empirical_probability(samples)
    ops_table = Table(
        ["quantity", "measured", "status"],
        title=f"E6c: epoch operator norms ({n_operator_epochs} epochs) - "
        "fidelity note F5",
    )
    ops_table.add_row(["max ||A_k||", max_norm, f"Eq. 12 requires <= n = {n}"])
    ops_table.add_row(
        ["P[||A_k||^2 >= n^-3] (worst-case reading)", lemma1_worst_case,
         "Lemma 1 claims <= 1/2; FALSE as operator statement "
         "(post-swap spike direction) - trajectory version in E6a holds"]
    )
    report.tables.append(ops_table)

    tail_table = Table(
        ["s", "P[S_n >= s sqrt(n)] (MC)", "Hoeffding exp(-s^2/2)"],
        title="E6d: Theorem-3 sub-Gaussian tail of the simple walk (n=400)",
    )
    tails_ok = True
    for s in (0.5, 1.0, 1.5, 2.0):
        mc = tail_probability_estimate(400, s, n_paths=walk_paths, seed=seed + 1)
        bound = theorem3_tail_bound(s, c=1.0, beta=0.5)
        slack = 2.0 * math.sqrt(bound * (1 - bound) / walk_paths + 1e-12)
        tails_ok = tails_ok and mc <= bound + slack + 0.02
        tail_table.add_row([s, mc, bound])
    report.tables.append(tail_table)

    settle_table = Table(
        ["n", "settling time t0 (epochs)"],
        title="E6e: dominating-walk settling time below -2 "
        "(bounded across n = Theorem 2's epoch count)",
    )
    settle_values = []
    for walk_n in (16, 64, 256, 1024):
        t0 = settling_time_estimate(walk_n, n_paths=walk_paths, seed=seed + walk_n)
        settle_values.append(t0)
        settle_table.add_row([walk_n, t0])
    report.tables.append(settle_table)

    report.findings["max_steady_increment"] = max_steady
    report.findings["steady_fraction_above_-1.5logn"] = frac_above
    report.findings["coupling_violations"] = violations
    report.findings["lemma1_worst_case_probability"] = lemma1_worst_case
    report.add_check(
        "steady increments bounded by +ln n (Eq.-12 trajectory analog)",
        max_steady <= log_n + 1e-9,
        f"max D_2 = {max_steady:.2f} vs ln n = {log_n:.2f}",
    )
    report.add_check(
        "steady increments below -(3/2) ln n at least half the time",
        frac_above <= 0.5,
        f"measured fraction above: {frac_above:.3f}",
    )
    report.add_check(
        "pathwise coupling: W_k <= W~_k throughout",
        violations == 0,
        f"{violations} violations over {len(walk)} steps",
    )
    report.add_check(
        "Eq. 12: every ||A_k|| <= n",
        max_norm <= n + 1e-9,
        f"max {max_norm:.3g} vs n = {n}",
    )
    report.add_check(
        "Theorem-3 tails within the sub-Gaussian envelope",
        tails_ok,
        "empirical tails below exp(-s^2/2) + MC slack",
    )
    report.add_check(
        "dominating-walk settling time is bounded and does not grow with n",
        max(settle_values) <= 48.0
        and settle_values[-1] <= settle_values[0] + 4.0,
        f"t0 across n: {[round(v, 1) for v in settle_values]}",
    )
    return report


# ----------------------------------------------------------------------
# E7 — within-epoch potential contraction (inequalities 4-8)
# ----------------------------------------------------------------------


def e7_epoch_contraction(
    scale: "str | None" = None, seed: int = 29
) -> ExperimentReport:
    """Measure sigma/mu/variance across epochs of Algorithm A.

    Epoch 1 (from an arbitrary start) shows the documented *transient*:
    the swap deliberately skews values, so variance may grow before the
    next epoch's mixing crushes it (the paper's "skew the values held by
    nodes in the short term").  The steady-state contraction claims
    (ineq. 4, 7, 8) are measured on epoch 2.
    """
    scale = resolve_scale(scale)
    sizes = pick(scale, smoke=[16], default=[16, 32, 64], full=[16, 32, 64, 128])
    replicates = pick(scale, smoke=4, default=10, full=20)

    report = ExperimentReport(
        experiment_id="E7",
        title="Within-epoch contraction of sigma and variance",
        paper_claim=(
            "Ineq. (4): sigma shrinks by poly(n) within an epoch w.h.p.; "
            "Ineq. (7): the post-swap imbalance is <= n^(3/2) "
            "sigma(T_{k+1}^-); Ineq. (8): variance contracts by n^-4 per "
            "epoch w.h.p. (measured from the second epoch on; the first "
            "is the documented non-convex transient)."
        ),
    )
    table = Table(
        ["n", "epoch L", "median sigma contraction (e1)", "n^-3",
         "median var contraction (e2)", "n^-4",
         "max |mu_end|/(n^1.5 sigma_pre)", "median transient var growth (e1)"],
        title="E7: epoch contraction statistics (dumbbells)",
    )
    all_sigma_ok = True
    all_var_ok = True
    all_mu_ok = True
    transient_growth_seen = False
    for index, n in enumerate(sizes):
        pair = dumbbell_graph(n)
        epoch = epoch_length_ticks(pair.partition, constant=3.0)
        sigma_ratios = []
        var_ratios_steady = []
        var_ratios_transient = []
        mu_margins = []
        for rep in range(replicates):
            x0 = bimodal_noise(pair.partition, rng=seed + 1000 * index + rep, noise=0.5)
            records = epoch_potential_trace(
                pair.partition,
                x0,
                epoch_length=epoch,
                n_epochs=2,
                seed=seed + 2000 * index + rep,
            )
            first, second = records[0], records[1]
            sigma_ratios.append(first.sigma_contraction)
            var_ratios_transient.append(first.variance_contraction)
            var_ratios_steady.append(second.variance_contraction)
            denominator = n**1.5 * first.sigma_pre_swap + 1e-12
            mu_margins.append(first.mu_end / denominator)
        median_sigma = float(np.median(sigma_ratios))
        median_var = float(np.median(var_ratios_steady))
        median_transient = float(np.median(var_ratios_transient))
        max_mu_margin = float(np.max(mu_margins))
        table.add_row(
            [n, epoch, median_sigma, n**-3.0, median_var, n**-4.0,
             max_mu_margin, median_transient]
        )
        all_sigma_ok = all_sigma_ok and median_sigma <= n**-3.0
        all_var_ok = all_var_ok and median_var <= n**-4.0
        all_mu_ok = all_mu_ok and max_mu_margin <= 3.0
        transient_growth_seen = transient_growth_seen or median_transient > 1.0
    report.tables.append(table)
    report.add_check(
        "median within-epoch sigma contraction beats n^-3",
        all_sigma_ok,
        "ineq. (4) asks for n^-6 w.p. 1 - 1/(4n); the median comfortably "
        "clears n^-3 at these sizes",
    )
    report.add_check(
        "median steady-state variance contraction beats n^-4",
        all_var_ok,
        "ineq. (8), measured on epoch 2",
    )
    report.add_check(
        "post-swap imbalance obeys ineq. (7) up to a small constant",
        all_mu_ok,
        "|mu(T+)| <= 3 * n^(3/2) * sigma(T-) across all replicates",
    )
    report.add_check(
        "the non-convex transient is real (first epoch can inflate variance)",
        transient_growth_seen,
        "the paper's 'skew the values in the short term', observed",
    )
    return report

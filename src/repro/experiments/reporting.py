"""Report rendering and artifact persistence for experiment runs."""

from __future__ import annotations

import math
import os
from pathlib import Path

from repro.engine.sweeps import SweepResult
from repro.experiments.harness import ExperimentReport
from repro.util.serialization import to_json_file
from repro.util.tables import Table


def save_report(
    report: ExperimentReport, directory: "str | Path"
) -> "tuple[Path, Path]":
    """Write ``<id>.txt`` (rendered) and ``<id>.json`` (structured).

    Returns the two paths.  The JSON artifact is what EXPERIMENTS.md's
    paper-vs-measured entries are compiled from.
    """
    base = Path(directory)
    base.mkdir(parents=True, exist_ok=True)
    text_path = base / f"{report.experiment_id.lower()}.txt"
    json_path = base / f"{report.experiment_id.lower()}.json"
    text_path.write_text(report.render() + "\n", encoding="utf-8")
    to_json_file(report.to_dict(), json_path)
    return text_path, json_path


def render_sweep_table(result: SweepResult) -> Table:
    """One row per grid point: quantile estimate, CI, replicate spend."""
    axis_names = list(result.axes)
    table = Table(
        axis_names
        + [
            "T_av (q)",
            "ci low",
            "ci high",
            "rel width",
            "reps",
            "cens",
            "div",
            "flags",
        ],
        title=(
            f"sweep {result.sweep_name}: {result.n_points} configurations, "
            f"{result.total_replicates} replicates"
        ),
    )
    for point in result.points:
        flags = "budget_exhausted" if point.budget_exhausted else ""
        if math.isinf(point.estimate):
            estimate: "str | float" = "censored"
        elif math.isnan(point.estimate):
            estimate = "diverged"
        else:
            estimate = point.estimate
        table.add_row(
            [point.params[name] for name in axis_names]
            + [
                estimate,
                point.ci_low,
                point.ci_high,
                point.ci_relative_width,
                point.n_replicates,
                point.n_censored,
                point.n_diverged,
                flags,
            ]
        )
    return table


def render_sweep_stats(result: SweepResult, stats: "dict[str, int]") -> str:
    """One-line scheduler telemetry (rounds, surplus, resume, shipping).

    ``stats`` is :attr:`~repro.engine.sweeps.SweepRunner.stats` — the
    wall-clock facts deliberately kept out of the bit-identical
    :class:`SweepResult`.
    """
    line = (
        f"scheduler: {stats.get('rounds', 0)} rounds, "
        f"{stats.get('replicates_scheduled', 0)} replicates scheduled "
        f"({result.total_replicates} reported), "
        f"{stats.get('points_resumed', 0)} points resumed"
    )
    if "shared_state_points" in stats:
        line += (
            f"; shared-state shipping: {stats['shared_state_points']} "
            "configuration payload(s) (at most once per worker)"
        )
    if "vectorized_replicates" in stats or "scalar_replicates" in stats:
        line += (
            f"; kernels: {stats.get('vectorized_replicates', 0)} "
            f"replicate(s) vectorized in "
            f"{stats.get('kernel_installs', 0)} lockstep batch(es), "
            f"{stats.get('scalar_replicates', 0)} scalar"
        )
    demotions = {
        key[len("demoted:") :]: count
        for key, count in stats.items()
        if key.startswith("demoted:") and count
    }
    if demotions:
        rendered = ", ".join(
            f"{code} x{count}" for code, count in sorted(demotions.items())
        )
        line += f"; demotions: {rendered}"
    return line


def save_sweep_result(
    result: SweepResult,
    directory: "str | Path",
    *,
    fingerprint: "str | None" = None,
) -> Path:
    """Write the sweep artifact, disambiguated by configuration.

    The primary file is ``sweep_<id>_<fingerprint12>.json`` — two runs
    of the same sweep with different configurations (axes, seed,
    budget) land in different files instead of silently overwriting
    each other.  A ``sweep_<id>.json`` alias (symlink where the
    platform allows, else a copy) always points at the **latest** save,
    so tooling that greps for the fixed name — the CI ``cmp`` jobs —
    keeps working.  ``fingerprint`` defaults to
    :func:`~repro.engine.store.result_fingerprint` (configuration only,
    no code version: the same grid lands in the same file across
    commits); pass a store fingerprint to align the artifact with a
    stored run instead.  Returns the primary path.
    """
    from repro.engine.store import result_fingerprint

    base = Path(directory)
    base.mkdir(parents=True, exist_ok=True)
    if fingerprint is None:
        fingerprint = result_fingerprint(result)
    name = result.sweep_name.lower()
    target = result.save(base / f"sweep_{name}_{fingerprint[:12]}.json")
    alias = base / f"sweep_{name}.json"
    # The alias must never be observed missing or half-written: build the
    # replacement under a tmp name and os.replace() it into place (the
    # same atomic protocol as repro.util.serialization.to_json_file).  A
    # reader racing this sees either the previous alias or the new one.
    tmp = base / f".{alias.name}.{os.getpid()}.tmp"
    try:
        try:
            os.symlink(target.name, tmp)
        except OSError:
            # Platforms without symlink support get a plain copy — the
            # writer is deterministic (atomic tmp+fsync+rename inside),
            # so the bytes match the primary.
            result.save(tmp)
        os.replace(tmp, alias)
    finally:
        try:
            os.unlink(tmp)
        except OSError:
            pass
    return target


def render_summary(reports: "list[ExperimentReport]") -> str:
    """One-line-per-experiment pass/fail overview."""
    lines = ["experiment summary:"]
    for report in reports:
        status = "PASS" if report.all_checks_passed else "FAIL"
        n_pass = sum(1 for c in report.checks if c.passed)
        lines.append(
            f"  [{status}] {report.experiment_id}: {report.title} "
            f"({n_pass}/{len(report.checks)} checks)"
        )
    return "\n".join(lines)

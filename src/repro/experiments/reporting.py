"""Report rendering and artifact persistence for experiment runs."""

from __future__ import annotations

from pathlib import Path

from repro.experiments.harness import ExperimentReport
from repro.util.serialization import to_json_file


def save_report(report: ExperimentReport, directory: "str | Path") -> "tuple[Path, Path]":
    """Write ``<id>.txt`` (rendered) and ``<id>.json`` (structured).

    Returns the two paths.  The JSON artifact is what EXPERIMENTS.md's
    paper-vs-measured entries are compiled from.
    """
    base = Path(directory)
    base.mkdir(parents=True, exist_ok=True)
    text_path = base / f"{report.experiment_id.lower()}.txt"
    json_path = base / f"{report.experiment_id.lower()}.json"
    text_path.write_text(report.render() + "\n", encoding="utf-8")
    to_json_file(report.to_dict(), json_path)
    return text_path, json_path


def render_summary(reports: "list[ExperimentReport]") -> str:
    """One-line-per-experiment pass/fail overview."""
    lines = ["experiment summary:"]
    for report in reports:
        status = "PASS" if report.all_checks_passed else "FAIL"
        n_pass = sum(1 for c in report.checks if c.passed)
        lines.append(
            f"  [{status}] {report.experiment_id}: {report.title} "
            f"({n_pass}/{len(report.checks)} checks)"
        )
    return "\n".join(lines)

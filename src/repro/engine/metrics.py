"""Small metric helpers shared by estimators, analyses and tests."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def variance_of(values: "Sequence[float]") -> float:
    """Population variance, the paper's ``var X`` (Definition 1)."""
    array = np.asarray(values, dtype=np.float64)
    if array.size == 0:
        raise ValueError("variance of an empty vector is undefined")
    return float(np.var(array))


def variance_ratio(
    values: "Sequence[float]", initial_values: "Sequence[float]"
) -> float:
    """``var(values) / var(initial_values)`` (inf if the start had var 0)."""
    initial = variance_of(initial_values)
    current = variance_of(values)
    if initial == 0.0:
        return float("inf") if current > 0 else 0.0
    return current / initial


def consensus_error(values: "Sequence[float]", target: float) -> float:
    """Max absolute deviation from the target average (sup-norm error)."""
    array = np.asarray(values, dtype=np.float64)
    if array.size == 0:
        raise ValueError("consensus error of an empty vector is undefined")
    return float(np.max(np.abs(array - target)))

"""Sharded parameter sweeps with adaptive replicate budgets.

Every paper claim is a quantile of averaging time measured across a
*grid* of configurations (graph size, cut width, clock model, algorithm).
The Monte-Carlo runner fans out the replicates of one configuration; this
module fans out the **whole grid**: a :class:`SweepSpec` flattens its
axes' cartesian product into :class:`SweepPoint` configurations, and
:class:`SweepRunner` dispatches configuration x replicate work units
through one :class:`~repro.engine.backends.ExecutionBackend` batch per
round, so a sweep saturates the process pool instead of running one
configuration at a time.

**Seed namespaces.**  The sweep root seed derives one private
:class:`numpy.random.SeedSequence` per configuration (spawn-key prefix
``(SWEEP_SPAWN_NAMESPACE, point_index)``); each configuration's
replicates then derive through the same
:class:`~repro.engine.runner.MonteCarloRunner` scheme as single-
configuration runs.  Streams are therefore disjoint between
configurations, between replicates, and between adaptive rounds — and
identical regardless of backend, worker count, or round size.

**Adaptive replicate budgets.**  A :class:`ReplicateBudget` spawns
replicates in rounds and stops a configuration once a deterministic
bootstrap confidence interval on the target quantile is tight
(``ci_width / estimate <= target_ci``) or the cap is hit (the point is
then flagged ``budget_exhausted``).  The stopping rule is evaluated on
sample *prefixes* in replicate order — the settled replicate count is the
smallest prefix that meets the target — so the reported
:class:`SweepResult` is **bit-identical across backends, worker counts
and round sizes**: scheduling only decides how much surplus work was
computed, never which samples are reported.  Diverged (NaN) replicates
are excluded from the quantile and its CI but still count toward the
cap, so a pathological configuration terminates instead of stalling the
loop.

**Shared-state shipping.**  All replicates of one configuration repeat
the same immutable objects (graph, factories, workload).  By default the
runner builds *slim* replicate specs whose heavy fields are
:class:`~repro.engine.backends.SharedStateRef` placeholders and hands
the whole grid's state mapping to
:meth:`~repro.engine.backends.ExecutionBackend.execute_shared` — the
process backend installs it once per worker via the executor
initializer, the serial backend resolves in-process against the very
same objects.  Transport only: the reported result is bit-identical with
shipping on or off (``share_state=False`` restores inline pickling).

**Checkpoints.**  :meth:`SweepResult.to_dict` round-trips through JSON
(:meth:`SweepResult.from_dict`) with non-finite samples encoded
portably; :class:`SweepRunner` writes an atomic (tmp + fsync + rename)
checkpoint after every round carrying the settled points *and* each
pending configuration's sample prefix, so a sweep resumes byte-
identically even after the coordinator itself crashes mid-sweep — a
torn or corrupt checkpoint is rejected with a clear :class:`SweepError`.
"""

from __future__ import annotations

import itertools
import math
import warnings
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.algorithms.base import GossipAlgorithm
from repro.engine.averaging_time import (
    DEFAULT_SETTLE_FACTOR,
    PAPER_CONFIDENCE_QUANTILE,
    PAPER_VARIANCE_THRESHOLD,
    crossing_sample,
    quantile_estimate,
    quantile_index,
)
from repro.engine.backends import (
    ExecutionBackend,
    execute_with_retry,
    resolve_backend,
)
from repro.engine.kernels import (
    KernelDemotionWarning,
    default_kernel,
    eligibility,
    normalize_kernel,
)
from repro.engine.results import RunResult
from repro.engine.runner import MonteCarloRunner
from repro.errors import SerializationError, SweepError
from repro.graphs.graph import Graph
from repro.util.rng import derive_child

#: Spawn-key namespace under which a sweep derives per-configuration
#: seed sequences from its root.  Distinct from the runner's replicate
#: namespace so a sweep's streams never collide with a caller's own
#: MonteCarloRunner on the same root seed.
SWEEP_SPAWN_NAMESPACE = 0x53574545  # "SWEE"

#: Spawn-key namespace for the deterministic bootstrap generator used by
#: the adaptive stopping rule (keyed further by the prefix length, so the
#: decision at n replicates never depends on scheduling).
BOOTSTRAP_SPAWN_NAMESPACE = 0x424F4F54  # "BOOT"

#: Relative-width denominators are clamped away from zero by this.
_TINY = 1e-12


# ----------------------------------------------------------------------
# grid declaration
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SweepAxis:
    """One swept parameter: a name and its ordered, distinct values."""

    name: str
    values: "tuple[Any, ...]"

    def __post_init__(self) -> None:
        if not self.name:
            raise SweepError("axis name must be non-empty")
        values = tuple(self.values)
        if not values:
            raise SweepError(f"axis {self.name!r} has no values")
        seen = []
        for value in values:
            if value in seen:
                raise SweepError(
                    f"axis {self.name!r} has duplicate value {value!r}; "
                    "duplicate values would create duplicate configurations"
                )
            seen.append(value)
        object.__setattr__(self, "values", values)

    def __len__(self) -> int:
        return len(self.values)


@dataclass(frozen=True)
class SweepPoint:
    """One grid configuration: its position and resolved parameters."""

    index: int
    params: "Mapping[str, Any]"


@dataclass
class PointConfig:
    """What one configuration measures: a Monte-Carlo averaging problem.

    A :class:`SweepSpec` builder maps point parameters to this — the
    same ingredients :func:`~repro.engine.averaging_time
    .estimate_averaging_time` takes, minus the replicate count (the
    budget owns that).
    """

    graph: Graph
    algorithm_factory: "Callable[[], GossipAlgorithm]"
    initial_values: "Sequence[float] | Callable[[np.random.Generator], Sequence[float]]"
    clock_factory: "Callable[[np.random.Generator], object] | None" = None
    max_time: "float | None" = None
    max_events: "int | None" = None
    threshold: float = PAPER_VARIANCE_THRESHOLD
    quantile: float = PAPER_CONFIDENCE_QUANTILE
    settle_factor: float = DEFAULT_SETTLE_FACTOR

    def __post_init__(self) -> None:
        if not 0 < self.threshold < 1:
            raise SweepError(f"threshold must be in (0, 1), got {self.threshold}")
        if not 0 < self.quantile < 1:
            raise SweepError(f"quantile must be in (0, 1), got {self.quantile}")
        if self.max_time is None and self.max_events is None:
            raise SweepError("PointConfig needs max_time and/or max_events")


@dataclass(frozen=True)
class SweepSpec:
    """A declared parameter grid plus the builder that realizes a point.

    ``axes x values`` expand (cartesian product, row-major in axis order)
    into :class:`SweepPoint` configurations; ``builder(**params)``
    returns each point's :class:`PointConfig`.  ``base_params`` are fixed
    keyword arguments merged under every point's axis values (an axis may
    not shadow one).
    """

    name: str
    axes: "tuple[SweepAxis, ...]"
    builder: "Callable[..., PointConfig]"
    base_params: "Mapping[str, Any]" = field(default_factory=dict)

    def __post_init__(self) -> None:
        axes = tuple(self.axes)
        if not axes:
            raise SweepError(f"sweep {self.name!r} declares no axes")
        names = [axis.name for axis in axes]
        if len(set(names)) != len(names):
            raise SweepError(f"sweep {self.name!r} has duplicate axis names")
        shadowed = set(names) & set(self.base_params)
        if shadowed:
            raise SweepError(
                f"sweep {self.name!r}: axes {sorted(shadowed)} shadow "
                "base_params keys"
            )
        if not callable(self.builder):
            raise SweepError(f"sweep {self.name!r} builder must be callable")
        object.__setattr__(self, "axes", axes)
        object.__setattr__(self, "base_params", dict(self.base_params))

    @property
    def n_points(self) -> int:
        """Grid cardinality: the product of the axis sizes."""
        return math.prod(len(axis) for axis in self.axes)

    def expand(self) -> "list[SweepPoint]":
        """Flatten the grid into configurations, in deterministic order.

        The order is the cartesian product with the **last** axis varying
        fastest (row-major), and is part of the reproducibility contract:
        a point's index keys its seed namespace.
        """
        names = [axis.name for axis in self.axes]
        points = []
        for index, combo in enumerate(
            itertools.product(*(axis.values for axis in self.axes))
        ):
            params = dict(self.base_params)
            params.update(zip(names, combo))
            points.append(SweepPoint(index=index, params=params))
        return points

    def with_axis(self, name: str, values: "Sequence[Any]") -> "SweepSpec":
        """A copy with one axis's values replaced (CLI ``--axis`` hook)."""
        if name not in {axis.name for axis in self.axes}:
            raise SweepError(
                f"sweep {self.name!r} has no axis {name!r}; "
                f"axes: {[axis.name for axis in self.axes]}"
            )
        axes = tuple(
            SweepAxis(axis.name, tuple(values)) if axis.name == name else axis
            for axis in self.axes
        )
        return replace(self, axes=axes)


# ----------------------------------------------------------------------
# replicate budgets and the adaptive stopping rule
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ReplicateBudget:
    """How many replicates a configuration gets.

    ``fixed(n)`` runs exactly ``n``.  ``adaptive(...)`` starts with
    ``min_replicates``, then adds ``round_size`` more per round until the
    bootstrap CI on the target quantile has relative width at most
    ``target_ci`` or ``max_replicates`` is reached.
    """

    min_replicates: int = 4
    max_replicates: int = 32
    round_size: int = 4
    target_ci: "float | None" = 0.1
    confidence: float = 0.95
    n_bootstrap: int = 256

    def __post_init__(self) -> None:
        if self.min_replicates < 1:
            raise SweepError(
                f"min_replicates must be positive, got {self.min_replicates}"
            )
        if self.max_replicates < self.min_replicates:
            raise SweepError(
                f"max_replicates ({self.max_replicates}) must be >= "
                f"min_replicates ({self.min_replicates})"
            )
        if self.round_size < 1:
            raise SweepError(f"round_size must be positive, got {self.round_size}")
        if self.target_ci is not None and not self.target_ci > 0:
            raise SweepError(f"target_ci must be positive, got {self.target_ci}")
        if not 0 < self.confidence < 1:
            raise SweepError(f"confidence must be in (0, 1), got {self.confidence}")
        if self.n_bootstrap < 1:
            raise SweepError(f"n_bootstrap must be positive, got {self.n_bootstrap}")

    @classmethod
    def fixed(cls, n_replicates: int) -> "ReplicateBudget":
        """Exactly ``n_replicates`` per configuration, no early stop."""
        return cls(
            min_replicates=n_replicates,
            max_replicates=n_replicates,
            round_size=1,
            target_ci=None,
        )

    @classmethod
    def adaptive(
        cls,
        *,
        target_ci: float = 0.1,
        min_replicates: int = 4,
        max_replicates: int = 32,
        round_size: int = 4,
        confidence: float = 0.95,
        n_bootstrap: int = 256,
    ) -> "ReplicateBudget":
        """CI-driven budget (see class docstring)."""
        return cls(
            min_replicates=min_replicates,
            max_replicates=max_replicates,
            round_size=round_size,
            target_ci=target_ci,
            confidence=confidence,
            n_bootstrap=n_bootstrap,
        )

    @property
    def is_adaptive(self) -> bool:
        """True when the CI stopping rule is armed."""
        return self.target_ci is not None and self.max_replicates > self.min_replicates

    def to_dict(self) -> dict:
        """Plain-dict view for serialization."""
        return {
            "min_replicates": self.min_replicates,
            "max_replicates": self.max_replicates,
            "round_size": self.round_size,
            "target_ci": self.target_ci,
            "confidence": self.confidence,
            "n_bootstrap": self.n_bootstrap,
        }

    def logical_dict(self) -> dict:
        """The budget fields that determine *what* gets reported.

        ``round_size`` is deliberately absent: it is pure scheduling
        (how eagerly surplus replicates are computed) and never changes
        a settled prefix, so results and checkpoints written under
        different round sizes are interchangeable.
        """
        payload = self.to_dict()
        del payload["round_size"]
        return payload

    @classmethod
    def from_dict(cls, payload: "Mapping[str, Any]") -> "ReplicateBudget":
        """Inverse of :meth:`to_dict` (tolerates a missing round_size)."""
        data = dict(payload)
        data.setdefault("round_size", cls.round_size)
        return cls(**data)


def bootstrap_quantile_ci(
    samples: "Sequence[float]",
    quantile: float,
    *,
    confidence: float,
    n_bootstrap: int,
    seed_sequence: np.random.SeedSequence,
) -> "tuple[float, float]":
    """Deterministic percentile-bootstrap CI for the target quantile.

    Resamples with replacement ``n_bootstrap`` times, takes the same
    order-statistic quantile per resample, and returns the empirical
    ``(1 +- confidence)/2`` order statistics of those (no interpolation,
    so ``inf`` statistics stay honest instead of poisoning arithmetic).
    All randomness comes from ``seed_sequence``.
    """
    array = np.asarray(samples, dtype=np.float64)
    n = len(array)
    if n < 2:
        return float("-inf"), float("inf")
    rng = np.random.default_rng(seed_sequence)
    draws = rng.integers(0, n, size=(int(n_bootstrap), n))
    resampled = np.sort(array[draws], axis=1)
    stats = np.sort(resampled[:, quantile_index(n, quantile)])
    alpha = (1.0 - confidence) / 2.0
    low_index = min(int(math.floor(alpha * len(stats))), len(stats) - 1)
    high_index = max(int(math.ceil((1.0 - alpha) * len(stats))) - 1, 0)
    return float(stats[low_index]), float(stats[high_index])


def _ci_is_tight(
    low: float, high: float, estimate: float, target_ci: float
) -> bool:
    """Relative CI width test; inf/NaN anywhere means "not tight"."""
    if not (math.isfinite(low) and math.isfinite(high) and math.isfinite(estimate)):
        return False
    return (high - low) / max(abs(estimate), _TINY) <= target_ci


@dataclass(frozen=True)
class StopDecision:
    """Outcome of the prefix-scan stopping rule for one configuration.

    ``n_used`` is the settled replicate count (``None`` while the point
    still wants more replicates); when settled, ``ci_low``/``ci_high``
    are the bootstrap CI at exactly that prefix.
    """

    n_used: "int | None"
    budget_exhausted: bool = False
    ci_low: float = float("-inf")
    ci_high: float = float("inf")


def evaluate_stopping(
    samples: "Sequence[float]",
    budget: ReplicateBudget,
    quantile: float,
    point_sequence: np.random.SeedSequence,
    *,
    scan_from: "int | None" = None,
) -> StopDecision:
    """Decide whether (and where) a configuration's sample prefix settles.

    Scans prefixes ``n = min_replicates .. len(samples)`` in replicate
    order and returns the smallest ``n`` whose bootstrap CI on the target
    quantile is tight — a function of the sample *sequence* only, so the
    decision is identical no matter how the samples were scheduled
    (backend, worker count, round size).  NaN (diverged) samples are
    excluded from the quantile and the CI but still occupy budget slots,
    so an all-NaN configuration runs to the cap and terminates instead of
    stalling.  The bootstrap generator is keyed by the point's seed
    namespace and the prefix length, never by global state.

    ``scan_from`` skips prefixes a previous call already rejected (the
    bootstrap is deterministic per prefix, so re-evaluating them can
    only repeat the "not tight" verdict); the scheduler passes the first
    unscanned length each round.  The decision is identical with or
    without it.
    """
    total = len(samples)
    bootstrap_root = derive_child(point_sequence, BOOTSTRAP_SPAWN_NAMESPACE)

    def ci_at(n: int) -> "tuple[float, float, float]":
        prefix = np.asarray(samples[:n], dtype=np.float64)
        valid = prefix[~np.isnan(prefix)]
        estimate = quantile_estimate(valid, quantile)
        low, high = bootstrap_quantile_ci(
            valid,
            quantile,
            confidence=budget.confidence,
            n_bootstrap=budget.n_bootstrap,
            seed_sequence=derive_child(bootstrap_root, n),
        )
        return estimate, low, high

    if budget.target_ci is not None:
        first = budget.min_replicates
        if scan_from is not None:
            first = max(first, scan_from)
        for n in range(first, total + 1):
            estimate, low, high = ci_at(n)
            if _ci_is_tight(low, high, estimate, budget.target_ci):
                return StopDecision(n_used=n, ci_low=low, ci_high=high)
    if total >= budget.max_replicates:
        _, low, high = ci_at(budget.max_replicates)
        return StopDecision(
            n_used=budget.max_replicates,
            budget_exhausted=budget.target_ci is not None,
            ci_low=low,
            ci_high=high,
        )
    return StopDecision(n_used=None)


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------


def _encode_float(value: float) -> "float | str":
    """JSON-portable float: non-finite values become strings."""
    if math.isnan(value):
        return "nan"
    if value == float("inf"):
        return "inf"
    if value == float("-inf"):
        return "-inf"
    return float(value)


def _decode_float(value: "float | int | str") -> float:
    if isinstance(value, str):
        return float(value)
    return float(value)


@dataclass
class PointResult:
    """One configuration's settled measurement.

    ``samples`` are the first ``n_replicates`` crossing-time samples in
    replicate order (``inf`` = censored, NaN = diverged) — exactly the
    prefix the stopping rule settled on, so the record is independent of
    scheduling.  ``estimate`` is the target quantile over the non-NaN
    samples; ``ci_low``/``ci_high`` the bootstrap CI at the settled
    prefix.
    """

    index: int
    params: "dict[str, Any]"
    estimate: float
    ci_low: float
    ci_high: float
    quantile: float
    threshold: float
    samples: "list[float]"
    n_censored: int
    n_diverged: int
    budget_exhausted: bool

    @property
    def n_replicates(self) -> int:
        """Replicates consumed by this configuration."""
        return len(self.samples)

    @property
    def is_censored(self) -> bool:
        """True when the quantile itself is not finite.

        ``inf`` means the quantile landed on censored replicates; ``nan``
        means every valid replicate diverged.  Either way the estimate is
        not a usable averaging time — the sweep analogue of
        ``AveragingTimeEstimate.is_censored`` (``not isfinite``), which
        the report functions read to label cells "censored".
        """
        return not math.isfinite(self.estimate)

    @property
    def ci_width(self) -> float:
        """Absolute CI width (inf when either end is non-finite)."""
        return self.ci_high - self.ci_low

    @property
    def ci_relative_width(self) -> float:
        """CI width relative to the estimate (the adaptive target)."""
        if not (
            math.isfinite(self.ci_low)
            and math.isfinite(self.ci_high)
            and math.isfinite(self.estimate)
        ):
            return float("inf")
        return self.ci_width / max(abs(self.estimate), _TINY)

    def to_dict(self) -> dict:
        """Plain-dict view (JSON-portable floats)."""
        return {
            "index": self.index,
            "params": dict(self.params),
            "estimate": _encode_float(self.estimate),
            "ci_low": _encode_float(self.ci_low),
            "ci_high": _encode_float(self.ci_high),
            "quantile": self.quantile,
            "threshold": self.threshold,
            "samples": [_encode_float(s) for s in self.samples],
            "n_censored": self.n_censored,
            "n_diverged": self.n_diverged,
            "budget_exhausted": self.budget_exhausted,
        }

    @classmethod
    def from_dict(cls, payload: "Mapping[str, Any]") -> "PointResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            index=int(payload["index"]),
            params=dict(payload["params"]),
            estimate=_decode_float(payload["estimate"]),
            ci_low=_decode_float(payload["ci_low"]),
            ci_high=_decode_float(payload["ci_high"]),
            quantile=float(payload["quantile"]),
            threshold=float(payload["threshold"]),
            samples=[_decode_float(s) for s in payload["samples"]],
            n_censored=int(payload["n_censored"]),
            n_diverged=int(payload["n_diverged"]),
            budget_exhausted=bool(payload["budget_exhausted"]),
        )


@dataclass
class SweepResult:
    """A whole sweep's aggregation: per-point quantiles plus CI widths.

    Everything here is a deterministic function of (spec, seed, budget) —
    scheduling telemetry lives in :attr:`SweepRunner.stats` instead, so
    this object is bit-identical across backends, worker counts and
    round sizes and safe to diff as JSON.
    """

    sweep_name: str
    axes: "dict[str, list]"
    seed: "int | None"
    budget: ReplicateBudget
    points: "list[PointResult]"

    @property
    def n_points(self) -> int:
        """Number of grid configurations."""
        return len(self.points)

    @property
    def total_replicates(self) -> int:
        """Replicates consumed across the grid (settled prefixes only)."""
        return sum(point.n_replicates for point in self.points)

    def point(self, **params: Any) -> PointResult:
        """Look up the unique point matching the given axis values."""
        matches = [
            p for p in self.points
            if all(p.params.get(k) == v for k, v in params.items())
        ]
        if len(matches) != 1:
            raise SweepError(
                f"{len(matches)} points match {params!r} "
                f"in sweep {self.sweep_name!r}"
            )
        return matches[0]

    def to_dict(self) -> dict:
        """Plain-dict view for serialization/checkpointing."""
        return {
            "sweep_name": self.sweep_name,
            "axes": {name: list(values) for name, values in self.axes.items()},
            "seed": self.seed,
            # Logical budget only: round_size is scheduling and must not
            # break bit-identity of results across round sizes.
            "budget": self.budget.logical_dict(),
            "points": [point.to_dict() for point in self.points],
        }

    @classmethod
    def from_dict(cls, payload: "Mapping[str, Any]") -> "SweepResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            sweep_name=str(payload["sweep_name"]),
            axes={k: list(v) for k, v in payload["axes"].items()},
            seed=payload["seed"],
            budget=ReplicateBudget.from_dict(payload["budget"]),
            points=[PointResult.from_dict(p) for p in payload["points"]],
        )

    def save(self, path: "str | Path") -> Path:
        """Write the result as JSON (sorted keys — diffable)."""
        from repro.util.serialization import to_json_file

        return to_json_file(self.to_dict(), path)

    @classmethod
    def load(cls, path: "str | Path") -> "SweepResult":
        """Read a result written by :meth:`save`."""
        from repro.util.serialization import from_json_file

        return cls.from_dict(from_json_file(path))


def sweep_fingerprint_payload(
    spec: SweepSpec,
    seed: "int | np.random.SeedSequence | None",
    budget: ReplicateBudget,
) -> dict:
    """The JSON-able identity of what a sweep run would compute.

    Everything that determines the reported :class:`SweepResult` is here
    — name, axes, base_params, builder identity, seed, logical budget —
    and nothing that doesn't (backend, worker count, round size and
    kernel are scheduling, proven scheduling-independent by the
    determinism suite).  Checkpoint resume compares this payload for
    equality; the results store (:mod:`repro.engine.store`) hashes it
    into the content-addressed fingerprint that dedups identical sweep
    submissions.
    """
    from repro.util.serialization import to_jsonable

    return to_jsonable({
        "sweep_name": spec.name,
        "axes": {a.name: list(a.values) for a in spec.axes},
        # base_params and the builder identity pin the *graphs* a
        # point measures: two scales of the same sweep share name,
        # axes and seed but differ here, and resuming across them
        # would silently mix instances.
        "base_params": dict(spec.base_params),
        "builder": getattr(spec.builder, "__qualname__", repr(spec.builder)),
        "seed": seed if not isinstance(seed, np.random.SeedSequence)
        else repr(seed),
        # Logical budget only: resuming under a different round size
        # is legitimate (the settled prefixes are identical).
        "budget": budget.logical_dict(),
    })


# ----------------------------------------------------------------------
# the scheduler
# ----------------------------------------------------------------------


class _PointState:
    """Mutable per-configuration bookkeeping while a sweep runs."""

    def __init__(self, point: SweepPoint, config: PointConfig,
                 runner: MonteCarloRunner, sequence: np.random.SeedSequence,
                 monotone: bool) -> None:
        self.point = point
        self.config = config
        self.runner = runner
        self.sequence = sequence
        self.monotone = monotone
        self.samples: "list[float]" = []
        self.run_results: "list[RunResult]" = []
        self.n_scheduled = 0
        #: First prefix length not yet scanned by the stopping rule
        #: (prior prefixes were rejected; the bootstrap is deterministic
        #: per prefix, so rescanning them cannot change the verdict).
        self.scan_from = 0
        self.result: "PointResult | None" = None


class SweepRunner:
    """Execute a :class:`SweepSpec` through one execution backend.

    Parameters
    ----------
    spec:
        The grid and point builder.
    seed:
        Sweep root seed; configuration ``i`` derives the namespace
        ``(SWEEP_SPAWN_NAMESPACE, i)`` so streams are disjoint between
        configurations and from any caller streams on the same root.
    budget:
        Replicate budget per configuration (default: fixed 8).
    backend / n_workers:
        Execution backend selection, exactly as for
        :class:`~repro.engine.runner.MonteCarloRunner`.
    checkpoint_path:
        Optional JSON path written atomically after every round with the
        settled points so far *plus* every pending configuration's
        sample prefix; an existing file resumes the sweep — settled
        configurations are skipped outright, pending ones reschedule
        from their checkpointed prefix — and the resumed run's artifact
        is byte-identical to an uninterrupted one, even after a
        coordinator crash mid-round.
    keep_run_results:
        Retain each settled configuration's raw :class:`RunResult` list
        (trimmed to the settled prefix) in :attr:`run_results` — the
        determinism suite compares them field-by-field.
    share_state:
        Ship each configuration's immutable state (graph, factories,
        workload) through :meth:`ExecutionBackend.execute_shared` — once
        per worker via the executor initializer on the process backend —
        instead of pickling it into every replicate spec (default).
        Purely a transport choice: results are bit-identical either way
        (the determinism suite pins this), so disable it only to measure
        the shipping itself.
    max_round_retries:
        How many times one round's batch is re-executed after a
        *retryable* backend failure (exception with a truthy
        ``retryable`` attribute — the cluster backend raises one when
        its whole fleet is lost mid-batch but can be rebuilt).  Samples
        are only consumed from complete batches and every replicate's
        stream is a function of its spec, so a retried round is
        bit-identical to an undisturbed one; ``stats["round_retries"]``
        counts them.
    kernel:
        Simulation-kernel request stamped on every replicate spec
        (``"auto"``, ``"scalar"`` or ``"vectorized"`` — see
        :mod:`repro.engine.kernels`); ``None`` falls back to the
        ``REPRO_KERNEL`` environment variable, then ``"auto"``.  Because
        every round batches same-configuration replicate windows,
        eligible windows advance in numpy lockstep; results are
        bit-identical across kernels, and ``stats["kernel_installs"]`` /
        ``stats["vectorized_replicates"]`` report which path engaged.
    """

    def __init__(
        self,
        spec: SweepSpec,
        *,
        seed: "int | np.random.SeedSequence | None" = None,
        budget: "ReplicateBudget | None" = None,
        backend: "ExecutionBackend | str | None" = None,
        n_workers: "int | None" = None,
        checkpoint_path: "str | Path | None" = None,
        keep_run_results: bool = False,
        share_state: bool = True,
        max_round_retries: int = 1,
        kernel: "str | None" = None,
    ) -> None:
        if max_round_retries < 0:
            raise SweepError(
                f"max_round_retries must be >= 0, got {max_round_retries}"
            )
        self.spec = spec
        self.seed = seed
        self.budget = budget if budget is not None else ReplicateBudget.fixed(8)
        self.backend = resolve_backend(backend, n_workers=n_workers)
        self.kernel = kernel
        self.checkpoint_path = (
            Path(checkpoint_path) if checkpoint_path is not None else None
        )
        self.keep_run_results = keep_run_results
        self.share_state = share_state
        self.max_round_retries = max_round_retries
        #: Raw results per settled point index (when ``keep_run_results``).
        self.run_results: "dict[int, list[RunResult]]" = {}
        #: Scheduling telemetry from the last :meth:`run` (wall-clock
        #: facts, deliberately NOT part of SweepResult): rounds executed,
        #: replicates scheduled (including surplus beyond the settled
        #: prefixes), and points resumed from a checkpoint.
        self.stats: "dict[str, int]" = {}

    # -- seed bookkeeping ------------------------------------------------

    def _root_sequence(self) -> np.random.SeedSequence:
        if isinstance(self.seed, np.random.SeedSequence):
            return derive_child(self.seed, SWEEP_SPAWN_NAMESPACE)
        return np.random.SeedSequence(
            entropy=self.seed, spawn_key=(SWEEP_SPAWN_NAMESPACE,)
        )

    def point_sequence(self, point_index: int) -> np.random.SeedSequence:
        """The seed namespace of configuration ``point_index``."""
        return derive_child(self._root_sequence(), point_index)

    @staticmethod
    def _state_key(point_index: int) -> str:
        """Shared-state mapping key of configuration ``point_index``."""
        return f"point:{point_index}"

    # -- checkpointing ---------------------------------------------------

    def fingerprint_payload(self) -> dict:
        """This runner's :func:`sweep_fingerprint_payload`."""
        return sweep_fingerprint_payload(self.spec, self.seed, self.budget)

    def _load_checkpoint(
        self,
    ) -> "tuple[dict[int, PointResult], dict[int, list[float]]]":
        """Read a checkpoint: (settled points, partial pending samples).

        A truncated or otherwise corrupt file raises a clear
        :class:`SweepError` instead of crashing mid-parse — writes are
        atomic (:func:`~repro.util.serialization.to_json_file`), so a
        corrupt checkpoint means external damage, not a torn write.
        """
        if self.checkpoint_path is None or not self.checkpoint_path.exists():
            return {}, {}
        from repro.util.serialization import from_json_file

        try:
            payload = from_json_file(self.checkpoint_path)
        except SerializationError as exc:
            raise SweepError(
                f"checkpoint {self.checkpoint_path} is unreadable ({exc}); "
                "it was damaged after being written — delete it to restart "
                "the sweep from scratch"
            ) from exc
        if not isinstance(payload, dict) or "fingerprint" not in payload:
            raise SweepError(
                f"checkpoint {self.checkpoint_path} is not a sweep "
                "checkpoint (no fingerprint); delete it or point the "
                "runner elsewhere"
            )
        fingerprint = payload.get("fingerprint")
        if fingerprint != self.fingerprint_payload():
            raise SweepError(
                f"checkpoint {self.checkpoint_path} belongs to a different "
                "sweep (name/axes/seed/budget mismatch); delete it or point "
                "the runner elsewhere"
            )
        try:
            done = {}
            for entry in payload.get("points", []):
                result = PointResult.from_dict(entry)
                done[result.index] = result
            partial = {}
            for entry in payload.get("partial", []):
                partial[int(entry["index"])] = [
                    _decode_float(s) for s in entry["samples"]
                ]
        except (KeyError, TypeError, ValueError) as exc:
            raise SweepError(
                f"checkpoint {self.checkpoint_path} is structurally corrupt "
                f"({type(exc).__name__}: {exc}); delete it to restart the "
                "sweep from scratch"
            ) from exc
        return done, partial

    def _write_checkpoint(
        self,
        done: "dict[int, PointResult]",
        pending: "Sequence[_PointState] | None" = None,
    ) -> None:
        """Atomically persist settled points plus pending samples.

        Written after *every* round, so a coordinator crash loses at
        most the round in flight: resume restores each pending point's
        sample prefix and reschedules from there, reproducing the
        uninterrupted run byte-for-byte (every sample is a pure function
        of (point, replicate index), and the stopping rule's verdict is
        a deterministic function of each sample prefix).
        """
        if self.checkpoint_path is None:
            return
        from repro.util.serialization import to_json_file

        to_json_file(
            {
                "fingerprint": self.fingerprint_payload(),
                "points": [
                    done[index].to_dict() for index in sorted(done)
                ],
                "partial": [
                    {
                        "index": state.point.index,
                        "samples": [
                            _encode_float(s) for s in state.samples
                        ],
                    }
                    for state in (pending or [])
                    if state.samples
                ],
            },
            self.checkpoint_path,
        )

    # -- execution -------------------------------------------------------

    def _prepare_state(self, point: SweepPoint) -> _PointState:
        config = self.spec.builder(**point.params)
        if not isinstance(config, PointConfig):
            raise SweepError(
                f"sweep {self.spec.name!r} builder returned "
                f"{type(config).__name__}, expected PointConfig"
            )
        probe = config.algorithm_factory()
        monotone = bool(probe.monotone_variance)
        sequence = self.point_sequence(point.index)
        runner = MonteCarloRunner(
            config.graph,
            config.algorithm_factory,
            config.initial_values,
            seed=sequence,
            clock_factory=config.clock_factory,
            backend="serial",  # spec building only; execution is batched
            kernel=self.kernel,
        )
        return _PointState(point, config, runner, sequence, monotone)

    @staticmethod
    def _run_kwargs(config: PointConfig, monotone: bool) -> dict:
        target_ratio = (
            config.threshold if monotone
            else config.threshold * config.settle_factor
        )
        return {
            "target_ratio": target_ratio,
            "max_time": config.max_time,
            "max_events": config.max_events,
            "thresholds": (config.threshold,),
        }

    def _sample(self, state: _PointState, result: RunResult) -> float:
        if math.isnan(result.variance_final):
            # Diverged replicate: no crossing time is meaningful.  NaN
            # samples are excluded from the quantile/CI but still count
            # toward the cap, so divergence cannot stall the sweep.
            return float("nan")
        sample, _censored = crossing_sample(
            result, state.config.threshold, state.monotone
        )
        return sample

    def _settle(self, state: _PointState, decision: StopDecision) -> PointResult:
        n_used = decision.n_used
        assert n_used is not None
        samples = state.samples[:n_used]
        array = np.asarray(samples, dtype=np.float64)
        nan_mask = np.isnan(array)
        valid = array[~nan_mask]
        estimate = quantile_estimate(valid, state.config.quantile)
        result = PointResult(
            index=state.point.index,
            params=dict(state.point.params),
            estimate=estimate,
            ci_low=decision.ci_low,
            ci_high=decision.ci_high,
            quantile=state.config.quantile,
            threshold=state.config.threshold,
            samples=[float(s) for s in samples],
            n_censored=int(np.sum(np.isinf(array))),
            n_diverged=int(np.sum(nan_mask)),
            budget_exhausted=decision.budget_exhausted,
        )
        if self.keep_run_results:
            self.run_results[state.point.index] = state.run_results[:n_used]
        return result

    def _count_round_retry(self, exc: Exception) -> None:
        """Telemetry hook for :func:`execute_with_retry`."""
        self.stats["round_retries"] += 1

    def _warn_explicit_demotions(self, states: "Sequence[_PointState]") -> None:
        """Warn once per sweep when forced ``vectorized`` points demote.

        ``auto`` demotes silently by design (it is a performance policy);
        an **explicit** ``--kernel vectorized`` is a user assertion that
        the fast path runs, so ineligible points get one
        :class:`~repro.engine.kernels.KernelDemotionWarning` listing the
        machine-readable reason codes before any replicate executes.
        """
        kernel = (
            default_kernel()
            if self.kernel is None
            else normalize_kernel(self.kernel)
        )
        if kernel != "vectorized":
            return
        demoted = []
        for state in states:
            verdict = eligibility(
                algorithm_factory=state.config.algorithm_factory,
                clock_factory=state.config.clock_factory,
                run_kwargs=self._run_kwargs(state.config, state.monotone),
            )
            if not verdict:
                demoted.append((state.point.index, verdict))
        if not demoted:
            return
        points = ", ".join(
            f"point {index} [{', '.join(verdict.codes)}]"
            for index, verdict in demoted
        )
        warnings.warn(
            f"sweep {self.spec.name!r}: --kernel vectorized demotes "
            f"{len(demoted)} of {len(states)} configuration(s) to the "
            f"scalar loop: {points}; run 'kernel explain' on this sweep "
            "for the full verdicts",
            KernelDemotionWarning,
            stacklevel=3,
        )

    def run(self) -> SweepResult:
        """Run the sweep to completion and return its aggregation.

        Each round batches the next replicate window of **every**
        unsettled configuration into one ``backend.execute`` call, so the
        whole grid shares the worker pool; the adaptive rule then settles
        whichever configurations have tight prefixes (see the module
        docstring for why the outcome is scheduling-independent).
        """
        points = self.spec.expand()
        done, partial = self._load_checkpoint()
        self.run_results = {}
        self.stats = {
            "rounds": 0,
            "replicates_scheduled": 0,
            "points_resumed": len(done),
            "replicates_resumed": sum(len(s) for s in partial.values()),
            "round_retries": 0,
        }
        # Kernel-engagement counters are cumulative on the backend (it
        # may be shared across sweeps); snapshotting lets this run's
        # stats report only its own replicates.
        kernel_before = dict(getattr(self.backend, "kernel_stats", None) or {})
        states = [
            self._prepare_state(point)
            for point in points
            if point.index not in done
        ]
        self._warn_explicit_demotions(states)
        # Resume pending points from their checkpointed sample prefix: a
        # sample is a pure function of (point, replicate index), so
        # rescheduling from n_scheduled = len(samples) reproduces the
        # uninterrupted run exactly, and rescanning already-rejected
        # prefixes (scan_from stays 0) repeats their verdicts — the
        # final artifact is byte-identical to a crash-free run.
        for state in states:
            restored = partial.get(state.point.index)
            if restored:
                state.samples = list(restored)
                state.n_scheduled = len(restored)
        # One mapping object for the whole sweep (identity-stable, so the
        # process backend installs it in its workers exactly once): every
        # unsettled configuration's immutable state, keyed by point index.
        shared_state: "dict[str, Any]" = {
            self._state_key(state.point.index): state.runner.shared_state()
            for state in states
        }
        if self.share_state:
            self.stats["shared_state_points"] = len(shared_state)
        pending = list(states)
        while pending:
            batch = []
            owners: "list[tuple[_PointState, int]]" = []
            for state in pending:
                if state.n_scheduled == 0:
                    want = self.budget.min_replicates
                else:
                    want = self.budget.round_size
                want = min(want, self.budget.max_replicates - state.n_scheduled)
                if want < 1:
                    # Unreachable under the stopping rule (a point at the
                    # cap settles immediately), but never build an empty
                    # window if that invariant ever changes.
                    continue
                specs = state.runner.build_specs(
                    want,
                    start=state.n_scheduled,
                    shared_key=(
                        self._state_key(state.point.index)
                        if self.share_state
                        else None
                    ),
                    **self._run_kwargs(state.config, state.monotone),
                )
                state.n_scheduled += want
                for spec in specs:
                    batch.append(spec)
                    owners.append((state, spec.index))
            results = execute_with_retry(
                self.backend,
                batch,
                shared_state=shared_state if self.share_state else None,
                max_retries=self.max_round_retries,
                on_retry=self._count_round_retry,
            )
            if len(results) != len(batch):
                raise SweepError(
                    f"backend {self.backend.name!r} returned {len(results)} "
                    f"results for {len(batch)} sweep replicates"
                )
            self.stats["rounds"] += 1
            self.stats["replicates_scheduled"] += len(batch)
            for (state, _replicate_index), result in zip(owners, results):
                state.samples.append(self._sample(state, result))
                if self.keep_run_results:
                    state.run_results.append(result)
            still_pending = []
            for state in pending:
                decision = evaluate_stopping(
                    state.samples, self.budget,
                    state.config.quantile, state.sequence,
                    scan_from=state.scan_from,
                )
                state.scan_from = len(state.samples) + 1
                if decision.n_used is None:
                    still_pending.append(state)
                else:
                    done[state.point.index] = self._settle(state, decision)
            pending = still_pending
            # Every round, not just on settlement: a coordinator crash
            # then loses at most the round in flight (crash-safe resume).
            self._write_checkpoint(done, pending)
        # Surface which simulation kernel actually executed this sweep's
        # replicates (fast-path verification: a benchmark claiming
        # vectorized throughput must see vectorized_replicates > 0).
        kernel_after = getattr(self.backend, "kernel_stats", None) or {}
        canonical = ("kernel_installs", "vectorized_replicates", "scalar_replicates")
        for key in sorted(set(kernel_before) | set(kernel_after) | set(canonical)):
            delta = int(kernel_after.get(key, 0)) - int(kernel_before.get(key, 0))
            if delta or key in canonical:
                self.stats[key] = delta
        return SweepResult(
            sweep_name=self.spec.name,
            axes={axis.name: list(axis.values) for axis in self.spec.axes},
            seed=(
                self.seed
                if not isinstance(self.seed, np.random.SeedSequence)
                else None
            ),
            budget=self.budget,
            points=[done[point.index] for point in points],
        )


def run_sweep(
    spec: SweepSpec,
    *,
    seed: "int | None" = None,
    budget: "ReplicateBudget | None" = None,
    backend: "ExecutionBackend | str | None" = None,
    n_workers: "int | None" = None,
    checkpoint_path: "str | Path | None" = None,
    share_state: bool = True,
    max_round_retries: int = 1,
    kernel: "str | None" = None,
) -> SweepResult:
    """One-shot convenience wrapper around :class:`SweepRunner`."""
    return SweepRunner(
        spec,
        seed=seed,
        budget=budget,
        backend=backend,
        n_workers=n_workers,
        checkpoint_path=checkpoint_path,
        share_state=share_state,
        max_round_retries=max_round_retries,
        kernel=kernel,
    ).run()

"""Monte-Carlo replication over independent clock/workload randomness.

The paper's quantities are probabilistic (``T_av`` is a quantile over the
randomness of the Poisson clocks), so every measurement replays the same
configuration under independent seeds.  :class:`MonteCarloRunner` owns the
seed bookkeeping — replicate ``i`` gets the ``i``-th child of the root
:class:`~numpy.random.SeedSequence`, split into independent clock /
workload / algorithm substreams — and delegates execution to a pluggable
:class:`~repro.engine.backends.ExecutionBackend` (serial by default; pass
``n_workers > 1`` or ``backend="process"`` to fan replicates out over a
process pool with bit-identical results).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.algorithms.base import GossipAlgorithm
from repro.engine.backends import (
    ExecutionBackend,
    ReplicateSpec,
    SharedStateRef,
    execute_with_retry,
    resolve_backend,
)
from repro.engine.kernels import default_kernel, normalize_kernel
from repro.engine.results import RunResult
from repro.errors import SimulationError
from repro.graphs.graph import Graph
from repro.util.rng import derive_child

#: Spawn-key namespace for deriving replicates from a caller-supplied
#: SeedSequence.  A caller's own spawns from the same root get keys
#: (0,), (1,), ... — deriving replicates under this far-away key keeps
#: runner streams disjoint from any stream the caller already drew.
_REPLICATE_SPAWN_NAMESPACE = 0x52455052  # "REPR"


@dataclass
class ReplicateSummary:
    """Aggregate view over a list of replicate results."""

    n_replicates: int
    mean_duration: float
    mean_events: float
    mean_variance_ratio: float
    max_sum_drift: float

    @classmethod
    def from_results(cls, results: "Sequence[RunResult]") -> "ReplicateSummary":
        if not results:
            raise SimulationError("cannot summarize zero replicates")
        return cls(
            n_replicates=len(results),
            mean_duration=float(np.mean([r.duration for r in results])),
            mean_events=float(np.mean([r.n_events for r in results])),
            mean_variance_ratio=float(np.mean([r.variance_ratio for r in results])),
            max_sum_drift=float(max(r.sum_drift for r in results)),
        )

    def to_dict(self) -> dict:
        """Plain-dict view for serialization."""
        return {
            "n_replicates": self.n_replicates,
            "mean_duration": self.mean_duration,
            "mean_events": self.mean_events,
            "mean_variance_ratio": self.mean_variance_ratio,
            "max_sum_drift": self.max_sum_drift,
        }


class MonteCarloRunner:
    """Run one configuration under many independent random streams.

    Parameters
    ----------
    graph:
        The graph to simulate on.
    algorithm_factory:
        Zero-argument callable producing a fresh (or resettable) algorithm
        per replicate.  Pass ``lambda: algo`` to reuse one instance —
        algorithms are required to fully reset in ``setup``.  For process
        execution the factory must be picklable (use a class,
        ``functools.partial`` or
        :class:`~repro.engine.backends.AlgorithmFactory`).
    initial_values:
        Either a fixed vector used by every replicate, or a callable
        ``rng -> vector`` sampling a workload per replicate.
    seed:
        Root seed; replicate ``i`` derives stream ``i`` deterministically,
        independent of the backend and worker count.
    clock_factory:
        Optional callable ``rng -> clock process`` building each
        replicate's clock (boosted rates, failure injection...).  Default
        is the standard rate-1 Poisson model.
    backend:
        Execution backend: an
        :class:`~repro.engine.backends.ExecutionBackend`, a registered
        backend name (``"serial"``, ``"process"``, ``"cluster"``), or
        ``None`` to choose from ``n_workers`` (falling back to the
        ``REPRO_WORKERS`` environment variable, then serial).
    n_workers:
        Worker count used when ``backend`` is ``None`` or a name;
        1 means serial.
    max_batch_retries:
        How many times a batch is re-executed after a *retryable*
        backend failure (e.g. the cluster backend losing its whole
        fleet mid-batch).  Replicate streams are functions of the specs
        alone, so a retried batch is bit-identical to an undisturbed
        one.  Deterministic failures never retry.
    kernel:
        Simulation-kernel request stamped on every spec (``"auto"``,
        ``"scalar"`` or ``"vectorized"`` — see
        :mod:`repro.engine.kernels`); ``None`` falls back to the
        ``REPRO_KERNEL`` environment variable, then ``"auto"``.  Purely
        a scheduling choice: results are bit-identical across kernels.
    """

    def __init__(
        self,
        graph: Graph,
        algorithm_factory: "Callable[[], GossipAlgorithm]",
        initial_values: (
            "Sequence[float] | Callable[[np.random.Generator], Sequence[float]]"
        ),
        *,
        seed: "int | np.random.SeedSequence | None" = None,
        clock_factory: "Callable[[np.random.Generator], object] | None" = None,
        backend: "ExecutionBackend | str | None" = None,
        n_workers: "int | None" = None,
        max_batch_retries: int = 1,
        kernel: "str | None" = None,
    ) -> None:
        if max_batch_retries < 0:
            raise SimulationError(
                f"max_batch_retries must be >= 0, got {max_batch_retries}"
            )
        self.graph = graph
        self.algorithm_factory = algorithm_factory
        self.initial_values = initial_values
        self.seed = seed
        self.clock_factory = clock_factory
        self.backend = resolve_backend(backend, n_workers=n_workers)
        self.max_batch_retries = max_batch_retries
        self.kernel = (
            default_kernel() if kernel is None else normalize_kernel(kernel)
        )

    def shared_state(self) -> "dict[str, object]":
        """The configuration's immutable payload for shared-state shipping.

        Exactly the heavy fields every replicate of this configuration
        repeats — what ``build_specs(..., shared_key=...)`` replaces with
        :class:`~repro.engine.backends.SharedStateRef` placeholders and
        ``ExecutionBackend.execute_shared`` installs once per worker.
        """
        return {
            "graph": self.graph,
            "algorithm_factory": self.algorithm_factory,
            "initial_values": self.initial_values,
            "clock_factory": self.clock_factory,
        }

    def build_specs(
        self,
        n_replicates: int,
        *,
        start: int = 0,
        shared_key: "str | None" = None,
        **run_kwargs: object,
    ) -> "list[ReplicateSpec]":
        """Derive the per-replicate work orders (seed bookkeeping lives here).

        Replicate ``i``'s randomness comes from the ``i``-th child of the
        root seed sequence, so the stream assignment never depends on the
        backend, the worker count, or how many replicates run.  ``start``
        shifts the replicate window: ``build_specs(k, start=s)`` builds
        replicates ``s .. s+k-1`` with exactly the streams they would have
        had in one big ``build_specs(s+k)`` call — the sweep scheduler
        uses this to grow a configuration's replicate set in rounds
        without perturbing any existing stream.

        ``shared_key`` builds *slim* specs: the heavy per-configuration
        fields become :class:`~repro.engine.backends.SharedStateRef`
        placeholders into a mapping entry ``shared_key`` whose payload is
        :meth:`shared_state` — for backends that ship the configuration
        once per worker instead of once per replicate.  Seed derivation
        is identical either way.
        """
        if n_replicates < 1:
            raise SimulationError(f"n_replicates must be positive, got {n_replicates}")
        if start < 0:
            raise SimulationError(f"start must be non-negative, got {start}")
        if isinstance(self.seed, np.random.SeedSequence):
            # Derive (not spawn) so the caller's child counter is never
            # advanced — a second run() must reuse identical streams.
            root = derive_child(self.seed, _REPLICATE_SPAWN_NAMESPACE)
        else:
            # Same namespace for int/None seeds: without it, replicate
            # streams would collide with a caller's own
            # spawn_generators(seed, k) children from the same seed.
            root = np.random.SeedSequence(
                entropy=self.seed, spawn_key=(_REPLICATE_SPAWN_NAMESPACE,)
            )
        if shared_key is None:
            graph = self.graph
            algorithm_factory = self.algorithm_factory
            initial_values = self.initial_values
            clock_factory = self.clock_factory
        else:
            graph = SharedStateRef(shared_key, "graph")
            algorithm_factory = SharedStateRef(shared_key, "algorithm_factory")
            initial_values = SharedStateRef(shared_key, "initial_values")
            # A None clock keeps meaning "default Poisson model" without
            # a pointless round-trip through the registry.
            clock_factory = (
                None
                if self.clock_factory is None
                else SharedStateRef(shared_key, "clock_factory")
            )
        return [
            ReplicateSpec(
                index=index,
                graph=graph,
                algorithm_factory=algorithm_factory,
                initial_values=initial_values,
                # derive_child(root, i) is exactly the child spawn() would
                # yield at i, so windows [0, n) and [s, s+k) tile the same
                # stream assignment without mutating root's child counter.
                seed_sequence=derive_child(root, index),
                clock_factory=clock_factory,
                run_kwargs=dict(run_kwargs),
                kernel=self.kernel,
            )
            for index in range(start, start + n_replicates)
        ]

    def run(self, n_replicates: int, **run_kwargs: object) -> list[RunResult]:
        """Execute ``n_replicates`` independent runs; kwargs go to ``run``."""
        specs = self.build_specs(n_replicates, **run_kwargs)
        results = execute_with_retry(
            self.backend, specs, max_retries=self.max_batch_retries
        )
        if len(results) != len(specs):
            raise SimulationError(
                f"backend {self.backend.name!r} returned {len(results)} "
                f"results for {len(specs)} replicates"
            )
        return results

    def summary(self, n_replicates: int, **run_kwargs: object) -> ReplicateSummary:
        """Run and aggregate in one call."""
        return ReplicateSummary.from_results(self.run(n_replicates, **run_kwargs))

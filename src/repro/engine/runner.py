"""Monte-Carlo replication over independent clock/workload randomness.

The paper's quantities are probabilistic (``T_av`` is a quantile over the
randomness of the Poisson clocks), so every measurement replays the same
configuration under independent seeds.  :class:`MonteCarloRunner` owns the
seed bookkeeping and collects per-replicate :class:`RunResult` objects plus
a compact :class:`ReplicateSummary`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.algorithms.base import GossipAlgorithm
from repro.engine.results import RunResult
from repro.engine.simulator import Simulator
from repro.errors import SimulationError
from repro.graphs.graph import Graph
from repro.util.rng import spawn_generators


@dataclass
class ReplicateSummary:
    """Aggregate view over a list of replicate results."""

    n_replicates: int
    mean_duration: float
    mean_events: float
    mean_variance_ratio: float
    max_sum_drift: float

    @classmethod
    def from_results(cls, results: "Sequence[RunResult]") -> "ReplicateSummary":
        if not results:
            raise SimulationError("cannot summarize zero replicates")
        return cls(
            n_replicates=len(results),
            mean_duration=float(np.mean([r.duration for r in results])),
            mean_events=float(np.mean([r.n_events for r in results])),
            mean_variance_ratio=float(
                np.mean([r.variance_ratio for r in results])
            ),
            max_sum_drift=float(max(r.sum_drift for r in results)),
        )

    def to_dict(self) -> dict:
        """Plain-dict view for serialization."""
        return {
            "n_replicates": self.n_replicates,
            "mean_duration": self.mean_duration,
            "mean_events": self.mean_events,
            "mean_variance_ratio": self.mean_variance_ratio,
            "max_sum_drift": self.max_sum_drift,
        }


class MonteCarloRunner:
    """Run one configuration under many independent random streams.

    Parameters
    ----------
    graph:
        The graph to simulate on.
    algorithm_factory:
        Zero-argument callable producing a fresh (or resettable) algorithm
        per replicate.  Pass ``lambda: algo`` to reuse one instance —
        algorithms are required to fully reset in ``setup``.
    initial_values:
        Either a fixed vector used by every replicate, or a callable
        ``rng -> vector`` sampling a workload per replicate.
    seed:
        Root seed; replicate ``i`` derives stream ``i`` deterministically.
    clock_factory:
        Optional callable ``rng -> clock process`` building each
        replicate's clock (boosted rates, failure injection...).  Default
        is the standard rate-1 Poisson model.
    """

    def __init__(
        self,
        graph: Graph,
        algorithm_factory: "Callable[[], GossipAlgorithm]",
        initial_values: "Sequence[float] | Callable[[np.random.Generator], Sequence[float]]",
        *,
        seed: "int | None" = None,
        clock_factory: "Callable[[np.random.Generator], object] | None" = None,
    ) -> None:
        self.graph = graph
        self.algorithm_factory = algorithm_factory
        self.initial_values = initial_values
        self.seed = seed
        self.clock_factory = clock_factory

    def run(self, n_replicates: int, **run_kwargs: object) -> list[RunResult]:
        """Execute ``n_replicates`` independent runs; kwargs go to ``run``."""
        if n_replicates < 1:
            raise SimulationError(
                f"n_replicates must be positive, got {n_replicates}"
            )
        # Two independent streams per replicate: clocks and workload.
        streams = spawn_generators(self.seed, 2 * n_replicates)
        results: list[RunResult] = []
        for index in range(n_replicates):
            clock_rng = streams[2 * index]
            workload_rng = streams[2 * index + 1]
            if callable(self.initial_values):
                values = self.initial_values(workload_rng)
            else:
                values = self.initial_values
            clock = (
                self.clock_factory(clock_rng)
                if self.clock_factory is not None
                else None
            )
            simulator = Simulator(
                self.graph,
                self.algorithm_factory(),
                values,
                clock=clock,
                seed=clock_rng,
            )
            results.append(simulator.run(**run_kwargs))  # type: ignore[arg-type]
        return results

    def summary(self, n_replicates: int, **run_kwargs: object) -> ReplicateSummary:
        """Run and aggregate in one call."""
        return ReplicateSummary.from_results(self.run(n_replicates, **run_kwargs))

"""Pluggable simulation kernels and the per-spec kernel dispatcher.

The execution backends (:mod:`repro.engine.backends`) decide *where*
replicates run; kernels decide *how*.  :func:`execute_specs` is the one
dispatch point: it groups a batch of resolved
:class:`~repro.engine.backends.ReplicateSpec` work orders by
configuration, sends eligible groups through the
:class:`~repro.engine.kernels.vectorized.VectorizedBatchKernel` and
everything else through the
:class:`~repro.engine.kernels.scalar.ScalarKernel`, and returns results
in submission order.  Results are bit-identical regardless of kernel,
grouping, or batch composition — see ``docs/kernels.md``.

Kernel choice rides on each spec's ``kernel`` field:

* ``"scalar"`` — always the scalar event loop;
* ``"vectorized"`` — the lockstep kernel for every eligible spec (any
  group size, including 1); ineligible specs still fall back to scalar;
* ``"auto"`` (default) — vectorize eligible groups of at least
  :data:`AUTO_MIN_BATCH` replicates, where the batch is wide enough for
  the numpy-call overhead to amortize below the scalar loop's cost.

Whether a spec *can* vectorize is the :func:`eligibility` verdict — a
:class:`KernelEligibility` with machine-readable reason codes, public so
sweep telemetry, the ``kernel explain`` CLI, and third-party algorithms
(via :func:`register_update`) all share the dispatcher's answer.  Every
scalar demotion is counted in ``stats`` under a ``demoted:<code>`` key.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.engine.kernels.base import (
    KERNEL_CHOICES,
    KERNEL_ENV_VAR,
    SimulationKernel,
    default_kernel,
    new_kernel_stats,
    normalize_kernel,
    replicate_substreams,
)
from repro.engine.kernels.eligibility import (
    AUTO_BATCH_BELOW_MIN,
    REASON_CODES,
    EligibilityReason,
    KernelDemotionWarning,
    KernelEligibility,
    algorithm_reason as _algorithm_reason,
    clock_reason as _clock_reason,
    eligibility,
    run_kwargs_reasons as _run_kwargs_reasons,
    register_update,
    registered_update_types,
)
from repro.engine.kernels.scalar import ScalarKernel
from repro.engine.kernels.vectorized import VectorizedBatchKernel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.engine.backends import ReplicateSpec
    from repro.engine.results import RunResult

#: Smallest same-configuration group the ``"auto"`` policy vectorizes.
#: Below this width the lockstep loop's per-step numpy call overhead
#: exceeds the scalar loop's per-event cost, so auto falls back; forced
#: ``"vectorized"`` ignores the floor (useful for equivalence testing
#: and for cluster workers executing one spec per task).
AUTO_MIN_BATCH = 16

_SCALAR = ScalarKernel()
_VECTORIZED = VectorizedBatchKernel()

__all__ = [
    "AUTO_BATCH_BELOW_MIN",
    "AUTO_MIN_BATCH",
    "KERNEL_CHOICES",
    "KERNEL_ENV_VAR",
    "REASON_CODES",
    "EligibilityReason",
    "KernelDemotionWarning",
    "KernelEligibility",
    "ScalarKernel",
    "SimulationKernel",
    "VectorizedBatchKernel",
    "default_kernel",
    "eligibility",
    "execute_specs",
    "new_kernel_stats",
    "normalize_kernel",
    "register_update",
    "registered_update_types",
    "replicate_substreams",
]


def _group_key(spec: "ReplicateSpec") -> tuple:
    """Configuration identity for lockstep grouping.

    Identity-based for the heavy objects (replicates of one
    configuration share them — see ``MonteCarloRunner.build_specs``) and
    content-based for ``run_kwargs`` (each spec carries its own equal
    dict).  Two equal configurations that fail to group merely lose some
    batching; they can never change a result, because every replicate's
    arithmetic is independent of group composition.
    """
    return (
        id(spec.graph),
        id(spec.algorithm_factory),
        id(spec.initial_values),
        id(spec.clock_factory),
        tuple(sorted((key, repr(value)) for key, value in spec.run_kwargs.items())),
    )


def _count_demotions(
    stats: "dict[str, int] | None", codes: "Sequence[str]", count: int = 1
) -> None:
    """Accumulate ``demoted:<code>`` counters (keys created on demand)."""
    if stats is None:
        return
    for code in codes:
        key = f"demoted:{code}"
        stats[key] = stats.get(key, 0) + count


def execute_specs(
    specs: "Sequence[ReplicateSpec]",
    *,
    stats: "dict[str, int] | None" = None,
) -> "list[RunResult]":
    """Execute a batch of resolved specs through the right kernels.

    Returns results in submission order.  ``stats`` (a dict shaped like
    :func:`~repro.engine.kernels.base.new_kernel_stats`) accumulates
    engagement counters in place, so backends can expose which path
    actually ran — the sweep scheduler surfaces them as
    ``kernel_installs`` / ``vectorized_replicates``, plus one
    ``demoted:<code>`` counter per :data:`REASON_CODES` demotion cause
    (so an explicitly requested ``vectorized`` kernel's scalar fallbacks
    are never silent).
    """
    specs = list(specs)
    results: "list[RunResult | None]" = [None] * len(specs)
    scalar_positions: "list[int]" = []
    groups: "dict[tuple, list[int]]" = {}
    # The algorithm verdict requires instantiating the factory; cache it
    # per factory object so a thousand-replicate batch probes each
    # configuration once.  Clock/kwargs verdicts vary per spec (a batch
    # can mix sweep points) and are cheap, so they are checked inline.
    algorithm_verdicts: "dict[int, EligibilityReason | None]" = {}
    for position, spec in enumerate(specs):
        mode = normalize_kernel(getattr(spec, "kernel", "auto"))
        if mode == "scalar":
            scalar_positions.append(position)
            continue
        factory_id = id(spec.algorithm_factory)
        if factory_id in algorithm_verdicts:
            algo_reason = algorithm_verdicts[factory_id]
        else:
            algo_reason = _algorithm_reason(spec.algorithm_factory())
            algorithm_verdicts[factory_id] = algo_reason
        reasons = [] if algo_reason is None else [algo_reason]
        clock = _clock_reason(spec.clock_factory)
        if clock is not None:
            reasons.append(clock)
        reasons.extend(_run_kwargs_reasons(spec.run_kwargs))
        if reasons:
            _count_demotions(stats, [reason.code for reason in reasons])
            scalar_positions.append(position)
            continue
        groups.setdefault((mode, _group_key(spec)), []).append(position)

    vector_groups: "list[list[int]]" = []
    for (mode, _key), positions in groups.items():
        if mode == "auto" and len(positions) < AUTO_MIN_BATCH:
            _count_demotions(stats, (AUTO_BATCH_BELOW_MIN,), len(positions))
            scalar_positions.extend(positions)
        else:
            vector_groups.append(positions)

    for position in sorted(scalar_positions):
        results[position] = _SCALAR.execute_one(specs[position])
    for positions in vector_groups:
        group_results = _VECTORIZED.execute([specs[p] for p in positions])
        for position, result in zip(positions, group_results):
            results[position] = result
    if stats is not None:
        stats["kernel_installs"] += len(vector_groups)
        stats["vectorized_replicates"] += sum(map(len, vector_groups))
        stats["scalar_replicates"] += len(scalar_positions)
    return results  # type: ignore[return-value]

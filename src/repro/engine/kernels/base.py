"""The simulation-kernel protocol and kernel-selection plumbing.

A *kernel* is the strategy that turns resolved
:class:`~repro.engine.backends.ReplicateSpec` work orders into
:class:`~repro.engine.results.RunResult` objects.  Two kernels exist:

* :class:`~repro.engine.kernels.scalar.ScalarKernel` — the original
  pure-Python event loop, one replicate at a time.  It is the bit-exact
  oracle every other kernel is measured against.
* :class:`~repro.engine.kernels.vectorized.VectorizedBatchKernel` —
  advances many replicates of one configuration in lockstep with numpy.

Kernel choice is carried on each spec's ``kernel`` field (``"auto"``,
``"scalar"`` or ``"vectorized"``) and resolved per spec by the
dispatcher (:func:`repro.engine.kernels.execute_specs`): eligible specs
take the vectorized path, everything else falls back to scalar.  The
contract across all of it is **bit-identity** — for the same spec, every
kernel must return byte-identical results (see ``docs/kernels.md``).

This module also owns :func:`replicate_substreams`, the single place the
per-replicate clock / workload / algorithm substream discipline lives,
so no kernel can drift from the seeding scheme the backends document.
"""

from __future__ import annotations

import abc
import os
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.util.rng import derive_child

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.engine.backends import ReplicateSpec
    from repro.engine.results import RunResult

#: Valid values of ``ReplicateSpec.kernel`` and the CLI's ``--kernel``.
KERNEL_CHOICES = ("auto", "scalar", "vectorized")

#: Environment variable consulted when no kernel is given (the CLI's
#: ``--kernel`` flag sets it for a whole experiment run, mirroring
#: ``REPRO_WORKERS``).
KERNEL_ENV_VAR = "REPRO_KERNEL"


def normalize_kernel(kernel: str) -> str:
    """Validate a kernel name, returning it unchanged."""
    if kernel not in KERNEL_CHOICES:
        raise SimulationError(
            f"unknown kernel {kernel!r}; valid kernels: "
            f"{', '.join(KERNEL_CHOICES)}"
        )
    return kernel


def default_kernel() -> str:
    """Kernel name from ``REPRO_KERNEL`` (``"auto"`` when unset)."""
    raw = os.environ.get(KERNEL_ENV_VAR)
    if raw is None:
        return "auto"
    if raw not in KERNEL_CHOICES:
        raise SimulationError(
            f"{KERNEL_ENV_VAR} must be one of {', '.join(KERNEL_CHOICES)}, "
            f"got {raw!r}"
        )
    return raw


def replicate_substreams(
    spec: "ReplicateSpec",
) -> "tuple[np.random.SeedSequence, np.random.SeedSequence, np.random.SeedSequence]":
    """A spec's (clock, workload, algorithm) seed substreams.

    The children are constructed directly (the sequences ``spawn(3)``
    would yield) rather than spawned, because spawning mutates the
    spec's child counter and re-executing the same spec — e.g. comparing
    kernels on one ``build_specs`` output — must stay bit-identical.
    Every kernel derives its randomness through this one function, which
    is what makes kernel choice invisible in the results.
    """
    clock_seq, workload_seq, algorithm_seq = (
        derive_child(spec.seed_sequence, child) for child in range(3)
    )
    return clock_seq, workload_seq, algorithm_seq


def new_kernel_stats() -> "dict[str, int]":
    """A zeroed kernel-engagement counter dict.

    ``kernel_installs`` counts vectorized group launches,
    ``vectorized_replicates`` / ``scalar_replicates`` count how many
    replicates each path actually executed — the telemetry that lets
    reports and benchmarks verify the fast path engaged instead of
    silently falling back to scalar.  The dispatcher additionally
    creates one ``demoted:<code>`` counter on demand per
    :data:`~repro.engine.kernels.eligibility.REASON_CODES` demotion
    cause (not pre-seeded here: a zero-demotion run keeps the dict to
    the three canonical keys, and merge code must treat missing keys
    as zero anyway).
    """
    return {
        "kernel_installs": 0,
        "vectorized_replicates": 0,
        "scalar_replicates": 0,
    }


class SimulationKernel(abc.ABC):
    """How resolved replicate specs become results.

    Kernels receive specs whose :class:`~repro.engine.backends
    .SharedStateRef` placeholders have already been resolved (backends
    do that before dispatching) and must return results **in submission
    order** without injecting any randomness of their own — the same
    contract :class:`~repro.engine.backends.ExecutionBackend` makes,
    pushed one layer down.
    """

    #: Short machine name (telemetry/report label).
    name: str = "abstract"

    @abc.abstractmethod
    def supports(self, spec: "ReplicateSpec") -> bool:
        """True when this kernel can execute ``spec`` bit-exactly."""

    @abc.abstractmethod
    def execute(self, specs: "Sequence[ReplicateSpec]") -> "list[RunResult]":
        """Run every spec and return results in submission order."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"

"""The public kernel-eligibility API.

Whether a :class:`~repro.engine.backends.ReplicateSpec` can take the
vectorized lockstep path is a three-part question — is the algorithm's
per-tick update registered, is the clock model one the kernel can
replay, are the run kwargs within the lockstep loop's support — and the
answer matters beyond the dispatcher: sweep telemetry reports *why* a
replicate ran scalar, ``repro-experiments kernel explain`` prints the
verdict per configuration, and an explicitly requested ``vectorized``
kernel warns instead of silently demoting.  This module owns that
question:

* :func:`eligibility` returns a :class:`KernelEligibility` verdict with
  machine-readable :class:`EligibilityReason` codes (empty when
  eligible);
* :func:`register_update` is the extension point: registering a
  vectorized update builder for an algorithm type makes that algorithm
  eligible everywhere — dispatcher, telemetry, CLI — with no other code
  change;
* the built-in registrations live with their update implementations in
  :mod:`repro.engine.kernels.vectorized` (imported lazily here, so
  importing this module alone still sees the full registry).

The legacy helpers (``resolve_update`` / ``eligible_run_kwargs`` /
``eligible_clock_factory`` in :mod:`repro.engine.kernels.vectorized`)
are deprecation shims over this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Mapping

from repro.clocks.poisson import PoissonClockFactory
from repro.clocks.unreliable import (
    FailingPoissonClockFactory,
    LossyPoissonClockFactory,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.engine.backends import ReplicateSpec

#: The algorithm type has no registered vectorized update rule.
ALGORITHM_UNSUPPORTED = "algorithm-unsupported"

#: The clock factory builds a process the lockstep loop cannot replay.
CLOCK_UNSUPPORTED = "clock-unsupported"

#: ``run()`` kwargs outside the lockstep loop's supported set.
RUN_KWARG_UNSUPPORTED = "run-kwarg-unsupported"

#: A ``TraceRecorder`` is attached (per-event sampling is scalar-only).
RECORDER_ATTACHED = "recorder-attached"

#: Policy, not eligibility: an ``auto``-mode group narrower than
#: ``AUTO_MIN_BATCH`` ran scalar because lockstep would not amortize.
AUTO_BATCH_BELOW_MIN = "auto-batch-below-min"

#: Every reason code :func:`eligibility` (or the dispatcher's telemetry)
#: can emit.
REASON_CODES = (
    ALGORITHM_UNSUPPORTED,
    CLOCK_UNSUPPORTED,
    RUN_KWARG_UNSUPPORTED,
    RECORDER_ATTACHED,
    AUTO_BATCH_BELOW_MIN,
)

#: run() kwargs the lockstep loop implements; anything else disqualifies
#: the spec (the scalar kernel is the one that knows how to reject it).
SUPPORTED_RUN_KWARGS = frozenset(
    {
        "max_time",
        "max_events",
        "target_ratio",
        "thresholds",
        "recorder",
        "divergence_ratio",
    }
)

#: Clock-factory types the vectorized kernel can replay bit-identically:
#: the standard Poisson model plus the lossy/failing wrappers (their
#: dropped/dead ticks never reach the event stream, so the lockstep loop
#: sees exactly the scalar loop's delivered ticks).  ``None`` (the
#: default per-replicate Poisson clock) is also eligible.
SUPPORTED_CLOCK_FACTORIES = (
    PoissonClockFactory,
    LossyPoissonClockFactory,
    FailingPoissonClockFactory,
)


class KernelDemotionWarning(UserWarning):
    """An explicitly requested ``vectorized`` kernel fell back to scalar."""


@dataclass(frozen=True)
class EligibilityReason:
    """One machine-readable cause of a scalar demotion."""

    code: str
    detail: str

    def __str__(self) -> str:
        return f"{self.code}: {self.detail}"


@dataclass(frozen=True)
class KernelEligibility:
    """The vectorized kernel's verdict on one configuration.

    Truthiness follows ``eligible``, so ``if eligibility(spec): ...``
    reads naturally; ``reasons`` is empty exactly when eligible.
    """

    eligible: bool
    reasons: "tuple[EligibilityReason, ...]" = ()

    def __bool__(self) -> bool:
        return self.eligible

    @property
    def codes(self) -> "tuple[str, ...]":
        """The reason codes alone (stable, machine-comparable)."""
        return tuple(reason.code for reason in self.reasons)

    def describe(self) -> str:
        """One-line human rendering of the verdict."""
        if self.eligible:
            return "eligible"
        return "; ".join(str(reason) for reason in self.reasons)


# ----------------------------------------------------------------------
# the update registry (the register_update extension point)
# ----------------------------------------------------------------------

_UPDATE_BUILDERS: "dict[type, Callable[[Any], Any]]" = {}


def register_update(
    algorithm_type: type,
) -> "Callable[[Callable[[Any], Any]], Callable[[Any], Any]]":
    """Register a vectorized-update builder for an algorithm type.

    Decorator form::

        @register_update(MyGossip)
        def _build_my_gossip(algorithm):
            return _MyVectorizedUpdate(algorithm.some_parameter)

    The builder receives an algorithm *instance* and returns the kernel's
    per-tick update object.  Registration is keyed by **exact type** (not
    ``isinstance``) on purpose: a subclass overriding ``on_tick`` must
    never silently take the fast path with the parent's update rule —
    register the subclass explicitly once its vectorized rule exists.
    The last registration for a type wins, so tests can shadow a builder
    and restore it.
    """
    if not isinstance(algorithm_type, type):
        raise TypeError(
            f"register_update expects an algorithm type, got {algorithm_type!r}"
        )

    def decorate(builder: "Callable[[Any], Any]") -> "Callable[[Any], Any]":
        _UPDATE_BUILDERS[algorithm_type] = builder
        return builder

    return decorate


def registered_update_types() -> "tuple[type, ...]":
    """The algorithm types currently registered, in registration order."""
    _ensure_builtin_updates()
    return tuple(_UPDATE_BUILDERS)


def resolve_update(algorithm: object) -> "object | None":
    """The vectorized update rule for ``algorithm`` (None = not eligible)."""
    _ensure_builtin_updates()
    builder = _UPDATE_BUILDERS.get(type(algorithm))
    return None if builder is None else builder(algorithm)


def _ensure_builtin_updates() -> None:
    """Populate the registry with the built-in updates on first use.

    The builders live next to their update classes in ``vectorized.py``;
    importing it registers them.  Lazy (and re-entrant via the module
    cache) so ``eligibility`` can be imported first without a cycle.
    """
    if not _UPDATE_BUILDERS:
        import repro.engine.kernels.vectorized  # noqa: F401


# ----------------------------------------------------------------------
# the verdict
# ----------------------------------------------------------------------


def algorithm_reason(algorithm: object) -> "EligibilityReason | None":
    """Why this algorithm instance cannot vectorize (None = it can)."""
    if resolve_update(algorithm) is not None:
        return None
    registered = ", ".join(t.__name__ for t in registered_update_types())
    return EligibilityReason(
        ALGORITHM_UNSUPPORTED,
        f"{type(algorithm).__name__} has no registered vectorized update "
        f"(registered: {registered}); see "
        "repro.engine.kernels.register_update",
    )


def clock_reason(clock_factory: "object | None") -> "EligibilityReason | None":
    """Why this clock factory cannot vectorize (None = it can)."""
    if clock_factory is None or isinstance(clock_factory, SUPPORTED_CLOCK_FACTORIES):
        return None
    supported = ", ".join(t.__name__ for t in SUPPORTED_CLOCK_FACTORIES)
    return EligibilityReason(
        CLOCK_UNSUPPORTED,
        f"{type(clock_factory).__name__} is not a supported clock model "
        f"(supported: default Poisson, {supported})",
    )


def run_kwargs_reasons(
    run_kwargs: "Mapping[str, Any]",
) -> "tuple[EligibilityReason, ...]":
    """Why these run kwargs cannot vectorize (empty = they can)."""
    reasons = []
    unknown = sorted(key for key in run_kwargs if key not in SUPPORTED_RUN_KWARGS)
    if unknown:
        reasons.append(
            EligibilityReason(
                RUN_KWARG_UNSUPPORTED,
                f"run kwargs {unknown} are outside the lockstep loop's "
                f"support ({sorted(SUPPORTED_RUN_KWARGS)})",
            )
        )
    if run_kwargs.get("recorder") is not None:
        reasons.append(
            EligibilityReason(
                RECORDER_ATTACHED,
                "a TraceRecorder samples every event; per-event traces "
                "are scalar-only",
            )
        )
    return tuple(reasons)


def eligibility(
    spec: "ReplicateSpec | None" = None,
    *,
    algorithm_factory: "Callable[[], object] | None" = None,
    clock_factory: "object | None" = None,
    run_kwargs: "Mapping[str, Any] | None" = None,
) -> KernelEligibility:
    """The vectorized kernel's verdict for a spec (or its parts).

    Pass a :class:`~repro.engine.backends.ReplicateSpec` (anything with
    ``algorithm_factory`` / ``clock_factory`` / ``run_kwargs``
    attributes), or the three parts as keywords — the keyword form is
    what the sweep scheduler and the ``kernel explain`` CLI use, where no
    spec object exists yet.
    """
    if spec is not None:
        algorithm_factory = spec.algorithm_factory
        clock_factory = spec.clock_factory
        run_kwargs = spec.run_kwargs
    elif algorithm_factory is None:
        raise TypeError(
            "eligibility() needs a spec or an algorithm_factory keyword"
        )
    reasons: "list[EligibilityReason]" = []
    reason = algorithm_reason(algorithm_factory())
    if reason is not None:
        reasons.append(reason)
    reason = clock_reason(clock_factory)
    if reason is not None:
        reasons.append(reason)
    reasons.extend(run_kwargs_reasons(run_kwargs or {}))
    return KernelEligibility(eligible=not reasons, reasons=tuple(reasons))

"""The vectorized replicate-batch kernel.

Advances many replicates of **one configuration** in lockstep: the value
vectors live in a ``(n_replicates, n_nodes)`` float64 matrix and every
clock tick updates one ``(replicate, vertex)`` pair per row with a
handful of numpy gather/scatter operations, amortizing interpreter
overhead over the whole batch.  On eligible configurations this is what
turns the ~1 us/event pure-Python loop into tens of nanoseconds per
replicate-event at realistic batch widths (see
``benchmarks/results/BENCH_kernel_scaling.json``).

**Bit-identity.**  The kernel reproduces the scalar event loop's results
to the byte, not approximately.  The load-bearing facts:

* Each replicate gets its *own* clock object, built exactly as the
  scalar path builds it (same factory, same derived clock substream), and
  ``next_batch`` is called with the same batch-size sequence the scalar
  loop uses — so every replicate sees the identical event stream.  A
  replicate that stops mid-batch simply discards the surplus draws, just
  like the scalar loop does.
* The incremental ``T``/``S`` statistics are updated with the exact
  floating-point expression (and association order) of the scalar loop,
  refreshed from scratch on the same global update boundaries with the
  same per-row ``row.sum()`` / ``row @ row`` reductions.
* Per-tick algorithm randomness (``RandomConvexGossip``'s mixing weight)
  is pre-drawn per batch from each replicate's algorithm generator;
  numpy's ``Generator.uniform(size=k)`` consumes the bit stream exactly
  as ``k`` sequential scalar draws do.
* Eligible algorithms update on **every** tick, so all running
  replicates share one global event counter — what makes lockstep (and
  the shared recompute boundary) valid in the first place.

**Memory discipline.**  The hot loop never allocates: per-step
arithmetic lands in a reusable scratch arena (``out=`` everywhere), and
the big per-batch clock buffers are kept warm across batches and groups
— a fresh 64MB allocation costs more in page faults than the compute it
serves.  Batch draws are staged row-per-replicate and then transposed
with a cache-blocked kernel so that every step reads contiguous slices.

**Two lockstep loops.**  Always-update algorithms on unwrapped Poisson
clocks take the *dense* loop: one global event counter, every row
updates every tick.  Algorithm A (masked per-tick updates driven by the
edge class and the designated edge's epoch phase) and the lossy/failing
clock wrappers (delivered ticks per batch vary per replicate) take the
*generalized* loop: per-row update counts, a per-row variance cache, and
buffered per-replicate tick streams that replay the scalar loop's clock
request sequence exactly.  Routing between them is internal; both are
bit-identical to the scalar oracle.

**Eligibility.**  The public verdict lives in
:mod:`repro.engine.kernels.eligibility`: the algorithm's type must have
a registered update builder (exact type match — a subclass overriding
``on_tick`` must not silently take the fast path; the built-in
registrations are below), the clock must be the standard Poisson model
or one of the lossy/failing wrappers, and the run kwargs must carry no
recorder and no unknown keys.  Everything else falls back to the scalar
kernel, with reason codes surfaced through telemetry.
``docs/kernels.md`` walks through the rules.
"""

from __future__ import annotations

import math
import warnings
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from repro.algorithms.convex import ConvexGossip, RandomConvexGossip
from repro.algorithms.nonconvex import NonConvexSparseCutGossip
from repro.algorithms.vanilla import VanillaGossip
from repro.clocks.poisson import PoissonEdgeClocks
from repro.clocks.unreliable import (
    FailingPoissonClockFactory,
    LossyPoissonClockFactory,
)
from repro.engine.kernels.eligibility import (
    SUPPORTED_RUN_KWARGS as _SUPPORTED_RUN_KWARGS,
    clock_reason as _clock_reason,
    eligibility as _spec_eligibility,
    register_update,
    resolve_update as _resolve_update,
    run_kwargs_reasons as _run_kwargs_reasons,
)
from repro.engine.kernels.base import SimulationKernel, replicate_substreams
from repro.engine.results import Crossing, RunResult
from repro.engine.simulator import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_MAX_EVENTS,
    DEFAULT_RECOMPUTE_EVERY,
)
from repro.errors import AlgorithmError, SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.engine.backends import ReplicateSpec

#: Largest replicate batch advanced as one lockstep group; bigger groups
#: are split (grouping never affects results, only memory: the per-batch
#: clock buffers are ``group x DEFAULT_BATCH_SIZE`` float64).
MAX_GROUP_SIZE = 2048

#: Clock factories whose processes deliver *fewer* ticks than requested
#: (dropped or dead edges) — they vectorize through the generalized
#: loop's buffered tick streams rather than the dense loop.
_WRAPPED_CLOCK_FACTORIES = (LossyPoissonClockFactory, FailingPoissonClockFactory)

_TILE_ROWS = 64
_TILE_COLS = 2048


def _transpose_into(dst: np.ndarray, src: np.ndarray) -> None:
    """Cache-blocked ``dst[:] = src.T``.

    A naive strided transpose walks one page per element and thrashes
    the TLB (~6x slower at 1024x8192 measured); small tiles keep both
    sides' working sets cache-resident.
    """
    n_rows, n_cols = src.shape
    for i0 in range(0, n_rows, _TILE_ROWS):
        s = src[i0 : i0 + _TILE_ROWS]
        d = dst[:, i0 : i0 + _TILE_ROWS]
        for j0 in range(0, n_cols, _TILE_COLS):
            d[j0 : j0 + _TILE_COLS] = s[:, j0 : j0 + _TILE_COLS].T


class _VanillaUpdate:
    """``x_u, x_v <- (x_u + x_v) / 2``, vectorized across replicates.

    Returns the *same* buffer twice; the caller exploits the identity to
    skip one multiply in the square-sum delta.
    """

    needs_rng = False

    def apply(
        self,
        x_u: np.ndarray,
        x_v: np.ndarray,
        aux: "np.ndarray | None",
        out_u: np.ndarray,
        out_v: np.ndarray,
        tmp: np.ndarray,
        tmp2: np.ndarray,
    ) -> "tuple[np.ndarray, np.ndarray]":
        np.add(x_u, x_v, out=out_u)
        np.multiply(out_u, 0.5, out=out_u)
        return out_u, out_u


class _ConvexUpdate:
    """Fixed-``alpha`` symmetric convex update, vectorized."""

    needs_rng = False

    def __init__(self, alpha: float) -> None:
        self.alpha = alpha

    def apply(
        self,
        x_u: np.ndarray,
        x_v: np.ndarray,
        aux: "np.ndarray | None",
        out_u: np.ndarray,
        out_v: np.ndarray,
        tmp: np.ndarray,
        tmp2: np.ndarray,
    ) -> "tuple[np.ndarray, np.ndarray]":
        a = self.alpha
        b = 1.0 - a
        np.multiply(x_u, a, out=out_u)
        np.multiply(x_v, b, out=tmp)
        np.add(out_u, tmp, out=out_u)  # a*x_u + b*x_v
        np.multiply(x_v, a, out=out_v)
        np.multiply(x_u, b, out=tmp)
        np.add(out_v, tmp, out=out_v)  # a*x_v + b*x_u
        return out_u, out_v


class _RandomConvexUpdate:
    """Per-tick ``alpha ~ U[low, high]`` convex update, vectorized.

    ``aux`` carries each replicate's pre-drawn mixing weight for the
    current tick; the batched draw consumes each algorithm generator's
    bit stream exactly as the scalar loop's per-tick scalar draws do.
    """

    needs_rng = True

    def __init__(self, low: float, high: float) -> None:
        self.low = low
        self.high = high

    def fill(
        self, rngs: "Sequence[np.random.Generator]", k: int, out: np.ndarray
    ) -> None:
        low = self.low
        high = self.high
        for i, rng in enumerate(rngs):
            out[i, :k] = rng.uniform(low, high, size=k)

    def apply(
        self,
        x_u: np.ndarray,
        x_v: np.ndarray,
        aux: np.ndarray,
        out_u: np.ndarray,
        out_v: np.ndarray,
        tmp: np.ndarray,
        tmp2: np.ndarray,
    ) -> "tuple[np.ndarray, np.ndarray]":
        np.subtract(1.0, aux, out=tmp2)  # b = 1 - a
        np.multiply(x_u, aux, out=out_u)
        np.multiply(x_v, tmp2, out=tmp)
        np.add(out_u, tmp, out=out_u)  # a*x_u + b*x_v
        np.multiply(x_v, aux, out=out_v)
        np.multiply(x_u, tmp2, out=tmp)
        np.add(out_v, tmp, out=out_v)  # a*x_v + b*x_u
        return out_u, out_v


class _NonConvexUpdate:
    """Algorithm A's per-tick state machine, staged for lockstep replay.

    Unlike the convex updates this one is **masked**: a tick's effect
    depends on the edge's class (internal → vanilla averaging,
    non-designated cut → nothing, designated → nothing except on every
    ``L``-th designated tick, when the non-convex swap fires).  The
    generalized loop stages per-tick op codes from :attr:`edge_class`
    plus a per-row running count of designated ticks, applies the
    vanilla rows vectorized, and computes the rare swap rows with the
    scalar oracle's exact Python-float arithmetic (including the
    ``oracle_means`` side-mean reads and the fixed return orientation).
    """

    needs_rng = False
    masked = True

    #: Op codes in :attr:`edge_class` / the staged per-tick op matrix.
    OP_NONE = 0
    OP_VANILLA = 1
    OP_SWAP = 2

    def __init__(self, algorithm: NonConvexSparseCutGossip) -> None:
        params = algorithm.lockstep_parameters()
        self.edge_class: np.ndarray = params["edge_class"]
        self.epoch_length: int = int(params["epoch_length"])
        self.gain: float = float(params["gain"])
        self.oracle_means: bool = bool(params["oracle_means"])
        self.endpoint_v1: int = int(params["endpoint_v1"])
        self.endpoint_v2: int = int(params["endpoint_v2"])
        self.designated_u_is_v1: bool = bool(params["designated_u_is_v1"])
        self.vertices_1: np.ndarray = params["vertices_1"]
        self.vertices_2: np.ndarray = params["vertices_2"]
        self.graph = params["graph"]


@register_update(VanillaGossip)
def _build_vanilla(algorithm: VanillaGossip) -> _VanillaUpdate:
    return _VanillaUpdate()


@register_update(ConvexGossip)
def _build_convex(algorithm: ConvexGossip) -> _ConvexUpdate:
    return _ConvexUpdate(algorithm.alpha)


@register_update(RandomConvexGossip)
def _build_random_convex(algorithm: RandomConvexGossip) -> _RandomConvexUpdate:
    return _RandomConvexUpdate(algorithm.low, algorithm.high)


@register_update(NonConvexSparseCutGossip)
def _build_nonconvex(algorithm: NonConvexSparseCutGossip) -> _NonConvexUpdate:
    return _NonConvexUpdate(algorithm)


# ----------------------------------------------------------------------
# deprecated predicate helpers (PR 9): the public verdict lives in
# repro.engine.kernels.eligibility now
# ----------------------------------------------------------------------


def resolve_update(algorithm: object) -> "object | None":
    """Deprecated: use :func:`repro.engine.kernels.eligibility`."""
    warnings.warn(
        "repro.engine.kernels.vectorized.resolve_update is deprecated; use "
        "repro.engine.kernels.eligibility (register_update / eligibility)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _resolve_update(algorithm)


def eligible_run_kwargs(run_kwargs: "dict | Any") -> bool:
    """Deprecated: use :func:`repro.engine.kernels.eligibility`."""
    warnings.warn(
        "eligible_run_kwargs is deprecated; use "
        "repro.engine.kernels.eligibility(...) for a reasoned verdict",
        DeprecationWarning,
        stacklevel=2,
    )
    return not _run_kwargs_reasons(run_kwargs)


def eligible_clock_factory(clock_factory: "object | None") -> bool:
    """Deprecated: use :func:`repro.engine.kernels.eligibility`."""
    warnings.warn(
        "eligible_clock_factory is deprecated; use "
        "repro.engine.kernels.eligibility(...) for a reasoned verdict",
        DeprecationWarning,
        stacklevel=2,
    )
    return _clock_reason(clock_factory) is None


class _Member:
    """One replicate's pre-lockstep state (setup mirrors the scalar path)."""

    __slots__ = (
        "position",
        "values",
        "variance_0",
        "sum_0",
        "square_sum_0",
        "crossings",
        "clock",
        "rng",
    )

    def __init__(self, position: int) -> None:
        self.position = position


class _Scratch:
    """Reusable lockstep buffers, kept warm across batches and groups.

    The big per-batch clock buffers are ~64MB at full width; allocating
    them fresh costs more in page faults than the arithmetic they feed.
    One growing arena per kernel instance amortizes that to zero after
    the first batch.  Callers slice leading views (``[:k, :A]``) so a
    shrunken group keeps using the same warm pages.
    """

    def __init__(self) -> None:
        self.rows = 0
        self.cols = 0
        self.has_aux = False
        self.has_ops = False

    def ensure(
        self, rows: int, cols: int, needs_aux: bool, needs_ops: bool = False
    ) -> None:
        if rows > self.rows or cols > self.cols:
            rows = max(rows, self.rows)
            cols = max(cols, self.cols)
            self.rows = rows
            self.cols = cols
            self.draw_t = np.empty((rows, cols))
            self.draw_fu = np.empty((rows, cols), dtype=np.int64)
            self.draw_fv = np.empty((rows, cols), dtype=np.int64)
            self.times_b = np.empty((cols, rows))
            self.fu_b = np.empty((cols, rows), dtype=np.int64)
            self.fv_b = np.empty((cols, rows), dtype=np.int64)
            self.f64_bufs = [np.empty(rows) for _ in range(10)]
            self.bool_bufs = [np.empty(rows, dtype=bool) for _ in range(5)]
            self.has_aux = False
            self.has_ops = False
        if needs_aux and not self.has_aux:
            self.draw_aux = np.empty((self.rows, self.cols))
            self.aux_b = np.empty((self.cols, self.rows))
            self.has_aux = True
        if needs_ops and not self.has_ops:
            self.draw_op = np.empty((self.rows, self.cols), dtype=np.int8)
            self.op_b = np.empty((self.cols, self.rows), dtype=np.int8)
            self.has_ops = True


class _TickStream:
    """A buffered per-replicate tick stream for the generalized loop.

    Wrapped clocks deliver *fewer* ticks than requested, and the RNG
    draws a clock consumes depend on the request-size sequence — so bit
    identity requires replaying the scalar loop's exact sequence:
    ``min(DEFAULT_BATCH_SIZE, event_cap - delivered_so_far)``.  The
    scalar loop processes each delivered batch fully before requesting
    again, so the sequence depends only on cumulative *delivered* ticks
    — which makes buffering safe: prefetching ahead of lockstep
    consumption issues the identical requests, just earlier.  (A
    replicate that stops mid-buffer simply discards the surplus, exactly
    like the scalar loop discards the rest of its batch.)
    """

    __slots__ = (
        "clock",
        "event_cap",
        "received",
        "buffered",
        "chunks",
        "pos",
        "exhausted",
    )

    def __init__(self, clock: object, event_cap: int) -> None:
        self.clock = clock
        self.event_cap = event_cap
        self.received = 0
        self.buffered = 0
        self.chunks: "list[tuple[np.ndarray, np.ndarray]]" = []
        self.pos = 0  # consumed prefix of chunks[0]
        self.exhausted = False

    def prefetch(self, k: int) -> int:
        """Buffer up to ``k`` ticks; returns how many are available.

        A return below ``k`` means the clock is exhausted (an empty
        delivery, or the event cap consumed) — and ``0`` means this
        replicate has no next event at all.
        """
        while self.buffered < k and not self.exhausted:
            q = min(DEFAULT_BATCH_SIZE, self.event_cap - self.received)
            if q <= 0:
                self.exhausted = True
                break
            times, edge_ids = self.clock.next_batch(q)
            if len(times) == 0:
                self.exhausted = True
                break
            self.chunks.append((times, edge_ids))
            self.received += len(times)
            self.buffered += len(times)
        return self.buffered if self.buffered < k else k

    def take_into(self, k: int, out_t: np.ndarray, out_e: np.ndarray) -> None:
        """Pop exactly ``k`` buffered ticks (prefetch must cover them)."""
        filled = 0
        while filled < k:
            times, edge_ids = self.chunks[0]
            take = min(len(times) - self.pos, k - filled)
            out_t[filled : filled + take] = times[self.pos : self.pos + take]
            out_e[filled : filled + take] = edge_ids[self.pos : self.pos + take]
            self.pos += take
            filled += take
            self.buffered -= take
            if self.pos == len(times):
                self.chunks.pop(0)
                self.pos = 0


class VectorizedBatchKernel(SimulationKernel):
    """Advance same-configuration replicates in numpy lockstep."""

    name = "vectorized"

    def __init__(self) -> None:
        self._scratch = _Scratch()

    def supports(self, spec: "ReplicateSpec") -> bool:
        return bool(_spec_eligibility(spec))

    def execute(self, specs: "Sequence[ReplicateSpec]") -> "list[RunResult]":
        """Run a batch of same-configuration specs in lockstep.

        Callers (the dispatcher) group specs by configuration; this
        method only splits oversized groups, which cannot affect results
        because every replicate's streams and arithmetic are independent
        of group composition.
        """
        results: "list[RunResult]" = []
        for start in range(0, len(specs), MAX_GROUP_SIZE):
            results.extend(self._run_group(specs[start : start + MAX_GROUP_SIZE]))
        return results

    # -- group execution -------------------------------------------------

    def _run_group(self, specs: "Sequence[ReplicateSpec]") -> "list[RunResult]":
        update = _resolve_update(specs[0].algorithm_factory())
        if update is None:
            raise SimulationError(
                "VectorizedBatchKernel received an ineligible spec; "
                "dispatch through repro.engine.kernels.execute_specs"
            )
        if getattr(update, "masked", False) or isinstance(
            specs[0].clock_factory, _WRAPPED_CLOCK_FACTORIES
        ):
            return self._run_group_general(specs, update)
        return self._run_group_dense(specs, update)

    def _run_group_dense(
        self, specs: "Sequence[ReplicateSpec]", update: Any
    ) -> "list[RunResult]":
        graph = specs[0].graph
        run_kwargs = dict(specs[0].run_kwargs)
        (max_time, max_events, target_ratio, thresholds, divergence_ratio) = (
            _parse_run_kwargs(run_kwargs)
        )
        if graph.n_edges == 0:
            raise SimulationError("cannot simulate on a graph with no edges")
        event_cap = max_events if max_events is not None else DEFAULT_MAX_EVENTS
        n = graph.n_vertices
        inv_n = 1.0 / n

        results: "list[RunResult | None]" = [None] * len(specs)
        members = self._setup_members(specs, graph, thresholds, results)
        if not members:
            return results  # type: ignore[return-value]

        # --- dense lockstep state ---
        # Row i always belongs to ``live[i]``; a replicate that stops is
        # finalized on the spot and *compacted out* of every array, so
        # the hot loop only ever touches contiguous full-width vectors
        # (no ``[rows]`` gather/scatter indirection on any step).
        live = list(members)
        n_live = len(live)
        X = np.stack([member.values for member in live])  # (A, n) C-order
        flat = X.reshape(-1)  # shared view; rebuilt after compaction
        total = np.array([member.sum_0 for member in live])
        square_sum = np.array([member.square_sum_0 for member in live])
        variance_0 = np.array([member.variance_0 for member in live])
        # Deduped thresholds in the scalar loop's tracking order
        # (descending), as absolute variances per replicate.  Stored
        # (threshold, replicate) so each threshold's slice is contiguous.
        tracked_thresholds = sorted(live[0].crossings, reverse=True)
        n_thresholds = len(tracked_thresholds)
        thr_abs = np.outer(np.asarray(tracked_thresholds), variance_0)
        first_below = np.full((n_thresholds, n_live), np.nan)
        below_unset = np.ones((n_thresholds, n_live), dtype=bool)
        below_active = [True] * n_thresholds
        last_above = np.zeros((n_thresholds, n_live))
        target_abs = None if target_ratio is None else target_ratio * variance_0
        divergence_abs = (
            None if divergence_ratio is None else divergence_ratio * variance_0
        )
        check_stop = (
            target_abs is not None
            or divergence_abs is not None
            or max_time is not None
        )
        clocks = [member.clock for member in live]
        rngs = [member.rng for member in live]

        end_u = np.ascontiguousarray(graph.edges[:, 0]).astype(np.int64)
        end_v = np.ascontiguousarray(graph.edges[:, 1]).astype(np.int64)

        def finalize(i: int, duration: float, n_events: int, label: str) -> None:
            """Emit row ``i``'s RunResult (reads the *current* arrays)."""
            member = live[i]
            final = X[i].copy()
            tracked = sorted(member.crossings.values(), key=lambda c: -c.threshold)
            for ki, record in enumerate(tracked):
                below_at = first_below[ki, i]
                record.first_below = (None if np.isnan(below_at) else float(below_at))
                record.last_above = float(last_above[ki, i])
            results[member.position] = RunResult(
                values=final,
                duration=float(duration),
                n_events=int(n_events),
                n_updates=int(n_events),
                variance_initial=member.variance_0,
                variance_final=float(np.var(final)),
                sum_initial=member.sum_0,
                sum_final=float(final.sum()),
                crossings=member.crossings,
                stopped_by=label,
            )

        scr = self._scratch
        scr.ensure(n_live, min(DEFAULT_BATCH_SIZE, event_cap), update.needs_rng)

        # All running replicates share one global event counter (eligible
        # algorithms update on every tick), so the periodic exact
        # recompute hits the same per-replicate update counts the scalar
        # loop would.
        events_done = 0
        next_recompute = DEFAULT_RECOMPUTE_EVERY
        last_t = np.zeros(n_live)
        while live and events_done < event_cap:
            A = len(live)
            k = min(DEFAULT_BATCH_SIZE, event_cap - events_done)
            draw_t = scr.draw_t
            draw_fu = scr.draw_fu
            draw_fv = scr.draw_fv
            for i, clock in enumerate(clocks):
                times, edge_ids = clock.next_batch(k)
                draw_t[i, :k] = times
                # Resolve every tick's endpoints into flat positions in
                # ``X.reshape(-1)`` up front (row offset baked in), so
                # the hot loop does no endpoint lookups at all.
                off = i * n
                np.add(end_u.take(edge_ids), off, out=draw_fu[i, :k])
                np.add(end_v.take(edge_ids), off, out=draw_fv[i, :k])
            times_v = scr.times_b[:k, :A]
            fu_v = scr.fu_b[:k, :A]
            fv_v = scr.fv_b[:k, :A]
            _transpose_into(times_v, draw_t[:A, :k])
            _transpose_into(fu_v, draw_fu[:A, :k])
            _transpose_into(fv_v, draw_fv[:A, :k])
            if update.needs_rng:
                update.fill(rngs, k, scr.draw_aux)
                aux_v = scr.aux_b[:k, :A]
                _transpose_into(aux_v, scr.draw_aux[:A, :k])
            else:
                aux_v = None
            xu, xv, nu, nv, tmp, tmp2, s1, s2, mean, var = (b[:A] for b in scr.f64_bufs)
            b1, b2, b3, b4 = (b[:A] for b in scr.bool_bufs[:4])
            j = 0
            while j < k:
                t = times_v[j]
                fu = fu_v[j]
                fv = fv_v[j]
                flat.take(fu, out=xu)
                flat.take(fv, out=xv)
                new_u, new_v = update.apply(
                    xu,
                    xv,
                    None if aux_v is None else aux_v[j],
                    nu,
                    nv,
                    tmp,
                    tmp2,
                )
                # Exact association order of the scalar loop's deltas:
                # ((nu^2 + nv^2) - xu^2) - xv^2 and ((nu+nv) - xu) - xv.
                if new_u is new_v:
                    np.multiply(new_u, new_u, out=s1)
                    np.add(s1, s1, out=s1)
                else:
                    np.multiply(new_u, new_u, out=s1)
                    np.multiply(new_v, new_v, out=s2)
                    np.add(s1, s2, out=s1)
                np.multiply(xu, xu, out=s2)
                np.subtract(s1, s2, out=s1)
                np.multiply(xv, xv, out=s2)
                np.subtract(s1, s2, out=s1)
                square_sum += s1
                np.add(new_u, new_v, out=s2)
                np.subtract(s2, xu, out=s2)
                np.subtract(s2, xv, out=s2)
                total += s2
                flat[fu] = new_u
                flat[fv] = new_v
                n_updates = events_done + j + 1
                if n_updates >= next_recompute:
                    # Same per-row reductions the scalar refresh uses
                    # (row.sum() / row @ row on a contiguous vector), on
                    # the same global update boundary.
                    for i in range(A):
                        row = X[i]
                        total[i] = row.sum()
                        square_sum[i] = row @ row
                    next_recompute = n_updates + DEFAULT_RECOMPUTE_EVERY
                np.multiply(total, inv_n, out=mean)
                np.multiply(square_sum, inv_n, out=var)
                np.multiply(mean, mean, out=mean)
                np.subtract(var, mean, out=var)
                np.maximum(var, 0.0, out=var)  # undershoot clamp (NaN passes)
                for ki in range(n_thresholds):
                    np.greater(var, thr_abs[ki], out=b1)
                    np.copyto(last_above[ki], t, where=b1)
                    if below_active[ki]:
                        # The scalar loop's elif: record the first
                        # below-tick only while unset (NaN variance
                        # counts as below); once every row has crossed,
                        # this branch retires for the threshold.
                        unset = below_unset[ki]
                        np.logical_not(b1, out=b2)
                        np.logical_and(b2, unset, out=b2)
                        np.copyto(first_below[ki], t, where=b2)
                        np.logical_and(unset, b1, out=unset)
                        # Retirement is an optimization, not semantics:
                        # polling every 256 updates just delays dropping
                        # to the cheap above-only path.
                        if not (n_updates & 255):
                            below_active[ki] = bool(unset.any())
                if check_stop:
                    # Fused pre-check: one union mask, one .any() per
                    # step.  ``~(v <= d)`` is the scalar divergence test
                    # ``v > d or v != v`` in a single comparison (NaN
                    # fails ``<=``).  Priority labels are resolved in
                    # the rare branch, in the scalar order: target
                    # first, then divergence, then the time budget.
                    stop = None
                    if target_abs is not None:
                        np.less_equal(var, target_abs, out=b3)
                        stop = b3
                    if divergence_abs is not None:
                        buf = b3 if stop is None else b4
                        np.less_equal(var, divergence_abs, out=buf)
                        np.logical_not(buf, out=buf)
                        stop = (
                            buf
                            if stop is None
                            else np.logical_or(stop, buf, out=stop)
                        )
                    if max_time is not None:
                        buf = b3 if stop is None else b4
                        np.greater_equal(t, max_time, out=buf)
                        stop = (
                            buf
                            if stop is None
                            else np.logical_or(stop, buf, out=stop)
                        )
                    if stop.any():
                        hit = (var <= target_abs if target_abs is not None else None)
                        diverged = (
                            ~(var <= divergence_abs)
                            if divergence_abs is not None
                            else None
                        )
                        for i in np.flatnonzero(stop):
                            if hit is not None and hit[i]:
                                label = "target_ratio"
                            elif diverged is not None and diverged[i]:
                                label = "diverged"
                            else:
                                label = "max_time"
                            finalize(i, t[i], n_updates, label)
                        keep = ~stop
                        kept = np.flatnonzero(keep)
                        live = [live[i] for i in kept]
                        if not live:
                            break
                        clocks = [clocks[i] for i in kept]
                        rngs = [rngs[i] for i in kept]
                        A = kept.size
                        X = X[keep]
                        flat = X.reshape(-1)
                        total = total[keep]
                        square_sum = square_sum[keep]
                        thr_abs = np.ascontiguousarray(thr_abs[:, keep])
                        first_below = np.ascontiguousarray(first_below[:, keep])
                        below_unset = np.ascontiguousarray(below_unset[:, keep])
                        last_above = np.ascontiguousarray(last_above[:, keep])
                        below_active = [
                            bool(below_unset[ki].any())
                            for ki in range(n_thresholds)
                        ]
                        if target_abs is not None:
                            target_abs = target_abs[keep]
                        if divergence_abs is not None:
                            divergence_abs = divergence_abs[keep]
                        # Repack the rest of the batch into the leading
                        # columns (the fancy-indexed copies materialize
                        # before landing back in the shared buffers) and
                        # re-bake the flat indices' row offsets for the
                        # new, denser row numbering.
                        shift = (np.arange(A, dtype=np.int64) - kept) * n
                        packed_t = times_v[:, kept]
                        packed_fu = fu_v[:, kept] + shift
                        packed_fv = fv_v[:, kept] + shift
                        times_v = scr.times_b[:k, :A]
                        fu_v = scr.fu_b[:k, :A]
                        fv_v = scr.fv_b[:k, :A]
                        times_v[:] = packed_t
                        fu_v[:] = packed_fu
                        fv_v[:] = packed_fv
                        if aux_v is not None:
                            packed_a = aux_v[:, kept]
                            aux_v = scr.aux_b[:k, :A]
                            aux_v[:] = packed_a
                        (xu, xv, nu, nv, tmp, tmp2, s1, s2, mean, var) = (
                            b[:A] for b in scr.f64_bufs
                        )
                        b1, b2, b3, b4 = (b[:A] for b in scr.bool_bufs[:4])
                j += 1
            events_done += k
            if live:
                # Copy, not view: the shared batch buffer is overwritten
                # by the next batch, and survivors report this time.
                last_t = times_v[k - 1].copy()

        # Event budget exhausted: finalize the survivors at their last
        # event's time, exactly as the scalar loop reports them.
        for i in range(len(live)):
            finalize(i, last_t[i], events_done, "max_events")
        return results  # type: ignore[return-value]

    def _run_group_general(
        self, specs: "Sequence[ReplicateSpec]", update: Any
    ) -> "list[RunResult]":
        """The generalized lockstep loop: masked updates, wrapped clocks.

        Differences from the dense loop, each forced by a scalar-loop
        semantic the dense loop's shortcuts assume away:

        * **Per-row update counts.**  Algorithm A updates on *some*
          ticks, so ``n_updates`` (and the exact-recompute boundary it
          drives) is per replicate, not the shared event counter.
        * **Per-row variance cache.**  The scalar loop only recomputes
          the variance on an update; no-op ticks compare thresholds and
          stop rules against the *stale* value — including the initial
          ``np.var`` result before the first update, which the
          incremental formula does not reproduce to the last ulp.
        * **Masked statistics.**  No-op rows must leave ``T``/``S``
          untouched (adding an "exactly 0.0" delta is not a no-op in
          floating point) and write their own values back unchanged, so
          every masked accumulation goes through ufunc ``where=``.
        * **Buffered tick streams.**  Wrapped clocks deliver fewer ticks
          than requested, so replicates drift apart in buffered ticks;
          ``_TickStream`` replays the scalar request sequence per row and
          the loop advances by the widest sub-batch every live row can
          cover, finalizing rows whose clock is exhausted.

        The non-convex swap itself runs as scalar Python-float
        arithmetic on its (rare) rows — one swap per epoch per replicate
        — reproducing the oracle's expression order exactly, including
        the ``oracle_means`` side-mean reads and the fixed ``(a, b)``
        write orientation.
        """
        graph = specs[0].graph
        run_kwargs = dict(specs[0].run_kwargs)
        (max_time, max_events, target_ratio, thresholds, divergence_ratio) = (
            _parse_run_kwargs(run_kwargs)
        )
        if graph.n_edges == 0:
            raise SimulationError("cannot simulate on a graph with no edges")
        event_cap = max_events if max_events is not None else DEFAULT_MAX_EVENTS
        n = graph.n_vertices
        inv_n = 1.0 / n

        masked = bool(getattr(update, "masked", False))
        if masked:
            # The scalar path validates this in Algorithm A's setup();
            # surface the same mistake with the same error here.
            agraph = update.graph
            if agraph is not graph and agraph != graph:
                raise AlgorithmError(
                    "Algorithm A was configured for a different graph than "
                    "the one it is being run on"
                )
            edge_class = update.edge_class
            epoch_length = update.epoch_length
            gain = update.gain
            oracle_means = update.oracle_means
            a_idx = update.endpoint_v1
            b_idx = update.endpoint_v2
            u_is_a = update.designated_u_is_v1
            vertices_1 = update.vertices_1
            vertices_2 = update.vertices_2

        results: "list[RunResult | None]" = [None] * len(specs)
        members = self._setup_members(specs, graph, thresholds, results)
        if not members:
            return results  # type: ignore[return-value]

        live = list(members)
        n_live = len(live)
        X = np.stack([member.values for member in live])  # (A, n) C-order
        flat = X.reshape(-1)  # shared view; rebuilt after compaction
        total = np.array([member.sum_0 for member in live])
        square_sum = np.array([member.square_sum_0 for member in live])
        variance_0 = np.array([member.variance_0 for member in live])
        # The scalar loop's persisted ``variance``: refreshed only on
        # update ticks, read (stale) by every tick's threshold and stop
        # checks.  Starts at the exact np.var result.
        var_arr = variance_0.copy()
        tracked_thresholds = sorted(live[0].crossings, reverse=True)
        n_thresholds = len(tracked_thresholds)
        thr_abs = np.outer(np.asarray(tracked_thresholds), variance_0)
        first_below = np.full((n_thresholds, n_live), np.nan)
        below_unset = np.ones((n_thresholds, n_live), dtype=bool)
        below_active = [True] * n_thresholds
        last_above = np.zeros((n_thresholds, n_live))
        target_abs = None if target_ratio is None else target_ratio * variance_0
        divergence_abs = (
            None if divergence_ratio is None else divergence_ratio * variance_0
        )
        check_stop = (
            target_abs is not None
            or divergence_abs is not None
            or max_time is not None
        )
        streams = [_TickStream(member.clock, event_cap) for member in live]
        rngs = [member.rng for member in live]
        n_upd = np.zeros(n_live, dtype=np.int64)
        next_recomp = np.full(n_live, DEFAULT_RECOMPUTE_EVERY, dtype=np.int64)
        prev_des = np.zeros(n_live, dtype=np.int64)  # designated-tick counts
        last_t = np.zeros(n_live)

        end_u = np.ascontiguousarray(graph.edges[:, 0]).astype(np.int64)
        end_v = np.ascontiguousarray(graph.edges[:, 1]).astype(np.int64)

        def finalize(i: int, duration: float, n_events: int, label: str) -> None:
            """Emit row ``i``'s RunResult (reads the *current* arrays)."""
            member = live[i]
            final = X[i].copy()
            tracked = sorted(member.crossings.values(), key=lambda c: -c.threshold)
            for ki, record in enumerate(tracked):
                below_at = first_below[ki, i]
                record.first_below = (None if np.isnan(below_at) else float(below_at))
                record.last_above = float(last_above[ki, i])
            results[member.position] = RunResult(
                values=final,
                duration=float(duration),
                n_events=int(n_events),
                n_updates=int(n_upd[i]),
                variance_initial=member.variance_0,
                variance_final=float(np.var(final)),
                sum_initial=member.sum_0,
                sum_final=float(final.sum()),
                crossings=member.crossings,
                stopped_by=label,
            )

        scr = self._scratch
        k_cap = min(DEFAULT_BATCH_SIZE, event_cap)
        scr.ensure(n_live, k_cap, update.needs_rng, needs_ops=masked)
        e_row = np.empty(k_cap, dtype=np.int64)
        des_row = np.empty(k_cap, dtype=bool)
        cum_row = np.empty(k_cap, dtype=np.int64)

        events_done = 0
        while live and events_done < event_cap:
            # --- staging: widest sub-batch every live row can cover ---
            k_want = min(DEFAULT_BATCH_SIZE, event_cap - events_done)
            avail = [stream.prefetch(k_want) for stream in streams]
            if min(avail) == 0:
                # Some clock delivered nothing and never will again: the
                # scalar loop's ``clock_exhausted`` exit, at that row's
                # last processed event.
                for i in range(len(live)):
                    if avail[i] == 0:
                        finalize(i, last_t[i], events_done, "clock_exhausted")
                kept = np.asarray(
                    [i for i, a in enumerate(avail) if a > 0], dtype=np.int64
                )
                if kept.size == 0:
                    return results  # type: ignore[return-value]
                live = [live[i] for i in kept]
                streams = [streams[i] for i in kept]
                rngs = [rngs[i] for i in kept]
                avail = [avail[i] for i in kept]
                keep = np.zeros(X.shape[0], dtype=bool)
                keep[kept] = True
                X = X[keep]
                flat = X.reshape(-1)
                total = total[keep]
                square_sum = square_sum[keep]
                var_arr = var_arr[keep]
                n_upd = n_upd[keep]
                next_recomp = next_recomp[keep]
                prev_des = prev_des[keep]
                last_t = last_t[keep]
                thr_abs = np.ascontiguousarray(thr_abs[:, keep])
                first_below = np.ascontiguousarray(first_below[:, keep])
                below_unset = np.ascontiguousarray(below_unset[:, keep])
                last_above = np.ascontiguousarray(last_above[:, keep])
                below_active = [
                    bool(below_unset[ki].any()) for ki in range(n_thresholds)
                ]
                if target_abs is not None:
                    target_abs = target_abs[keep]
                if divergence_abs is not None:
                    divergence_abs = divergence_abs[keep]
            A = len(live)
            k = min(avail)
            draw_t = scr.draw_t
            draw_fu = scr.draw_fu
            draw_fv = scr.draw_fv
            for i, stream in enumerate(streams):
                stream.take_into(k, draw_t[i, :k], e_row[:k])
                off = i * n
                np.add(end_u.take(e_row[:k]), off, out=draw_fu[i, :k])
                np.add(end_v.take(e_row[:k]), off, out=draw_fv[i, :k])
                if masked:
                    # Per-tick op codes: the edge class, with designated
                    # ticks resolved against this row's running epoch
                    # phase (1-based count of designated ticks mod L).
                    op_row = scr.draw_op[i, :k]
                    edge_class.take(e_row[:k], out=op_row)
                    np.equal(op_row, 2, out=des_row[:k])
                    des_k = des_row[:k]
                    if des_k.any():
                        np.cumsum(des_k, out=cum_row[:k])
                        cum_k = cum_row[:k]
                        cum_k += prev_des[i]
                        prev_des[i] = cum_k[k - 1]
                        np.mod(cum_k, epoch_length, out=cum_k)
                        # Silence designated ticks off the epoch boundary.
                        op_row[des_k & (cum_k != 0)] = 0
            times_v = scr.times_b[:k, :A]
            fu_v = scr.fu_b[:k, :A]
            fv_v = scr.fv_b[:k, :A]
            _transpose_into(times_v, draw_t[:A, :k])
            _transpose_into(fu_v, draw_fu[:A, :k])
            _transpose_into(fv_v, draw_fv[:A, :k])
            if masked:
                op_v = scr.op_b[:k, :A]
                _transpose_into(op_v, scr.draw_op[:A, :k])
            else:
                op_v = None
            if update.needs_rng:
                update.fill(rngs, k, scr.draw_aux)
                aux_v = scr.aux_b[:k, :A]
                _transpose_into(aux_v, scr.draw_aux[:A, :k])
            else:
                aux_v = None
            xu, xv, nu, nv, tmp, tmp2, s1, s2, mean, var = (b[:A] for b in scr.f64_bufs)
            b1, b2, b3, b4, b5 = (b[:A] for b in scr.bool_bufs)
            j = 0
            while j < k:
                t = times_v[j]
                fu = fu_v[j]
                fv = fv_v[j]
                flat.take(fu, out=xu)
                flat.take(fv, out=xv)
                step_no = events_done + j + 1
                if masked:
                    op = op_v[j]
                    # Vanilla rows: both endpoints move to their mean.
                    np.add(xu, xv, out=nu)
                    np.multiply(nu, 0.5, out=nu)
                    np.copyto(nv, nu)
                    # No-op rows write their own values back (bitwise
                    # no-op) so one unmasked scatter serves all rows.
                    np.equal(op, 0, out=b2)
                    np.copyto(nu, xu, where=b2)
                    np.copyto(nv, xv, where=b2)
                    np.equal(op, 2, out=b2)
                    if b2.any():
                        for i in np.flatnonzero(b2):
                            # The non-convex swap, in the scalar oracle's
                            # exact Python-float expression order.
                            row = X[i]
                            if oracle_means:
                                delta = float(
                                    row[vertices_2].mean() - row[vertices_1].mean()
                                )
                            else:
                                delta = float(row[b_idx] - row[a_idx])
                            transfer = gain * delta
                            new_a = float(row[a_idx]) + transfer
                            new_b = float(row[b_idx]) - transfer
                            if u_is_a:
                                nu[i] = new_a
                                nv[i] = new_b
                            else:
                                nu[i] = new_b
                                nv[i] = new_a
                    np.not_equal(op, 0, out=b1)
                    upd = b1
                    new_u = nu
                    new_v = nv
                else:
                    upd = None
                    new_u, new_v = update.apply(
                        xu,
                        xv,
                        None if aux_v is None else aux_v[j],
                        nu,
                        nv,
                        tmp,
                        tmp2,
                    )
                # Exact association order of the scalar loop's deltas:
                # ((nu^2 + nv^2) - xu^2) - xv^2 and ((nu+nv) - xu) - xv.
                if new_u is new_v:
                    np.multiply(new_u, new_u, out=s1)
                    np.add(s1, s1, out=s1)
                else:
                    np.multiply(new_u, new_u, out=s1)
                    np.multiply(new_v, new_v, out=s2)
                    np.add(s1, s2, out=s1)
                np.multiply(xu, xu, out=s2)
                np.subtract(s1, s2, out=s1)
                np.multiply(xv, xv, out=s2)
                np.subtract(s1, s2, out=s1)
                np.add(new_u, new_v, out=tmp)
                np.subtract(tmp, xu, out=tmp)
                np.subtract(tmp, xv, out=tmp)
                if upd is None:
                    square_sum += s1
                    total += tmp
                    np.add(n_upd, 1, out=n_upd)
                else:
                    # ufunc where=, not multiply-by-mask: a no-op row's
                    # "zero" delta is not exactly 0.0 after cancellation,
                    # and 0.0 * inf/nan would poison the sums.
                    np.add(square_sum, s1, out=square_sum, where=upd)
                    np.add(total, tmp, out=total, where=upd)
                    np.add(n_upd, upd, out=n_upd)
                flat[fu] = new_u
                flat[fv] = new_v
                # Per-row exact recompute on the scalar loop's per-row
                # update boundaries (rows cross at different times).
                np.greater_equal(n_upd, next_recomp, out=b3)
                if b3.any():
                    for i in np.flatnonzero(b3):
                        row = X[i]
                        total[i] = row.sum()
                        square_sum[i] = row @ row
                        next_recomp[i] = n_upd[i] + DEFAULT_RECOMPUTE_EVERY
                np.multiply(total, inv_n, out=mean)
                np.multiply(square_sum, inv_n, out=var)
                np.multiply(mean, mean, out=mean)
                np.subtract(var, mean, out=var)
                np.maximum(var, 0.0, out=var)  # undershoot clamp (NaN passes)
                if upd is None:
                    np.copyto(var_arr, var)
                else:
                    np.copyto(var_arr, var, where=upd)
                for ki in range(n_thresholds):
                    np.greater(var_arr, thr_abs[ki], out=b3)
                    np.copyto(last_above[ki], t, where=b3)
                    if below_active[ki]:
                        unset = below_unset[ki]
                        np.logical_not(b3, out=b4)
                        np.logical_and(b4, unset, out=b4)
                        np.copyto(first_below[ki], t, where=b4)
                        np.logical_and(unset, b3, out=unset)
                        if not (step_no & 255):
                            below_active[ki] = bool(unset.any())
                if check_stop:
                    stop = None
                    if target_abs is not None:
                        np.less_equal(var_arr, target_abs, out=b3)
                        stop = b3
                    if divergence_abs is not None:
                        buf = b3 if stop is None else b4
                        np.less_equal(var_arr, divergence_abs, out=buf)
                        np.logical_not(buf, out=buf)
                        stop = (
                            buf
                            if stop is None
                            else np.logical_or(stop, buf, out=stop)
                        )
                    if max_time is not None:
                        buf = b3 if stop is None else b4
                        np.greater_equal(t, max_time, out=buf)
                        stop = (
                            buf
                            if stop is None
                            else np.logical_or(stop, buf, out=stop)
                        )
                    if stop.any():
                        hit = (
                            var_arr <= target_abs
                            if target_abs is not None
                            else None
                        )
                        diverged = (
                            ~(var_arr <= divergence_abs)
                            if divergence_abs is not None
                            else None
                        )
                        for i in np.flatnonzero(stop):
                            if hit is not None and hit[i]:
                                label = "target_ratio"
                            elif diverged is not None and diverged[i]:
                                label = "diverged"
                            else:
                                label = "max_time"
                            finalize(i, t[i], step_no, label)
                        keep = ~stop
                        kept = np.flatnonzero(keep)
                        live = [live[i] for i in kept]
                        if not live:
                            break
                        streams = [streams[i] for i in kept]
                        rngs = [rngs[i] for i in kept]
                        A = kept.size
                        X = X[keep]
                        flat = X.reshape(-1)
                        total = total[keep]
                        square_sum = square_sum[keep]
                        var_arr = var_arr[keep]
                        n_upd = n_upd[keep]
                        next_recomp = next_recomp[keep]
                        prev_des = prev_des[keep]
                        thr_abs = np.ascontiguousarray(thr_abs[:, keep])
                        first_below = np.ascontiguousarray(first_below[:, keep])
                        below_unset = np.ascontiguousarray(below_unset[:, keep])
                        last_above = np.ascontiguousarray(last_above[:, keep])
                        below_active = [
                            bool(below_unset[ki].any())
                            for ki in range(n_thresholds)
                        ]
                        if target_abs is not None:
                            target_abs = target_abs[keep]
                        if divergence_abs is not None:
                            divergence_abs = divergence_abs[keep]
                        # Repack the rest of the batch into the leading
                        # columns and re-bake the flat indices' row
                        # offsets for the denser row numbering.
                        shift = (np.arange(A, dtype=np.int64) - kept) * n
                        packed_t = times_v[:, kept]
                        packed_fu = fu_v[:, kept] + shift
                        packed_fv = fv_v[:, kept] + shift
                        times_v = scr.times_b[:k, :A]
                        fu_v = scr.fu_b[:k, :A]
                        fv_v = scr.fv_b[:k, :A]
                        times_v[:] = packed_t
                        fu_v[:] = packed_fu
                        fv_v[:] = packed_fv
                        if op_v is not None:
                            packed_op = op_v[:, kept]
                            op_v = scr.op_b[:k, :A]
                            op_v[:] = packed_op
                        if aux_v is not None:
                            packed_a = aux_v[:, kept]
                            aux_v = scr.aux_b[:k, :A]
                            aux_v[:] = packed_a
                        (xu, xv, nu, nv, tmp, tmp2, s1, s2, mean, var) = (
                            b[:A] for b in scr.f64_bufs
                        )
                        b1, b2, b3, b4, b5 = (b[:A] for b in scr.bool_bufs)
                j += 1
            events_done += k
            if live:
                # Copy, not view: the shared batch buffer is overwritten
                # by the next batch, and survivors report this time.
                last_t = times_v[k - 1].copy()

        # Event budget exhausted: finalize the survivors at their last
        # event's time, exactly as the scalar loop reports them.
        for i in range(len(live)):
            finalize(i, last_t[i], events_done, "max_events")
        return results  # type: ignore[return-value]

    def _setup_members(
        self,
        specs: "Sequence[ReplicateSpec]",
        graph: Any,
        thresholds: "Sequence[float]",
        results: "list[RunResult | None]",
    ) -> "list[_Member]":
        """Per-replicate setup, mirroring the scalar path draw for draw.

        Replicates whose workload is already averaged short-circuit to
        their zero-variance result here (never entering lockstep),
        exactly as the scalar loop returns before its first event.
        """
        members: "list[_Member]" = []
        for position, spec in enumerate(specs):
            clock_seq, workload_seq, algorithm_seq = replicate_substreams(spec)
            clock_rng = np.random.default_rng(clock_seq)
            if callable(spec.initial_values):
                workload_rng = np.random.default_rng(workload_seq)
                raw_values = spec.initial_values(workload_rng)
            else:
                raw_values = spec.initial_values
            values = np.asarray(raw_values, dtype=np.float64)
            if values.shape != (graph.n_vertices,):
                raise SimulationError(
                    f"initial_values must have shape ({graph.n_vertices},), "
                    f"got {values.shape}"
                )
            values = values.copy()
            member = _Member(position)
            member.values = values
            member.variance_0 = float(np.var(values))
            member.sum_0 = float(values.sum())
            member.crossings = {
                float(thr): Crossing(threshold=float(thr)) for thr in thresholds
            }
            if member.variance_0 == 0.0:
                results[position] = RunResult(
                    values=values,
                    duration=0.0,
                    n_events=0,
                    n_updates=0,
                    variance_initial=0.0,
                    variance_final=0.0,
                    sum_initial=member.sum_0,
                    sum_final=member.sum_0,
                    crossings=member.crossings,
                    stopped_by="target_ratio",
                )
                continue
            member.square_sum_0 = float(values @ values)
            if spec.clock_factory is not None:
                member.clock = spec.clock_factory(clock_rng)
            else:
                member.clock = PoissonEdgeClocks(graph.n_edges, seed=clock_rng)
            clock_edges = getattr(member.clock, "n_edges", None)
            if clock_edges != graph.n_edges:
                raise SimulationError(
                    f"clock models {clock_edges} edges but the "
                    f"graph has {graph.n_edges}"
                )
            member.rng = np.random.default_rng(algorithm_seq)
            members.append(member)
        return members


def _parse_run_kwargs(
    run_kwargs: dict,
) -> "tuple[float | None, int | None, float | None, Sequence[float], float | None]":
    """Validate run kwargs with the scalar loop's exact rules/messages."""
    max_time = run_kwargs.get("max_time")
    max_events = run_kwargs.get("max_events")
    target_ratio = run_kwargs.get("target_ratio")
    thresholds = run_kwargs.get("thresholds", (math.e**-2,))
    divergence_ratio = run_kwargs.get("divergence_ratio", 1e9)
    if max_time is None and max_events is None and target_ratio is None:
        raise SimulationError(
            "provide at least one of max_time, max_events, target_ratio"
        )
    if max_time is not None and max_time <= 0:
        raise SimulationError(f"max_time must be positive, got {max_time}")
    if max_events is not None and max_events < 1:
        raise SimulationError(f"max_events must be positive, got {max_events}")
    if target_ratio is not None and target_ratio <= 0:
        raise SimulationError(f"target_ratio must be positive, got {target_ratio}")
    for threshold in thresholds:
        if threshold <= 0:
            raise SimulationError(f"thresholds must be positive, got {threshold}")
    return max_time, max_events, target_ratio, thresholds, divergence_ratio

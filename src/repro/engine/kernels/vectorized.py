"""The vectorized replicate-batch kernel.

Advances many replicates of **one configuration** in lockstep: the value
vectors live in a ``(n_replicates, n_nodes)`` float64 matrix and every
clock tick updates one ``(replicate, vertex)`` pair per row with a
handful of numpy gather/scatter operations, amortizing interpreter
overhead over the whole batch.  On eligible configurations this is what
turns the ~1 us/event pure-Python loop into tens of nanoseconds per
replicate-event at realistic batch widths (see
``benchmarks/results/BENCH_kernel_scaling.json``).

**Bit-identity.**  The kernel reproduces the scalar event loop's results
to the byte, not approximately.  The load-bearing facts:

* Each replicate gets its *own* clock object, built exactly as the
  scalar path builds it (same factory, same derived clock substream), and
  ``next_batch`` is called with the same batch-size sequence the scalar
  loop uses — so every replicate sees the identical event stream.  A
  replicate that stops mid-batch simply discards the surplus draws, just
  like the scalar loop does.
* The incremental ``T``/``S`` statistics are updated with the exact
  floating-point expression (and association order) of the scalar loop,
  refreshed from scratch on the same global update boundaries with the
  same per-row ``row.sum()`` / ``row @ row`` reductions.
* Per-tick algorithm randomness (``RandomConvexGossip``'s mixing weight)
  is pre-drawn per batch from each replicate's algorithm generator;
  numpy's ``Generator.uniform(size=k)`` consumes the bit stream exactly
  as ``k`` sequential scalar draws do.
* Eligible algorithms update on **every** tick, so all running
  replicates share one global event counter — what makes lockstep (and
  the shared recompute boundary) valid in the first place.

**Memory discipline.**  The hot loop never allocates: per-step
arithmetic lands in a reusable scratch arena (``out=`` everywhere), and
the big per-batch clock buffers are kept warm across batches and groups
— a fresh 64MB allocation costs more in page faults than the compute it
serves.  Batch draws are staged row-per-replicate and then transposed
with a cache-blocked kernel so that every step reads contiguous slices.

**Eligibility.**  A spec vectorizes when its algorithm is exactly one of
the convex-class implementations registered in ``_UPDATE_BUILDERS``
(exact type match — a subclass overriding ``on_tick`` must not silently
take the fast path), its clock is the standard Poisson model (default or
:class:`~repro.clocks.poisson.PoissonClockFactory`), and its run kwargs
carry no recorder and no unknown keys.  Everything else falls back to
the scalar kernel.  ``docs/kernels.md`` walks through the rules.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Callable, Sequence

import numpy as np

from repro.algorithms.convex import ConvexGossip, RandomConvexGossip
from repro.algorithms.vanilla import VanillaGossip
from repro.clocks.poisson import PoissonClockFactory, PoissonEdgeClocks
from repro.engine.kernels.base import SimulationKernel, replicate_substreams
from repro.engine.results import Crossing, RunResult
from repro.engine.simulator import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_MAX_EVENTS,
    DEFAULT_RECOMPUTE_EVERY,
)
from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.engine.backends import ReplicateSpec

#: Largest replicate batch advanced as one lockstep group; bigger groups
#: are split (grouping never affects results, only memory: the per-batch
#: clock buffers are ``group x DEFAULT_BATCH_SIZE`` float64).
MAX_GROUP_SIZE = 2048

#: run() kwargs the lockstep loop implements; anything else disqualifies
#: the spec (the scalar kernel is the one that knows how to reject it).
_SUPPORTED_RUN_KWARGS = frozenset(
    {
        "max_time",
        "max_events",
        "target_ratio",
        "thresholds",
        "recorder",
        "divergence_ratio",
    }
)

_TILE_ROWS = 64
_TILE_COLS = 2048


def _transpose_into(dst: np.ndarray, src: np.ndarray) -> None:
    """Cache-blocked ``dst[:] = src.T``.

    A naive strided transpose walks one page per element and thrashes
    the TLB (~6x slower at 1024x8192 measured); small tiles keep both
    sides' working sets cache-resident.
    """
    n_rows, n_cols = src.shape
    for i0 in range(0, n_rows, _TILE_ROWS):
        s = src[i0 : i0 + _TILE_ROWS]
        d = dst[:, i0 : i0 + _TILE_ROWS]
        for j0 in range(0, n_cols, _TILE_COLS):
            d[j0 : j0 + _TILE_COLS] = s[:, j0 : j0 + _TILE_COLS].T


class _VanillaUpdate:
    """``x_u, x_v <- (x_u + x_v) / 2``, vectorized across replicates.

    Returns the *same* buffer twice; the caller exploits the identity to
    skip one multiply in the square-sum delta.
    """

    needs_rng = False

    def apply(
        self,
        x_u: np.ndarray,
        x_v: np.ndarray,
        aux: "np.ndarray | None",
        out_u: np.ndarray,
        out_v: np.ndarray,
        tmp: np.ndarray,
        tmp2: np.ndarray,
    ) -> "tuple[np.ndarray, np.ndarray]":
        np.add(x_u, x_v, out=out_u)
        np.multiply(out_u, 0.5, out=out_u)
        return out_u, out_u


class _ConvexUpdate:
    """Fixed-``alpha`` symmetric convex update, vectorized."""

    needs_rng = False

    def __init__(self, alpha: float) -> None:
        self.alpha = alpha

    def apply(
        self,
        x_u: np.ndarray,
        x_v: np.ndarray,
        aux: "np.ndarray | None",
        out_u: np.ndarray,
        out_v: np.ndarray,
        tmp: np.ndarray,
        tmp2: np.ndarray,
    ) -> "tuple[np.ndarray, np.ndarray]":
        a = self.alpha
        b = 1.0 - a
        np.multiply(x_u, a, out=out_u)
        np.multiply(x_v, b, out=tmp)
        np.add(out_u, tmp, out=out_u)  # a*x_u + b*x_v
        np.multiply(x_v, a, out=out_v)
        np.multiply(x_u, b, out=tmp)
        np.add(out_v, tmp, out=out_v)  # a*x_v + b*x_u
        return out_u, out_v


class _RandomConvexUpdate:
    """Per-tick ``alpha ~ U[low, high]`` convex update, vectorized.

    ``aux`` carries each replicate's pre-drawn mixing weight for the
    current tick; the batched draw consumes each algorithm generator's
    bit stream exactly as the scalar loop's per-tick scalar draws do.
    """

    needs_rng = True

    def __init__(self, low: float, high: float) -> None:
        self.low = low
        self.high = high

    def fill(
        self, rngs: "Sequence[np.random.Generator]", k: int, out: np.ndarray
    ) -> None:
        low = self.low
        high = self.high
        for i, rng in enumerate(rngs):
            out[i, :k] = rng.uniform(low, high, size=k)

    def apply(
        self,
        x_u: np.ndarray,
        x_v: np.ndarray,
        aux: np.ndarray,
        out_u: np.ndarray,
        out_v: np.ndarray,
        tmp: np.ndarray,
        tmp2: np.ndarray,
    ) -> "tuple[np.ndarray, np.ndarray]":
        np.subtract(1.0, aux, out=tmp2)  # b = 1 - a
        np.multiply(x_u, aux, out=out_u)
        np.multiply(x_v, tmp2, out=tmp)
        np.add(out_u, tmp, out=out_u)  # a*x_u + b*x_v
        np.multiply(x_v, aux, out=out_v)
        np.multiply(x_u, tmp2, out=tmp)
        np.add(out_v, tmp, out=out_v)  # a*x_v + b*x_u
        return out_u, out_v


#: Exact algorithm type -> vectorized-update builder.  Keyed by type (not
#: isinstance) on purpose: a subclass overriding ``on_tick`` must never
#: silently take the fast path with the parent's update rule.
_UPDATE_BUILDERS: "dict[type, Callable[[Any], Any]]" = {
    VanillaGossip: lambda algorithm: _VanillaUpdate(),
    ConvexGossip: lambda algorithm: _ConvexUpdate(algorithm.alpha),
    RandomConvexGossip: lambda algorithm: _RandomConvexUpdate(
        algorithm.low, algorithm.high
    ),
}


def resolve_update(algorithm: object) -> "object | None":
    """The vectorized update rule for ``algorithm`` (None = not eligible)."""
    builder = _UPDATE_BUILDERS.get(type(algorithm))
    return None if builder is None else builder(algorithm)


def eligible_run_kwargs(run_kwargs: "dict | Any") -> bool:
    """True when the run kwargs are within the lockstep loop's support."""
    if any(key not in _SUPPORTED_RUN_KWARGS for key in run_kwargs):
        return False
    return run_kwargs.get("recorder") is None


def eligible_clock_factory(clock_factory: "object | None") -> bool:
    """True for the standard Poisson clock model (default or factory)."""
    return clock_factory is None or isinstance(clock_factory, PoissonClockFactory)


class _Member:
    """One replicate's pre-lockstep state (setup mirrors the scalar path)."""

    __slots__ = (
        "position",
        "values",
        "variance_0",
        "sum_0",
        "square_sum_0",
        "crossings",
        "clock",
        "rng",
    )

    def __init__(self, position: int) -> None:
        self.position = position


class _Scratch:
    """Reusable lockstep buffers, kept warm across batches and groups.

    The big per-batch clock buffers are ~64MB at full width; allocating
    them fresh costs more in page faults than the arithmetic they feed.
    One growing arena per kernel instance amortizes that to zero after
    the first batch.  Callers slice leading views (``[:k, :A]``) so a
    shrunken group keeps using the same warm pages.
    """

    def __init__(self) -> None:
        self.rows = 0
        self.cols = 0
        self.has_aux = False

    def ensure(self, rows: int, cols: int, needs_aux: bool) -> None:
        if rows > self.rows or cols > self.cols:
            rows = max(rows, self.rows)
            cols = max(cols, self.cols)
            self.rows = rows
            self.cols = cols
            self.draw_t = np.empty((rows, cols))
            self.draw_fu = np.empty((rows, cols), dtype=np.int64)
            self.draw_fv = np.empty((rows, cols), dtype=np.int64)
            self.times_b = np.empty((cols, rows))
            self.fu_b = np.empty((cols, rows), dtype=np.int64)
            self.fv_b = np.empty((cols, rows), dtype=np.int64)
            self.f64_bufs = [np.empty(rows) for _ in range(10)]
            self.bool_bufs = [np.empty(rows, dtype=bool) for _ in range(4)]
            self.has_aux = False
        if needs_aux and not self.has_aux:
            self.draw_aux = np.empty((self.rows, self.cols))
            self.aux_b = np.empty((self.cols, self.rows))
            self.has_aux = True


class VectorizedBatchKernel(SimulationKernel):
    """Advance same-configuration replicates in numpy lockstep."""

    name = "vectorized"

    def __init__(self) -> None:
        self._scratch = _Scratch()

    def supports(self, spec: "ReplicateSpec") -> bool:
        if not eligible_run_kwargs(spec.run_kwargs):
            return False
        if not eligible_clock_factory(spec.clock_factory):
            return False
        return resolve_update(spec.algorithm_factory()) is not None

    def execute(self, specs: "Sequence[ReplicateSpec]") -> "list[RunResult]":
        """Run a batch of same-configuration specs in lockstep.

        Callers (the dispatcher) group specs by configuration; this
        method only splits oversized groups, which cannot affect results
        because every replicate's streams and arithmetic are independent
        of group composition.
        """
        results: "list[RunResult]" = []
        for start in range(0, len(specs), MAX_GROUP_SIZE):
            results.extend(self._run_group(specs[start : start + MAX_GROUP_SIZE]))
        return results

    # -- group execution -------------------------------------------------

    def _run_group(self, specs: "Sequence[ReplicateSpec]") -> "list[RunResult]":
        graph = specs[0].graph
        update = resolve_update(specs[0].algorithm_factory())
        if update is None:
            raise SimulationError(
                "VectorizedBatchKernel received an ineligible spec; "
                "dispatch through repro.engine.kernels.execute_specs"
            )
        run_kwargs = dict(specs[0].run_kwargs)
        (max_time, max_events, target_ratio, thresholds, divergence_ratio) = (
            _parse_run_kwargs(run_kwargs)
        )
        if graph.n_edges == 0:
            raise SimulationError("cannot simulate on a graph with no edges")
        event_cap = max_events if max_events is not None else DEFAULT_MAX_EVENTS
        n = graph.n_vertices
        inv_n = 1.0 / n

        results: "list[RunResult | None]" = [None] * len(specs)
        members = self._setup_members(specs, graph, thresholds, results)
        if not members:
            return results  # type: ignore[return-value]

        # --- dense lockstep state ---
        # Row i always belongs to ``live[i]``; a replicate that stops is
        # finalized on the spot and *compacted out* of every array, so
        # the hot loop only ever touches contiguous full-width vectors
        # (no ``[rows]`` gather/scatter indirection on any step).
        live = list(members)
        n_live = len(live)
        X = np.stack([member.values for member in live])  # (A, n) C-order
        flat = X.reshape(-1)  # shared view; rebuilt after compaction
        total = np.array([member.sum_0 for member in live])
        square_sum = np.array([member.square_sum_0 for member in live])
        variance_0 = np.array([member.variance_0 for member in live])
        # Deduped thresholds in the scalar loop's tracking order
        # (descending), as absolute variances per replicate.  Stored
        # (threshold, replicate) so each threshold's slice is contiguous.
        tracked_thresholds = sorted(live[0].crossings, reverse=True)
        n_thresholds = len(tracked_thresholds)
        thr_abs = np.outer(np.asarray(tracked_thresholds), variance_0)
        first_below = np.full((n_thresholds, n_live), np.nan)
        below_unset = np.ones((n_thresholds, n_live), dtype=bool)
        below_active = [True] * n_thresholds
        last_above = np.zeros((n_thresholds, n_live))
        target_abs = None if target_ratio is None else target_ratio * variance_0
        divergence_abs = (
            None if divergence_ratio is None else divergence_ratio * variance_0
        )
        check_stop = (
            target_abs is not None
            or divergence_abs is not None
            or max_time is not None
        )
        clocks = [member.clock for member in live]
        rngs = [member.rng for member in live]

        end_u = np.ascontiguousarray(graph.edges[:, 0]).astype(np.int64)
        end_v = np.ascontiguousarray(graph.edges[:, 1]).astype(np.int64)

        def finalize(i: int, duration: float, n_events: int, label: str) -> None:
            """Emit row ``i``'s RunResult (reads the *current* arrays)."""
            member = live[i]
            final = X[i].copy()
            tracked = sorted(member.crossings.values(), key=lambda c: -c.threshold)
            for ki, record in enumerate(tracked):
                below_at = first_below[ki, i]
                record.first_below = (None if np.isnan(below_at) else float(below_at))
                record.last_above = float(last_above[ki, i])
            results[member.position] = RunResult(
                values=final,
                duration=float(duration),
                n_events=int(n_events),
                n_updates=int(n_events),
                variance_initial=member.variance_0,
                variance_final=float(np.var(final)),
                sum_initial=member.sum_0,
                sum_final=float(final.sum()),
                crossings=member.crossings,
                stopped_by=label,
            )

        scr = self._scratch
        scr.ensure(n_live, min(DEFAULT_BATCH_SIZE, event_cap), update.needs_rng)

        # All running replicates share one global event counter (eligible
        # algorithms update on every tick), so the periodic exact
        # recompute hits the same per-replicate update counts the scalar
        # loop would.
        events_done = 0
        next_recompute = DEFAULT_RECOMPUTE_EVERY
        last_t = np.zeros(n_live)
        while live and events_done < event_cap:
            A = len(live)
            k = min(DEFAULT_BATCH_SIZE, event_cap - events_done)
            draw_t = scr.draw_t
            draw_fu = scr.draw_fu
            draw_fv = scr.draw_fv
            for i, clock in enumerate(clocks):
                times, edge_ids = clock.next_batch(k)
                draw_t[i, :k] = times
                # Resolve every tick's endpoints into flat positions in
                # ``X.reshape(-1)`` up front (row offset baked in), so
                # the hot loop does no endpoint lookups at all.
                off = i * n
                np.add(end_u.take(edge_ids), off, out=draw_fu[i, :k])
                np.add(end_v.take(edge_ids), off, out=draw_fv[i, :k])
            times_v = scr.times_b[:k, :A]
            fu_v = scr.fu_b[:k, :A]
            fv_v = scr.fv_b[:k, :A]
            _transpose_into(times_v, draw_t[:A, :k])
            _transpose_into(fu_v, draw_fu[:A, :k])
            _transpose_into(fv_v, draw_fv[:A, :k])
            if update.needs_rng:
                update.fill(rngs, k, scr.draw_aux)
                aux_v = scr.aux_b[:k, :A]
                _transpose_into(aux_v, scr.draw_aux[:A, :k])
            else:
                aux_v = None
            xu, xv, nu, nv, tmp, tmp2, s1, s2, mean, var = (b[:A] for b in scr.f64_bufs)
            b1, b2, b3, b4 = (b[:A] for b in scr.bool_bufs)
            j = 0
            while j < k:
                t = times_v[j]
                fu = fu_v[j]
                fv = fv_v[j]
                flat.take(fu, out=xu)
                flat.take(fv, out=xv)
                new_u, new_v = update.apply(
                    xu,
                    xv,
                    None if aux_v is None else aux_v[j],
                    nu,
                    nv,
                    tmp,
                    tmp2,
                )
                # Exact association order of the scalar loop's deltas:
                # ((nu^2 + nv^2) - xu^2) - xv^2 and ((nu+nv) - xu) - xv.
                if new_u is new_v:
                    np.multiply(new_u, new_u, out=s1)
                    np.add(s1, s1, out=s1)
                else:
                    np.multiply(new_u, new_u, out=s1)
                    np.multiply(new_v, new_v, out=s2)
                    np.add(s1, s2, out=s1)
                np.multiply(xu, xu, out=s2)
                np.subtract(s1, s2, out=s1)
                np.multiply(xv, xv, out=s2)
                np.subtract(s1, s2, out=s1)
                square_sum += s1
                np.add(new_u, new_v, out=s2)
                np.subtract(s2, xu, out=s2)
                np.subtract(s2, xv, out=s2)
                total += s2
                flat[fu] = new_u
                flat[fv] = new_v
                n_updates = events_done + j + 1
                if n_updates >= next_recompute:
                    # Same per-row reductions the scalar refresh uses
                    # (row.sum() / row @ row on a contiguous vector), on
                    # the same global update boundary.
                    for i in range(A):
                        row = X[i]
                        total[i] = row.sum()
                        square_sum[i] = row @ row
                    next_recompute = n_updates + DEFAULT_RECOMPUTE_EVERY
                np.multiply(total, inv_n, out=mean)
                np.multiply(square_sum, inv_n, out=var)
                np.multiply(mean, mean, out=mean)
                np.subtract(var, mean, out=var)
                np.maximum(var, 0.0, out=var)  # undershoot clamp (NaN passes)
                for ki in range(n_thresholds):
                    np.greater(var, thr_abs[ki], out=b1)
                    np.copyto(last_above[ki], t, where=b1)
                    if below_active[ki]:
                        # The scalar loop's elif: record the first
                        # below-tick only while unset (NaN variance
                        # counts as below); once every row has crossed,
                        # this branch retires for the threshold.
                        unset = below_unset[ki]
                        np.logical_not(b1, out=b2)
                        np.logical_and(b2, unset, out=b2)
                        np.copyto(first_below[ki], t, where=b2)
                        np.logical_and(unset, b1, out=unset)
                        # Retirement is an optimization, not semantics:
                        # polling every 256 updates just delays dropping
                        # to the cheap above-only path.
                        if not (n_updates & 255):
                            below_active[ki] = bool(unset.any())
                if check_stop:
                    # Fused pre-check: one union mask, one .any() per
                    # step.  ``~(v <= d)`` is the scalar divergence test
                    # ``v > d or v != v`` in a single comparison (NaN
                    # fails ``<=``).  Priority labels are resolved in
                    # the rare branch, in the scalar order: target
                    # first, then divergence, then the time budget.
                    stop = None
                    if target_abs is not None:
                        np.less_equal(var, target_abs, out=b3)
                        stop = b3
                    if divergence_abs is not None:
                        buf = b3 if stop is None else b4
                        np.less_equal(var, divergence_abs, out=buf)
                        np.logical_not(buf, out=buf)
                        stop = (
                            buf
                            if stop is None
                            else np.logical_or(stop, buf, out=stop)
                        )
                    if max_time is not None:
                        buf = b3 if stop is None else b4
                        np.greater_equal(t, max_time, out=buf)
                        stop = (
                            buf
                            if stop is None
                            else np.logical_or(stop, buf, out=stop)
                        )
                    if stop.any():
                        hit = (var <= target_abs if target_abs is not None else None)
                        diverged = (
                            ~(var <= divergence_abs)
                            if divergence_abs is not None
                            else None
                        )
                        for i in np.flatnonzero(stop):
                            if hit is not None and hit[i]:
                                label = "target_ratio"
                            elif diverged is not None and diverged[i]:
                                label = "diverged"
                            else:
                                label = "max_time"
                            finalize(i, t[i], n_updates, label)
                        keep = ~stop
                        kept = np.flatnonzero(keep)
                        live = [live[i] for i in kept]
                        if not live:
                            break
                        clocks = [clocks[i] for i in kept]
                        rngs = [rngs[i] for i in kept]
                        A = kept.size
                        X = X[keep]
                        flat = X.reshape(-1)
                        total = total[keep]
                        square_sum = square_sum[keep]
                        thr_abs = np.ascontiguousarray(thr_abs[:, keep])
                        first_below = np.ascontiguousarray(first_below[:, keep])
                        below_unset = np.ascontiguousarray(below_unset[:, keep])
                        last_above = np.ascontiguousarray(last_above[:, keep])
                        below_active = [
                            bool(below_unset[ki].any())
                            for ki in range(n_thresholds)
                        ]
                        if target_abs is not None:
                            target_abs = target_abs[keep]
                        if divergence_abs is not None:
                            divergence_abs = divergence_abs[keep]
                        # Repack the rest of the batch into the leading
                        # columns (the fancy-indexed copies materialize
                        # before landing back in the shared buffers) and
                        # re-bake the flat indices' row offsets for the
                        # new, denser row numbering.
                        shift = (np.arange(A, dtype=np.int64) - kept) * n
                        packed_t = times_v[:, kept]
                        packed_fu = fu_v[:, kept] + shift
                        packed_fv = fv_v[:, kept] + shift
                        times_v = scr.times_b[:k, :A]
                        fu_v = scr.fu_b[:k, :A]
                        fv_v = scr.fv_b[:k, :A]
                        times_v[:] = packed_t
                        fu_v[:] = packed_fu
                        fv_v[:] = packed_fv
                        if aux_v is not None:
                            packed_a = aux_v[:, kept]
                            aux_v = scr.aux_b[:k, :A]
                            aux_v[:] = packed_a
                        (xu, xv, nu, nv, tmp, tmp2, s1, s2, mean, var) = (
                            b[:A] for b in scr.f64_bufs
                        )
                        b1, b2, b3, b4 = (b[:A] for b in scr.bool_bufs)
                j += 1
            events_done += k
            if live:
                # Copy, not view: the shared batch buffer is overwritten
                # by the next batch, and survivors report this time.
                last_t = times_v[k - 1].copy()

        # Event budget exhausted: finalize the survivors at their last
        # event's time, exactly as the scalar loop reports them.
        for i in range(len(live)):
            finalize(i, last_t[i], events_done, "max_events")
        return results  # type: ignore[return-value]

    def _setup_members(
        self,
        specs: "Sequence[ReplicateSpec]",
        graph: Any,
        thresholds: "Sequence[float]",
        results: "list[RunResult | None]",
    ) -> "list[_Member]":
        """Per-replicate setup, mirroring the scalar path draw for draw.

        Replicates whose workload is already averaged short-circuit to
        their zero-variance result here (never entering lockstep),
        exactly as the scalar loop returns before its first event.
        """
        members: "list[_Member]" = []
        for position, spec in enumerate(specs):
            clock_seq, workload_seq, algorithm_seq = replicate_substreams(spec)
            clock_rng = np.random.default_rng(clock_seq)
            if callable(spec.initial_values):
                workload_rng = np.random.default_rng(workload_seq)
                raw_values = spec.initial_values(workload_rng)
            else:
                raw_values = spec.initial_values
            values = np.asarray(raw_values, dtype=np.float64)
            if values.shape != (graph.n_vertices,):
                raise SimulationError(
                    f"initial_values must have shape ({graph.n_vertices},), "
                    f"got {values.shape}"
                )
            values = values.copy()
            member = _Member(position)
            member.values = values
            member.variance_0 = float(np.var(values))
            member.sum_0 = float(values.sum())
            member.crossings = {
                float(thr): Crossing(threshold=float(thr)) for thr in thresholds
            }
            if member.variance_0 == 0.0:
                results[position] = RunResult(
                    values=values,
                    duration=0.0,
                    n_events=0,
                    n_updates=0,
                    variance_initial=0.0,
                    variance_final=0.0,
                    sum_initial=member.sum_0,
                    sum_final=member.sum_0,
                    crossings=member.crossings,
                    stopped_by="target_ratio",
                )
                continue
            member.square_sum_0 = float(values @ values)
            if spec.clock_factory is not None:
                member.clock = spec.clock_factory(clock_rng)
            else:
                member.clock = PoissonEdgeClocks(graph.n_edges, seed=clock_rng)
            clock_edges = getattr(member.clock, "n_edges", None)
            if clock_edges != graph.n_edges:
                raise SimulationError(
                    f"clock models {clock_edges} edges but the "
                    f"graph has {graph.n_edges}"
                )
            member.rng = np.random.default_rng(algorithm_seq)
            members.append(member)
        return members


def _parse_run_kwargs(
    run_kwargs: dict,
) -> "tuple[float | None, int | None, float | None, Sequence[float], float | None]":
    """Validate run kwargs with the scalar loop's exact rules/messages."""
    max_time = run_kwargs.get("max_time")
    max_events = run_kwargs.get("max_events")
    target_ratio = run_kwargs.get("target_ratio")
    thresholds = run_kwargs.get("thresholds", (math.e**-2,))
    divergence_ratio = run_kwargs.get("divergence_ratio", 1e9)
    if max_time is None and max_events is None and target_ratio is None:
        raise SimulationError(
            "provide at least one of max_time, max_events, target_ratio"
        )
    if max_time is not None and max_time <= 0:
        raise SimulationError(f"max_time must be positive, got {max_time}")
    if max_events is not None and max_events < 1:
        raise SimulationError(f"max_events must be positive, got {max_events}")
    if target_ratio is not None and target_ratio <= 0:
        raise SimulationError(f"target_ratio must be positive, got {target_ratio}")
    for threshold in thresholds:
        if threshold <= 0:
            raise SimulationError(f"thresholds must be positive, got {threshold}")
    return max_time, max_events, target_ratio, thresholds, divergence_ratio

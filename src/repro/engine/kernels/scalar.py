"""The scalar kernel: one replicate at a time through :class:`Simulator`.

This is the original execution path of
:func:`repro.engine.backends.execute_replicate`, moved behind the
:class:`~repro.engine.kernels.base.SimulationKernel` protocol without any
behavior change.  It supports every spec and is the bit-exact oracle the
vectorized kernel's equivalence suite compares against.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.clocks.poisson import PoissonEdgeClocks
from repro.engine.kernels.base import SimulationKernel, replicate_substreams
from repro.engine.simulator import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.engine.backends import ReplicateSpec
    from repro.engine.results import RunResult


class ScalarKernel(SimulationKernel):
    """Execute replicates one after another through the scalar event loop."""

    name = "scalar"

    def supports(self, spec: "ReplicateSpec") -> bool:
        return True

    def execute_one(self, spec: "ReplicateSpec") -> "RunResult":
        """Run one resolved spec (the shared single-replicate work path).

        Derives three independent substreams from the spec's seed
        sequence — clock, workload, algorithm — so the clock process,
        the workload sampler and the algorithm's own randomness never
        share a generator (see :func:`~repro.engine.kernels.base
        .replicate_substreams` for why they are derived, not spawned).
        """
        clock_seq, workload_seq, algorithm_seq = replicate_substreams(spec)
        clock_rng = np.random.default_rng(clock_seq)
        if callable(spec.initial_values):
            workload_rng = np.random.default_rng(workload_seq)
            values = spec.initial_values(workload_rng)
        else:
            values = spec.initial_values
        if spec.clock_factory is not None:
            clock = spec.clock_factory(clock_rng)
        else:
            clock = PoissonEdgeClocks(spec.graph.n_edges, seed=clock_rng)
        simulator = Simulator(
            spec.graph,
            spec.algorithm_factory(),
            values,
            clock=clock,
            seed=np.random.default_rng(algorithm_seq),
        )
        return simulator.run(**dict(spec.run_kwargs))  # type: ignore[arg-type]

    def execute(self, specs: "Sequence[ReplicateSpec]") -> "list[RunResult]":
        return [self.execute_one(spec) for spec in specs]

"""Length-prefixed, authenticated framing for the cluster's TCP links.

The cluster protocol (:mod:`repro.engine.cluster`) exchanges a handful of
message kinds between one coordinator and its workers.  This module owns
the byte-level contract so both sides — and the fault-injection tests —
speak exactly the same dialect:

* a **frame** is a 4-byte big-endian length followed by a one-byte body
  tag and the body itself.  Tag ``J`` marks a JSON body (the handshake
  dialect), tag ``P`` a pickled ``(kind, payload)`` tuple (everything
  after authentication);
* :class:`FrameDecoder` turns an arbitrary byte stream back into frames
  (the coordinator reads sockets readiness-driven, so frames arrive
  fragmented and coalesced).  Until its ``allow_pickle`` switch is
  flipped it refuses pickle-tagged frames outright, which is how both
  sides enforce *never unpickle bytes from an unauthenticated peer*;
* :class:`Connection` wraps a socket with a send lock (a worker's
  heartbeat thread and its result sends share one socket) and a frame
  reader with an optional timeout for the worker's receive loop.

Authentication is a mutual HMAC-SHA256 challenge-response keyed by a
shared token (``--auth-token`` / :data:`AUTH_TOKEN_ENV_VAR`).  The
handshake frames are JSON — no pickle crosses the wire in either
direction until both sides have proven knowledge of the token.  An empty
token on both ends (the default for localhost fleets spawned by the
coordinator itself) still runs the handshake, so the message flow is
identical whether or not a secret is configured.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import os
import pickle
import secrets
import select
import socket
import struct
import threading
import time
from typing import Any

from repro.errors import ClusterError

#: Protocol version, negotiated during the handshake; bumped on any wire
#: change.  Version 1 (unauthenticated pickle HELLO) is no longer spoken.
WIRE_VERSION = 2

#: Versions this build can speak, newest first.
SUPPORTED_WIRE_VERSIONS = (2,)

#: Frame length prefix: 4-byte unsigned big-endian.
_LENGTH = struct.Struct(">I")

#: One-byte body tags.
_TAG_JSON = 0x4A  # "J" — handshake dialect, safe to parse pre-auth
_TAG_PICKLE = 0x50  # "P" — full dialect, post-auth only

#: Default upper bound on a single frame (guards against a corrupted
#: length prefix allocating gigabytes); per-connection override via
#: :class:`FrameDecoder`.
MAX_FRAME_BYTES = 1 << 30

#: Much smaller bound applied while a peer is still unauthenticated — a
#: stranger must not be able to make either side buffer more than this.
HANDSHAKE_MAX_FRAME_BYTES = 64 * 1024

#: Environment variable carrying the shared cluster secret.
AUTH_TOKEN_ENV_VAR = "REPRO_CLUSTER_TOKEN"

#: Sentinel returned by :meth:`Connection.recv` when the timeout elapsed
#: before a full frame arrived (distinct from ``None`` = clean EOF).
TIMEOUT = object()

# -- message kinds -----------------------------------------------------
#: Coordinator -> worker, JSON, first frame on every connection:
#: {"versions": [...], "nonce": hex}.
MSG_AUTH_CHALLENGE = "auth-challenge"
#: Worker -> coordinator, JSON: {"version", "nonce", "worker_id", "pid",
#: "installed_digest", "mac"} — the MAC proves token knowledge.
MSG_AUTH_RESPONSE = "auth-response"
#: Coordinator -> worker, JSON: {"version", "mac"} — the coordinator's
#: MAC proves *it* holds the token too (mutual auth: a worker never
#: unpickles STATE/TASK frames from a spoofed coordinator).
MSG_AUTH_OK = "auth-ok"
#: Coordinator -> worker, JSON: {"reason"} — handshake failed; the
#: worker must not retry with the same credentials.
MSG_AUTH_REJECT = "auth-reject"
#: Coordinator -> worker: {"digest", "blob"} — a pickled shared-state
#: mapping, installed worker-side (at most once per digest per worker).
MSG_STATE = "state"
#: Coordinator -> worker: {"task_id", "spec"} — one replicate to run.
MSG_TASK = "task"
#: Worker -> coordinator: {"task_id", "result"} — the finished replicate.
MSG_RESULT = "result"
#: Worker -> coordinator: {"task_id", "message"} — the replicate raised.
MSG_ERROR = "error"
#: Worker -> coordinator, periodic liveness signal: {}.
MSG_HEARTBEAT = "heartbeat"
#: Worker -> coordinator: {"reason"} — graceful drain; the worker has
#: returned all in-flight results and is about to detach.
MSG_GOODBYE = "goodbye"
#: Coordinator -> worker: {} — finish up and exit cleanly.
MSG_SHUTDOWN = "shutdown"


def resolve_auth_token(explicit: "str | None" = None) -> str:
    """Resolve the shared secret: explicit value, else env, else empty."""
    if explicit is not None:
        return explicit
    return os.environ.get(AUTH_TOKEN_ENV_VAR, "")


def new_nonce() -> str:
    """A fresh 128-bit hex nonce for one side of a handshake."""
    return secrets.token_hex(16)


def compute_mac(token: str, role: str, *parts: str) -> str:
    """HMAC-SHA256 over the handshake transcript, bound to ``role``.

    The role ("worker" or "coordinator") is folded into the keyed hash so
    a challenge MAC can never be replayed as a response MAC.
    """
    message = "|".join((role, *parts)).encode("utf-8")
    return hmac.new(token.encode("utf-8"), message, hashlib.sha256).hexdigest()


def verify_mac(token: str, role: str, parts: "tuple[str, ...]", mac: str) -> bool:
    """Constant-time check of a peer's MAC against the expected value."""
    if not isinstance(mac, str):
        return False
    expected = compute_mac(token, role, *parts)
    return hmac.compare_digest(expected, mac)


def _pack(tag: int, body: bytes, max_frame_bytes: int) -> bytes:
    if len(body) + 1 > max_frame_bytes:
        raise ClusterError(
            f"frame of {len(body) + 1} bytes exceeds the {max_frame_bytes}-byte "
            "wire limit"
        )
    return _LENGTH.pack(len(body) + 1) + bytes((tag,)) + body


def encode_frame(
    kind: str, payload: "Any", *, max_frame_bytes: int = MAX_FRAME_BYTES
) -> bytes:
    """Serialize one pickle-dialect message into its on-the-wire bytes."""
    body = pickle.dumps((kind, payload), protocol=pickle.HIGHEST_PROTOCOL)
    return _pack(_TAG_PICKLE, body, max_frame_bytes)


def encode_json_frame(
    kind: str, payload: "Any", *, max_frame_bytes: int = MAX_FRAME_BYTES
) -> bytes:
    """Serialize one handshake (JSON-dialect) message."""
    body = json.dumps([kind, payload], separators=(",", ":")).encode("utf-8")
    return _pack(_TAG_JSON, body, max_frame_bytes)


class FrameDecoder:
    """Incremental frame parser for a readiness-driven receive path.

    Feed it whatever ``recv`` returned; it yields every frame completed
    so far and buffers the rest.  A single frame may take many feeds to
    complete, and one feed may complete many frames.

    ``allow_pickle`` starts ``False`` on coordinator-side connections:
    until the peer authenticates, only the JSON handshake dialect is
    accepted and a pickle-tagged frame raises :class:`ClusterError`
    *without ever reaching* ``pickle.loads``.  ``max_frame_bytes`` is
    likewise mutable so the cap can start at the handshake bound and be
    raised once the peer has proven itself.
    """

    def __init__(
        self,
        *,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        allow_pickle: bool = True,
    ) -> None:
        self._buffer = bytearray()
        self.max_frame_bytes = max_frame_bytes
        self.allow_pickle = allow_pickle

    def feed(self, data: bytes) -> "list[tuple[str, Any]]":
        """Absorb ``data`` and return all newly completed frames."""
        self._buffer.extend(data)
        frames = []
        while True:
            if len(self._buffer) < _LENGTH.size:
                break
            (length,) = _LENGTH.unpack_from(self._buffer)
            if length == 0:
                raise ClusterError(
                    "peer announced a zero-length frame; stream is corrupt"
                )
            if length > self.max_frame_bytes:
                raise ClusterError(
                    f"peer announced a {length}-byte frame (limit "
                    f"{self.max_frame_bytes}); stream is corrupt or hostile"
                )
            end = _LENGTH.size + length
            if len(self._buffer) < end:
                break
            tag = self._buffer[_LENGTH.size]
            body = bytes(self._buffer[_LENGTH.size + 1 : end])
            del self._buffer[:end]
            frames.append(self._decode_body(tag, body))
        return frames

    def _decode_body(self, tag: int, body: bytes) -> "tuple[str, Any]":
        if tag == _TAG_JSON:
            try:
                decoded = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ClusterError(f"malformed handshake frame: {exc}") from exc
            if (
                not isinstance(decoded, list)
                or len(decoded) != 2
                or not isinstance(decoded[0], str)
            ):
                raise ClusterError(
                    "malformed handshake frame: expected [kind, payload]"
                )
            return decoded[0], decoded[1]
        if tag == _TAG_PICKLE:
            if not self.allow_pickle:
                raise ClusterError(
                    "pickle frame from unauthenticated peer refused "
                    "(complete the auth handshake first)"
                )
            kind, payload = pickle.loads(body)
            return kind, payload
        raise ClusterError(
            f"unknown frame tag {tag:#04x}; peer speaks a different "
            "wire version or the stream is corrupt"
        )

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        return len(self._buffer)


class Connection:
    """A framed, lock-protected view of one socket.

    ``send`` is serialized with a lock so a worker's heartbeat thread
    and its main loop can share the connection; ``recv`` is the frame
    reader used by the worker (the coordinator reads readiness-driven
    through :class:`FrameDecoder` instead).  ``recv(timeout=...)`` lets
    the worker poll for drain signals between frames without dropping
    the connection.
    """

    def __init__(
        self,
        sock: socket.socket,
        *,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        allow_pickle: bool = True,
    ) -> None:
        self.sock = sock
        self.max_frame_bytes = max_frame_bytes
        self._send_lock = threading.Lock()
        # An unauthenticated connection reads under the handshake cap;
        # flipping ``allow_pickle`` (post-auth) raises it to the real
        # limit.  A stranger can therefore never make us buffer more
        # than HANDSHAKE_MAX_FRAME_BYTES.
        self._decoder = FrameDecoder(
            max_frame_bytes=(
                max_frame_bytes if allow_pickle else HANDSHAKE_MAX_FRAME_BYTES
            ),
            allow_pickle=allow_pickle,
        )
        #: Frames decoded but not yet returned (the coordinator pipelines
        #: sends — STATE then TASK, TASK then TASK — so one recv() off
        #: the socket can complete several frames).
        self._queued: "list[tuple[str, Any]]" = []

    @property
    def allow_pickle(self) -> bool:
        return self._decoder.allow_pickle

    @allow_pickle.setter
    def allow_pickle(self, value: bool) -> None:
        self._decoder.allow_pickle = value
        if value:
            self._decoder.max_frame_bytes = self.max_frame_bytes

    def send(self, kind: str, payload: "Any") -> None:
        """Send one pickle-dialect frame (atomic w.r.t. other senders)."""
        data = encode_frame(kind, payload, max_frame_bytes=self.max_frame_bytes)
        with self._send_lock:
            self.sock.sendall(data)

    def send_json(self, kind: str, payload: "Any") -> None:
        """Send one handshake (JSON-dialect) frame."""
        data = encode_json_frame(
            kind, payload, max_frame_bytes=self.max_frame_bytes
        )
        with self._send_lock:
            self.sock.sendall(data)

    def recv(self, timeout: "float | None" = None) -> "Any":
        """Return one frame, ``None`` on clean EOF, or :data:`TIMEOUT`.

        With ``timeout=None`` this blocks until a full frame arrives
        (subject to any deadline set on the socket itself).  With a
        timeout, the module-level :data:`TIMEOUT` sentinel is returned
        if no complete frame showed up in time — the connection stays
        healthy and buffered partial frames are kept.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self._queued:
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return TIMEOUT
                ready, _, _ = select.select([self.sock], [], [], remaining)
                if not ready:
                    return TIMEOUT
            data = self.sock.recv(65536)
            if not data:
                if self._decoder.pending_bytes:
                    raise ClusterError(
                        "connection closed mid-frame "
                        f"({self._decoder.pending_bytes} bytes pending)"
                    )
                return None
            self._queued.extend(self._decoder.feed(data))
        return self._queued.pop(0)

    def close(self) -> None:
        """Close the underlying socket, swallowing teardown races."""
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass

"""Length-prefixed pickle framing for the cluster backend's TCP links.

The cluster protocol (:mod:`repro.engine.cluster`) exchanges a handful of
message kinds between one coordinator and its workers.  This module owns
the byte-level contract so both sides — and the fault-injection tests —
speak exactly the same dialect:

* a **frame** is a 4-byte big-endian length followed by a pickled
  ``(kind, payload)`` tuple;
* :class:`FrameDecoder` turns an arbitrary byte stream back into frames
  (the coordinator reads sockets readiness-driven, so frames arrive
  fragmented and coalesced);
* :class:`Connection` wraps a socket with a send lock (a worker's
  heartbeat thread and its result sends share one socket) and a blocking
  frame reader for the worker's simple receive loop.

Payloads are plain dicts of picklable values.  Pickle is safe here for
the same reason it is in :class:`~repro.engine.backends
.ProcessPoolBackend`: both ends are the same trusted codebase, spawned
by (or pointed at) the same user — the cluster protocol is an IPC
transport, not a public network service.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
from typing import Any

from repro.errors import ClusterError

#: Protocol version, exchanged in HELLO; bumped on any wire change.
WIRE_VERSION = 1

#: Frame length prefix: 4-byte unsigned big-endian.
_LENGTH = struct.Struct(">I")

#: Upper bound on a single frame (guards against a corrupted length
#: prefix allocating gigabytes, not against hostile peers).
MAX_FRAME_BYTES = 1 << 30

# -- message kinds -----------------------------------------------------
#: Worker -> coordinator, once per connection: {"version", "pid"}.
MSG_HELLO = "hello"
#: Coordinator -> worker: {"digest", "blob"} — a pickled shared-state
#: mapping, installed worker-side (at most once per digest per worker).
MSG_STATE = "state"
#: Coordinator -> worker: {"task_id", "spec"} — one replicate to run.
MSG_TASK = "task"
#: Worker -> coordinator: {"task_id", "result"} — the finished replicate.
MSG_RESULT = "result"
#: Worker -> coordinator: {"task_id", "message"} — the replicate raised.
MSG_ERROR = "error"
#: Worker -> coordinator, periodic liveness signal: {}.
MSG_HEARTBEAT = "heartbeat"
#: Coordinator -> worker: {} — finish up and exit cleanly.
MSG_SHUTDOWN = "shutdown"


def encode_frame(kind: str, payload: "Any") -> bytes:
    """Serialize one message into its on-the-wire bytes."""
    body = pickle.dumps((kind, payload), protocol=pickle.HIGHEST_PROTOCOL)
    if len(body) > MAX_FRAME_BYTES:
        raise ClusterError(
            f"frame of {len(body)} bytes exceeds the {MAX_FRAME_BYTES}-byte "
            "wire limit"
        )
    return _LENGTH.pack(len(body)) + body


class FrameDecoder:
    """Incremental frame parser for a readiness-driven receive path.

    Feed it whatever ``recv`` returned; it yields every frame completed
    so far and buffers the rest.  A single frame may take many feeds to
    complete, and one feed may complete many frames.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> "list[tuple[str, Any]]":
        """Absorb ``data`` and return all newly completed frames."""
        self._buffer.extend(data)
        frames = []
        while True:
            if len(self._buffer) < _LENGTH.size:
                break
            (length,) = _LENGTH.unpack_from(self._buffer)
            if length > MAX_FRAME_BYTES:
                raise ClusterError(
                    f"peer announced a {length}-byte frame (limit "
                    f"{MAX_FRAME_BYTES}); stream is corrupt"
                )
            end = _LENGTH.size + length
            if len(self._buffer) < end:
                break
            body = bytes(self._buffer[_LENGTH.size:end])
            del self._buffer[:end]
            kind, payload = pickle.loads(body)
            frames.append((kind, payload))
        return frames

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        return len(self._buffer)


class Connection:
    """A framed, lock-protected view of one socket.

    ``send`` is serialized with a lock so a worker's heartbeat thread
    and its main loop can share the connection; ``recv`` is the blocking
    reader used by the worker (the coordinator reads readiness-driven
    through :class:`FrameDecoder` instead).
    """

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self._send_lock = threading.Lock()
        self._decoder = FrameDecoder()
        #: Frames decoded but not yet returned (the coordinator pipelines
        #: sends — STATE then TASK, TASK then TASK — so one recv() off
        #: the socket can complete several frames).
        self._queued: "list[tuple[str, Any]]" = []

    def send(self, kind: str, payload: "Any") -> None:
        """Send one frame (atomic with respect to other senders)."""
        data = encode_frame(kind, payload)
        with self._send_lock:
            self.sock.sendall(data)

    def recv(self) -> "tuple[str, Any] | None":
        """Block until one full frame is available; ``None`` on clean EOF."""
        while not self._queued:
            data = self.sock.recv(65536)
            if not data:
                if self._decoder.pending_bytes:
                    raise ClusterError(
                        "connection closed mid-frame "
                        f"({self._decoder.pending_bytes} bytes pending)"
                    )
                return None
            self._queued.extend(self._decoder.feed(data))
        return self._queued.pop(0)

    def close(self) -> None:
        """Close the underlying socket, swallowing teardown races."""
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass

"""Fault-tolerant TCP cluster execution backend.

:class:`ClusterBackend` is the third :class:`~repro.engine.backends
.ExecutionBackend`: a coordinator that shards :class:`~repro.engine
.backends.ReplicateSpec` batches over worker *processes* connected by
TCP — spawned locally (``repro worker --connect host:port`` under the
hood), attached from other machines, or both.  It speaks the same
``ReplicateSpec``/shared-state protocol as the process pool, so every
caller of ``execute``/``execute_shared`` (estimators, the sweep
scheduler) gains multi-host fan-out without changing a line.

**Reproducibility under failure.**  All randomness lives inside each
spec's :class:`~numpy.random.SeedSequence` and
:func:`~repro.engine.backends.execute_replicate` is a pure function of
the spec, so *where* (and how many times) a replicate runs can never
change its result.  The coordinator therefore only has to deliver
exactly-once *semantics*, not exactly-once *execution*: every task
carries a globally unique id, at-least-once delivery (reassignment after
a crash, duplicated sends from a sick worker, stale results from a
previous batch) collapses in the coordinator's result table, and results
return in submission order.  ``SweepResult`` artifacts are therefore
**byte-identical** to :class:`~repro.engine.backends.SerialBackend` for
the same root seed — including under injected worker crashes, which the
fault-injection suite (``tests/integration/test_cluster_faults.py``)
pins down.

**Failure detection and recovery.**  Three mechanisms, in order of
latency: a closed socket (worker crash → immediate EOF), a heartbeat
timeout (workers push :data:`~repro.engine.wire.MSG_HEARTBEAT` from a
background thread, so a busy straggler stays alive while a hung or
partitioned worker is declared dead), and a per-batch respawn budget
that rebuilds locally spawned workers.  A dead worker's in-flight specs
are reassigned to the front of the queue; a spec that keeps killing
workers exhausts ``max_task_retries`` and raises a non-retryable
:class:`~repro.errors.ClusterError`, while a transient full-fleet loss
raises a *retryable* one that the engine's round-level retry
(:class:`~repro.engine.sweeps.SweepRunner`) turns into one clean re-run
of the batch.

**Shared-state shipping.**  ``execute_shared`` reuses the content-digest
scheme from :mod:`repro.engine.backends`: the mapping is pickled once
per batch (identity/digest cached across batches), shipped to each
worker at most once per digest via a :data:`~repro.engine.wire
.MSG_STATE` frame, and slim specs resolve worker-side — so a sweep's
per-replicate wire payload shrinks to (seed, run kwargs) exactly as on
the process pool.

**Fault injection.**  Workers accept a :class:`FaultPlan` (CLI
``--fault``) that makes failure deterministic enough to test: crash
after N results, drop the connection, duplicate every result frame,
or run slow.  This is a test/chaos hook; production workers run with no
plan.
"""

from __future__ import annotations

import itertools
import os
import pickle
import selectors
import socket
import subprocess
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.engine import wire
from repro.engine.backends import (
    ExecutionBackend,
    ReplicateSpec,
    check_batch_picklable,
    check_no_recorder,
    pickle_shared_state,
    resolve_replicate_spec,
    spec_has_refs,
)
from repro.engine.kernels import execute_specs, new_kernel_stats
from repro.engine.results import RunResult
from repro.errors import ClusterError

#: How long a worker waits for the coordinator before giving up.
WORKER_CONNECT_TIMEOUT = 30.0

#: Bytes read per readiness event on the coordinator side.
_RECV_CHUNK = 1 << 16


# ----------------------------------------------------------------------
# fault injection plans (test/chaos hook)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic misbehavior for one worker (fault-injection tests).

    Attributes
    ----------
    die_after:
        Crash the worker process (no goodbye, like OOM/SIGKILL) after it
        has sent this many results.
    drop_after:
        Close the TCP connection after this many results but exit
        cleanly — a network drop rather than a process death.
    duplicate_results:
        Send every result frame twice (exercises coordinator dedup).
    slow:
        Sleep this many seconds before each task (a straggler that must
        *not* be declared dead while its heartbeats keep flowing).
    """

    die_after: "int | None" = None
    drop_after: "int | None" = None
    duplicate_results: bool = False
    slow: float = 0.0

    def __post_init__(self) -> None:
        for name in ("die_after", "drop_after"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ClusterError(f"{name} must be >= 1, got {value}")
        if self.slow < 0:
            raise ClusterError(f"slow must be >= 0, got {self.slow}")

    @classmethod
    def parse(cls, text: "str | None") -> "FaultPlan":
        """Parse the CLI form: comma-separated fault tokens.

        ``die-after:N`` / ``drop-after:N`` / ``duplicate-results`` /
        ``slow:SECONDS`` — e.g. ``"die-after:3,slow:0.05"``.
        """
        if not text:
            return cls()
        kwargs: "dict[str, Any]" = {}
        for token in text.split(","):
            token = token.strip()
            name, _, value = token.partition(":")
            try:
                if name == "die-after":
                    kwargs["die_after"] = int(value)
                elif name == "drop-after":
                    kwargs["drop_after"] = int(value)
                elif name == "duplicate-results":
                    kwargs["duplicate_results"] = True
                elif name == "slow":
                    kwargs["slow"] = float(value)
                else:
                    raise ClusterError(
                        f"unknown fault token {token!r}; expected "
                        "die-after:N, drop-after:N, duplicate-results "
                        "or slow:SECONDS"
                    )
            except ValueError:
                raise ClusterError(
                    f"fault token {token!r} has a malformed value"
                ) from None
        return cls(**kwargs)

    def to_text(self) -> "str | None":
        """Inverse of :meth:`parse` (``None`` when no fault is armed)."""
        tokens = []
        if self.die_after is not None:
            tokens.append(f"die-after:{self.die_after}")
        if self.drop_after is not None:
            tokens.append(f"drop-after:{self.drop_after}")
        if self.duplicate_results:
            tokens.append("duplicate-results")
        if self.slow:
            tokens.append(f"slow:{self.slow}")
        return ",".join(tokens) if tokens else None


# ----------------------------------------------------------------------
# the worker loop (``repro ... worker --connect host:port``)
# ----------------------------------------------------------------------


def run_worker(
    host: str,
    port: int,
    *,
    fault: "FaultPlan | str | None" = None,
    heartbeat_interval: float = 1.0,
) -> int:
    """Connect to a coordinator and execute tasks until told to stop.

    The worker is deliberately simple: one blocking receive loop plus a
    daemon heartbeat thread (so liveness signals flow even while a task
    computes).  Shared-state mappings install on :data:`~repro.engine
    .wire.MSG_STATE` and persist across tasks; slim specs resolve against
    the installed mapping.  Returns a process exit code.
    """
    plan = FaultPlan.parse(fault) if isinstance(fault, str) else (fault or FaultPlan())
    try:
        sock = socket.create_connection((host, port), timeout=WORKER_CONNECT_TIMEOUT)
    except OSError as exc:
        print(
            f"worker: cannot reach coordinator {host}:{port}: {exc}",
            file=sys.stderr,
        )
        return 2
    sock.settimeout(None)
    conn = wire.Connection(sock)
    conn.send(wire.MSG_HELLO, {"version": wire.WIRE_VERSION, "pid": os.getpid()})

    stop = threading.Event()

    def beat() -> None:
        while not stop.wait(heartbeat_interval):
            try:
                conn.send(wire.MSG_HEARTBEAT, {})
            except OSError:
                return

    threading.Thread(target=beat, name="repro-heartbeat", daemon=True).start()

    installed: "dict[str, Any]" = {}
    completed = 0
    try:
        while True:
            frame = conn.recv()
            if frame is None:
                return 0  # coordinator went away; nothing left to do
            kind, payload = frame
            if kind == wire.MSG_SHUTDOWN:
                return 0
            if kind == wire.MSG_STATE:
                installed = pickle.loads(payload["blob"])
                continue
            if kind != wire.MSG_TASK:
                continue  # tolerate unknown kinds (forward compatibility)
            task_id = payload["task_id"]
            spec: ReplicateSpec = payload["spec"]
            if plan.slow:
                time.sleep(plan.slow)
            try:
                if spec_has_refs(spec):
                    spec = resolve_replicate_spec(spec, installed)
                # Kernel dispatch at batch size 1: spec.kernel rides the
                # wire inside the spec, so kernel="vectorized" engages
                # the lockstep path here too (auto stays scalar below
                # the batch-width floor); the kernel used is reported
                # back for the coordinator's engagement counters.
                kernel_stats = new_kernel_stats()
                result = execute_specs([spec], stats=kernel_stats)[0]
            except Exception as exc:  # deterministic: report, don't die
                conn.send(wire.MSG_ERROR, {
                    "task_id": task_id,
                    "message": f"{type(exc).__name__}: {exc}",
                })
                continue
            kernel_used = (
                "vectorized"
                if kernel_stats["vectorized_replicates"]
                else "scalar"
            )
            reply = {
                "task_id": task_id,
                "result": result,
                "kernel": kernel_used,
            }
            conn.send(wire.MSG_RESULT, reply)
            if plan.duplicate_results:
                conn.send(wire.MSG_RESULT, reply)
            completed += 1
            if plan.die_after is not None and completed >= plan.die_after:
                os._exit(17)  # simulated crash: no cleanup, no goodbye
            if plan.drop_after is not None and completed >= plan.drop_after:
                conn.close()  # simulated network drop (process exits cleanly)
                return 0
    except Exception as exc:
        # Connection loss, framing corruption, or a STATE/TASK payload
        # this checkout cannot unpickle: report and exit nonzero — the
        # coordinator sees EOF and reassigns whatever was in flight.
        print(
            f"worker: giving up ({type(exc).__name__}: {exc})",
            file=sys.stderr,
        )
        return 1
    finally:
        stop.set()


# ----------------------------------------------------------------------
# the coordinator
# ----------------------------------------------------------------------


class _WorkerHandle:
    """Coordinator-side bookkeeping for one connected worker."""

    _ids = itertools.count()

    def __init__(self, sock: socket.socket) -> None:
        self.id = next(self._ids)
        self.sock = sock
        self.decoder = wire.FrameDecoder()
        self.hello: "Mapping[str, Any] | None" = None
        self.proc: "subprocess.Popen | None" = None
        self.installed_digest: "str | None" = None
        self.inflight: "dict[int, bool]" = {}
        self.last_seen = time.monotonic()
        self.results_delivered = 0

    @property
    def ready(self) -> bool:
        """True once the worker's HELLO arrived (tasks may be sent)."""
        return self.hello is not None

    def send(self, kind: str, payload: "Any") -> None:
        self.sock.sendall(wire.encode_frame(kind, payload))

    def __repr__(self) -> str:
        return f"_WorkerHandle(id={self.id}, ready={self.ready})"


class ClusterBackend(ExecutionBackend):
    """Execute replicate batches over TCP-connected worker processes.

    Parameters
    ----------
    n_workers:
        Fleet size the coordinator maintains (local spawns) or expects
        (external attachments).
    host / port:
        Coordinator bind address; port 0 picks an ephemeral port (read
        it back from :attr:`address`).  Bind a routable host (e.g.
        ``"0.0.0.0"``) to let workers on other machines attach with
        ``repro ... worker --connect <host>:<port>``.
    spawn_workers:
        Spawn ``n_workers`` local worker processes on first use and
        respawn them after failures (default).  ``False`` waits for
        external workers to attach instead.
    worker_faults:
        Optional per-spawn-ordinal fault plans (test/chaos hook):
        element ``i`` arms the ``i``-th worker ever spawned; respawned
        replacements beyond the list run clean.
    heartbeat_timeout:
        Seconds of silence after which a worker is declared dead and its
        in-flight specs reassigned.  Workers heartbeat from a background
        thread, so a straggler mid-task stays alive.
    connect_timeout:
        Seconds to wait for the first ready worker of a batch.
    window:
        In-flight specs per worker (pipelining depth; keeps a worker's
        next task in its socket buffer while it computes the current
        one).
    max_task_retries:
        Reassignments one spec may survive before the batch fails — a
        spec that kills every worker it lands on must not retry forever.
    max_respawns:
        Local respawns allowed per batch (default: ``n_workers``).
    """

    name = "cluster"

    def __init__(
        self,
        n_workers: "int | None" = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        spawn_workers: bool = True,
        worker_faults: "Sequence[FaultPlan | str | None] | None" = None,
        heartbeat_timeout: float = 30.0,
        connect_timeout: float = 60.0,
        window: int = 2,
        max_task_retries: int = 3,
        max_respawns: "int | None" = None,
        io_timeout: float = 30.0,
    ) -> None:
        if n_workers is None:
            n_workers = 2
        if n_workers < 1:
            raise ClusterError(f"n_workers must be positive, got {n_workers}")
        if window < 1:
            raise ClusterError(f"window must be positive, got {window}")
        if heartbeat_timeout <= 0 or connect_timeout <= 0:
            raise ClusterError("timeouts must be positive")
        self.n_workers = int(n_workers)
        self.host = host
        self.port = port
        self.spawn_workers = spawn_workers
        self.worker_faults = list(worker_faults or [])
        self.heartbeat_timeout = heartbeat_timeout
        self.connect_timeout = connect_timeout
        self.window = int(window)
        self.max_task_retries = int(max_task_retries)
        self.max_respawns = (
            int(max_respawns) if max_respawns is not None else self.n_workers
        )
        self.io_timeout = io_timeout
        self._listener: "socket.socket | None" = None
        self._selector: "selectors.BaseSelector | None" = None
        self._workers: "dict[int, _WorkerHandle]" = {}
        self._pending_procs: "dict[int, subprocess.Popen]" = {}  # pid -> proc
        self._spawn_ordinal = 0
        self._respawns_left = self.max_respawns
        self._free_spawns = 0
        self._next_task_id = 0
        #: Cached (mapping, digest, blob) so a sweep's stable mapping is
        #: pickled once, not once per round (identity first, then digest
        #: — the scheme shared with ProcessPoolBackend).
        self._state_cache: "tuple[Mapping[str, Any], str, bytes] | None" = None
        #: Failure/recovery telemetry, cumulative across batches; the
        #: fault-injection suite asserts on these.
        self.stats: "dict[str, int]" = {}
        self.reset_stats()
        #: Kernel-engagement counters aggregated from worker result
        #: frames (see :func:`repro.engine.kernels.new_kernel_stats`).
        #: Each cluster task is a one-spec kernel dispatch, so a
        #: vectorized replicate counts as its own install.
        self.kernel_stats = new_kernel_stats()

    def reset_stats(self) -> None:
        """Zero the failure/recovery counters."""
        self.stats = {
            "batches": 0,
            "worker_failures": 0,
            "reassigned": 0,
            "duplicates_dropped": 0,
            "respawns": 0,
            "state_installs": 0,
        }

    # -- public backend protocol ---------------------------------------

    def execute(self, specs: "Sequence[ReplicateSpec]") -> "list[RunResult]":
        if not specs:
            return []
        return self._run_batch(list(specs), state=None)

    def execute_shared(
        self,
        specs: "Sequence[ReplicateSpec]",
        shared_state: "Mapping[str, Any]",
    ) -> "list[RunResult]":
        if not specs:
            return []
        return self._run_batch(list(specs), state=self._encode_state(shared_state))

    @property
    def address(self) -> "tuple[str, int]":
        """The coordinator's bound ``(host, port)`` (binds if needed)."""
        self._ensure_listener()
        assert self._listener is not None
        addr = self._listener.getsockname()
        return (addr[0], addr[1])

    # -- state shipping -------------------------------------------------

    def _encode_state(
        self, shared_state: "Mapping[str, Any]"
    ) -> "tuple[str, bytes]":
        if self._state_cache is not None:
            cached_mapping, digest, blob = self._state_cache
            if shared_state is cached_mapping:
                return digest, blob
        digest, blob = pickle_shared_state(shared_state)
        if self._state_cache is not None and digest == self._state_cache[1]:
            blob = self._state_cache[2]
        self._state_cache = (shared_state, digest, blob)
        return digest, blob

    # -- fleet management ----------------------------------------------

    def _ensure_listener(self) -> None:
        if self._listener is not None:
            return
        listener = socket.create_server(
            (self.host, self.port), backlog=max(16, 2 * self.n_workers)
        )
        listener.setblocking(False)
        self._listener = listener
        self._selector = selectors.DefaultSelector()
        self._selector.register(listener, selectors.EVENT_READ, data=None)

    def _fault_for(self, ordinal: int) -> "str | None":
        if ordinal >= len(self.worker_faults):
            return None
        fault = self.worker_faults[ordinal]
        if fault is None:
            return None
        if isinstance(fault, FaultPlan):
            return fault.to_text()
        return str(fault)

    def _spawn_worker(self) -> None:
        """Launch one local worker process pointed at the listener."""
        host, port = self.address
        connect_host = "127.0.0.1" if host in ("0.0.0.0", "::") else host
        interval = min(2.0, max(0.1, self.heartbeat_timeout / 4.0))
        command = [
            sys.executable,
            "-m",
            "repro.experiments.cli",
            "worker",
            "--connect",
            f"{connect_host}:{port}",
            "--heartbeat-interval",
            str(interval),
        ]
        fault = self._fault_for(self._spawn_ordinal)
        if fault:
            command += ["--fault", fault]
        self._spawn_ordinal += 1
        import repro

        package_root = str(Path(repro.__file__).resolve().parent.parent)
        # A local worker must mirror the coordinator's import environment
        # (the fork-based process pool gets this for free): specs may
        # reference classes from any module the parent can import — the
        # test suites' module-level factories included — so ship the
        # parent's whole sys.path, with the repro package root first.
        search_path = [package_root]
        search_path += [entry for entry in sys.path if entry]
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        if existing:
            search_path.append(existing)
        env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(search_path))
        proc = subprocess.Popen(
            command,
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=None,  # surface worker tracebacks in the parent's stderr
        )
        self._pending_procs[proc.pid] = proc

    def _maintain_fleet(self) -> None:
        """Keep (connected + pending) local workers at ``n_workers``.

        Each batch may bring the fleet up to strength for free (its
        ``_free_spawns`` allowance, set at batch start); every further
        spawn is a respawn and draws on the per-batch budget, so a
        worker that crashes on arrival cannot respawn-loop forever —
        while a *retried* batch starts with a fresh allowance and can
        rebuild a fully lost fleet.
        """
        if not self.spawn_workers:
            return
        for pid in [
            pid for pid, proc in self._pending_procs.items()
            if proc.poll() is not None
        ]:
            del self._pending_procs[pid]  # died before saying HELLO
        spawned_live = (
            sum(1 for handle in self._workers.values() if handle.proc is not None)
            + len(self._pending_procs)
        )
        while spawned_live < self.n_workers:
            if self._free_spawns > 0:
                self._free_spawns -= 1
            else:
                if self._respawns_left <= 0:
                    return
                self._respawns_left -= 1
                self.stats["respawns"] += 1
            self._spawn_worker()
            spawned_live += 1

    def _accept_connections(self) -> None:
        assert self._listener is not None and self._selector is not None
        while True:
            try:
                sock, _addr = self._listener.accept()
            except BlockingIOError:
                return
            except OSError:
                return
            sock.settimeout(self.io_timeout)
            handle = _WorkerHandle(sock)
            self._workers[handle.id] = handle
            self._selector.register(sock, selectors.EVENT_READ, data=handle)

    def _fail_worker(
        self,
        handle: _WorkerHandle,
        queue: "deque[int]",
        retries: "dict[int, int]",
        reason: str,
    ) -> None:
        """Remove a dead worker and reassign its in-flight specs."""
        self.stats["worker_failures"] += 1
        assert self._selector is not None
        try:
            self._selector.unregister(handle.sock)
        except (KeyError, ValueError):
            pass
        try:
            handle.sock.close()
        except OSError:
            pass
        self._workers.pop(handle.id, None)
        if handle.proc is not None:
            if handle.proc.poll() is None:
                handle.proc.terminate()
            # Reap without blocking the batch; shutdown() sweeps stragglers.
            try:
                handle.proc.wait(timeout=0.2)
            except subprocess.TimeoutExpired:
                pass
        for task_id in sorted(handle.inflight, reverse=True):
            retries[task_id] = retries.get(task_id, 0) + 1
            if retries[task_id] > self.max_task_retries:
                raise ClusterError(
                    f"replicate task survived {self.max_task_retries} "
                    f"reassignments and still failed (last worker lost: "
                    f"{reason}); the spec itself is suspect",
                    retryable=False,
                )
            self.stats["reassigned"] += 1
            queue.appendleft(task_id)

    # -- the batch loop -------------------------------------------------

    def _send_task(
        self,
        handle: _WorkerHandle,
        task_id: int,
        spec: ReplicateSpec,
        state: "tuple[str, bytes] | None",
    ) -> None:
        if state is not None and handle.installed_digest != state[0]:
            handle.send(wire.MSG_STATE, {"digest": state[0], "blob": state[1]})
            handle.installed_digest = state[0]
            self.stats["state_installs"] += 1
        handle.inflight[task_id] = True
        handle.send(wire.MSG_TASK, {"task_id": task_id, "spec": spec})

    def _run_batch(
        self,
        specs: "list[ReplicateSpec]",
        state: "tuple[str, bytes] | None",
    ) -> "list[RunResult]":
        check_no_recorder(specs, backend_hint="the cluster backend")
        check_batch_picklable(specs)
        self._ensure_listener()
        assert self._selector is not None
        self.stats["batches"] += 1
        self._respawns_left = self.max_respawns
        live = (
            sum(1 for h in self._workers.values() if h.proc is not None)
            + len(self._pending_procs)
        )
        self._free_spawns = max(0, self.n_workers - live)
        # Between batches nobody reads the sockets, so worker heartbeats
        # pile up unread in kernel buffers; without a reset, a long gap
        # would read as silence and fail a healthy fleet.  Stale in-flight
        # entries (an aborted batch) are obsolete task ids — drop them.
        fresh_start = time.monotonic()
        for handle in self._workers.values():
            handle.last_seen = fresh_start
            handle.inflight.clear()

        id_to_index: "dict[int, int]" = {}
        for index in range(len(specs)):
            id_to_index[self._next_task_id] = index
            self._next_task_id += 1
        task_ids = sorted(id_to_index)
        queue: "deque[int]" = deque(task_ids)
        results: "dict[int, RunResult]" = {}
        retries: "dict[int, int]" = {}
        batch_start = time.monotonic()

        had_ready_worker = False
        while len(results) < len(specs):
            self._maintain_fleet()
            if not self._workers and not self._pending_procs and had_ready_worker:
                # The whole fleet died mid-batch.  With local spawning
                # the respawn budget is exhausted but a *fresh* batch
                # gets a fresh budget, so the failure is transient and
                # the engine's round-level retry may re-run it.
                raise ClusterError(
                    "every cluster worker was lost mid-batch and the "
                    "respawn budget is exhausted; the batch can be "
                    "retried against a fresh fleet",
                    retryable=self.spawn_workers,
                )
            now = time.monotonic()
            if any(handle.ready for handle in self._workers.values()):
                had_ready_worker = True
            elif now - batch_start > self.connect_timeout:
                raise ClusterError(
                    f"no worker became ready within {self.connect_timeout}s "
                    f"(listening on {self.address[0]}:{self.address[1]}); "
                    "check that workers can reach the coordinator",
                    retryable=False,
                )
            for handle in list(self._workers.values()):
                if (
                    handle.ready
                    and handle.inflight
                    and now - handle.last_seen > self.heartbeat_timeout
                ):
                    self._fail_worker(
                        handle, queue, retries,
                        f"no heartbeat for {self.heartbeat_timeout}s",
                    )
            self._dispatch(queue, results, id_to_index, specs, state, retries)
            events = self._selector.select(timeout=0.05)
            for key, _mask in events:
                if key.data is None:
                    self._accept_connections()
                else:
                    self._read_worker(
                        key.data, queue, results, id_to_index, retries
                    )
        return [results[index] for index in range(len(specs))]

    def _dispatch(
        self,
        queue: "deque[int]",
        results: "dict[int, RunResult]",
        id_to_index: "dict[int, int]",
        specs: "list[ReplicateSpec]",
        state: "tuple[str, bytes] | None",
        retries: "dict[int, int]",
    ) -> None:
        for handle in list(self._workers.values()):
            if not handle.ready:
                continue
            while queue and len(handle.inflight) < self.window:
                task_id = queue[0]
                index = id_to_index[task_id]
                if index in results:
                    queue.popleft()  # settled while waiting for reassignment
                    continue
                queue.popleft()
                try:
                    self._send_task(handle, task_id, specs[index], state)
                except (OSError, ClusterError):
                    queue.appendleft(task_id)
                    handle.inflight.pop(task_id, None)
                    self._fail_worker(handle, queue, retries, "send failed")
                    break

    def _read_worker(
        self,
        handle: _WorkerHandle,
        queue: "deque[int]",
        results: "dict[int, RunResult]",
        id_to_index: "dict[int, int]",
        retries: "dict[int, int]",
    ) -> None:
        try:
            data = handle.sock.recv(_RECV_CHUNK)
        except OSError:
            self._fail_worker(handle, queue, retries, "receive failed")
            return
        if not data:
            self._fail_worker(handle, queue, retries, "connection closed")
            return
        handle.last_seen = time.monotonic()
        try:
            frames = handle.decoder.feed(data)
        except Exception as exc:
            # Framing errors AND unpickleable payloads (a worker on a
            # mismatched checkout returning classes this process lacks):
            # the stream is unusable, but only *this* worker is — fail
            # it and let its specs reassign rather than abort the batch.
            self._fail_worker(
                handle, queue, retries,
                f"undecodable stream ({type(exc).__name__}: {exc})",
            )
            return
        for kind, payload in frames:
            if kind == wire.MSG_HELLO:
                if payload.get("version") != wire.WIRE_VERSION:
                    self._fail_worker(
                        handle, queue, retries,
                        f"wire version mismatch ({payload.get('version')!r})",
                    )
                    return
                handle.hello = payload
                handle.proc = self._pending_procs.pop(payload.get("pid"), None)
            elif kind == wire.MSG_HEARTBEAT:
                pass  # last_seen already updated
            elif kind == wire.MSG_RESULT:
                task_id = payload["task_id"]
                handle.inflight.pop(task_id, None)
                handle.results_delivered += 1
                index = id_to_index.get(task_id)
                if index is None or index in results:
                    # Stale (previous batch) or already settled elsewhere:
                    # at-least-once delivery collapses to exactly-once here.
                    self.stats["duplicates_dropped"] += 1
                else:
                    results[index] = payload["result"]
                    kernel_used = payload.get("kernel")
                    if kernel_used == "vectorized":
                        self.kernel_stats["vectorized_replicates"] += 1
                        self.kernel_stats["kernel_installs"] += 1
                    else:
                        self.kernel_stats["scalar_replicates"] += 1
            elif kind == wire.MSG_ERROR:
                task_id = payload["task_id"]
                handle.inflight.pop(task_id, None)
                if task_id in id_to_index:
                    raise ClusterError(
                        "replicate failed on a cluster worker: "
                        f"{payload['message']} (execution is deterministic, "
                        "so reassignment cannot help)",
                        retryable=False,
                    )

    # -- teardown --------------------------------------------------------

    def shutdown(self) -> None:
        """Stop workers, close sockets, release the listener."""
        for handle in list(self._workers.values()):
            try:
                handle.send(wire.MSG_SHUTDOWN, {})
            except OSError:
                pass
            try:
                handle.sock.close()
            except OSError:
                pass
            if handle.proc is not None:
                self._reap(handle.proc)
        self._workers.clear()
        for proc in self._pending_procs.values():
            self._reap(proc)
        self._pending_procs.clear()
        if self._selector is not None:
            self._selector.close()
            self._selector = None
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        self._state_cache = None

    @staticmethod
    def _reap(proc: "subprocess.Popen") -> None:
        try:
            proc.wait(timeout=2.0)
        except subprocess.TimeoutExpired:
            proc.terminate()
            try:
                proc.wait(timeout=2.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()

    def __del__(self) -> None:
        try:
            self.shutdown()
        except Exception:
            pass

    def __repr__(self) -> str:
        return (
            f"ClusterBackend(n_workers={self.n_workers}, "
            f"host={self.host!r}, spawn_workers={self.spawn_workers})"
        )

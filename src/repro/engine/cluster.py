"""Elastic, fault-tolerant TCP cluster execution backend.

:class:`ClusterBackend` is the third :class:`~repro.engine.backends
.ExecutionBackend`: a coordinator that shards :class:`~repro.engine
.backends.ReplicateSpec` batches over worker *processes* connected by
TCP — spawned locally (``repro worker --connect host:port`` under the
hood), attached from other machines, or both.  It speaks the same
``ReplicateSpec``/shared-state protocol as the process pool, so every
caller of ``execute``/``execute_shared`` (estimators, the sweep
scheduler) gains multi-host fan-out without changing a line.

**Reproducibility under failure.**  All randomness lives inside each
spec's :class:`~numpy.random.SeedSequence` and
:func:`~repro.engine.backends.execute_replicate` is a pure function of
the spec, so *where* (and how many times) a replicate runs can never
change its result.  The coordinator therefore only has to deliver
exactly-once *semantics*, not exactly-once *execution*: every task
carries a globally unique id, at-least-once delivery (reassignment after
a crash, duplicated sends from a sick worker, speculative re-execution
of a straggler's task, stale results from a previous batch) collapses in
the coordinator's result table, and results return in submission order.
``SweepResult`` artifacts are therefore **byte-identical** to
:class:`~repro.engine.backends.SerialBackend` for the same root seed —
including under injected worker crashes and membership churn, which the
fault-injection suite (``tests/integration/test_cluster_faults.py``)
pins down.

**Elastic membership.**  The fleet is a *target*, not a roster: the
coordinator accepts attachments whenever its event loop runs, so workers
may join mid-sweep (they are handed shards of the current batch
immediately), drain gracefully (``--drain-after`` or SIGTERM → finish
the in-flight spec, send :data:`~repro.engine.wire.MSG_GOODBYE`, detach
— no crash path, no retry cost), and reconnect after a network flap
(exponential backoff with decorrelated jitter worker-side; a grace
window coordinator-side keeps the spawned process adopted so the
returning worker resumes its identity and its installed shared state).
Respawn budgets are fleet-size targets the coordinator converges toward.

**Authentication.**  Every connection starts with a mutual HMAC-SHA256
challenge-response keyed by the shared token (``--auth-token`` /
``REPRO_CLUSTER_TOKEN``); see :mod:`repro.engine.wire`.  No pickle
crosses the wire in either direction before the handshake completes, so
a stranger reaching the coordinator port can neither execute code nor
make the coordinator deserialize anything.

**Failure detection and recovery.**  Three mechanisms, in order of
latency: a closed socket (worker crash → immediate EOF), a heartbeat
timeout (workers push :data:`~repro.engine.wire.MSG_HEARTBEAT` from a
background thread, so a busy straggler stays alive while a hung or
partitioned worker is declared dead), and a per-batch respawn budget
that rebuilds locally spawned workers.  A dead worker's in-flight specs
are reassigned to the front of the queue; a spec that keeps killing
workers exhausts ``max_task_retries`` and raises a non-retryable
:class:`~repro.errors.ClusterError`, while a transient full-fleet loss
raises a *retryable* one that the engine's round-level retry
(:class:`~repro.engine.sweeps.SweepRunner`) turns into one clean re-run
of the batch.  Near the end of a batch, idle workers speculatively
re-execute the oldest still-outstanding tasks (straggler hedging) —
task-id dedup makes the duplicate free.

**Shared-state shipping.**  ``execute_shared`` reuses the content-digest
scheme from :mod:`repro.engine.backends`: the mapping is pickled once
per batch (identity/digest cached across batches), shipped to each
worker at most once per digest via a :data:`~repro.engine.wire
.MSG_STATE` frame, and slim specs resolve worker-side — so a sweep's
per-replicate wire payload shrinks to (seed, run kwargs) exactly as on
the process pool.  A reconnecting worker reports its installed digest
during the handshake, so shipping stays at-most-once per digest across
connection flaps.

**Fault injection.**  Workers accept a :class:`FaultPlan` (CLI
``--fault``) that makes failure deterministic enough to test: crash
after N results, drop the connection, disconnect-and-reconnect, drain
gracefully, join late, duplicate every result frame, or run slow.  This
is a test/chaos hook; production workers run with no plan.
"""

from __future__ import annotations

import itertools
import os
import pickle
import random
import secrets
import selectors
import signal
import socket
import subprocess
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.engine import wire
from repro.engine.backends import (
    ExecutionBackend,
    ReplicateSpec,
    check_batch_picklable,
    check_no_recorder,
    pickle_shared_state,
    resolve_replicate_spec,
    spec_has_refs,
)
from repro.engine.kernels import execute_specs, new_kernel_stats
from repro.engine.results import RunResult
from repro.errors import ClusterAuthError, ClusterError

#: How long a worker waits for the coordinator before giving up.
WORKER_CONNECT_TIMEOUT = 30.0

#: Per-connection worker-side read/write deadline: a hung coordinator
#: cannot wedge a worker's send forever.
WORKER_IO_TIMEOUT = 30.0

#: How often an idle worker wakes from ``recv`` to poll its drain flag.
WORKER_POLL_INTERVAL = 0.25

#: Bytes read per readiness event on the coordinator side.
_RECV_CHUNK = 1 << 16


# ----------------------------------------------------------------------
# fault injection plans (test/chaos hook)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic misbehavior for one worker (fault-injection tests).

    Attributes
    ----------
    die_after:
        Crash the worker process (no goodbye, like OOM/SIGKILL) after it
        has sent this many results.
    drop_after:
        Close the TCP connection after this many results but exit
        cleanly — a network drop rather than a process death.
    disconnect_after:
        Close the TCP connection after this many results and *reconnect*
        with backoff — a WAN flap.  Fires once per worker process.
    drain_after:
        Detach gracefully (GOODBYE, results all delivered) after this
        many results — a scale-down event, not a failure.
    slow_start:
        Sleep this many seconds before first connecting — a worker that
        joins the fleet mid-sweep.
    duplicate_results:
        Send every result frame twice (exercises coordinator dedup).
    slow:
        Sleep this many seconds before each task (a straggler that must
        *not* be declared dead while its heartbeats keep flowing).
    """

    die_after: "int | None" = None
    drop_after: "int | None" = None
    disconnect_after: "int | None" = None
    drain_after: "int | None" = None
    slow_start: float = 0.0
    duplicate_results: bool = False
    slow: float = 0.0

    def __post_init__(self) -> None:
        for name in ("die_after", "drop_after", "disconnect_after", "drain_after"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ClusterError(f"{name} must be >= 1, got {value}")
        if self.slow < 0:
            raise ClusterError(f"slow must be >= 0, got {self.slow}")
        if self.slow_start < 0:
            raise ClusterError(f"slow_start must be >= 0, got {self.slow_start}")

    @classmethod
    def parse(cls, text: "str | None") -> "FaultPlan":
        """Parse the CLI form: comma-separated fault tokens.

        ``die-after:N`` / ``drop-after:N`` / ``disconnect-after:N`` /
        ``drain-after:N`` / ``slow-start:SECONDS`` /
        ``duplicate-results`` / ``slow:SECONDS`` — e.g.
        ``"die-after:3,slow:0.05"``.
        """
        if not text:
            return cls()
        kwargs: "dict[str, Any]" = {}
        for token in text.split(","):
            token = token.strip()
            name, _, value = token.partition(":")
            try:
                if name == "die-after":
                    kwargs["die_after"] = int(value)
                elif name == "drop-after":
                    kwargs["drop_after"] = int(value)
                elif name == "disconnect-after":
                    kwargs["disconnect_after"] = int(value)
                elif name == "drain-after":
                    kwargs["drain_after"] = int(value)
                elif name == "slow-start":
                    kwargs["slow_start"] = float(value)
                elif name == "duplicate-results":
                    kwargs["duplicate_results"] = True
                elif name == "slow":
                    kwargs["slow"] = float(value)
                else:
                    raise ClusterError(
                        f"unknown fault token {token!r}; expected "
                        "die-after:N, drop-after:N, disconnect-after:N, "
                        "drain-after:N, slow-start:SECONDS, "
                        "duplicate-results or slow:SECONDS"
                    )
            except ValueError:
                raise ClusterError(
                    f"fault token {token!r} has a malformed value"
                ) from None
        return cls(**kwargs)

    def to_text(self) -> "str | None":
        """Inverse of :meth:`parse` (``None`` when no fault is armed)."""
        tokens = []
        if self.die_after is not None:
            tokens.append(f"die-after:{self.die_after}")
        if self.drop_after is not None:
            tokens.append(f"drop-after:{self.drop_after}")
        if self.disconnect_after is not None:
            tokens.append(f"disconnect-after:{self.disconnect_after}")
        if self.drain_after is not None:
            tokens.append(f"drain-after:{self.drain_after}")
        if self.slow_start:
            tokens.append(f"slow-start:{self.slow_start}")
        if self.duplicate_results:
            tokens.append("duplicate-results")
        if self.slow:
            tokens.append(f"slow:{self.slow}")
        return ",".join(tokens) if tokens else None


# ----------------------------------------------------------------------
# the worker loop (``repro ... worker --connect host:port``)
# ----------------------------------------------------------------------


def _jittered_backoff(base: float, previous: float, cap: float = 10.0) -> float:
    """Decorrelated-jitter exponential backoff (AWS architecture blog).

    Each delay is drawn uniformly from ``[base, 3 * previous]`` and
    capped, which decorrelates a fleet of workers reconnecting after the
    same network event without the synchronized retry spikes plain
    exponential backoff produces.
    """
    return min(cap, random.uniform(base, max(base, previous * 3.0)))


def new_worker_id() -> str:
    """A stable-for-the-process, globally unique worker identity."""
    return f"{socket.gethostname()}-{os.getpid()}-{secrets.token_hex(4)}"


class _WorkerState:
    """State that must survive a worker's reconnects.

    The installed shared-state mapping (and its digest, reported during
    the handshake so the coordinator keeps shipping at-most-once per
    digest), the completed-result count (fault triggers are cumulative
    across connections), and one-shot fault latches.
    """

    __slots__ = ("installed", "installed_digest", "completed", "disconnect_fired")

    def __init__(self) -> None:
        self.installed: "dict[str, Any]" = {}
        self.installed_digest: "str | None" = None
        self.completed = 0
        self.disconnect_fired = False


def worker_handshake(
    conn: "wire.Connection",
    token: str,
    worker_id: str,
    *,
    installed_digest: "str | None" = None,
    timeout: float = WORKER_CONNECT_TIMEOUT,
) -> None:
    """Run the worker side of the mutual HMAC handshake on ``conn``.

    On success the connection's pickle dialect is unlocked.  Raises
    :class:`ClusterAuthError` when either side fails authentication
    (not worth retrying) and :class:`ClusterError` for transport-level
    trouble (retryable with a fresh connection).
    """
    frame = conn.recv(timeout=timeout)
    if frame is wire.TIMEOUT or frame is None:
        raise ClusterError("coordinator never sent an auth challenge")
    kind, payload = frame
    if kind != wire.MSG_AUTH_CHALLENGE or not isinstance(payload, dict):
        raise ClusterError(f"expected auth challenge, got {kind!r}")
    versions = payload.get("versions")
    if not isinstance(versions, list) or wire.WIRE_VERSION not in versions:
        raise ClusterError(
            f"no common wire version (coordinator offers {versions!r}, "
            f"this worker speaks {list(wire.SUPPORTED_WIRE_VERSIONS)})"
        )
    challenge = payload.get("nonce")
    if not isinstance(challenge, str):
        raise ClusterError("malformed auth challenge (missing nonce)")
    nonce = wire.new_nonce()
    conn.send_json(
        wire.MSG_AUTH_RESPONSE,
        {
            "version": wire.WIRE_VERSION,
            "nonce": nonce,
            "worker_id": worker_id,
            "pid": os.getpid(),
            "installed_digest": installed_digest,
            "mac": wire.compute_mac(token, "worker", challenge, nonce, worker_id),
        },
    )
    reply = conn.recv(timeout=timeout)
    if reply is wire.TIMEOUT or reply is None:
        raise ClusterError("coordinator never answered the auth response")
    kind, payload = reply
    if kind == wire.MSG_AUTH_REJECT:
        reason = payload.get("reason") if isinstance(payload, dict) else None
        raise ClusterAuthError(f"coordinator rejected this worker: {reason}")
    if kind != wire.MSG_AUTH_OK or not isinstance(payload, dict):
        raise ClusterError(f"expected auth-ok, got {kind!r}")
    if not wire.verify_mac(
        token, "coordinator", (nonce, challenge), payload.get("mac")
    ):
        raise ClusterAuthError(
            "coordinator failed mutual authentication; refusing to "
            "deserialize anything it sends"
        )
    conn.allow_pickle = True


def _send_goodbye(conn: "wire.Connection", reason: str) -> str:
    try:
        conn.send(wire.MSG_GOODBYE, {"reason": reason})
        # Wait for the coordinator to acknowledge the drain by closing
        # the connection.  Closing first — with pipelined TASK frames
        # possibly still unread in our receive buffer — would RST the
        # link and could tear the goodbye (and the final result frames
        # ahead of it) out of the coordinator's receive queue.
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            frame = conn.recv(timeout=0.25)
            if frame is None:
                break
    except (ClusterError, OSError):
        pass
    conn.close()
    return "drained"


def _worker_session(
    conn: "wire.Connection",
    plan: FaultPlan,
    state: _WorkerState,
    drain: "threading.Event",
    heartbeat_interval: float,
    drain_after: "int | None",
) -> str:
    """One authenticated connection's receive loop.

    Returns an outcome tag: ``"shutdown"`` / ``"gone"`` / ``"drained"``
    / ``"dropped"`` end the worker cleanly, ``"lost"`` asks the outer
    loop to reconnect, ``"fatal"`` aborts with a nonzero exit.
    """
    stop = threading.Event()

    def beat() -> None:
        while not stop.wait(heartbeat_interval):
            try:
                conn.send(wire.MSG_HEARTBEAT, {})
            except OSError:
                return

    threading.Thread(target=beat, name="repro-heartbeat", daemon=True).start()
    try:
        while True:
            if drain.is_set():
                return _send_goodbye(conn, "drain requested by signal")
            frame = conn.recv(timeout=WORKER_POLL_INTERVAL)
            if frame is wire.TIMEOUT:
                continue
            if frame is None:
                return "gone"  # coordinator closed deliberately
            kind, payload = frame
            if kind == wire.MSG_SHUTDOWN:
                return "shutdown"
            if kind == wire.MSG_STATE:
                state.installed = pickle.loads(payload["blob"])
                digest = payload.get("digest")
                state.installed_digest = digest if isinstance(digest, str) else None
                continue
            if kind != wire.MSG_TASK:
                continue  # tolerate unknown kinds (forward compatibility)
            task_id = payload["task_id"]
            spec: ReplicateSpec = payload["spec"]
            if plan.slow:
                time.sleep(plan.slow)
            try:
                if spec_has_refs(spec):
                    spec = resolve_replicate_spec(spec, state.installed)
                # Kernel dispatch at batch size 1: spec.kernel rides the
                # wire inside the spec, so kernel="vectorized" engages
                # the lockstep path here too (auto stays scalar below
                # the batch-width floor); the kernel used is reported
                # back for the coordinator's engagement counters.
                kernel_stats = new_kernel_stats()
                result = execute_specs([spec], stats=kernel_stats)[0]
            except Exception as exc:  # deterministic: report, don't die
                conn.send(
                    wire.MSG_ERROR,
                    {
                        "task_id": task_id,
                        "message": f"{type(exc).__name__}: {exc}",
                    },
                )
                continue
            kernel_used = (
                "vectorized" if kernel_stats["vectorized_replicates"] else "scalar"
            )
            reply = {
                "task_id": task_id,
                "result": result,
                "kernel": kernel_used,
            }
            conn.send(wire.MSG_RESULT, reply)
            if plan.duplicate_results:
                conn.send(wire.MSG_RESULT, reply)
            state.completed += 1
            if plan.die_after is not None and state.completed >= plan.die_after:
                os._exit(17)  # simulated crash: no cleanup, no goodbye
            if plan.drop_after is not None and state.completed >= plan.drop_after:
                conn.close()  # simulated network drop (exits cleanly)
                return "dropped"
            if (
                plan.disconnect_after is not None
                and not state.disconnect_fired
                and state.completed >= plan.disconnect_after
            ):
                state.disconnect_fired = True
                conn.close()  # simulated WAN flap: reconnect with backoff
                return "lost"
            if drain_after is not None and state.completed >= drain_after:
                return _send_goodbye(
                    conn, f"drained after {state.completed} results"
                )
    except (ClusterError, OSError) as exc:
        print(
            f"worker: connection lost ({type(exc).__name__}: {exc})",
            file=sys.stderr,
        )
        return "lost"
    except Exception as exc:
        # A STATE/TASK payload this checkout cannot unpickle, or another
        # non-transport failure: reconnecting cannot help.
        print(
            f"worker: giving up ({type(exc).__name__}: {exc})",
            file=sys.stderr,
        )
        return "fatal"
    finally:
        stop.set()


def run_worker(
    host: str,
    port: int,
    *,
    fault: "FaultPlan | str | None" = None,
    heartbeat_interval: float = 1.0,
    auth_token: "str | None" = None,
    worker_id: "str | None" = None,
    drain_after: "int | None" = None,
    max_reconnects: int = 5,
    reconnect_backoff: float = 1.0,
) -> int:
    """Connect to a coordinator and execute tasks until told to stop.

    The worker is an outer (re)connect loop around a simple session: one
    receive loop plus a daemon heartbeat thread (so liveness signals
    flow even while a task computes).  Shared-state mappings install on
    :data:`~repro.engine.wire.MSG_STATE` and persist across reconnects;
    slim specs resolve against the installed mapping.

    Connection loss triggers reconnection with decorrelated-jitter
    exponential backoff (``reconnect_backoff`` seed, ``max_reconnects``
    consecutive failures allowed); the worker keeps its ``worker_id``
    across attempts so the coordinator can hand back its identity and
    skip re-shipping shared state.  SIGTERM (or ``drain_after``) drains
    gracefully: finish the in-flight spec, send GOODBYE, exit 0.

    Returns a process exit code: 0 clean, 1 gave up, 2 coordinator
    unreachable, 3 authentication rejected.
    """
    plan = FaultPlan.parse(fault) if isinstance(fault, str) else (fault or FaultPlan())
    token = wire.resolve_auth_token(auth_token)
    wid = worker_id or new_worker_id()
    if plan.drain_after is not None:
        drain_after = (
            plan.drain_after
            if drain_after is None
            else min(drain_after, plan.drain_after)
        )
    state = _WorkerState()
    drain = threading.Event()
    if threading.current_thread() is threading.main_thread():
        signal.signal(signal.SIGTERM, lambda *_args: drain.set())
    if plan.slow_start:
        time.sleep(plan.slow_start)  # a worker that joins mid-sweep

    ever_connected = False
    failures = 0
    delay = reconnect_backoff

    def back_off(why: str) -> bool:
        """Sleep before the next attempt; False once the budget is gone."""
        nonlocal failures, delay
        failures += 1
        if failures > max_reconnects:
            print(
                f"worker: giving up after {failures} attempts ({why})",
                file=sys.stderr,
            )
            return False
        delay = _jittered_backoff(reconnect_backoff, delay)
        time.sleep(delay)
        return True

    while True:
        try:
            sock = socket.create_connection(
                (host, port), timeout=WORKER_CONNECT_TIMEOUT
            )
        except OSError as exc:
            if not ever_connected:
                print(
                    f"worker: cannot reach coordinator {host}:{port}: {exc}",
                    file=sys.stderr,
                )
                return 2
            if not back_off(f"reconnect failed: {exc}"):
                return 1
            continue
        ever_connected = True
        sock.settimeout(WORKER_IO_TIMEOUT)
        conn = wire.Connection(sock, allow_pickle=False)
        try:
            worker_handshake(
                conn, token, wid, installed_digest=state.installed_digest
            )
        except ClusterAuthError as exc:
            conn.close()
            print(f"worker: {exc}", file=sys.stderr)
            return 3
        except (ClusterError, OSError) as exc:
            conn.close()
            if not back_off(f"handshake failed: {exc}"):
                return 1
            continue
        failures = 0
        delay = reconnect_backoff
        outcome = _worker_session(
            conn, plan, state, drain, heartbeat_interval, drain_after
        )
        conn.close()
        if outcome in ("shutdown", "gone", "drained", "dropped"):
            return 0
        if outcome == "fatal":
            return 1
        if not back_off("connection lost"):
            return 1


# ----------------------------------------------------------------------
# the coordinator
# ----------------------------------------------------------------------


class _WorkerHandle:
    """Coordinator-side bookkeeping for one connected worker."""

    _ids = itertools.count()

    def __init__(self, sock: socket.socket) -> None:
        self.id = next(self._ids)
        self.sock = sock
        # Pickle stays locked (and the frame cap stays at the handshake
        # bound) until the peer completes the HMAC handshake.
        self.decoder = wire.FrameDecoder(
            max_frame_bytes=wire.HANDSHAKE_MAX_FRAME_BYTES, allow_pickle=False
        )
        self.challenge = wire.new_nonce()
        self.auth: "Mapping[str, Any] | None" = None
        self.worker_id: "str | None" = None
        self.draining = False
        self.proc: "subprocess.Popen | None" = None
        self.installed_digest: "str | None" = None
        #: task id -> monotonic send time (feeds straggler speculation).
        self.inflight: "dict[int, float]" = {}
        self.created_at = time.monotonic()
        self.last_seen = self.created_at
        self.results_delivered = 0

    @property
    def ready(self) -> bool:
        """True once the worker authenticated (tasks may be sent)."""
        return self.auth is not None

    def send(self, kind: str, payload: "Any") -> None:
        self.sock.sendall(wire.encode_frame(kind, payload))

    def send_json(self, kind: str, payload: "Any") -> None:
        self.sock.sendall(wire.encode_json_frame(kind, payload))

    def __repr__(self) -> str:
        return (
            f"_WorkerHandle(id={self.id}, ready={self.ready}, "
            f"worker_id={self.worker_id!r})"
        )


class ClusterBackend(ExecutionBackend):
    """Execute replicate batches over TCP-connected worker processes.

    Parameters
    ----------
    n_workers:
        Fleet-size *target* the coordinator converges toward (local
        spawns) or expects (external attachments).  Membership is
        elastic: workers may attach, drain, and reconnect mid-sweep.
    host / port:
        Coordinator bind address; port 0 picks an ephemeral port (read
        it back from :attr:`address`).  Bind a routable host (e.g.
        ``"0.0.0.0"``) to let workers on other machines attach with
        ``repro ... worker --connect <host>:<port>``.
    spawn_workers:
        Spawn ``n_workers`` local worker processes on first use and
        respawn them after failures (default).  ``False`` waits for
        external workers to attach instead.
    worker_faults:
        Optional per-spawn-ordinal fault plans (test/chaos hook):
        element ``i`` arms the ``i``-th worker ever spawned; respawned
        replacements beyond the list run clean.
    auth_token:
        Shared secret for the HMAC handshake; defaults to
        ``REPRO_CLUSTER_TOKEN`` (empty = localhost trust, but the
        handshake still runs).  Spawned workers inherit it via their
        environment, never via argv.
    heartbeat_timeout:
        Seconds of silence after which a worker is declared dead and its
        in-flight specs reassigned.  Workers heartbeat from a background
        thread, so a straggler mid-task stays alive.
    connect_timeout:
        Seconds to wait for the first ready worker of a batch.
    handshake_timeout:
        Seconds a new connection may spend unauthenticated before it is
        dropped (a stranger cannot hold a socket open indefinitely).
    reconnect_grace:
        Seconds the coordinator keeps a disconnected spawned worker's
        process adopted, waiting for it to reconnect, before terminating
        it and (budget permitting) respawning.
    speculation_delay:
        Once the batch queue is empty, an idle worker speculatively
        re-executes the oldest task that has been in flight longer than
        this many seconds (0 disables).  Dedup makes this free of
        double-count risk.
    window:
        In-flight specs per worker (pipelining depth; keeps a worker's
        next task in its socket buffer while it computes the current
        one).
    max_task_retries:
        Reassignments one spec may survive before the batch fails — a
        spec that kills every worker it lands on must not retry forever.
    max_respawns:
        Local respawns allowed per batch (default: ``n_workers``).
    max_frame_bytes:
        Per-connection frame-size cap once authenticated (the handshake
        itself always runs under the much smaller handshake cap).
    worker_reconnects / worker_reconnect_backoff:
        Reconnect budget and backoff seed passed to spawned workers.
    """

    name = "cluster"

    def __init__(
        self,
        n_workers: "int | None" = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        spawn_workers: bool = True,
        worker_faults: "Sequence[FaultPlan | str | None] | None" = None,
        auth_token: "str | None" = None,
        heartbeat_timeout: float = 30.0,
        connect_timeout: float = 60.0,
        handshake_timeout: float = 10.0,
        reconnect_grace: float = 10.0,
        speculation_delay: float = 5.0,
        window: int = 2,
        max_task_retries: int = 3,
        max_respawns: "int | None" = None,
        io_timeout: float = 30.0,
        max_frame_bytes: int = wire.MAX_FRAME_BYTES,
        worker_reconnects: int = 3,
        worker_reconnect_backoff: float = 0.25,
    ) -> None:
        if n_workers is None:
            n_workers = 2
        if n_workers < 1:
            raise ClusterError(f"n_workers must be positive, got {n_workers}")
        if window < 1:
            raise ClusterError(f"window must be positive, got {window}")
        if heartbeat_timeout <= 0 or connect_timeout <= 0 or handshake_timeout <= 0:
            raise ClusterError("timeouts must be positive")
        if reconnect_grace < 0 or speculation_delay < 0:
            raise ClusterError("reconnect_grace and speculation_delay must be >= 0")
        if max_frame_bytes < wire.HANDSHAKE_MAX_FRAME_BYTES:
            raise ClusterError(
                f"max_frame_bytes must be at least "
                f"{wire.HANDSHAKE_MAX_FRAME_BYTES}, got {max_frame_bytes}"
            )
        if worker_reconnects < 0 or worker_reconnect_backoff <= 0:
            raise ClusterError("worker reconnect knobs must be positive")
        self.n_workers = int(n_workers)
        self.host = host
        self.port = port
        self.spawn_workers = spawn_workers
        self.worker_faults = list(worker_faults or [])
        self.auth_token = wire.resolve_auth_token(auth_token)
        self.heartbeat_timeout = heartbeat_timeout
        self.connect_timeout = connect_timeout
        self.handshake_timeout = handshake_timeout
        self.reconnect_grace = reconnect_grace
        self.speculation_delay = speculation_delay
        self.window = int(window)
        self.max_task_retries = int(max_task_retries)
        self.max_respawns = (
            int(max_respawns) if max_respawns is not None else self.n_workers
        )
        self.io_timeout = io_timeout
        self.max_frame_bytes = int(max_frame_bytes)
        self.worker_reconnects = int(worker_reconnects)
        self.worker_reconnect_backoff = worker_reconnect_backoff
        self._listener: "socket.socket | None" = None
        self._selector: "selectors.BaseSelector | None" = None
        self._workers: "dict[int, _WorkerHandle]" = {}
        self._pending_procs: "dict[int, subprocess.Popen]" = {}  # pid -> proc
        #: worker_id -> (adopted process, reconnect deadline): spawned
        #: workers whose connection dropped but whose process may still
        #: come back within the grace window.
        self._disconnected: "dict[str, tuple[subprocess.Popen, float]]" = {}
        #: Every worker_id that ever authenticated (re-auth = reconnect).
        self._seen_worker_ids: "set[str]" = set()
        self._spawn_ordinal = 0
        self._respawns_left = self.max_respawns
        self._free_spawns = 0
        self._next_task_id = 0
        #: Cached (mapping, digest, blob) so a sweep's stable mapping is
        #: pickled once, not once per round (identity first, then digest
        #: — the scheme shared with ProcessPoolBackend).
        self._state_cache: "tuple[Mapping[str, Any], str, bytes] | None" = None
        #: Failure/recovery telemetry, cumulative across batches; the
        #: fault-injection suite asserts on these.
        self.stats: "dict[str, int]" = {}
        self.reset_stats()
        #: Kernel-engagement counters aggregated from worker result
        #: frames (see :func:`repro.engine.kernels.new_kernel_stats`).
        #: Each cluster task is a one-spec kernel dispatch, so a
        #: vectorized replicate counts as its own install.
        self.kernel_stats = new_kernel_stats()

    def reset_stats(self) -> None:
        """Zero the failure/recovery/membership counters."""
        self.stats = {
            "batches": 0,
            "worker_failures": 0,
            "reassigned": 0,
            "duplicates_dropped": 0,
            "respawns": 0,
            "state_installs": 0,
            "auth_rejected": 0,
            "external_joins": 0,
            "reconnects": 0,
            "drains": 0,
            "speculated": 0,
        }

    # -- public backend protocol ---------------------------------------

    def execute(self, specs: "Sequence[ReplicateSpec]") -> "list[RunResult]":
        if not specs:
            return []
        return self._run_batch(list(specs), state=None)

    def execute_shared(
        self,
        specs: "Sequence[ReplicateSpec]",
        shared_state: "Mapping[str, Any]",
    ) -> "list[RunResult]":
        if not specs:
            return []
        return self._run_batch(list(specs), state=self._encode_state(shared_state))

    @property
    def address(self) -> "tuple[str, int]":
        """The coordinator's bound ``(host, port)`` (binds if needed)."""
        self._ensure_listener()
        assert self._listener is not None
        addr = self._listener.getsockname()
        return (addr[0], addr[1])

    # -- state shipping -------------------------------------------------

    def _encode_state(
        self, shared_state: "Mapping[str, Any]"
    ) -> "tuple[str, bytes]":
        if self._state_cache is not None:
            cached_mapping, digest, blob = self._state_cache
            if shared_state is cached_mapping:
                return digest, blob
        digest, blob = pickle_shared_state(shared_state)
        if self._state_cache is not None and digest == self._state_cache[1]:
            blob = self._state_cache[2]
        self._state_cache = (shared_state, digest, blob)
        return digest, blob

    # -- fleet management ----------------------------------------------

    def _ensure_listener(self) -> None:
        if self._listener is not None:
            return
        listener = socket.create_server(
            (self.host, self.port), backlog=max(16, 2 * self.n_workers)
        )
        listener.setblocking(False)
        self._listener = listener
        self._selector = selectors.DefaultSelector()
        self._selector.register(listener, selectors.EVENT_READ, data=None)

    def _fault_for(self, ordinal: int) -> "str | None":
        if ordinal >= len(self.worker_faults):
            return None
        fault = self.worker_faults[ordinal]
        if fault is None:
            return None
        if isinstance(fault, FaultPlan):
            return fault.to_text()
        return str(fault)

    def _spawn_worker(self) -> None:
        """Launch one local worker process pointed at the listener."""
        host, port = self.address
        connect_host = "127.0.0.1" if host in ("0.0.0.0", "::") else host
        interval = min(2.0, max(0.1, self.heartbeat_timeout / 4.0))
        command = [
            sys.executable,
            "-m",
            "repro.experiments.cli",
            "worker",
            "--connect",
            f"{connect_host}:{port}",
            "--heartbeat-interval",
            str(interval),
            "--max-reconnects",
            str(self.worker_reconnects),
            "--reconnect-backoff",
            str(self.worker_reconnect_backoff),
        ]
        fault = self._fault_for(self._spawn_ordinal)
        if fault:
            command += ["--fault", fault]
        self._spawn_ordinal += 1
        import repro

        package_root = str(Path(repro.__file__).resolve().parent.parent)
        # A local worker must mirror the coordinator's import environment
        # (the fork-based process pool gets this for free): specs may
        # reference classes from any module the parent can import — the
        # test suites' module-level factories included — so ship the
        # parent's whole sys.path, with the repro package root first.
        search_path = [package_root]
        search_path += [entry for entry in sys.path if entry]
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        if existing:
            search_path.append(existing)
        env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(search_path))
        # The token travels through the environment, never argv (argv is
        # world-readable in `ps`).
        env[wire.AUTH_TOKEN_ENV_VAR] = self.auth_token
        proc = subprocess.Popen(
            command,
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=None,  # surface worker tracebacks in the parent's stderr
        )
        self._pending_procs[proc.pid] = proc

    def _prune_disconnected(self) -> None:
        """Drop stashed processes that died or overstayed their grace."""
        now = time.monotonic()
        for worker_id in list(self._disconnected):
            proc, deadline = self._disconnected[worker_id]
            if proc.poll() is not None:
                del self._disconnected[worker_id]
            elif now > deadline:
                proc.terminate()
                try:
                    proc.wait(timeout=0.2)
                except subprocess.TimeoutExpired:
                    pass
                del self._disconnected[worker_id]

    def _maintain_fleet(self) -> None:
        """Converge (connected + pending + awaiting-reconnect) local
        workers toward the ``n_workers`` target.

        Each batch may bring the fleet up to strength for free (its
        ``_free_spawns`` allowance, set at batch start and credited when
        a worker drains gracefully); every further spawn is a respawn
        and draws on the per-batch budget, so a worker that crashes on
        arrival cannot respawn-loop forever — while a *retried* batch
        starts with a fresh allowance and can rebuild a fully lost
        fleet.  Disconnected-but-alive spawned workers count toward the
        target while their reconnect grace lasts.
        """
        if not self.spawn_workers:
            return
        self._prune_disconnected()
        for pid in [
            pid
            for pid, proc in self._pending_procs.items()
            if proc.poll() is not None
        ]:
            del self._pending_procs[pid]  # died before authenticating
        spawned_live = (
            sum(1 for handle in self._workers.values() if handle.proc is not None)
            + len(self._pending_procs)
            + len(self._disconnected)
        )
        while spawned_live < self.n_workers:
            if self._free_spawns > 0:
                self._free_spawns -= 1
            else:
                if self._respawns_left <= 0:
                    return
                self._respawns_left -= 1
                self.stats["respawns"] += 1
            self._spawn_worker()
            spawned_live += 1

    def _accept_connections(self) -> None:
        assert self._listener is not None and self._selector is not None
        while True:
            try:
                sock, _addr = self._listener.accept()
            except BlockingIOError:
                return
            except OSError:
                return
            sock.settimeout(self.io_timeout)
            handle = _WorkerHandle(sock)
            self._workers[handle.id] = handle
            self._selector.register(sock, selectors.EVENT_READ, data=handle)
            try:
                handle.send_json(
                    wire.MSG_AUTH_CHALLENGE,
                    {
                        "versions": list(wire.SUPPORTED_WIRE_VERSIONS),
                        "nonce": handle.challenge,
                    },
                )
            except OSError:
                self._drop_unauthenticated(handle, "challenge send failed")

    def _drop_unauthenticated(self, handle: _WorkerHandle, reason: str) -> None:
        """Disconnect a peer that never authenticated (not a failure)."""
        self.stats["auth_rejected"] += 1
        try:
            handle.send_json(wire.MSG_AUTH_REJECT, {"reason": reason})
        except OSError:
            pass
        self._discard_handle(handle)

    def _discard_handle(self, handle: _WorkerHandle) -> None:
        assert self._selector is not None
        try:
            self._selector.unregister(handle.sock)
        except (KeyError, ValueError):
            pass
        try:
            handle.sock.close()
        except OSError:
            pass
        self._workers.pop(handle.id, None)

    def _complete_handshake(
        self, handle: _WorkerHandle, payload: "Any"
    ) -> None:
        """Verify an auth response; on success unlock the pickle dialect."""
        if not isinstance(payload, dict):
            self._drop_unauthenticated(handle, "malformed auth response")
            return
        version = payload.get("version")
        if version not in wire.SUPPORTED_WIRE_VERSIONS:
            self._drop_unauthenticated(
                handle,
                f"unsupported wire version {version!r} (this coordinator "
                f"speaks {list(wire.SUPPORTED_WIRE_VERSIONS)})",
            )
            return
        worker_id = payload.get("worker_id")
        nonce = payload.get("nonce")
        if (
            not isinstance(worker_id, str)
            or not worker_id
            or len(worker_id) > 128
            or not isinstance(nonce, str)
        ):
            self._drop_unauthenticated(handle, "malformed auth response")
            return
        if not wire.verify_mac(
            self.auth_token,
            "worker",
            (handle.challenge, nonce, worker_id),
            payload.get("mac"),
        ):
            self._drop_unauthenticated(handle, "authentication failed")
            return
        try:
            handle.send_json(
                wire.MSG_AUTH_OK,
                {
                    "version": wire.WIRE_VERSION,
                    "mac": wire.compute_mac(
                        self.auth_token, "coordinator", nonce, handle.challenge
                    ),
                },
            )
        except OSError:
            self._discard_handle(handle)
            return
        handle.auth = payload
        handle.worker_id = worker_id
        handle.decoder.allow_pickle = True
        handle.decoder.max_frame_bytes = self.max_frame_bytes
        stash = self._disconnected.pop(worker_id, None)
        if stash is not None:
            handle.proc = stash[0]  # the same spawned process came back
        else:
            pid = payload.get("pid")
            if isinstance(pid, int):
                handle.proc = self._pending_procs.pop(pid, None)
        if worker_id in self._seen_worker_ids:
            self.stats["reconnects"] += 1
        elif handle.proc is None:
            self.stats["external_joins"] += 1
        self._seen_worker_ids.add(worker_id)
        digest = payload.get("installed_digest")
        handle.installed_digest = digest if isinstance(digest, str) else None

    def _fail_worker(
        self,
        handle: _WorkerHandle,
        queue: "deque[int]",
        retries: "dict[int, int]",
        results: "dict[int, RunResult]",
        id_to_index: "dict[int, int]",
        reason: str,
    ) -> None:
        """Remove a dead worker and reassign its in-flight specs.

        A spawned worker whose *process* is still alive is stashed under
        its worker id for ``reconnect_grace`` seconds instead of being
        terminated — a WAN flap comes back, a crash does not.
        """
        self.stats["worker_failures"] += 1
        self._discard_handle(handle)
        stashed = False
        if (
            handle.proc is not None
            and handle.worker_id is not None
            and self.reconnect_grace > 0
            and handle.proc.poll() is None
        ):
            self._disconnected[handle.worker_id] = (
                handle.proc,
                time.monotonic() + self.reconnect_grace,
            )
            stashed = True
        if handle.proc is not None and not stashed:
            if handle.proc.poll() is None:
                handle.proc.terminate()
            # Reap without blocking the batch; shutdown() sweeps stragglers.
            try:
                handle.proc.wait(timeout=0.2)
            except subprocess.TimeoutExpired:
                pass
        for task_id in sorted(handle.inflight, reverse=True):
            index = id_to_index.get(task_id)
            if index is None or index in results:
                continue  # stale or already settled (speculation won)
            retries[task_id] = retries.get(task_id, 0) + 1
            if retries[task_id] > self.max_task_retries:
                raise ClusterError(
                    f"replicate task survived {self.max_task_retries} "
                    f"reassignments and still failed (last worker lost: "
                    f"{reason}); the spec itself is suspect",
                    retryable=False,
                )
            self.stats["reassigned"] += 1
            queue.appendleft(task_id)

    def _detach_drained(self, handle: _WorkerHandle) -> None:
        """A drained worker closed its connection: a clean goodbye."""
        self._discard_handle(handle)
        if handle.proc is not None:
            self._reap(handle.proc)

    # -- the batch loop -------------------------------------------------

    def _send_task(
        self,
        handle: _WorkerHandle,
        task_id: int,
        spec: ReplicateSpec,
        state: "tuple[str, bytes] | None",
    ) -> None:
        if state is not None and handle.installed_digest != state[0]:
            handle.send(wire.MSG_STATE, {"digest": state[0], "blob": state[1]})
            handle.installed_digest = state[0]
            self.stats["state_installs"] += 1
        handle.inflight[task_id] = time.monotonic()
        handle.send(wire.MSG_TASK, {"task_id": task_id, "spec": spec})

    def _run_batch(
        self,
        specs: "list[ReplicateSpec]",
        state: "tuple[str, bytes] | None",
    ) -> "list[RunResult]":
        check_no_recorder(specs, backend_hint="the cluster backend")
        check_batch_picklable(specs)
        self._ensure_listener()
        assert self._selector is not None
        self.stats["batches"] += 1
        self._respawns_left = self.max_respawns
        self._prune_disconnected()
        live = (
            sum(1 for h in self._workers.values() if h.proc is not None)
            + len(self._pending_procs)
            + len(self._disconnected)
        )
        self._free_spawns = max(0, self.n_workers - live)
        # Between batches nobody reads the sockets, so worker heartbeats
        # pile up unread in kernel buffers; without a reset, a long gap
        # would read as silence and fail a healthy fleet.  Stale in-flight
        # entries (an aborted batch) are obsolete task ids — drop them.
        fresh_start = time.monotonic()
        for handle in self._workers.values():
            handle.last_seen = fresh_start
            handle.inflight.clear()

        id_to_index: "dict[int, int]" = {}
        for index in range(len(specs)):
            id_to_index[self._next_task_id] = index
            self._next_task_id += 1
        task_ids = sorted(id_to_index)
        queue: "deque[int]" = deque(task_ids)
        results: "dict[int, RunResult]" = {}
        retries: "dict[int, int]" = {}
        speculated: "set[int]" = set()
        batch_start = time.monotonic()

        had_ready_worker = False
        while len(results) < len(specs):
            self._maintain_fleet()
            if (
                not self._workers
                and not self._pending_procs
                and not self._disconnected
                and had_ready_worker
            ):
                # The whole fleet died mid-batch.  With local spawning
                # the respawn budget is exhausted but a *fresh* batch
                # gets a fresh budget, so the failure is transient and
                # the engine's round-level retry may re-run it.
                raise ClusterError(
                    "every cluster worker was lost mid-batch and the "
                    "respawn budget is exhausted; the batch can be "
                    "retried against a fresh fleet",
                    retryable=self.spawn_workers,
                )
            now = time.monotonic()
            if any(handle.ready for handle in self._workers.values()):
                had_ready_worker = True
            elif now - batch_start > self.connect_timeout:
                raise ClusterError(
                    f"no worker became ready within {self.connect_timeout}s "
                    f"(listening on {self.address[0]}:{self.address[1]}); "
                    "check that workers can reach the coordinator",
                    retryable=False,
                )
            for handle in list(self._workers.values()):
                if (
                    not handle.ready
                    and now - handle.created_at > self.handshake_timeout
                ):
                    self._drop_unauthenticated(handle, "handshake timeout")
                elif (
                    handle.ready
                    and not handle.draining
                    and handle.inflight
                    and now - handle.last_seen > self.heartbeat_timeout
                ):
                    self._fail_worker(
                        handle,
                        queue,
                        retries,
                        results,
                        id_to_index,
                        f"no heartbeat for {self.heartbeat_timeout}s",
                    )
            self._dispatch(queue, results, id_to_index, specs, state, retries)
            if not queue:
                self._speculate(
                    queue, results, id_to_index, specs, state, retries, speculated
                )
            events = self._selector.select(timeout=0.05)
            for key, _mask in events:
                if key.data is None:
                    self._accept_connections()
                else:
                    self._read_worker(
                        key.data, queue, results, id_to_index, retries
                    )
        return [results[index] for index in range(len(specs))]

    def _dispatch(
        self,
        queue: "deque[int]",
        results: "dict[int, RunResult]",
        id_to_index: "dict[int, int]",
        specs: "list[ReplicateSpec]",
        state: "tuple[str, bytes] | None",
        retries: "dict[int, int]",
    ) -> None:
        for handle in list(self._workers.values()):
            if not handle.ready or handle.draining:
                continue
            while queue and len(handle.inflight) < self.window:
                task_id = queue[0]
                index = id_to_index[task_id]
                if index in results:
                    queue.popleft()  # settled while waiting for reassignment
                    continue
                queue.popleft()
                try:
                    self._send_task(handle, task_id, specs[index], state)
                except (OSError, ClusterError):
                    queue.appendleft(task_id)
                    handle.inflight.pop(task_id, None)
                    self._fail_worker(
                        handle, queue, retries, results, id_to_index,
                        "send failed",
                    )
                    break

    def _speculate(
        self,
        queue: "deque[int]",
        results: "dict[int, RunResult]",
        id_to_index: "dict[int, int]",
        specs: "list[ReplicateSpec]",
        state: "tuple[str, bytes] | None",
        retries: "dict[int, int]",
        speculated: "set[int]",
    ) -> None:
        """Hedge stragglers: idle workers re-run the oldest in-flight task.

        Only once the queue is empty (end-of-batch), only for tasks in
        flight longer than ``speculation_delay``, and at most one extra
        copy per task per batch.  The coordinator's dedup absorbs the
        losing copy, so results stay exactly-once by construction.
        """
        if not self.speculation_delay:
            return
        idle = [
            handle
            for handle in self._workers.values()
            if handle.ready and not handle.draining and not handle.inflight
        ]
        if not idle:
            return
        now = time.monotonic()
        outstanding = sorted(
            (sent_at, task_id)
            for handle in self._workers.values()
            for task_id, sent_at in handle.inflight.items()
            if task_id not in speculated
            and id_to_index.get(task_id) is not None
            and id_to_index[task_id] not in results
        )
        for handle in idle:
            if not outstanding:
                return
            sent_at, task_id = outstanding[0]
            if now - sent_at < self.speculation_delay:
                return  # the oldest copy is still young; so is the rest
            outstanding.pop(0)
            try:
                self._send_task(handle, task_id, specs[id_to_index[task_id]], state)
            except (OSError, ClusterError):
                handle.inflight.pop(task_id, None)
                self._fail_worker(
                    handle, queue, retries, results, id_to_index, "send failed"
                )
                continue
            speculated.add(task_id)
            self.stats["speculated"] += 1

    def _read_worker(
        self,
        handle: _WorkerHandle,
        queue: "deque[int]",
        results: "dict[int, RunResult]",
        id_to_index: "dict[int, int]",
        retries: "dict[int, int]",
    ) -> None:
        try:
            data = handle.sock.recv(_RECV_CHUNK)
        except OSError:
            if handle.draining:
                self._detach_drained(handle)
            elif not handle.ready:
                self._drop_unauthenticated(handle, "receive failed")
            else:
                self._fail_worker(
                    handle, queue, retries, results, id_to_index,
                    "receive failed",
                )
            return
        if not data:
            if handle.draining:
                self._detach_drained(handle)
            elif not handle.ready:
                self._drop_unauthenticated(
                    handle, "disconnected during handshake"
                )
            else:
                self._fail_worker(
                    handle, queue, retries, results, id_to_index,
                    "connection closed",
                )
            return
        handle.last_seen = time.monotonic()
        try:
            frames = handle.decoder.feed(data)
        except Exception as exc:
            # Framing errors, a pickle frame from an unauthenticated
            # peer (refused *before* pickle.loads by the decoder), AND
            # unpickleable payloads (a worker on a mismatched checkout
            # returning classes this process lacks): the stream is
            # unusable, but only *this* worker is — drop/fail it and let
            # its specs reassign rather than abort the batch.
            if not handle.ready:
                self._drop_unauthenticated(
                    handle, f"protocol violation ({type(exc).__name__}: {exc})"
                )
            else:
                self._fail_worker(
                    handle, queue, retries, results, id_to_index,
                    f"undecodable stream ({type(exc).__name__}: {exc})",
                )
            return
        for kind, payload in frames:
            if not handle.ready:
                if kind != wire.MSG_AUTH_RESPONSE:
                    self._drop_unauthenticated(
                        handle, f"unexpected {kind!r} before authentication"
                    )
                    return
                self._complete_handshake(handle, payload)
                if not handle.ready:
                    return  # handshake failed; handle already dropped
                continue
            if kind == wire.MSG_HEARTBEAT:
                pass  # last_seen already updated
            elif kind == wire.MSG_RESULT:
                task_id = payload["task_id"]
                handle.inflight.pop(task_id, None)
                handle.results_delivered += 1
                index = id_to_index.get(task_id)
                if index is None or index in results:
                    # Stale (previous batch), speculation's losing copy,
                    # or already settled elsewhere: at-least-once
                    # delivery collapses to exactly-once here.
                    self.stats["duplicates_dropped"] += 1
                else:
                    results[index] = payload["result"]
                    kernel_used = payload.get("kernel")
                    if kernel_used == "vectorized":
                        self.kernel_stats["vectorized_replicates"] += 1
                        self.kernel_stats["kernel_installs"] += 1
                    else:
                        self.kernel_stats["scalar_replicates"] += 1
            elif kind == wire.MSG_GOODBYE:
                # Graceful drain: not a failure, no retry cost.  GOODBYE
                # is the last frame the worker sends, so everything it
                # ran has been delivered; whatever was still queued on it
                # goes back to the front of the line, a spawned worker's
                # replacement is free, and closing the connection here
                # releases the worker (it lingers until our EOF so no
                # result frame can be torn off the wire by an RST).
                handle.draining = True
                self.stats["drains"] += 1
                if handle.proc is not None:
                    self._free_spawns += 1
                for task_id in sorted(handle.inflight, reverse=True):
                    index = id_to_index.get(task_id)
                    if index is None or index in results:
                        continue
                    queue.appendleft(task_id)
                handle.inflight.clear()
                self._detach_drained(handle)
                return
            elif kind == wire.MSG_ERROR:
                task_id = payload["task_id"]
                handle.inflight.pop(task_id, None)
                if task_id in id_to_index:
                    raise ClusterError(
                        "replicate failed on a cluster worker: "
                        f"{payload['message']} (execution is deterministic, "
                        "so reassignment cannot help)",
                        retryable=False,
                    )

    # -- teardown --------------------------------------------------------

    def shutdown(self) -> None:
        """Stop workers, close sockets, release the listener."""
        for handle in list(self._workers.values()):
            if handle.ready:
                try:
                    handle.send(wire.MSG_SHUTDOWN, {})
                except OSError:
                    pass
            try:
                handle.sock.close()
            except OSError:
                pass
            if handle.proc is not None:
                self._reap(handle.proc)
        self._workers.clear()
        for proc in self._pending_procs.values():
            self._reap(proc)
        self._pending_procs.clear()
        for proc, _deadline in self._disconnected.values():
            self._reap(proc)
        self._disconnected.clear()
        if self._selector is not None:
            self._selector.close()
            self._selector = None
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        self._state_cache = None

    @staticmethod
    def _reap(proc: "subprocess.Popen") -> None:
        try:
            proc.wait(timeout=2.0)
        except subprocess.TimeoutExpired:
            proc.terminate()
            try:
                proc.wait(timeout=2.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()

    def __del__(self) -> None:
        try:
            self.shutdown()
        except Exception:
            pass

    def __repr__(self) -> str:
        return (
            f"ClusterBackend(n_workers={self.n_workers}, "
            f"host={self.host!r}, spawn_workers={self.spawn_workers})"
        )

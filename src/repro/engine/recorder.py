"""Trace recording for simulation runs.

A :class:`TraceRecorder` samples the trajectory every ``sample_every``
events: time, variance, and any custom probes (named functions of the
value vector).  Sampling is amortized — the engine touches the recorder
only at sampling points, so even dense probes (e.g. the paper's
``(mu1, mu2, sigma)`` decomposition) cost nothing between samples.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import numpy as np


class TraceRecorder:
    """Samples (time, variance, probes...) along a trajectory.

    Parameters
    ----------
    sample_every:
        Record one sample per this many events (>= 1).  A sample is also
        taken at time 0 and after the final event.
    probes:
        Optional mapping ``name -> fn(values_array) -> float``; each probe
        is evaluated at every sampling point.
    """

    def __init__(
        self,
        sample_every: int = 1_000,
        *,
        probes: "Mapping[str, Callable[[np.ndarray], float]] | None" = None,
    ) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.sample_every = int(sample_every)
        self._probes = dict(probes) if probes else {}
        self._times: list[float] = []
        self._variances: list[float] = []
        self._probe_values: "dict[str, list[float]]" = {
            name: [] for name in self._probes
        }

    # ------------------------------------------------------------------
    # engine-facing interface
    # ------------------------------------------------------------------

    def record(self, time: float, variance: float, values: "Sequence[float]") -> None:
        """Store one sample (called by the engine; users read the arrays)."""
        self._times.append(time)
        self._variances.append(variance)
        if self._probes:
            array = np.asarray(values, dtype=np.float64)
            for name, fn in self._probes.items():
                self._probe_values[name].append(float(fn(array)))

    # ------------------------------------------------------------------
    # user-facing accessors
    # ------------------------------------------------------------------

    @property
    def times(self) -> np.ndarray:
        """Sample times."""
        return np.asarray(self._times, dtype=np.float64)

    @property
    def variances(self) -> np.ndarray:
        """Variance at each sample time."""
        return np.asarray(self._variances, dtype=np.float64)

    def probe(self, name: str) -> np.ndarray:
        """Sampled values of the named probe."""
        if name not in self._probe_values:
            raise KeyError(
                f"unknown probe {name!r}; available: {sorted(self._probe_values)}"
            )
        return np.asarray(self._probe_values[name], dtype=np.float64)

    @property
    def n_samples(self) -> int:
        """Number of samples stored so far."""
        return len(self._times)

    def clear(self) -> None:
        """Drop all stored samples (recorders are reusable across runs)."""
        self._times.clear()
        self._variances.clear()
        for values in self._probe_values.values():
            values.clear()

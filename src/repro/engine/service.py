"""Thin HTTP service over the results store: submit → poll → fetch.

The "millions of users" serving shape: one long-lived process owns a
:class:`~repro.engine.store.ResultsStore` and **one** execution backend
(a warm process pool, or the cluster backend's persistent worker
fleet), and exposes three stdlib-``http.server`` endpoints:

* ``POST /v1/sweeps`` — submit a sweep request (JSON body: ``sweep_id``
  plus optional ``scale`` / ``seed`` / ``axes`` / ``budget`` /
  ``kernel``).  The request is fingerprinted
  (:func:`~repro.engine.store.sweep_fingerprint`); a known fingerprint
  answers instantly from the store — ``status: done`` with zero
  simulation work — while a new one claims a run row and queues the
  computation.  Responds ``{"run_id", "fingerprint", "status",
  "cache_hit"}``.
* ``GET /v1/runs`` / ``GET /v1/runs/<run_id>`` — poll run status
  (``queued`` → ``running`` → ``done`` | ``failed``).
* ``GET /v1/runs/<run_id>/result`` — fetch a done run's stored
  canonical JSON, byte-identical to the artifact a direct run saves.

Also ``GET /v1/healthz`` (liveness + backend name + queue depth) and
``GET /v1/runs/<run_id>/envelope`` (provenance envelope).

Computations run on a single background worker thread, one sweep at a
time — replicate-level parallelism belongs to the backend (that is the
whole engine design), so serializing sweeps keeps the fleet saturated
without oversubscribing it.  Submissions arriving for a fingerprint
already in flight coalesce onto the existing run row instead of
recomputing.

The service deliberately speaks *declared* sweeps only (the ``SWEEPS``
registry ids): a network request can select and parameterize known
grids but can never ship code, so the endpoint stays safe to expose to
untrusted readers the way the cluster wire protocol is not.
"""

from __future__ import annotations

import json
import queue
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Mapping

from repro.engine.backends import ExecutionBackend, resolve_backend
from repro.engine.store import (
    STORE_SCHEMA,
    ResultsStore,
    StoredRun,
    sweep_fingerprint,
)
from repro.engine.sweeps import ReplicateBudget, SweepRunner, SweepSpec
from repro.errors import ReproError, StoreError

#: Submission body keys the service understands; anything else is a 400
#: (catching typos like "axis" instead of "axes" at the door).
_SUBMIT_KEYS = frozenset({"sweep_id", "scale", "seed", "axes", "budget", "kernel"})


class ServiceError(ReproError):
    """A request the service must refuse, with an HTTP status to use."""

    def __init__(self, status: int, message: str) -> None:
        self.status = status
        super().__init__(message)


def _resolve_submission(
    payload: "Mapping[str, Any]",
) -> "tuple[SweepSpec, int | None, ReplicateBudget, str | None]":
    """Turn a submit body into ``(spec, seed, budget, kernel)``.

    Lazy experiment-layer import: the sweep registry lives above the
    engine (``repro.experiments.specs_sweeps``), so importing it at
    module scope would invert the layering for every engine user; only
    the service endpoint pays for it, per request.
    """
    from repro.experiments.specs_sweeps import (
        axis_values_from_payload,
        get_sweep,
        resolve_sweep_budget,
    )

    unknown = set(payload) - _SUBMIT_KEYS
    if unknown:
        raise ServiceError(
            400,
            f"unknown submission key(s) {sorted(unknown)}; "
            f"expected a subset of {sorted(_SUBMIT_KEYS)}",
        )
    sweep_id = payload.get("sweep_id")
    if not isinstance(sweep_id, str) or not sweep_id:
        raise ServiceError(400, "submission needs a sweep_id string")
    scale = payload.get("scale")
    try:
        spec = get_sweep(sweep_id, scale=scale)
        for name, values in (payload.get("axes") or {}).items():
            spec = spec.with_axis(name, axis_values_from_payload(values))
        budget = resolve_sweep_budget(scale, **(payload.get("budget") or {}))
    except TypeError as exc:
        raise ServiceError(400, f"bad budget override: {exc}") from None
    except ReproError as exc:
        raise ServiceError(400, str(exc)) from None
    seed = payload.get("seed", 0)
    if seed is not None and not isinstance(seed, int):
        raise ServiceError(400, f"seed must be an integer, got {seed!r}")
    kernel = payload.get("kernel")
    if kernel is not None and not isinstance(kernel, str):
        raise ServiceError(400, f"kernel must be a string, got {kernel!r}")
    return spec, seed, budget, kernel


class SweepService:
    """The store-backed sweep service (HTTP front, one worker thread).

    Parameters
    ----------
    store:
        The results database every request reads through.
    backend / n_workers:
        The **long-lived** execution backend computations run on — a
        name (``"serial"``, ``"process"``, ``"cluster"``), an instance,
        or ``None`` for the worker-count default.  Resolved once at
        :meth:`start`; the cluster backend's worker fleet therefore
        persists across submissions and is released only at
        :meth:`shutdown`.
    host / port:
        Bind address; port 0 picks a free port (see :attr:`address`).
    kernel:
        Default simulation-kernel request for computed sweeps (a
        submission's ``kernel`` field overrides it) — scheduling only,
        never part of the fingerprint.
    """

    def __init__(
        self,
        store: ResultsStore,
        *,
        backend: "ExecutionBackend | str | None" = None,
        n_workers: "int | None" = None,
        host: str = "127.0.0.1",
        port: int = 0,
        kernel: "str | None" = None,
    ) -> None:
        self.store = store
        self._backend_request = backend
        self._n_workers = n_workers
        self._host = host
        self._port = port
        self.kernel = kernel
        self.backend: "ExecutionBackend | None" = None
        self._httpd: "ThreadingHTTPServer | None" = None
        self._http_thread: "threading.Thread | None" = None
        self._worker: "threading.Thread | None" = None
        self._jobs: "queue.Queue" = queue.Queue()
        #: run_ids queued or computing in this process (coalesces
        #: duplicate submissions; a stale row from a crashed service is
        #: NOT here, so resubmitting one re-enqueues the computation).
        self._in_flight: "set[str]" = set()
        self._lock = threading.Lock()
        self._stopping = False

    # -- lifecycle -----------------------------------------------------

    @property
    def address(self) -> "tuple[str, int]":
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        if self._httpd is None:
            raise StoreError("service is not started")
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "SweepService":
        """Resolve the backend, start the worker and the HTTP listener."""
        if self._httpd is not None:
            raise StoreError("service is already started")
        n_workers = self._n_workers
        self.backend = resolve_backend(self._backend_request, n_workers=n_workers)
        self._stopping = False
        self._worker = threading.Thread(
            target=self._worker_loop, name="sweep-service-worker", daemon=True
        )
        self._worker.start()
        handler = _build_handler(self)
        self._httpd = ThreadingHTTPServer((self._host, self._port), handler)
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="sweep-service-http",
            daemon=True,
        )
        self._http_thread.start()
        return self

    def shutdown(self) -> None:
        """Stop accepting, drain nothing (queued jobs stay ``queued`` in
        the store for the next service instance), release the backend."""
        self._stopping = True
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._http_thread is not None:
            self._http_thread.join(timeout=10)
            self._http_thread = None
        if self._worker is not None:
            self._jobs.put(None)
            self._worker.join(timeout=30)
            self._worker = None
        if self.backend is not None:
            self.backend.shutdown()
            self.backend = None

    def __enter__(self) -> "SweepService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # -- the compute loop ----------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            job = self._jobs.get()
            if job is None:
                return
            run_id, spec, seed, budget, kernel = job
            try:
                self.store.mark_running(run_id)
                result = SweepRunner(
                    spec,
                    seed=seed,
                    budget=budget,
                    backend=self.backend,
                    kernel=kernel if kernel is not None else self.kernel,
                ).run()
                self.store.finish(run_id, result)
            except Exception as exc:  # noqa: BLE001 - service must survive
                try:
                    self.store.fail(run_id, f"{type(exc).__name__}: {exc}")
                except StoreError:
                    pass
            finally:
                with self._lock:
                    self._in_flight.discard(run_id)

    # -- request handlers (called from HTTP threads) --------------------

    def submit(self, payload: "Mapping[str, Any]") -> dict:
        """Handle ``POST /v1/sweeps``: dedup, claim, queue."""
        if self._stopping:
            raise ServiceError(503, "service is shutting down")
        spec, seed, budget, kernel = _resolve_submission(payload)
        fingerprint = sweep_fingerprint(spec, seed=seed, budget=budget)
        existing = self.store.lookup(fingerprint)
        if existing is not None and existing.status == "done":
            return {
                "run_id": existing.run_id,
                "fingerprint": fingerprint,
                "status": "done",
                "cache_hit": True,
            }
        row, _created = self.store.begin_run(fingerprint, spec.name)
        with self._lock:
            enqueue = row.run_id not in self._in_flight
            if enqueue:
                self._in_flight.add(row.run_id)
        if enqueue:
            self._jobs.put((row.run_id, spec, seed, budget, kernel))
        return {
            "run_id": row.run_id,
            "fingerprint": fingerprint,
            "status": row.status if not enqueue else "queued",
            "cache_hit": False,
        }

    def queue_depth(self) -> int:
        with self._lock:
            return len(self._in_flight)


def _build_handler(service: SweepService) -> "type[BaseHTTPRequestHandler]":
    """The request-handler class bound to one service instance."""

    class Handler(BaseHTTPRequestHandler):
        # Quiet by default: a poll loop would otherwise spam stderr.
        def log_message(self, format: str, *args: object) -> None:
            pass

        # -- plumbing --------------------------------------------------

        def _send_json(self, status: int, payload: "Mapping[str, Any]") -> None:
            body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
            self._send_bytes(status, body)

        def _send_bytes(self, status: int, body: bytes) -> None:
            self.send_response(status)
            self.send_header("Content-Type", "application/json; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _fail(self, status: int, message: str) -> None:
            self._send_json(status, {"error": message})

        def _read_body(self) -> dict:
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b""
            if not raw:
                raise ServiceError(400, "request needs a JSON body")
            try:
                payload = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise ServiceError(400, f"invalid JSON body: {exc}") from None
            if not isinstance(payload, dict):
                raise ServiceError(400, "JSON body must be an object")
            return payload

        # -- routes ----------------------------------------------------

        def do_POST(self) -> None:  # noqa: N802 - http.server API
            try:
                if self.path.rstrip("/") != "/v1/sweeps":
                    raise ServiceError(404, f"no such endpoint: {self.path}")
                response = service.submit(self._read_body())
            except ServiceError as exc:
                self._fail(exc.status, str(exc))
                return
            # 200 when the store already has the answer, 202 when the
            # submission was accepted for (or is already) computing.
            self._send_json(200 if response["cache_hit"] else 202, response)

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            try:
                self._route_get()
            except ServiceError as exc:
                self._fail(exc.status, str(exc))
            except StoreError as exc:
                self._fail(400, str(exc))

        def _route_get(self) -> None:
            path, _, query = self.path.partition("?")
            parts = [p for p in path.split("/") if p]
            if parts == ["v1", "healthz"]:
                backend = service.backend
                self._send_json(
                    200,
                    {
                        "status": "ok",
                        "schema": STORE_SCHEMA,
                        "backend": getattr(backend, "name", None),
                        "queue_depth": service.queue_depth(),
                    },
                )
                return
            if parts == ["v1", "runs"]:
                filters = _parse_query(query)
                runs = service.store.runs(
                    sweep_name=filters.get("sweep"),
                    status=filters.get("status"),
                )
                self._send_json(200, {"runs": [run.to_dict() for run in runs]})
                return
            if len(parts) >= 3 and parts[:2] == ["v1", "runs"]:
                run_id = parts[2]
                tail = parts[3:]
                try:
                    if not tail:
                        self._send_json(200, self._get_run(run_id).to_dict())
                    elif tail == ["result"]:
                        # The stored canonical bytes, verbatim — the
                        # byte-identity contract of the store.
                        self._send_bytes(
                            200,
                            service.store.result_text(run_id).encode("utf-8"),
                        )
                    elif tail == ["envelope"]:
                        self._send_json(200, service.store.envelope(run_id))
                    else:
                        raise ServiceError(404, f"no such endpoint: {self.path}")
                except StoreError as exc:
                    status = 404 if "no run" in str(exc) else 409
                    raise ServiceError(status, str(exc)) from None
                return
            raise ServiceError(404, f"no such endpoint: {self.path}")

        def _get_run(self, run_id: str) -> StoredRun:
            return service.store.get(run_id)

    return Handler


def _parse_query(query: str) -> "dict[str, str]":
    out: "dict[str, str]" = {}
    for chunk in query.split("&"):
        if "=" in chunk:
            key, _, value = chunk.partition("=")
            out[key] = value
    return out

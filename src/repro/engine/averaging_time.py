"""Averaging-time estimation implementing the paper's Definition 1.

The paper defines

    ``T_av = sup_x inf { t : P[ exists T > t :
              var X(T) / var X(0) > e^{-2} ] < 1/e }``

i.e. the earliest time after which, with probability at least ``1 - 1/e``,
the variance ratio never again exceeds ``e^{-2}``.  The Monte-Carlo analog
(fidelity note F3 in DESIGN.md):

1. fix the initial vector — experiments use the adversarial cut-aligned
   vector from the paper's own Theorem-1 proof, standing in for the
   ``sup_x``;
2. for each replicate record the **last** time the variance ratio exceeds
   ``e^{-2}`` (non-convex updates make excursions, so the first crossing
   is not enough; for variance-monotone algorithms first = last and the
   run may stop at the first crossing);
3. report the ``(1 - 1/e)``-quantile of those last-crossing times.

Censoring: a replicate that exhausts its budget before settling
contributes ``+inf``.  If so many replicates are censored that the
quantile falls among them, the estimate itself is ``inf`` — the caller's
budget was too small, and the result says so rather than silently
truncating.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.algorithms.base import GossipAlgorithm
from repro.engine.backends import ExecutionBackend
from repro.engine.results import RunResult
from repro.engine.runner import MonteCarloRunner
from repro.errors import SimulationError
from repro.graphs.graph import Graph

#: The paper's variance-ratio threshold, ``e^{-2}``.
PAPER_VARIANCE_THRESHOLD = math.e**-2

#: The paper's confidence level: crossings hold with prob >= 1 - 1/e.
PAPER_CONFIDENCE_QUANTILE = 1.0 - 1.0 / math.e

#: Non-monotone runs settle to threshold * this factor before we trust
#: that no further excursion above the threshold will occur.
DEFAULT_SETTLE_FACTOR = 1e-6


@dataclass
class AveragingTimeEstimate:
    """A Monte-Carlo averaging-time measurement.

    Attributes
    ----------
    estimate:
        The ``quantile``-quantile of per-replicate crossing times
        (``inf`` when censoring swallowed the quantile).
    samples:
        Per-replicate last-crossing times (``inf`` = censored).
    threshold, quantile:
        The variance-ratio threshold and confidence quantile used.
    n_censored:
        Replicates that exhausted their budget before settling.
    """

    estimate: float
    samples: np.ndarray
    threshold: float
    quantile: float
    n_censored: int

    @property
    def n_replicates(self) -> int:
        """Number of replicates behind this estimate."""
        return len(self.samples)

    @property
    def mean(self) -> float:
        """Mean crossing time over uncensored replicates (nan if none)."""
        finite = self.samples[np.isfinite(self.samples)]
        if finite.size == 0:
            return float("nan")
        return float(finite.mean())

    @property
    def is_censored(self) -> bool:
        """True when the quantile landed among censored replicates."""
        return not math.isfinite(self.estimate)

    def to_dict(self) -> dict:
        """Plain-dict view for serialization."""
        return {
            "estimate": self.estimate if math.isfinite(self.estimate) else None,
            "samples": [s if math.isfinite(s) else None for s in self.samples],
            "threshold": self.threshold,
            "quantile": self.quantile,
            "n_censored": self.n_censored,
            "mean": None if math.isnan(self.mean) else self.mean,
        }


def quantile_index(n: int, quantile: float) -> int:
    """The library's one quantile convention: order statistic
    ``ceil(q * n) - 1``, clamped to ``[0, n - 1]``.

    Shared by the estimator below, the sweep scheduler's per-point
    quantiles and its bootstrap resamples — one definition, so the
    sweep path and the single-configuration path cannot drift.
    """
    index = min(int(math.ceil(quantile * n)) - 1, n - 1)
    return max(index, 0)


def quantile_estimate(samples: "Sequence[float]", quantile: float) -> float:
    """The ``quantile``-quantile of ``samples`` under the rule above.

    ``inf`` (censored) samples sort last, so a quantile landing among
    them is honestly infinite.  NaN samples must be excluded by the
    caller.  Empty input returns NaN.
    """
    array = np.sort(np.asarray(samples, dtype=np.float64))
    if len(array) == 0:
        return float("nan")
    return float(array[quantile_index(len(array), quantile)])


def crossing_sample(
    result: RunResult, threshold: float, monotone: bool
) -> "tuple[float, bool]":
    """Extract (last-crossing time, censored?) from one run.

    The single sample-extraction rule shared by the estimator below and
    the sweep scheduler (:mod:`repro.engine.sweeps`): monotone algorithms
    settle at their first crossing, non-monotone ones are trusted only if
    the run actually reached its settle target; everything else is a
    censored ``inf`` sample.
    """
    crossing = result.crossing(threshold)
    if monotone:
        if crossing.first_below is None:
            return float("inf"), True
        return crossing.first_below, False
    # Non-monotone: trust last_above only if the run actually settled.
    if result.stopped_by != "target_ratio":
        return float("inf"), True
    return crossing.last_above, False


def estimate_averaging_time(
    graph: Graph,
    algorithm_factory: "Callable[[], GossipAlgorithm]",
    initial_values: (
        "Sequence[float] | Callable[[np.random.Generator], Sequence[float]]"
    ),
    *,
    n_replicates: int = 8,
    seed: "int | None" = None,
    threshold: float = PAPER_VARIANCE_THRESHOLD,
    quantile: float = PAPER_CONFIDENCE_QUANTILE,
    max_time: "float | None" = None,
    max_events: "int | None" = None,
    settle_factor: float = DEFAULT_SETTLE_FACTOR,
    clock_factory: "Callable[[np.random.Generator], object] | None" = None,
    backend: "ExecutionBackend | str | None" = None,
    n_workers: "int | None" = None,
) -> AveragingTimeEstimate:
    """Monte-Carlo estimate of the paper's ``T_av`` (see module docstring).

    ``max_time``/``max_events`` bound each replicate; at least one must be
    given (unbounded non-convergent runs would otherwise spin forever).
    ``clock_factory`` swaps in a non-standard clock model per replicate
    (boosted rates, failure injection).  ``backend``/``n_workers`` choose
    how replicates execute (see :mod:`repro.engine.backends`); estimates
    are bit-identical across backends for the same seed.
    """
    if not 0 < threshold < 1:
        raise SimulationError(f"threshold must be in (0, 1), got {threshold}")
    if not 0 < quantile < 1:
        raise SimulationError(f"quantile must be in (0, 1), got {quantile}")
    if max_time is None and max_events is None:
        raise SimulationError(
            "estimate_averaging_time needs max_time and/or max_events"
        )
    probe = algorithm_factory()
    monotone = probe.monotone_variance
    target_ratio = threshold if monotone else threshold * settle_factor

    runner = MonteCarloRunner(
        graph,
        algorithm_factory,
        initial_values,
        seed=seed,
        clock_factory=clock_factory,
        backend=backend,
        n_workers=n_workers,
    )
    results = runner.run(
        n_replicates,
        target_ratio=target_ratio,
        max_time=max_time,
        max_events=max_events,
        thresholds=(threshold,),
    )
    samples = []
    n_censored = 0
    for result in results:
        sample, censored = crossing_sample(result, threshold, monotone)
        samples.append(sample)
        n_censored += int(censored)
    sample_array = np.asarray(samples, dtype=np.float64)

    # Quantile among *all* replicates, censored included: if it lands on
    # a censored one the estimate is infinite.
    estimate = quantile_estimate(sample_array, quantile)
    return AveragingTimeEstimate(
        estimate=estimate,
        samples=sample_array,
        threshold=threshold,
        quantile=quantile,
        n_censored=n_censored,
    )


def epsilon_averaging_time(
    graph: Graph,
    algorithm_factory: "Callable[[], GossipAlgorithm]",
    initial_values: (
        "Sequence[float] | Callable[[np.random.Generator], Sequence[float]]"
    ),
    epsilon: float,
    *,
    n_replicates: int = 8,
    seed: "int | None" = None,
    max_time: "float | None" = None,
    max_events: "int | None" = None,
    backend: "ExecutionBackend | str | None" = None,
    n_workers: "int | None" = None,
) -> AveragingTimeEstimate:
    """Boyd-et-al-style ``epsilon``-averaging time.

    Uses variance ratio ``epsilon^2`` (i.e. L2 error ``epsilon``) as the
    threshold and the ``(1 - epsilon)``-quantile as the confidence level —
    the natural translation of ``P[error >= eps] <= eps`` into this
    library's crossing machinery.
    """
    if not 0 < epsilon < 1:
        raise SimulationError(f"epsilon must be in (0, 1), got {epsilon}")
    return estimate_averaging_time(
        graph,
        algorithm_factory,
        initial_values,
        n_replicates=n_replicates,
        seed=seed,
        threshold=epsilon * epsilon,
        quantile=1.0 - epsilon,
        max_time=max_time,
        max_events=max_events,
        backend=backend,
        n_workers=n_workers,
    )

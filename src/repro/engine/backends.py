"""Pluggable execution backends for Monte-Carlo replication.

The paper's quantities are quantiles over independent Poisson-clock
replicates, so replicate fan-out is embarrassingly parallel: no replicate
reads another's state, and every random draw is derived from a
per-replicate :class:`numpy.random.SeedSequence`.  This module turns that
observation into a seam the rest of the engine builds on:

* :class:`ReplicateSpec` — one replicate's complete, picklable work order
  (graph, algorithm factory, workload, derived seed sequence, run
  kwargs);
* :func:`execute_replicate` — the single function that turns a spec into
  a :class:`~repro.engine.results.RunResult`, used identically by every
  backend;
* :class:`SerialBackend` — in-process execution, the default;
* :class:`ProcessPoolBackend` — fan-out over a
  :class:`concurrent.futures.ProcessPoolExecutor`.

**Reproducibility guarantee.**  All randomness a replicate consumes is
derived inside :func:`execute_replicate` from the spec's seed sequence
(split into clock / workload / algorithm substreams), never from shared
mutable state.  Results are therefore **bit-identical across backends and
worker counts** for the same root seed: ``ProcessPoolBackend`` reorders
only wall-clock execution, and :meth:`ExecutionBackend.execute` returns
results in submission order regardless of completion order.

**Picklability.**  Process execution ships specs to workers with
:mod:`pickle`.  Graphs, partitions, clock processes and the library's
algorithms all pickle; the usual culprit is a lambda or closure used as
``algorithm_factory`` or ``clock_factory``.  Use module-level callables,
:func:`functools.partial`, or :class:`AlgorithmFactory` (and the clock
factories in :mod:`repro.clocks`) instead.  ``SerialBackend`` imposes no
such restriction.

Backend selection: pass an :class:`ExecutionBackend`, the strings
``"serial"``/``"process"``, or just ``n_workers`` to
:func:`resolve_backend`; with neither, the ``REPRO_WORKERS`` environment
variable (the CLI's ``--workers`` flag sets it) picks the worker count,
defaulting to serial execution.
"""

from __future__ import annotations

import abc
import contextlib
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.algorithms.base import GossipAlgorithm
from repro.clocks.poisson import PoissonEdgeClocks
from repro.engine.results import RunResult
from repro.engine.simulator import Simulator
from repro.errors import SimulationError
from repro.graphs.graph import Graph
from repro.util.rng import derive_child

#: Environment variable consulted when no backend/worker count is given
#: (the CLI's ``--workers`` flag sets it for a whole experiment run).
WORKERS_ENV_VAR = "REPRO_WORKERS"


@dataclass(frozen=True)
class ReplicateSpec:
    """One replicate's complete work order (picklable).

    Attributes
    ----------
    index:
        The replicate's position within its configuration's sequence
        (metadata — seeds live in ``seed_sequence``).  Not unique across
        a sweep batch; backends return results in submission order, not
        by this field.
    graph:
        The graph to simulate on.
    algorithm_factory:
        Zero-argument callable producing the replicate's algorithm.
    initial_values:
        Fixed vector, or callable ``rng -> vector`` drawing the workload
        from the replicate's workload stream.
    seed_sequence:
        The replicate's private :class:`numpy.random.SeedSequence`; split
        into clock / workload / algorithm substreams at execution time.
    clock_factory:
        Optional callable ``rng -> clock``; ``None`` means the standard
        rate-1 Poisson model on the graph's edges.
    run_kwargs:
        Keyword arguments forwarded to :meth:`Simulator.run`.
    """

    index: int
    graph: Graph
    algorithm_factory: "Callable[[], GossipAlgorithm]"
    initial_values: "Sequence[float] | Callable[[np.random.Generator], Sequence[float]]"
    seed_sequence: np.random.SeedSequence
    clock_factory: "Callable[[np.random.Generator], object] | None" = None
    run_kwargs: "Mapping[str, Any]" = field(default_factory=dict)


def execute_replicate(spec: ReplicateSpec) -> RunResult:
    """Run one replicate from its spec (the shared backend work function).

    Derives three independent substreams from the spec's seed sequence —
    clock, workload, algorithm — so the clock process, the workload
    sampler and the algorithm's own randomness never share a generator
    (they historically did, coupling streams that the analysis treats as
    independent).  The children are constructed directly (the sequences
    ``spawn(3)`` would yield) rather than spawned, because spawning
    mutates the spec's child counter and re-executing the same spec —
    e.g. comparing backends on one ``build_specs`` output — must stay
    bit-identical.
    """
    clock_seq, workload_seq, algorithm_seq = (
        derive_child(spec.seed_sequence, child) for child in range(3)
    )
    clock_rng = np.random.default_rng(clock_seq)
    if callable(spec.initial_values):
        workload_rng = np.random.default_rng(workload_seq)
        values = spec.initial_values(workload_rng)
    else:
        values = spec.initial_values
    if spec.clock_factory is not None:
        clock = spec.clock_factory(clock_rng)
    else:
        clock = PoissonEdgeClocks(spec.graph.n_edges, seed=clock_rng)
    simulator = Simulator(
        spec.graph,
        spec.algorithm_factory(),
        values,
        clock=clock,
        seed=np.random.default_rng(algorithm_seq),
    )
    return simulator.run(**dict(spec.run_kwargs))  # type: ignore[arg-type]


class ExecutionBackend(abc.ABC):
    """How a batch of replicate specs gets executed.

    Implementations must return results **in submission order** —
    ``result[i]`` belongs to ``specs[i]`` — and must not inject any
    randomness of their own; both are what makes backends
    interchangeable without touching any estimate.  ``spec.index``
    identifies a replicate *within its configuration* and is **not**
    unique across a batch: the sweep scheduler
    (:mod:`repro.engine.sweeps`) batches windows from many
    configurations into one call, so several specs legitimately share an
    index.  Backends must never reorder or key results by it.
    """

    #: Short machine name (CLI/report label).
    name: str = "abstract"

    @abc.abstractmethod
    def execute(self, specs: "Sequence[ReplicateSpec]") -> "list[RunResult]":
        """Run every spec and return results in submission order."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SerialBackend(ExecutionBackend):
    """Execute replicates one after another in the current process."""

    name = "serial"

    def execute(self, specs: "Sequence[ReplicateSpec]") -> "list[RunResult]":
        return [execute_replicate(spec) for spec in specs]


class ProcessPoolBackend(ExecutionBackend):
    """Fan replicates out over a process pool.

    Specs are pickled to workers and results reassembled in submission
    order, so output is bit-identical to :class:`SerialBackend` for the
    same root seed (see the module docstring's reproducibility guarantee).

    Each spec carries its own copy of the shared state (graph, factories,
    run kwargs), so IPC cost grows as O(replicates x graph size).  That
    is noise against multi-second replicates at the paper's scales; if a
    future backend fans out orders of magnitude wider, ship the shared
    state once per worker via the executor's ``initializer`` and keep
    only ``(index, seed_sequence)`` per task.

    Parameters
    ----------
    n_workers:
        Worker processes; defaults to the machine's CPU count.
    mp_context:
        Optional :mod:`multiprocessing` context (e.g.
        ``multiprocessing.get_context("fork")``) forwarded to the
        executor; ``None`` uses the platform default.
    """

    name = "process"

    def __init__(
        self,
        n_workers: "int | None" = None,
        *,
        mp_context: "object | None" = None,
    ) -> None:
        if n_workers is None:
            n_workers = os.cpu_count() or 1
        if n_workers < 1:
            raise SimulationError(
                f"n_workers must be positive, got {n_workers}"
            )
        self.n_workers = int(n_workers)
        self._mp_context = mp_context
        self._pool: "ProcessPoolExecutor | None" = None

    def execute(self, specs: "Sequence[ReplicateSpec]") -> "list[RunResult]":
        if not specs:
            return []
        if self.n_workers == 1 or len(specs) == 1:
            # A pool of one buys nothing; the serial path is identical
            # by construction (same execute_replicate, same seeds).
            return [execute_replicate(spec) for spec in specs]
        for spec in specs:
            if spec.run_kwargs.get("recorder") is not None:
                # A recorder is caller-side mutable state; a worker's
                # appends never cross back over the process boundary, so
                # the caller would silently get an empty recorder.
                raise SimulationError(
                    "recorder cannot be used with process execution — "
                    "worker-side samples never reach the caller's "
                    "recorder object; run with the serial backend "
                    "(n_workers=1) to trace replicates"
                )
        # Probe picklability once per distinct configuration: replicates
        # of one configuration share their graph/factory objects, but a
        # sweep batch mixes configurations and any one of them can carry
        # the unpicklable closure.
        seen: "set[tuple[int, ...]]" = set()
        for spec in specs:
            key = (
                id(spec.graph),
                id(spec.algorithm_factory),
                id(spec.initial_values),
                id(spec.clock_factory),
            )
            if key not in seen:
                seen.add(key)
                self._check_picklable(spec)
        if self._pool is None:
            # Lazily created and reused across execute() calls: an
            # experiment makes dozens of estimator calls, and paying
            # worker startup (expensive under spawn) per call would
            # erase the fan-out's gain.
            self._pool = ProcessPoolExecutor(
                max_workers=self.n_workers,
                mp_context=self._mp_context,  # type: ignore[arg-type]
            )
        try:
            return list(self._pool.map(execute_replicate, specs))
        except BrokenProcessPool as exc:
            self.shutdown()
            raise SimulationError(
                f"process pool died executing replicates ({exc}); a worker "
                "was killed (OOM?) or crashed during unpickling"
            ) from exc

    def shutdown(self) -> None:
        """Release the worker pool (a later execute() recreates it)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def __del__(self) -> None:
        # An abandoned backend's executor would otherwise linger until
        # interpreter teardown, where its atexit hook can hit
        # already-closed pipes and print ignored tracebacks.
        try:
            self.shutdown()
        except Exception:
            pass

    @staticmethod
    def _check_picklable(spec: ReplicateSpec) -> None:
        """Fail fast with guidance instead of a deep executor traceback."""
        try:
            pickle.dumps(spec)
        except Exception as exc:
            raise SimulationError(
                "replicate spec cannot be pickled for process execution "
                f"({exc}); use module-level callables, functools.partial, "
                "or repro.engine.backends.AlgorithmFactory instead of "
                "lambdas/closures, or fall back to the serial backend"
            ) from exc

    def __repr__(self) -> str:
        return f"ProcessPoolBackend(n_workers={self.n_workers})"


class AlgorithmFactory:
    """A picklable zero-argument algorithm factory.

    Wraps an importable callable (usually an algorithm class) plus its
    arguments, so experiment specs can fan out to worker processes where
    a lambda or closure could not.

    >>> from repro.algorithms.vanilla import VanillaGossip
    >>> factory = AlgorithmFactory(VanillaGossip)
    >>> factory().name
    'vanilla'
    """

    def __init__(self, target: "Callable[..., GossipAlgorithm]", /, *args: Any, **kwargs: Any) -> None:
        if not callable(target):
            raise SimulationError(
                f"AlgorithmFactory target must be callable, got {target!r}"
            )
        self.target = target
        self.args = args
        self.kwargs = kwargs

    def __call__(self) -> GossipAlgorithm:
        return self.target(*self.args, **self.kwargs)

    def __repr__(self) -> str:
        parts = [getattr(self.target, "__name__", repr(self.target))]
        parts += [repr(a) for a in self.args]
        parts += [f"{k}={v!r}" for k, v in self.kwargs.items()]
        return f"AlgorithmFactory({', '.join(parts)})"


def default_n_workers() -> int:
    """Worker count from ``REPRO_WORKERS`` (1, i.e. serial, when unset)."""
    raw = os.environ.get(WORKERS_ENV_VAR)
    if raw is None:
        return 1
    try:
        workers = int(raw)
    except ValueError:
        raise SimulationError(
            f"{WORKERS_ENV_VAR} must be an integer, got {raw!r}"
        ) from None
    if workers < 1:
        raise SimulationError(
            f"{WORKERS_ENV_VAR} must be positive, got {workers}"
        )
    return workers


#: Resolved process backends, one per worker count, so every estimator
#: call in an experiment run shares one warm worker pool instead of
#: paying pool startup per call.  Lives for the process lifetime; build
#: a ProcessPoolBackend directly for a private pool.
_SHARED_PROCESS_BACKENDS: "dict[int, ProcessPoolBackend]" = {}


def shared_process_backend(n_workers: "int | None" = None) -> ProcessPoolBackend:
    """The process-wide backend (and warm pool) for ``n_workers``."""
    workers = n_workers if n_workers is not None else os.cpu_count() or 1
    backend = _SHARED_PROCESS_BACKENDS.get(workers)
    if backend is None:
        backend = ProcessPoolBackend(workers)
        _SHARED_PROCESS_BACKENDS[workers] = backend
    return backend


def shutdown_shared_backends(only: "set[int] | None" = None) -> None:
    """Release shared pools' worker processes.

    Long-lived hosts (the CLI when called programmatically, notebooks)
    call this after a batch of parallel work; later resolutions
    transparently build fresh pools.  ``only`` restricts the teardown to
    specific worker counts — used to release just the pools a scoped
    piece of work created while leaving the host's own pools warm.
    """
    keys = list(_SHARED_PROCESS_BACKENDS) if only is None else [
        key for key in only if key in _SHARED_PROCESS_BACKENDS
    ]
    for key in keys:
        _SHARED_PROCESS_BACKENDS.pop(key).shutdown()


@contextlib.contextmanager
def scoped_shared_backends():
    """Release, on exit, the shared pools created inside the block.

    Pools the host already had warm on entry are left untouched — this
    is the scoped-cleanup companion to :func:`shared_process_backend`
    for embedders (the CLI uses it around a whole experiment run).
    """
    before = set(_SHARED_PROCESS_BACKENDS)
    try:
        yield
    finally:
        shutdown_shared_backends(
            only=set(_SHARED_PROCESS_BACKENDS) - before
        )


def resolve_backend(
    backend: "ExecutionBackend | str | None" = None,
    *,
    n_workers: "int | None" = None,
) -> ExecutionBackend:
    """Coerce a backend choice into an :class:`ExecutionBackend`.

    Accepts an existing backend instance (returned unchanged), the names
    ``"serial"``/``"process"``, or ``None`` — in which case ``n_workers``
    (falling back to the ``REPRO_WORKERS`` environment variable, then 1)
    selects serial execution for one worker and a process pool otherwise.

    Name- and count-resolved process backends are shared per worker
    count (:func:`shared_process_backend`), so back-to-back estimator
    calls reuse one warm pool; pass a :class:`ProcessPoolBackend`
    instance instead when a private pool is wanted.
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    if isinstance(backend, str):
        if backend == "serial":
            return SerialBackend()
        if backend == "process":
            return shared_process_backend(n_workers)
        raise SimulationError(
            f"unknown backend {backend!r}; expected 'serial' or 'process'"
        )
    if backend is not None:
        raise SimulationError(
            f"backend must be an ExecutionBackend, str or None, "
            f"got {type(backend).__name__}"
        )
    if n_workers is None:
        n_workers = default_n_workers()
    if n_workers < 1:
        raise SimulationError(f"n_workers must be positive, got {n_workers}")
    if n_workers == 1:
        return SerialBackend()
    return shared_process_backend(n_workers)

"""Pluggable execution backends for Monte-Carlo replication.

The paper's quantities are quantiles over independent Poisson-clock
replicates, so replicate fan-out is embarrassingly parallel: no replicate
reads another's state, and every random draw is derived from a
per-replicate :class:`numpy.random.SeedSequence`.  This module turns that
observation into a seam the rest of the engine builds on:

* :class:`ReplicateSpec` — one replicate's complete, picklable work order
  (graph, algorithm factory, workload, derived seed sequence, run
  kwargs);
* :func:`execute_replicate` — the single function that turns a spec into
  a :class:`~repro.engine.results.RunResult`, used identically by every
  backend;
* :class:`SerialBackend` — in-process execution, the default;
* :class:`ProcessPoolBackend` — fan-out over a
  :class:`concurrent.futures.ProcessPoolExecutor`.

**Reproducibility guarantee.**  All randomness a replicate consumes is
derived inside :func:`execute_replicate` from the spec's seed sequence
(split into clock / workload / algorithm substreams), never from shared
mutable state.  Results are therefore **bit-identical across backends and
worker counts** for the same root seed: ``ProcessPoolBackend`` reorders
only wall-clock execution, and :meth:`ExecutionBackend.execute` returns
results in submission order regardless of completion order.

**Picklability.**  Process execution ships specs to workers with
:mod:`pickle`.  Graphs, partitions, clock processes and the library's
algorithms all pickle; the usual culprit is a lambda or closure used as
``algorithm_factory`` or ``clock_factory``.  Use module-level callables,
:func:`functools.partial`, or :class:`AlgorithmFactory` (and the clock
factories in :mod:`repro.clocks`) instead.  ``SerialBackend`` imposes no
such restriction.

**Shared-state shipping.**  A sweep batch repeats the same immutable
per-configuration objects (graph, factories, workload) across many
replicates; pickling them into every :class:`ReplicateSpec` makes IPC
cost grow as O(replicates x graph size).  :meth:`ExecutionBackend
.execute_shared` takes *slim* specs whose heavy fields are
:class:`SharedStateRef` placeholders plus one mapping of the referenced
payloads; :class:`ProcessPoolBackend` ships that mapping **once per
worker** through the executor ``initializer`` and resolves the
placeholders worker-side, while the default implementation (serial and
any custom backend) resolves them in-process against the very same
objects — so results stay bit-identical whether state is shipped,
inlined, or never leaves the process.

Backend selection: pass an :class:`ExecutionBackend`, a registered
backend name (``"serial"``, ``"process"``, or ``"cluster"`` — see
:func:`register_backend`), or just ``n_workers`` to
:func:`resolve_backend`; with neither, the ``REPRO_WORKERS`` environment
variable (the CLI's ``--workers`` flag sets it) picks the worker count,
defaulting to serial execution.  The ``"cluster"`` name resolves lazily
to :class:`~repro.engine.cluster.ClusterBackend`, the TCP
coordinator/worker backend speaking this same spec/shared-state
protocol across process — and machine — boundaries.
"""

from __future__ import annotations

import abc
import contextlib
import hashlib
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.algorithms.base import GossipAlgorithm
from repro.engine.kernels import (
    AUTO_MIN_BATCH,
    ScalarKernel,
    execute_specs as _kernel_execute_specs,
    new_kernel_stats,
)
from repro.engine.results import RunResult
from repro.errors import SimulationError
from repro.graphs.graph import Graph

#: Environment variable consulted when no backend/worker count is given
#: (the CLI's ``--workers`` flag sets it for a whole experiment run).
WORKERS_ENV_VAR = "REPRO_WORKERS"

_SCALAR_KERNEL = ScalarKernel()


@dataclass(frozen=True)
class ReplicateSpec:
    """One replicate's complete work order (picklable).

    Attributes
    ----------
    index:
        The replicate's position within its configuration's sequence
        (metadata — seeds live in ``seed_sequence``).  Not unique across
        a sweep batch; backends return results in submission order, not
        by this field.
    graph:
        The graph to simulate on.
    algorithm_factory:
        Zero-argument callable producing the replicate's algorithm.
    initial_values:
        Fixed vector, or callable ``rng -> vector`` drawing the workload
        from the replicate's workload stream.
    seed_sequence:
        The replicate's private :class:`numpy.random.SeedSequence`; split
        into clock / workload / algorithm substreams at execution time.
    clock_factory:
        Optional callable ``rng -> clock``; ``None`` means the standard
        rate-1 Poisson model on the graph's edges.
    run_kwargs:
        Keyword arguments forwarded to :meth:`Simulator.run`.
    kernel:
        Execution-kernel request (``"auto"``, ``"scalar"`` or
        ``"vectorized"`` — see :mod:`repro.engine.kernels`).  A
        scheduling hint, never part of the result: all kernels are
        bit-identical, so backends are free to group eligible specs into
        lockstep batches.
    """

    index: int
    graph: Graph
    algorithm_factory: "Callable[[], GossipAlgorithm]"
    initial_values: "Sequence[float] | Callable[[np.random.Generator], Sequence[float]]"
    seed_sequence: np.random.SeedSequence
    clock_factory: "Callable[[np.random.Generator], object] | None" = None
    run_kwargs: "Mapping[str, Any]" = field(default_factory=dict)
    kernel: str = "auto"


@dataclass(frozen=True)
class SharedStateRef:
    """Placeholder for a value shipped separately from the spec.

    A slim :class:`ReplicateSpec` carries refs in its heavy fields
    (graph, factories, workload); :func:`resolve_replicate_spec` swaps
    them for ``lookup[key][item]`` (or ``lookup[key]`` when ``item`` is
    ``None``) before execution.  Refs are tiny and always picklable, so
    a sweep's per-replicate IPC payload shrinks to (seed, run kwargs).
    """

    key: str
    item: "str | None" = None


#: The ReplicateSpec fields a SharedStateRef may stand in for.
_SHARED_FIELDS = ("graph", "algorithm_factory", "initial_values", "clock_factory")


def spec_has_refs(spec: ReplicateSpec) -> bool:
    """True when any heavy field of ``spec`` is a :class:`SharedStateRef`."""
    return any(
        isinstance(getattr(spec, name), SharedStateRef)
        for name in _SHARED_FIELDS
    )


def resolve_replicate_spec(
    spec: ReplicateSpec, lookup: "Mapping[str, Any]"
) -> ReplicateSpec:
    """Swap a slim spec's :class:`SharedStateRef` fields for their payloads.

    Specs without refs are returned unchanged (same object), so resolving
    is free on the inline path.  Resolution against the caller's own
    mapping returns the *same* payload objects a non-shared spec would
    have carried — which is what makes shared and inline execution
    bit-identical by construction.
    """
    updates = {}
    for name in _SHARED_FIELDS:
        value = getattr(spec, name)
        if not isinstance(value, SharedStateRef):
            continue
        try:
            payload = lookup[value.key]
        except KeyError:
            raise SimulationError(
                f"replicate spec references shared state {value.key!r} "
                "which is not in the installed mapping; pass the same "
                "shared_state the specs were built against"
            ) from None
        if value.item is not None:
            try:
                payload = payload[value.item]
            except (KeyError, TypeError, IndexError):
                raise SimulationError(
                    f"shared state {value.key!r} has no item {value.item!r}"
                ) from None
        updates[name] = payload
    if not updates:
        return spec
    return replace(spec, **updates)


def execute_replicate(spec: ReplicateSpec) -> RunResult:
    """Run one replicate from its spec through the scalar kernel.

    The per-replicate substream discipline (clock / workload / algorithm
    seed children) and the scalar event loop both live behind
    :class:`~repro.engine.kernels.scalar.ScalarKernel` now; this
    function remains the stable single-replicate entry point and adds
    the shared-state guard.  Kernel-aware batch execution goes through
    :func:`repro.engine.kernels.execute_specs` instead (the backends
    below do) — this path deliberately ignores ``spec.kernel`` so it
    stays a pure scalar oracle.
    """
    if spec_has_refs(spec):
        raise SimulationError(
            "replicate spec still carries SharedStateRef placeholders; "
            "run it through ExecutionBackend.execute_shared (or resolve "
            "it with resolve_replicate_spec) instead of execute()"
        )
    return _SCALAR_KERNEL.execute_one(spec)


def _check_no_refs(specs: "Sequence[ReplicateSpec]") -> None:
    """Shared-state guard for whole batches (same message as above)."""
    for spec in specs:
        if spec_has_refs(spec):
            raise SimulationError(
                "replicate spec still carries SharedStateRef placeholders; "
                "run it through ExecutionBackend.execute_shared (or resolve "
                "it with resolve_replicate_spec) instead of execute()"
            )


def check_no_recorder(
    specs: "Sequence[ReplicateSpec]", *, backend_hint: str
) -> None:
    """Reject specs carrying a caller-side recorder.

    A recorder is caller-side mutable state; a worker's appends never
    cross back over a process (or machine) boundary, so the caller would
    silently get an empty recorder.  Shared by every out-of-process
    backend.
    """
    for spec in specs:
        if spec.run_kwargs.get("recorder") is not None:
            raise SimulationError(
                f"recorder cannot be used with {backend_hint} — "
                "worker-side samples never reach the caller's recorder "
                "object; run with the serial backend (n_workers=1) to "
                "trace replicates"
            )


def check_spec_picklable(spec: ReplicateSpec) -> None:
    """Fail fast with guidance instead of a deep executor traceback."""
    try:
        pickle.dumps(spec)
    except Exception as exc:
        raise SimulationError(
            "replicate spec cannot be pickled for out-of-process "
            f"execution ({exc}); use module-level callables, "
            "functools.partial, or repro.engine.backends.AlgorithmFactory "
            "instead of lambdas/closures, or fall back to the serial "
            "backend"
        ) from exc


def check_batch_picklable(specs: "Sequence[ReplicateSpec]") -> None:
    """Probe picklability once per distinct configuration in a batch.

    Replicates of one configuration share their graph/factory objects,
    but a sweep batch mixes configurations and any one of them can carry
    the unpicklable closure; any spec's ``run_kwargs`` can smuggle one
    in too, so the dedup key covers both.
    """
    seen: "set[tuple[int, ...]]" = set()
    for spec in specs:
        key = (
            id(spec.graph),
            id(spec.algorithm_factory),
            id(spec.initial_values),
            id(spec.clock_factory),
            *sorted(map(id, spec.run_kwargs.values())),
        )
        if key not in seen:
            seen.add(key)
            check_spec_picklable(spec)


def pickle_shared_state(shared_state: "Mapping[str, Any]") -> "tuple[str, bytes]":
    """Pickle a shared-state mapping and return ``(digest, blob)``.

    The content digest is what lets backends ship a mapping **at most
    once per worker**: equal-but-distinct mappings hash identically, so
    neither the process pool nor the cluster coordinator re-ships (or
    restarts anything) unless the payload genuinely changed.
    """
    try:
        blob = pickle.dumps(dict(shared_state), protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise SimulationError(
            "shared state cannot be pickled for out-of-process execution "
            f"({exc}); use module-level callables, functools.partial, "
            "or repro.engine.backends.AlgorithmFactory instead of "
            "lambdas/closures, or fall back to the serial backend"
        ) from exc
    return hashlib.sha256(blob).hexdigest(), blob


class ExecutionBackend(abc.ABC):
    """How a batch of replicate specs gets executed.

    Implementations must return results **in submission order** —
    ``result[i]`` belongs to ``specs[i]`` — and must not inject any
    randomness of their own; both are what makes backends
    interchangeable without touching any estimate.  ``spec.index``
    identifies a replicate *within its configuration* and is **not**
    unique across a batch: the sweep scheduler
    (:mod:`repro.engine.sweeps`) batches windows from many
    configurations into one call, so several specs legitimately share an
    index.  Backends must never reorder or key results by it.
    """

    #: Short machine name (CLI/report label).
    name: str = "abstract"

    @abc.abstractmethod
    def execute(self, specs: "Sequence[ReplicateSpec]") -> "list[RunResult]":
        """Run every spec and return results in submission order."""

    def execute_shared(
        self,
        specs: "Sequence[ReplicateSpec]",
        shared_state: "Mapping[str, Any]",
    ) -> "list[RunResult]":
        """Run slim specs whose :class:`SharedStateRef` fields resolve
        against ``shared_state``.

        The default implementation resolves the refs in-process — to the
        very objects the caller put in the mapping — and delegates to
        :meth:`execute`, so serial execution and any custom backend get
        shared-state support for free with trivially bit-identical
        results.  :class:`ProcessPoolBackend` overrides this to ship the
        mapping once per worker instead of once per replicate.
        """
        return self.execute(
            [resolve_replicate_spec(spec, shared_state) for spec in specs]
        )

    def shutdown(self) -> None:
        """Release any external resources (pools, workers, sockets).

        No-op by default; backends owning processes or connections
        override it.  Callers may invoke it unconditionally — a later
        ``execute`` transparently rebuilds whatever was released.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def execute_with_retry(
    backend: ExecutionBackend,
    specs: "Sequence[ReplicateSpec]",
    *,
    shared_state: "Mapping[str, Any] | None" = None,
    max_retries: int = 1,
    on_retry: "Callable[[Exception], None] | None" = None,
) -> "list[RunResult]":
    """Execute a batch, re-running it after *retryable* backend failures.

    A failure is retryable when the raised exception carries a truthy
    ``retryable`` attribute (:class:`~repro.errors.ClusterError` sets it
    for transient fleet loss).  Because every replicate's randomness is
    a pure function of its spec, a retried batch is bit-identical to an
    undisturbed one — retrying is free of reproducibility cost by
    construction.  Deterministic failures (unpicklable specs, a
    replicate that raises) propagate immediately.  ``on_retry`` is
    called with the swallowed exception before each re-run (telemetry
    hook for the sweep scheduler's stats).
    """
    attempts = 0
    while True:
        try:
            if shared_state is not None:
                return backend.execute_shared(specs, shared_state)
            return backend.execute(specs)
        except Exception as exc:
            if not getattr(exc, "retryable", False) or attempts >= max_retries:
                raise
            attempts += 1
            if on_retry is not None:
                on_retry(exc)


class SerialBackend(ExecutionBackend):
    """Execute replicates in the current process (kernel-dispatched).

    Batches route through :func:`repro.engine.kernels.execute_specs`, so
    eligible same-configuration replicate blocks advance in numpy
    lockstep while everything else takes the scalar loop — with
    bit-identical results either way.  :attr:`kernel_stats` accumulates
    which path engaged.
    """

    name = "serial"

    def __init__(self) -> None:
        #: Cumulative kernel-engagement counters (see
        #: :func:`repro.engine.kernels.new_kernel_stats`).
        self.kernel_stats = new_kernel_stats()

    def execute(self, specs: "Sequence[ReplicateSpec]") -> "list[RunResult]":
        _check_no_refs(specs)
        return _kernel_execute_specs(specs, stats=self.kernel_stats)


#: Worker-process registry for shared state installed by the executor
#: initializer (:func:`_install_worker_shared_state`).  Empty in the
#: parent process; a worker fills it exactly once, at spawn.
_WORKER_SHARED_STATE: "dict[str, Any]" = {}


def _install_worker_shared_state(blob: bytes) -> None:
    """Executor initializer: unpack the shared-state mapping in a worker.

    Runs once per worker process, so each distinct payload crosses the
    process boundary at most once per worker no matter how many
    replicates reference it.
    """
    _WORKER_SHARED_STATE.clear()
    _WORKER_SHARED_STATE.update(pickle.loads(blob))


def _execute_shared_replicate(spec: ReplicateSpec) -> RunResult:
    """Worker task for slim specs: resolve refs, then run as usual."""
    return execute_replicate(resolve_replicate_spec(spec, _WORKER_SHARED_STATE))


def _execute_spec_chunk(
    specs: "list[ReplicateSpec]",
) -> "tuple[list[RunResult], dict[str, int]]":
    """Worker task: kernel-dispatch a same-configuration spec chunk.

    Returns the chunk's results plus its kernel-engagement counters so
    the parent can aggregate telemetry across workers.
    """
    stats = new_kernel_stats()
    return _kernel_execute_specs(specs, stats=stats), stats


def _execute_shared_spec_chunk(
    specs: "list[ReplicateSpec]",
) -> "tuple[list[RunResult], dict[str, int]]":
    """Worker task: resolve a slim chunk against installed state, then run."""
    resolved = [
        resolve_replicate_spec(spec, _WORKER_SHARED_STATE) for spec in specs
    ]
    stats = new_kernel_stats()
    return _kernel_execute_specs(resolved, stats=stats), stats


def _spec_affinity_key(spec: ReplicateSpec) -> tuple:
    """Configuration identity usable on slim *or* resolved specs.

    Shared-state refs are compared by content (every slim spec carries
    its own equal ``SharedStateRef``), heavy inline objects by identity
    (replicates of one configuration share them), run kwargs by content.
    Used only to align dispatch chunks with configuration boundaries —
    chunking can never change a result, only how well batches vectorize.
    """
    parts: "list[object]" = [getattr(spec, "kernel", "auto")]
    for name in _SHARED_FIELDS:
        value = getattr(spec, name)
        if isinstance(value, SharedStateRef):
            parts.append(("ref", value.key, value.item))
        else:
            parts.append(("id", id(value)))
    parts.append(
        tuple(sorted((key, repr(value)) for key, value in spec.run_kwargs.items()))
    )
    return tuple(parts)


def _dispatch_chunks(
    specs: "Sequence[ReplicateSpec]", n_workers: int
) -> "list[list[ReplicateSpec]]":
    """Split a batch into contiguous same-configuration dispatch chunks.

    Chunks are the process pool's task unit *and* the vectorized
    kernel's lockstep group, so the size cap balances two pressures:
    wide enough to vectorize (never below
    :data:`~repro.engine.kernels.AUTO_MIN_BATCH`), small enough that a
    single-configuration batch still spreads over the pool.  Sweep
    batches (many configurations x one replicate window) split on the
    configuration boundaries and keep window-level granularity.
    """
    cap = max(AUTO_MIN_BATCH, -(-len(specs) // (4 * n_workers)))
    chunks: "list[list[ReplicateSpec]]" = []
    current: "list[ReplicateSpec]" = []
    current_key: "tuple | None" = None
    for spec in specs:
        key = _spec_affinity_key(spec)
        if current and (key != current_key or len(current) >= cap):
            chunks.append(current)
            current = []
        current.append(spec)
        current_key = key
    if current:
        chunks.append(current)
    return chunks


class ProcessPoolBackend(ExecutionBackend):
    """Fan replicates out over a process pool.

    Specs are pickled to workers and results reassembled in submission
    order, so output is bit-identical to :class:`SerialBackend` for the
    same root seed (see the module docstring's reproducibility guarantee).

    On the plain :meth:`execute` path each spec carries its own copy of
    the shared state (graph, factories, run kwargs), so IPC cost grows
    as O(replicates x graph size) — noise against multi-second
    replicates, but real at sweep fan-outs.  :meth:`execute_shared`
    removes it: the caller's shared-state mapping is pickled **once**,
    installed in every worker through the executor ``initializer``, and
    per-task payloads shrink to ``(index, seed_sequence, run_kwargs)``
    plus tiny :class:`SharedStateRef` placeholders.  Installing a new
    mapping recreates the pool (the initializer only runs at worker
    spawn); within one sweep the mapping is stable, so that happens once.

    Parameters
    ----------
    n_workers:
        Worker processes; defaults to the machine's CPU count.
    mp_context:
        Optional :mod:`multiprocessing` context (e.g.
        ``multiprocessing.get_context("fork")``) forwarded to the
        executor; ``None`` uses the platform default.
    """

    name = "process"

    def __init__(
        self,
        n_workers: "int | None" = None,
        *,
        mp_context: "object | None" = None,
    ) -> None:
        if n_workers is None:
            n_workers = os.cpu_count() or 1
        if n_workers < 1:
            raise SimulationError(f"n_workers must be positive, got {n_workers}")
        self.n_workers = int(n_workers)
        self._mp_context = mp_context
        self._pool: "ProcessPoolExecutor | None" = None
        #: The mapping currently installed in the pool's workers (strong
        #: reference: keeps the identity fast-path in _ensure_shared_pool
        #: valid) and its content digest.  None = pool has no state.
        self._installed_state: "Mapping[str, Any] | None" = None
        self._installed_digest: "str | None" = None
        #: How many times a pool was (re)created with shared state — the
        #: regression suite asserts a whole sweep costs exactly one.
        self.shared_installs = 0
        #: Cumulative kernel-engagement counters aggregated from worker
        #: chunk returns (see :func:`repro.engine.kernels.new_kernel_stats`).
        self.kernel_stats = new_kernel_stats()

    def _merge_kernel_stats(self, stats: "Mapping[str, int]") -> None:
        for key, value in stats.items():
            self.kernel_stats[key] = self.kernel_stats.get(key, 0) + value

    def _map_chunks(
        self, worker: "Callable[[list[ReplicateSpec]], Any]",
        specs: "Sequence[ReplicateSpec]",
    ) -> "list[RunResult]":
        """Fan dispatch chunks over the pool, reassembling in order.

        Chunks align with configuration boundaries
        (:func:`_dispatch_chunks`), so each worker-side kernel dispatch
        sees a same-configuration block it can vectorize; per-chunk
        kernel counters are folded into :attr:`kernel_stats`.
        """
        assert self._pool is not None
        chunks = _dispatch_chunks(specs, self.n_workers)
        try:
            outcomes = list(self._pool.map(worker, chunks))
        except BrokenProcessPool as exc:
            self.shutdown()
            raise SimulationError(
                f"process pool died executing replicates ({exc}); a worker "
                "was killed (OOM?) or crashed during unpickling"
            ) from exc
        results: "list[RunResult]" = []
        for chunk_results, chunk_stats in outcomes:
            results.extend(chunk_results)
            self._merge_kernel_stats(chunk_stats)
        return results

    def execute(self, specs: "Sequence[ReplicateSpec]") -> "list[RunResult]":
        if not specs:
            return []
        if self.n_workers == 1 or len(specs) == 1:
            # A pool of one buys nothing; the in-process path is
            # identical by construction (same kernels, same seeds).
            _check_no_refs(specs)
            return _kernel_execute_specs(specs, stats=self.kernel_stats)
        check_no_recorder(specs, backend_hint="process execution")
        check_batch_picklable(specs)
        if self._pool is None:
            # Lazily created and reused across execute() calls: an
            # experiment makes dozens of estimator calls, and paying
            # worker startup (expensive under spawn) per call would
            # erase the fan-out's gain.
            self._pool = ProcessPoolExecutor(
                max_workers=self.n_workers,
                mp_context=self._mp_context,  # type: ignore[arg-type]
            )
        return self._map_chunks(_execute_spec_chunk, specs)

    def execute_shared(
        self,
        specs: "Sequence[ReplicateSpec]",
        shared_state: "Mapping[str, Any]",
    ) -> "list[RunResult]":
        if not specs:
            return []
        if self.n_workers == 1 or len(specs) == 1:
            # Same serial short-circuit as execute(): resolution against
            # the caller's mapping yields the caller's own objects.
            resolved = [
                resolve_replicate_spec(spec, shared_state) for spec in specs
            ]
            return _kernel_execute_specs(resolved, stats=self.kernel_stats)
        check_no_recorder(specs, backend_hint="process execution")
        check_batch_picklable(specs)
        self._ensure_shared_pool(shared_state)
        return self._map_chunks(_execute_shared_spec_chunk, specs)

    def _ensure_shared_pool(self, shared_state: "Mapping[str, Any]") -> None:
        """Make the worker pool carry exactly ``shared_state``.

        Identity fast-path first (a sweep passes the same mapping object
        every round), then a content digest, so an equal-but-distinct
        mapping never forces a pool restart.  Only a genuinely new
        mapping pays the pickle + worker-respawn cost — once per sweep.
        """
        if self._pool is not None and shared_state is self._installed_state:
            return
        digest, blob = pickle_shared_state(shared_state)
        if self._pool is not None and digest == self._installed_digest:
            self._installed_state = shared_state
            return
        self.shutdown()
        self._pool = ProcessPoolExecutor(
            max_workers=self.n_workers,
            mp_context=self._mp_context,  # type: ignore[arg-type]
            initializer=_install_worker_shared_state,
            initargs=(blob,),
        )
        self._installed_state = shared_state
        self._installed_digest = digest
        self.shared_installs += 1

    def shutdown(self) -> None:
        """Release the worker pool (a later execute() recreates it)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        self._installed_state = None
        self._installed_digest = None

    def __del__(self) -> None:
        # An abandoned backend's executor would otherwise linger until
        # interpreter teardown, where its atexit hook can hit
        # already-closed pipes and print ignored tracebacks.
        try:
            self.shutdown()
        except Exception:
            pass

    def __repr__(self) -> str:
        return f"ProcessPoolBackend(n_workers={self.n_workers})"


class AlgorithmFactory:
    """A picklable zero-argument algorithm factory.

    Wraps an importable callable (usually an algorithm class) plus its
    arguments, so experiment specs can fan out to worker processes where
    a lambda or closure could not.

    >>> from repro.algorithms.vanilla import VanillaGossip
    >>> factory = AlgorithmFactory(VanillaGossip)
    >>> factory().name
    'vanilla'
    """

    def __init__(
        self,
        target: "Callable[..., GossipAlgorithm]",
        /,
        *args: Any,
        **kwargs: Any,
    ) -> None:
        if not callable(target):
            raise SimulationError(
                f"AlgorithmFactory target must be callable, got {target!r}"
            )
        self.target = target
        self.args = args
        self.kwargs = kwargs

    def __call__(self) -> GossipAlgorithm:
        return self.target(*self.args, **self.kwargs)

    def __repr__(self) -> str:
        parts = [getattr(self.target, "__name__", repr(self.target))]
        parts += [repr(a) for a in self.args]
        parts += [f"{k}={v!r}" for k, v in self.kwargs.items()]
        return f"AlgorithmFactory({', '.join(parts)})"


def default_n_workers() -> int:
    """Worker count from ``REPRO_WORKERS`` (1, i.e. serial, when unset)."""
    raw = os.environ.get(WORKERS_ENV_VAR)
    if raw is None:
        return 1
    try:
        workers = int(raw)
    except ValueError:
        raise SimulationError(
            f"{WORKERS_ENV_VAR} must be an integer, got {raw!r}"
        ) from None
    if workers < 1:
        raise SimulationError(f"{WORKERS_ENV_VAR} must be positive, got {workers}")
    return workers


#: Resolved process backends, one per worker count, so every estimator
#: call in an experiment run shares one warm worker pool instead of
#: paying pool startup per call.  Lives for the process lifetime; build
#: a ProcessPoolBackend directly for a private pool.
_SHARED_PROCESS_BACKENDS: "dict[int, ProcessPoolBackend]" = {}


def shared_process_backend(n_workers: "int | None" = None) -> ProcessPoolBackend:
    """The process-wide backend (and warm pool) for ``n_workers``."""
    workers = n_workers if n_workers is not None else os.cpu_count() or 1
    backend = _SHARED_PROCESS_BACKENDS.get(workers)
    if backend is None:
        backend = ProcessPoolBackend(workers)
        _SHARED_PROCESS_BACKENDS[workers] = backend
    return backend


def shutdown_shared_backends(only: "set[int] | None" = None) -> None:
    """Release shared pools' worker processes.

    Long-lived hosts (the CLI when called programmatically, notebooks)
    call this after a batch of parallel work; later resolutions
    transparently build fresh pools.  ``only`` restricts the teardown to
    specific worker counts — used to release just the pools a scoped
    piece of work created while leaving the host's own pools warm.
    """
    keys = list(_SHARED_PROCESS_BACKENDS) if only is None else [
        key for key in only if key in _SHARED_PROCESS_BACKENDS
    ]
    for key in keys:
        _SHARED_PROCESS_BACKENDS.pop(key).shutdown()


@contextlib.contextmanager
def scoped_shared_backends():
    """Release, on exit, the shared pools created inside the block.

    Pools the host already had warm on entry are left untouched — this
    is the scoped-cleanup companion to :func:`shared_process_backend`
    for embedders (the CLI uses it around a whole experiment run).
    """
    before = set(_SHARED_PROCESS_BACKENDS)
    try:
        yield
    finally:
        shutdown_shared_backends(only=set(_SHARED_PROCESS_BACKENDS) - before)


def _serial_factory(n_workers: "int | None") -> ExecutionBackend:
    return SerialBackend()


def _process_factory(n_workers: "int | None") -> ExecutionBackend:
    return shared_process_backend(n_workers)


def _cluster_factory(n_workers: "int | None") -> ExecutionBackend:
    # Function-local import: cluster.py imports this module, so a
    # top-level import here would be circular.
    from repro.engine.cluster import ClusterBackend

    return ClusterBackend(n_workers)


#: Name -> factory registry behind :func:`resolve_backend`.  Factories
#: take the requested worker count (``None`` = backend default) and
#: return a ready backend; third-party backends join via
#: :func:`register_backend`.
_BACKEND_FACTORIES: "dict[str, Callable[[int | None], ExecutionBackend]]" = {
    "serial": _serial_factory,
    "process": _process_factory,
    "cluster": _cluster_factory,
}


def register_backend(
    name: str, factory: "Callable[[int | None], ExecutionBackend]"
) -> None:
    """Register (or replace) a named backend factory.

    ``factory(n_workers)`` must return an :class:`ExecutionBackend`;
    the name becomes valid everywhere a backend string is accepted
    (``resolve_backend``, ``MonteCarloRunner``, ``SweepRunner``, the
    CLI's ``--backend`` flag).
    """
    if not name or not isinstance(name, str):
        raise SimulationError(f"backend name must be a non-empty str, got {name!r}")
    if not callable(factory):
        raise SimulationError(f"backend factory must be callable, got {factory!r}")
    _BACKEND_FACTORIES[name] = factory


def registered_backends() -> "tuple[str, ...]":
    """The currently registered backend names (sorted)."""
    return tuple(sorted(_BACKEND_FACTORIES))


def resolve_backend(
    backend: "ExecutionBackend | str | None" = None,
    *,
    n_workers: "int | None" = None,
) -> ExecutionBackend:
    """Coerce a backend choice into an :class:`ExecutionBackend`.

    Accepts an existing backend instance (returned unchanged), a
    registered backend name (``"serial"``, ``"process"``, ``"cluster"``,
    or anything added via :func:`register_backend`), or ``None`` — in
    which case ``n_workers`` (falling back to the ``REPRO_WORKERS``
    environment variable, then 1) selects serial execution for one
    worker and a process pool otherwise.

    Name- and count-resolved process backends are shared per worker
    count (:func:`shared_process_backend`), so back-to-back estimator
    calls reuse one warm pool; pass a :class:`ProcessPoolBackend`
    instance instead when a private pool is wanted.  Cluster backends
    are private per resolution (each owns its worker fleet) — callers
    should ``shutdown()`` them when done.
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    if isinstance(backend, str):
        factory = _BACKEND_FACTORIES.get(backend)
        if factory is None:
            raise SimulationError(
                f"unknown backend {backend!r}; registered backends: "
                f"{', '.join(registered_backends())}"
            )
        if n_workers is None and os.environ.get(WORKERS_ENV_VAR) is not None:
            # A named backend must honor the documented REPRO_WORKERS
            # fallback too; with the variable unset each backend keeps
            # its own default (process: cpu_count, cluster: 2).
            n_workers = default_n_workers()
        return factory(n_workers)
    if backend is not None:
        raise SimulationError(
            f"backend must be an ExecutionBackend, str or None, "
            f"got {type(backend).__name__}"
        )
    if n_workers is None:
        n_workers = default_n_workers()
    if n_workers < 1:
        raise SimulationError(f"n_workers must be positive, got {n_workers}")
    if n_workers == 1:
        return SerialBackend()
    return shared_process_backend(n_workers)

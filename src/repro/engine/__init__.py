"""Event-driven simulation engine for edge-clock gossip."""

from repro.engine.results import Crossing, RunResult
from repro.engine.recorder import TraceRecorder
from repro.engine.simulator import Simulator, simulate
from repro.engine.runner import MonteCarloRunner, ReplicateSummary
from repro.engine.averaging_time import (
    AveragingTimeEstimate,
    PAPER_VARIANCE_THRESHOLD,
    PAPER_CONFIDENCE_QUANTILE,
    epsilon_averaging_time,
    estimate_averaging_time,
)
from repro.engine.metrics import variance_of, variance_ratio

__all__ = [
    "Crossing",
    "RunResult",
    "TraceRecorder",
    "Simulator",
    "simulate",
    "MonteCarloRunner",
    "ReplicateSummary",
    "AveragingTimeEstimate",
    "PAPER_VARIANCE_THRESHOLD",
    "PAPER_CONFIDENCE_QUANTILE",
    "epsilon_averaging_time",
    "estimate_averaging_time",
    "variance_of",
    "variance_ratio",
]

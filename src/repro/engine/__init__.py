"""Event-driven simulation engine for edge-clock gossip."""

from repro.engine.results import Crossing, RunResult
from repro.engine.recorder import TraceRecorder
from repro.engine.simulator import Simulator, simulate
from repro.engine.backends import (
    AlgorithmFactory,
    ExecutionBackend,
    ProcessPoolBackend,
    ReplicateSpec,
    SerialBackend,
    execute_replicate,
    register_backend,
    registered_backends,
    resolve_backend,
    scoped_shared_backends,
    shutdown_shared_backends,
)
from repro.engine.cluster import ClusterBackend, FaultPlan, run_worker
from repro.engine.kernels import (
    KERNEL_CHOICES,
    ScalarKernel,
    SimulationKernel,
    VectorizedBatchKernel,
    default_kernel,
    execute_specs,
)
from repro.engine.runner import MonteCarloRunner, ReplicateSummary
from repro.engine.averaging_time import (
    AveragingTimeEstimate,
    PAPER_VARIANCE_THRESHOLD,
    PAPER_CONFIDENCE_QUANTILE,
    crossing_sample,
    epsilon_averaging_time,
    estimate_averaging_time,
)
from repro.engine.sweeps import (
    PointConfig,
    PointResult,
    ReplicateBudget,
    SweepAxis,
    SweepPoint,
    SweepResult,
    SweepRunner,
    SweepSpec,
    run_sweep,
)
from repro.engine.metrics import variance_of, variance_ratio

__all__ = [
    "Crossing",
    "RunResult",
    "TraceRecorder",
    "Simulator",
    "simulate",
    "AlgorithmFactory",
    "ExecutionBackend",
    "ProcessPoolBackend",
    "ReplicateSpec",
    "SerialBackend",
    "execute_replicate",
    "register_backend",
    "registered_backends",
    "resolve_backend",
    "scoped_shared_backends",
    "shutdown_shared_backends",
    "ClusterBackend",
    "FaultPlan",
    "run_worker",
    "KERNEL_CHOICES",
    "ScalarKernel",
    "SimulationKernel",
    "VectorizedBatchKernel",
    "default_kernel",
    "execute_specs",
    "MonteCarloRunner",
    "ReplicateSummary",
    "AveragingTimeEstimate",
    "PAPER_VARIANCE_THRESHOLD",
    "PAPER_CONFIDENCE_QUANTILE",
    "crossing_sample",
    "epsilon_averaging_time",
    "estimate_averaging_time",
    "PointConfig",
    "PointResult",
    "ReplicateBudget",
    "SweepAxis",
    "SweepPoint",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "run_sweep",
    "variance_of",
    "variance_ratio",
]

"""Persistent, content-addressed results store for sweep runs.

Every number the reproduction reports is an expensive Monte-Carlo
estimate, and :class:`~repro.engine.sweeps.SweepResult` is a
deterministic function of the sweep's *configuration identity*
(:func:`~repro.engine.sweeps.sweep_fingerprint_payload`) plus the code
that computed it.  This module turns that determinism into memory
across runs: a SQLite database keyed by the SHA-256 **fingerprint** of
``(configuration identity, code version)``, so submitting a sweep whose
fingerprint already exists is a *cache hit* that returns the stored,
byte-identical result with zero simulation work — the expensive thing
computes once, every subsequent query is a read.

**Fingerprint semantics.**  The content address covers exactly what
determines the reported bytes:

* the sweep's name, axes, base params and builder identity;
* the root seed and the *logical* replicate budget;
* the code version (git commit when available — results may legitimately
  change between commits, so a new commit is a cache miss, never a
  stale read).

It deliberately excludes scheduling — backend, worker count, round
size, kernel, shared-state shipping — which the determinism suite
proves cannot change a byte of the result.

**Byte identity.**  Results are stored as the exact canonical JSON text
(:func:`canonical_result_text`, the same serialization
:meth:`SweepResult.save` writes), so a cache hit exported to disk is
``cmp``-identical to the artifact the original run saved.

**Concurrency.**  Writers race safely: run rows are claimed with
``INSERT OR IGNORE`` on the unique fingerprint inside SQLite's own
locking (WAL journal + busy timeout), and finishing is an idempotent
UPDATE — two processes computing the same fingerprint both succeed and
store identical bytes.  A corrupt database file raises
:class:`~repro.errors.StoreError` with recovery guidance instead of a
bare ``sqlite3`` traceback (the store is a pure cache of recomputable
results, so deleting it is always safe).

The thin HTTP service in :mod:`repro.engine.service` puts submit → poll
→ fetch endpoints in front of this store, driving one long-lived
execution backend.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import platform
import sqlite3
import subprocess
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Mapping

import numpy as np

from repro.engine.backends import ExecutionBackend
from repro.engine.sweeps import (
    ReplicateBudget,
    SweepResult,
    SweepRunner,
    SweepSpec,
    sweep_fingerprint_payload,
)
from repro.errors import StoreError
from repro.util.serialization import to_jsonable

#: Schema tag stamped into the database and every envelope; bump on
#: incompatible schema changes (the store refuses other versions).
STORE_SCHEMA = "repro-store/v1"

#: Environment variable naming the default store database (the CLI's
#: ``--store`` / ``--db`` flags override it).
STORE_ENV_VAR = "REPRO_STORE"

#: Run row lifecycle.  ``queued`` and ``running`` exist for service
#: visibility; dedup treats anything non-``done`` as "not yet a hit".
RUN_STATUSES = ("queued", "running", "done", "failed")


# ----------------------------------------------------------------------
# fingerprints
# ----------------------------------------------------------------------


_CODE_VERSION_CACHE: "dict[str, str | None]" = {}


def current_code_version() -> "str | None":
    """The git commit the library is running from (best effort).

    ``REPRO_CODE_VERSION`` overrides (useful for containers without git
    metadata); otherwise ``git rev-parse HEAD`` relative to the package
    directory, memoized per process.  ``None`` when neither works —
    fingerprints then dedup on configuration alone.
    """
    override = os.environ.get("REPRO_CODE_VERSION")
    if override:
        return override
    if "git" not in _CODE_VERSION_CACHE:
        commit: "str | None" = None
        try:
            out = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=Path(__file__).resolve().parent,
                capture_output=True,
                text=True,
                timeout=5,
            )
            if out.returncode == 0 and out.stdout.strip():
                commit = out.stdout.strip()
        except (OSError, subprocess.TimeoutExpired):
            commit = None
        _CODE_VERSION_CACHE["git"] = commit
    return _CODE_VERSION_CACHE["git"]


def config_fingerprint(
    payload: "Mapping[str, Any]", *, code_version: "str | None" = None
) -> str:
    """SHA-256 content address of a configuration payload.

    The digest is taken over compact, key-sorted canonical JSON of
    ``{"config": payload, "code_version": code_version}`` — equal
    payloads hash identically regardless of dict ordering or numpy
    scalar types (:func:`~repro.util.serialization.to_jsonable`
    normalizes them first).
    """
    document = {
        "config": to_jsonable(dict(payload)),
        "code_version": code_version,
    }
    canonical = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def sweep_fingerprint(
    spec: SweepSpec,
    *,
    seed: "int | np.random.SeedSequence | None" = None,
    budget: "ReplicateBudget | None" = None,
    code_version: "str | None | object" = ...,
) -> str:
    """The store's content address for one sweep submission.

    Hashes :func:`~repro.engine.sweeps.sweep_fingerprint_payload` (the
    same identity checkpoint resume compares) together with the code
    version; ``budget=None`` normalizes to the runner's default the same
    way :class:`SweepRunner` does, so fingerprinting and running can
    never disagree.  ``code_version`` defaults to
    :func:`current_code_version`; pass ``None`` explicitly to address on
    configuration alone.
    """
    if budget is None:
        budget = ReplicateBudget.fixed(8)
    if code_version is ...:
        code_version = current_code_version()
    return config_fingerprint(
        sweep_fingerprint_payload(spec, seed, budget),
        code_version=code_version,  # type: ignore[arg-type]
    )


def result_fingerprint(result: SweepResult) -> str:
    """A configuration digest computable from a bare :class:`SweepResult`.

    Artifact filenames (:func:`~repro.experiments.reporting
    .save_sweep_result`) are disambiguated with this: it covers the
    result's identity fields (name, axes, seed, logical budget) but —
    unlike :func:`sweep_fingerprint` — not the builder/base_params (a
    result does not carry them) and not the code version (the same
    configuration should land in the same file across commits).
    """
    payload = result.to_dict()
    del payload["points"]
    return config_fingerprint(payload, code_version=None)


def canonical_result_text(result: SweepResult) -> str:
    """The canonical JSON text of a result — byte-identical to
    :meth:`SweepResult.save` output for the same result."""
    text = json.dumps(to_jsonable(result.to_dict()), indent=2, sort_keys=True)
    return text + "\n"


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class StoredRun:
    """One run row (result text is fetched separately — it can be MBs)."""

    run_id: str
    fingerprint: str
    sweep_name: str
    status: str
    created_utc: str
    updated_utc: str
    git_commit: "str | None"
    python: str
    platform: str
    error: "str | None"
    n_points: "int | None"
    total_replicates: "int | None"

    def to_dict(self) -> dict:
        """Plain-dict view (service/CLI JSON)."""
        return {
            "run_id": self.run_id,
            "fingerprint": self.fingerprint,
            "sweep_name": self.sweep_name,
            "status": self.status,
            "created_utc": self.created_utc,
            "updated_utc": self.updated_utc,
            "git_commit": self.git_commit,
            "python": self.python,
            "platform": self.platform,
            "error": self.error,
            "n_points": self.n_points,
            "total_replicates": self.total_replicates,
        }


def _utc_now() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


_CREATE_TABLES = (
    """
    CREATE TABLE IF NOT EXISTS meta (
        key TEXT PRIMARY KEY,
        value TEXT NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS runs (
        run_id TEXT PRIMARY KEY,
        fingerprint TEXT NOT NULL UNIQUE,
        sweep_name TEXT NOT NULL,
        status TEXT NOT NULL,
        created_utc TEXT NOT NULL,
        updated_utc TEXT NOT NULL,
        git_commit TEXT,
        python TEXT NOT NULL,
        platform TEXT NOT NULL,
        error TEXT,
        n_points INTEGER,
        total_replicates INTEGER,
        result_json TEXT
    )
    """,
    """
    CREATE INDEX IF NOT EXISTS runs_by_sweep
        ON runs (sweep_name, created_utc)
    """,
)

_RUN_COLUMNS = (
    "run_id, fingerprint, sweep_name, status, created_utc, updated_utc, "
    "git_commit, python, platform, error, n_points, total_replicates"
)


class ResultsStore:
    """SQLite-backed run database with content-addressed dedup.

    Parameters
    ----------
    path:
        Database file (created, with parents, on first use).
    timeout:
        Seconds a connection waits on SQLite's write lock before giving
        up — generous by default so racing writers queue instead of
        erroring.
    """

    def __init__(self, path: "str | Path", *, timeout: float = 30.0) -> None:
        self.path = Path(path)
        self.timeout = float(timeout)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self._connect() as conn:
            for statement in _CREATE_TABLES:
                conn.execute(statement)
            tag_query = "SELECT value FROM meta WHERE key = 'schema'"
            row = conn.execute(tag_query).fetchone()
            if row is None:
                conn.execute(
                    "INSERT INTO meta (key, value) VALUES ('schema', ?)",
                    (STORE_SCHEMA,),
                )
            elif row[0] != STORE_SCHEMA:
                raise StoreError(
                    f"results store {self.path} has schema {row[0]!r} but "
                    f"this build speaks {STORE_SCHEMA!r}; point it at a "
                    "fresh path (results are recomputable — deleting the "
                    "old file is safe)"
                )

    # -- connections ---------------------------------------------------

    @contextlib.contextmanager
    def _connect(self) -> "Iterator[sqlite3.Connection]":
        """One transaction: commit on success, rollback on error.

        Database-level failures (a truncated or overwritten file, a
        non-database file at the path) surface as :class:`StoreError`
        with recovery guidance.
        """
        try:
            conn = sqlite3.connect(self.path, timeout=self.timeout)
        except sqlite3.Error as exc:  # pragma: no cover - open rarely fails
            message = f"cannot open results store {self.path} ({exc})"
            raise StoreError(message) from exc
        try:
            # WAL lets readers proceed under a writer; best effort (some
            # filesystems refuse), and the busy timeout still protects
            # the rollback-journal fallback.
            with contextlib.suppress(sqlite3.Error):
                conn.execute("PRAGMA journal_mode=WAL")
            yield conn
            conn.commit()
        except sqlite3.DatabaseError as exc:
            raise StoreError(
                f"results store {self.path} is corrupt or not a store "
                f"database ({exc}); every stored result is recomputable, "
                "so delete the file (and any -wal/-shm siblings) and "
                "re-run the sweeps to rebuild it"
            ) from exc
        finally:
            conn.close()

    @staticmethod
    def _row_to_run(row: "tuple") -> StoredRun:
        return StoredRun(*row)

    # -- writes --------------------------------------------------------

    def begin_run(self, fingerprint: str, sweep_name: str) -> "tuple[StoredRun, bool]":
        """Claim (or adopt) the run row for ``fingerprint``.

        Returns ``(row, created)``.  ``INSERT OR IGNORE`` on the unique
        fingerprint makes racing claimants safe: exactly one creates the
        row, everyone sees the same ``run_id``.  A pre-existing
        non-``done`` row (a crashed or in-flight computation) is adopted
        rather than treated as a hit — recomputing is always safe, and
        :meth:`finish` is idempotent.
        """
        run_id = f"{sweep_name.lower()}-{fingerprint[:12]}"
        now = _utc_now()
        with self._connect() as conn:
            conn.execute(
                """
                INSERT OR IGNORE INTO runs
                    (run_id, fingerprint, sweep_name, status,
                     created_utc, updated_utc, git_commit, python, platform)
                VALUES (?, ?, ?, 'queued', ?, ?, ?, ?, ?)
                """,
                (
                    run_id,
                    fingerprint,
                    sweep_name,
                    now,
                    now,
                    current_code_version(),
                    platform.python_version(),
                    platform.platform(),
                ),
            )
            created = conn.execute("SELECT changes()").fetchone()[0] > 0
            row = conn.execute(
                f"SELECT {_RUN_COLUMNS} FROM runs WHERE fingerprint = ?",
                (fingerprint,),
            ).fetchone()
        return self._row_to_run(row), created

    def _update_status(
        self, run_id: str, status: str, *, error: "str | None" = None
    ) -> None:
        with self._connect() as conn:
            cursor = conn.execute(
                "UPDATE runs SET status = ?, error = ?, updated_utc = ? "
                "WHERE run_id = ?",
                (status, error, _utc_now(), run_id),
            )
            if cursor.rowcount == 0:
                raise StoreError(
                    f"no run {run_id!r} in store {self.path}; "
                    "list runs with the `store list` subcommand"
                )

    def mark_running(self, run_id: str) -> None:
        """Flip a queued row to ``running`` (service/poll visibility)."""
        self._update_status(run_id, "running")

    def fail(self, run_id: str, message: str) -> None:
        """Record a failed computation (the row stays for postmortems;
        ``gc`` reaps it, and a later resubmission recomputes)."""
        self._update_status(run_id, "failed", error=message)

    def finish(self, run_id: str, result: SweepResult) -> StoredRun:
        """Store the finished result's canonical bytes and mark ``done``.

        Idempotent: racing writers of the same fingerprint computed
        byte-identical text (determinism), so last-write-wins is
        harmless.
        """
        text = canonical_result_text(result)
        with self._connect() as conn:
            cursor = conn.execute(
                """
                UPDATE runs SET status = 'done', error = NULL,
                    result_json = ?, n_points = ?, total_replicates = ?,
                    updated_utc = ?
                WHERE run_id = ?
                """,
                (
                    text,
                    result.n_points,
                    result.total_replicates,
                    _utc_now(),
                    run_id,
                ),
            )
            if cursor.rowcount == 0:
                raise StoreError(
                    f"no run {run_id!r} in store {self.path}; "
                    "claim it with begin_run() before finish()"
                )
            row = conn.execute(
                f"SELECT {_RUN_COLUMNS} FROM runs WHERE run_id = ?",
                (run_id,),
            ).fetchone()
        return self._row_to_run(row)

    # -- reads ---------------------------------------------------------

    def lookup(self, fingerprint: str) -> "StoredRun | None":
        """The run row for a fingerprint, or ``None``."""
        with self._connect() as conn:
            row = conn.execute(
                f"SELECT {_RUN_COLUMNS} FROM runs WHERE fingerprint = ?",
                (fingerprint,),
            ).fetchone()
        return self._row_to_run(row) if row is not None else None

    def get(self, run_id: str) -> StoredRun:
        """The run row for ``run_id`` (:class:`StoreError` if absent)."""
        with self._connect() as conn:
            row = conn.execute(
                f"SELECT {_RUN_COLUMNS} FROM runs WHERE run_id = ?",
                (run_id,),
            ).fetchone()
        if row is None:
            raise StoreError(
                f"no run {run_id!r} in store {self.path}; "
                "list runs with the `store list` subcommand"
            )
        return self._row_to_run(row)

    def result_text(self, run_id: str) -> str:
        """The stored canonical JSON text (exact bytes) of a done run."""
        with self._connect() as conn:
            row = conn.execute(
                "SELECT status, result_json FROM runs WHERE run_id = ?",
                (run_id,),
            ).fetchone()
        if row is None:
            raise StoreError(
                f"no run {run_id!r} in store {self.path}; "
                "list runs with the `store list` subcommand"
            )
        status, text = row
        if status != "done" or text is None:
            raise StoreError(
                f"run {run_id!r} has no stored result (status: {status}); "
                "poll until it is done, or resubmit the sweep"
            )
        return text

    def load_result(self, run_id: str) -> SweepResult:
        """The stored result, parsed back into a :class:`SweepResult`."""
        return SweepResult.from_dict(json.loads(self.result_text(run_id)))

    def envelope(self, run_id: str) -> dict:
        """The run's provenance envelope plus full result record.

        The same shape as the ``repro-bench/v1`` benchmark artifacts
        (schema / run provenance / record), with the store schema tag
        and the run row as provenance — so stored results and committed
        benchmark artifacts read with one convention.
        """
        run = self.get(run_id)
        record = None
        if run.status == "done":
            record = json.loads(self.result_text(run_id))
        return {
            "schema": STORE_SCHEMA,
            "run": run.to_dict(),
            "record": record,
        }

    def runs(
        self,
        *,
        sweep_name: "str | None" = None,
        status: "str | None" = None,
    ) -> "list[StoredRun]":
        """Run rows, newest first, optionally filtered."""
        clauses, params = [], []
        if sweep_name is not None:
            clauses.append("sweep_name = ?")
            params.append(sweep_name)
        if status is not None:
            if status not in RUN_STATUSES:
                raise StoreError(
                    f"unknown status {status!r}; expected one of "
                    f"{RUN_STATUSES}"
                )
            clauses.append("status = ?")
            params.append(status)
        where = f"WHERE {' AND '.join(clauses)} " if clauses else ""
        with self._connect() as conn:
            rows = conn.execute(
                f"SELECT {_RUN_COLUMNS} FROM runs {where}"
                "ORDER BY created_utc DESC, run_id DESC",
                params,
            ).fetchall()
        return [self._row_to_run(row) for row in rows]

    def results_for_sweep(
        self, sweep_name: str
    ) -> "list[tuple[StoredRun, SweepResult]]":
        """Done runs of one sweep, newest first, with parsed results.

        The typed read path report/claims consumers use: each pair is
        the provenance row plus its :class:`SweepResult`, so callers
        never touch raw JSON text or run-id plumbing.
        """
        return [
            (run, self.load_result(run.run_id))
            for run in self.runs(sweep_name=sweep_name, status="done")
        ]

    def latest_result(self, sweep_name: str) -> "tuple[StoredRun, SweepResult]":
        """The newest done run of one sweep, with its parsed result.

        :class:`StoreError` with a seeding hint when the sweep has no
        completed runs in this store.
        """
        runs = self.runs(sweep_name=sweep_name, status="done")
        if not runs:
            raise StoreError(
                f"no completed runs of sweep {sweep_name!r} in store "
                f"{self.path}; seed it with: repro-experiments sweep "
                f"{sweep_name} --store {self.path}"
            )
        return runs[0], self.load_result(runs[0].run_id)

    # -- maintenance ---------------------------------------------------

    def gc(
        self,
        *,
        older_than_days: "float | None" = None,
        include_incomplete: bool = True,
    ) -> "list[str]":
        """Reap dead rows; returns the removed run ids.

        Always removes ``failed`` rows; ``include_incomplete`` also
        removes ``queued``/``running`` leftovers (safe only when no
        service or sweep is mid-flight against this store);
        ``older_than_days`` additionally expires ``done`` rows created
        before the cutoff.  The file is compacted afterwards.
        """
        doomed_statuses = ["failed"]
        if include_incomplete:
            doomed_statuses += ["queued", "running"]
        placeholders = ",".join("?" for _ in doomed_statuses)
        with self._connect() as conn:
            doomed = [
                row[0]
                for row in conn.execute(
                    f"SELECT run_id FROM runs WHERE status IN ({placeholders})",
                    doomed_statuses,
                ).fetchall()
            ]
            if older_than_days is not None:
                cutoff = time.strftime(
                    "%Y-%m-%dT%H:%M:%SZ",
                    time.gmtime(time.time() - older_than_days * 86400.0),
                )
                doomed += [
                    row[0]
                    for row in conn.execute(
                        "SELECT run_id FROM runs WHERE status = 'done' "
                        "AND created_utc < ?",
                        (cutoff,),
                    ).fetchall()
                ]
            for run_id in doomed:
                conn.execute("DELETE FROM runs WHERE run_id = ?", (run_id,))
        if doomed:
            # VACUUM cannot run inside the transaction above.
            with self._connect() as conn:
                conn.execute("VACUUM")
        return doomed

    def export(self, run_id: str, path: "str | Path") -> Path:
        """Write a done run's stored bytes to ``path`` (atomically).

        The output is ``cmp``-identical to the artifact the original
        run saved — the byte-identity contract the CI store-smoke job
        asserts.
        """
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        text = self.result_text(run_id)
        tmp = target.with_name(f".{target.name}.tmp-{os.getpid()}")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, target)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise
        return target


# ----------------------------------------------------------------------
# cached execution
# ----------------------------------------------------------------------


@dataclass
class StoreOutcome:
    """What :func:`run_sweep_cached` did: the result plus cache telemetry."""

    result: SweepResult
    run_id: str
    fingerprint: str
    cache_hit: bool
    #: Scheduler telemetry from the miss path (empty dict on a hit —
    #: zero rounds, zero replicates: nothing simulated).
    stats: "dict[str, int]"


def run_sweep_cached(
    spec: SweepSpec,
    *,
    store: ResultsStore,
    seed: "int | np.random.SeedSequence | None" = None,
    budget: "ReplicateBudget | None" = None,
    backend: "ExecutionBackend | str | None" = None,
    n_workers: "int | None" = None,
    checkpoint_path: "str | Path | None" = None,
    share_state: bool = True,
    max_round_retries: int = 1,
    kernel: "str | None" = None,
    code_version: "str | None | object" = ...,
) -> StoreOutcome:
    """Run a sweep through the store: hit = read, miss = compute + record.

    On a hit the stored result is returned without constructing a
    runner or touching any backend — zero replicates simulated, by
    construction (the unit suite pins this with a backend that counts
    executions).  On a miss the sweep runs exactly as
    :func:`~repro.engine.sweeps.run_sweep` would, then its canonical
    bytes are recorded under the fingerprint; a failure marks the row
    ``failed`` and re-raises.
    """
    if budget is None:
        budget = ReplicateBudget.fixed(8)
    fingerprint = sweep_fingerprint(
        spec, seed=seed, budget=budget, code_version=code_version
    )
    cached = store.lookup(fingerprint)
    if cached is not None and cached.status == "done":
        return StoreOutcome(
            result=store.load_result(cached.run_id),
            run_id=cached.run_id,
            fingerprint=fingerprint,
            cache_hit=True,
            stats={},
        )
    claim, _created = store.begin_run(fingerprint, spec.name)
    store.mark_running(claim.run_id)
    runner = SweepRunner(
        spec,
        seed=seed,
        budget=budget,
        backend=backend,
        n_workers=n_workers,
        checkpoint_path=checkpoint_path,
        share_state=share_state,
        max_round_retries=max_round_retries,
        kernel=kernel,
    )
    try:
        result = runner.run()
    except Exception as exc:
        with contextlib.suppress(StoreError):
            store.fail(claim.run_id, f"{type(exc).__name__}: {exc}")
        raise
    store.finish(claim.run_id, result)
    return StoreOutcome(
        result=result,
        run_id=claim.run_id,
        fingerprint=fingerprint,
        cache_hit=False,
        stats=dict(runner.stats),
    )

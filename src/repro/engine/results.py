"""Result containers produced by the simulation engine."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Crossing:
    """Threshold-crossing bookkeeping for one variance-ratio threshold.

    For a threshold ``r`` the engine tracks the trajectory of
    ``var X(t) / var X(0)``:

    * ``first_below`` — the time of the first event after which the ratio
      was ``<= r`` (``None`` if that never happened);
    * ``last_above`` — the time of the last event at which the ratio was
      still ``> r`` (0.0 if the run started at or below the threshold,
      which cannot happen for ``r < 1`` since the ratio starts at 1).

    The paper's averaging time (Definition 1) is built from *last* crossing
    times: ``T_av`` must outlast every future excursion above ``e^{-2}``.
    For variance-monotone algorithms the two coincide.
    """

    threshold: float
    first_below: "float | None" = None
    last_above: float = 0.0

    def to_dict(self) -> dict:
        """Plain-dict view for serialization."""
        return {
            "threshold": self.threshold,
            "first_below": self.first_below,
            "last_above": self.last_above,
        }


@dataclass
class RunResult:
    """Outcome of one simulated trajectory.

    Attributes
    ----------
    values:
        Final value vector.
    duration:
        Absolute time of the last processed event.
    n_events:
        Total clock ticks processed.
    n_updates:
        Ticks on which the algorithm actually changed values (Algorithm A
        silences most cut ticks, so ``n_updates < n_events`` there).
    variance_initial, variance_final:
        Population variance of the value vector at start and end.
    sum_initial, sum_final:
        Value sums at start and end; for sum-conserving algorithms the
        drift is pure floating-point noise and is asserted in tests.
    crossings:
        Per-threshold crossing records, keyed by threshold.
    stopped_by:
        Which budget ended the run: ``"target_ratio"``, ``"max_time"``,
        ``"max_events"`` or ``"clock_exhausted"``.
    trace_times, trace_variances:
        Optional sampled trace (present when a recorder was attached).
    """

    values: np.ndarray
    duration: float
    n_events: int
    n_updates: int
    variance_initial: float
    variance_final: float
    sum_initial: float
    sum_final: float
    crossings: "dict[float, Crossing]" = field(default_factory=dict)
    stopped_by: str = "unknown"
    trace_times: "np.ndarray | None" = None
    trace_variances: "np.ndarray | None" = None

    @property
    def variance_ratio(self) -> float:
        """``var_final / var_initial`` (inf if started at zero variance)."""
        if self.variance_initial == 0.0:
            return float("inf") if self.variance_final > 0 else 0.0
        return self.variance_final / self.variance_initial

    @property
    def sum_drift(self) -> float:
        """Absolute drift of the value sum over the run."""
        return abs(self.sum_final - self.sum_initial)

    def crossing(self, threshold: float) -> Crossing:
        """The crossing record for ``threshold`` (must have been tracked)."""
        try:
            return self.crossings[threshold]
        except KeyError:
            tracked = sorted(self.crossings)
            raise KeyError(
                f"threshold {threshold} was not tracked; tracked: {tracked}"
            ) from None

    def to_dict(self) -> dict:
        """Plain-dict summary (omits the full value vector and trace)."""
        return {
            "duration": self.duration,
            "n_events": self.n_events,
            "n_updates": self.n_updates,
            "variance_initial": self.variance_initial,
            "variance_final": self.variance_final,
            "variance_ratio": self.variance_ratio,
            "sum_drift": self.sum_drift,
            "stopped_by": self.stopped_by,
            "crossings": {str(k): v.to_dict() for k, v in self.crossings.items()},
        }


def results_identical(first: RunResult, second: RunResult) -> bool:
    """Field-by-field bit-identity of two results.

    This is the execution backends' reproducibility contract (same root
    seed => identical results regardless of backend or worker count) in
    one place, shared by the determinism tests and benchmarks.  Fields
    are enumerated from the dataclass itself, so a field added to
    :class:`RunResult` is compared automatically.
    """
    import dataclasses
    import math

    for field in dataclasses.fields(RunResult):
        a = getattr(first, field.name)
        b = getattr(second, field.name)
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            # equal_nan: diverged runs legitimately carry NaN, and two
            # byte-identical NaN results must still compare identical.
            if (a is None) != (b is None):
                return False
            if a is not None and not np.array_equal(a, b, equal_nan=True):
                return False
        elif field.name == "crossings":
            if set(a) != set(b):
                return False
            if any(a[k].to_dict() != b[k].to_dict() for k in a):
                return False
        elif a != b:
            if not (
                isinstance(a, float)
                and isinstance(b, float)
                and math.isnan(a)
                and math.isnan(b)
            ):
                return False
    return True

"""The event-driven simulator.

Executes one algorithm on one graph under one clock process, maintaining
exact incremental statistics:

* the value vector ``x`` (kept as a plain Python list in the hot loop —
  scalar indexing of lists is several times faster than numpy scalars,
  and the loop runs millions of iterations);
* the running sum ``T = sum(x)`` and square-sum ``S = sum(x^2)``, updated
  in O(1) per event and refreshed from scratch periodically to cancel
  floating-point drift, giving the population variance
  ``var = S/n - (T/n)^2`` after every single event;
* per-edge tick counts (Algorithm A's schedule lives on them);
* threshold-crossing records for the variance ratio (both the first time
  the ratio falls below each threshold and the last time it was above —
  the paper's ``T_av`` needs the *last*, because non-convex updates make
  excursions).

The model is the paper's: i.i.d. rate-1 Poisson clocks per edge by
default; deterministic schedules can be injected for tests.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.algorithms.base import GossipAlgorithm
from repro.clocks.poisson import PoissonEdgeClocks
from repro.engine.recorder import TraceRecorder
from repro.engine.results import Crossing, RunResult
from repro.errors import SimulationError
from repro.graphs.graph import Graph
from repro.util.rng import as_generator

#: Hard cap on events when the caller provides no budget at all.
DEFAULT_MAX_EVENTS = 50_000_000

#: Events generated per clock batch (amortizes numpy call overhead).
DEFAULT_BATCH_SIZE = 8_192

#: Incremental statistics are recomputed exactly this often (in updates).
DEFAULT_RECOMPUTE_EVERY = 65_536


class Simulator:
    """Simulate one algorithm on one graph.

    Parameters
    ----------
    graph:
        The (connected) graph to run on.
    algorithm:
        Any :class:`~repro.algorithms.base.GossipAlgorithm`.
    initial_values:
        Length-``n`` initial value vector.
    clock:
        Optional clock process (anything implementing ``next_batch``);
        defaults to rate-1 Poisson clocks per edge seeded from ``seed``.
    seed:
        Seed for the default clock and the algorithm's random stream.
        (When independence between the two matters, build the clock
        explicitly from its own stream — :class:`MonteCarloRunner` does
        this, giving every replicate separate clock / workload /
        algorithm substreams.)
    """

    def __init__(
        self,
        graph: Graph,
        algorithm: GossipAlgorithm,
        initial_values: "Sequence[float]",
        *,
        clock: "object | None" = None,
        seed: "int | np.random.Generator | None" = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        recompute_every: int = DEFAULT_RECOMPUTE_EVERY,
    ) -> None:
        values = np.asarray(initial_values, dtype=np.float64)
        if values.shape != (graph.n_vertices,):
            raise SimulationError(
                f"initial_values must have shape ({graph.n_vertices},), "
                f"got {values.shape}"
            )
        if graph.n_edges == 0:
            raise SimulationError("cannot simulate on a graph with no edges")
        if batch_size < 1:
            raise SimulationError(f"batch_size must be positive, got {batch_size}")
        if recompute_every < 1:
            raise SimulationError(
                f"recompute_every must be positive, got {recompute_every}"
            )
        rng = as_generator(seed)
        self.graph = graph
        self.algorithm = algorithm
        self.initial_values = values.copy()
        self.clock = clock if clock is not None else PoissonEdgeClocks(
            graph.n_edges, seed=rng
        )
        clock_edges = getattr(self.clock, "n_edges", None)
        if clock_edges is None or not callable(
            getattr(self.clock, "next_batch", None)
        ):
            raise SimulationError(
                f"clock object {type(self.clock).__name__!r} does not "
                "implement the batch protocol (n_edges attribute + "
                "next_batch method)"
            )
        if clock_edges != graph.n_edges:
            raise SimulationError(
                f"clock models {clock_edges} edges but the "
                f"graph has {graph.n_edges}"
            )
        self.batch_size = int(batch_size)
        self.recompute_every = int(recompute_every)
        self._algorithm_rng = rng

    def run(
        self,
        *,
        max_time: "float | None" = None,
        max_events: "int | None" = None,
        target_ratio: "float | None" = None,
        thresholds: "Sequence[float]" = (math.e**-2,),
        recorder: "TraceRecorder | None" = None,
        divergence_ratio: "float | None" = 1e9,
    ) -> RunResult:
        """Run until a budget or the variance target is hit.

        Parameters
        ----------
        max_time:
            Stop after the first event at or beyond this absolute time.
        max_events:
            Stop after this many events (defaults to a hard safety cap
            when neither other budget is given).
        target_ratio:
            Stop once ``var/var0 <= target_ratio``.  For non-monotone
            algorithms pass a value well below the threshold of interest
            so late excursions are observed before stopping.
        thresholds:
            Variance-ratio thresholds whose crossings to record.
        recorder:
            Optional :class:`TraceRecorder`; receives samples every
            ``recorder.sample_every`` events plus the endpoints.
        divergence_ratio:
            Abort (``stopped_by = "diverged"``) once ``var/var0`` exceeds
            this factor — a guard against unstable algorithms (e.g. the
            async second-order adaptation at aggressive momentum) burning
            the whole event budget.  ``None`` disables the guard.
        """
        if max_time is None and max_events is None and target_ratio is None:
            raise SimulationError(
                "provide at least one of max_time, max_events, target_ratio"
            )
        if max_time is not None and max_time <= 0:
            raise SimulationError(f"max_time must be positive, got {max_time}")
        if max_events is not None and max_events < 1:
            raise SimulationError(f"max_events must be positive, got {max_events}")
        if target_ratio is not None and target_ratio <= 0:
            raise SimulationError(
                f"target_ratio must be positive, got {target_ratio}"
            )
        for threshold in thresholds:
            if threshold <= 0:
                raise SimulationError(f"thresholds must be positive, got {threshold}")
        event_cap = max_events if max_events is not None else DEFAULT_MAX_EVENTS

        x_array = self.initial_values.copy()
        n = len(x_array)
        variance_0 = float(np.var(x_array))
        sum_0 = float(x_array.sum())

        self.algorithm.setup(self.graph, x_array, self._algorithm_rng)

        crossings = {float(thr): Crossing(threshold=float(thr)) for thr in thresholds}
        if variance_0 == 0.0:
            # Already averaged; nothing to do.
            return RunResult(
                values=x_array,
                duration=0.0,
                n_events=0,
                n_updates=0,
                variance_initial=0.0,
                variance_final=0.0,
                sum_initial=sum_0,
                sum_final=sum_0,
                crossings=crossings,
                stopped_by="target_ratio",
            )

        # --- hot-loop state (plain Python scalars and lists) ---
        x = x_array.tolist()
        edges_u = self.graph.edges[:, 0].tolist()
        edges_v = self.graph.edges[:, 1].tolist()
        tick_counts = [0] * self.graph.n_edges
        total = sum_0
        square_sum = float(x_array @ x_array)
        inv_n = 1.0 / n

        # Absolute-variance thresholds (avoid a division per event).
        tracked = sorted(crossings.values(), key=lambda c: -c.threshold)
        thr_abs = [c.threshold * variance_0 for c in tracked]
        first_below: "list[float | None]" = [None] * len(tracked)
        last_above = [0.0] * len(tracked)
        target_abs = (
            target_ratio * variance_0 if target_ratio is not None else None
        )
        divergence_abs = (
            divergence_ratio * variance_0 if divergence_ratio is not None else None
        )

        on_tick = self.algorithm.on_tick
        batch_size = self.batch_size
        next_recompute = self.recompute_every
        sample_every = recorder.sample_every if recorder is not None else 0
        next_sample = sample_every if recorder is not None else -1

        n_events = 0
        n_updates = 0
        now = 0.0
        variance = variance_0
        stopped_by = "max_events"
        last_recorded_event = -1
        if recorder is not None:
            recorder.record(0.0, variance_0, x)
            last_recorded_event = 0

        running = True
        while running:
            remaining = event_cap - n_events
            if remaining <= 0:
                stopped_by = "max_events"
                break
            times, edge_ids = self.clock.next_batch(min(batch_size, remaining))
            if len(times) == 0:
                stopped_by = "clock_exhausted"
                break
            times_list = times.tolist()
            edges_list = edge_ids.tolist()
            for t, e in zip(times_list, edges_list):
                n_events += 1
                count = tick_counts[e] + 1
                tick_counts[e] = count
                u = edges_u[e]
                v = edges_v[e]
                result = on_tick(e, u, v, t, count, x)
                if result is not None:
                    if type(result) is tuple:
                        new_u, new_v = result
                        old_u = x[u]
                        old_v = x[v]
                        square_sum += (
                            new_u * new_u
                            + new_v * new_v
                            - old_u * old_u
                            - old_v * old_v
                        )
                        total += new_u + new_v - old_u - old_v
                        x[u] = new_u
                        x[v] = new_v
                    else:
                        # General update: iterable of (vertex, value)
                        # pairs — used by multi-hop algorithms (e.g.
                        # geographic gossip) that rewrite non-adjacent
                        # nodes on one tick.
                        for vertex, new_value in result:
                            old_value = x[vertex]
                            square_sum += (
                                new_value * new_value - old_value * old_value
                            )
                            total += new_value - old_value
                            x[vertex] = new_value
                    n_updates += 1
                    if n_updates >= next_recompute:
                        refreshed = np.asarray(x, dtype=np.float64)
                        total = float(refreshed.sum())
                        square_sum = float(refreshed @ refreshed)
                        next_recompute = n_updates + self.recompute_every
                    mean = total * inv_n
                    variance = square_sum * inv_n - mean * mean
                    if variance < 0.0:  # floating-point undershoot near 0
                        variance = 0.0
                now = t
                for i in range(len(tracked)):
                    if variance > thr_abs[i]:
                        last_above[i] = t
                    elif first_below[i] is None:
                        first_below[i] = t
                if n_events == next_sample:
                    recorder.record(t, variance, x)
                    last_recorded_event = n_events
                    next_sample += sample_every
                if target_abs is not None and variance <= target_abs:
                    stopped_by = "target_ratio"
                    running = False
                    break
                if divergence_abs is not None and (
                    variance > divergence_abs or variance != variance
                ):
                    stopped_by = "diverged"
                    running = False
                    break
                if max_time is not None and t >= max_time:
                    stopped_by = "max_time"
                    running = False
                    break

        final = np.asarray(x, dtype=np.float64)
        variance_final = float(np.var(final))
        if recorder is not None and last_recorded_event != n_events:
            # The final event may coincide with a periodic sample (or the
            # run may have processed no events at all); recording again
            # would duplicate the trace endpoint.
            recorder.record(now, variance_final, x)
        for record, below, above in zip(tracked, first_below, last_above):
            record.first_below = below
            record.last_above = above
        return RunResult(
            values=final,
            duration=now,
            n_events=n_events,
            n_updates=n_updates,
            variance_initial=variance_0,
            variance_final=variance_final,
            sum_initial=sum_0,
            sum_final=float(final.sum()),
            crossings=crossings,
            stopped_by=stopped_by,
            trace_times=recorder.times if recorder is not None else None,
            trace_variances=recorder.variances if recorder is not None else None,
        )


def simulate(
    graph: Graph,
    algorithm: GossipAlgorithm,
    initial_values: "Sequence[float]",
    *,
    seed: "int | np.random.Generator | None" = None,
    clock: "object | None" = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    recompute_every: int = DEFAULT_RECOMPUTE_EVERY,
    **run_kwargs: object,
) -> RunResult:
    """One-call convenience: build a :class:`Simulator` and run it.

    ``batch_size`` and ``recompute_every`` are constructor knobs, not
    ``run()`` kwargs, so they are forwarded explicitly — leaving them in
    ``run_kwargs`` would either be silently dropped or rejected by
    ``run()`` depending on the call.
    """
    simulator = Simulator(
        graph,
        algorithm,
        initial_values,
        clock=clock,
        seed=seed,
        batch_size=batch_size,
        recompute_every=recompute_every,
    )
    return simulator.run(**run_kwargs)  # type: ignore[arg-type]

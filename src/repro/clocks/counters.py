"""Per-edge tick counters.

Algorithm A's schedule is phrased in terms of "the k-th tick of edge e_c",
so the engine keeps an exact per-edge tick count.  This tiny class wraps
the bookkeeping with validation and a couple of convenience queries.
"""

from __future__ import annotations

import numpy as np


class TickCounters:
    """Counts how many times each edge's clock has ticked."""

    def __init__(self, n_edges: int) -> None:
        if n_edges < 1:
            raise ValueError(f"n_edges must be positive, got {n_edges}")
        self._counts = np.zeros(n_edges, dtype=np.int64)

    @property
    def n_edges(self) -> int:
        """Number of tracked edges."""
        return len(self._counts)

    @property
    def total(self) -> int:
        """Total ticks across all edges."""
        return int(self._counts.sum())

    def count(self, edge_id: int) -> int:
        """Tick count of ``edge_id`` so far."""
        self._check(edge_id)
        return int(self._counts[edge_id])

    def record(self, edge_id: int) -> int:
        """Record one tick of ``edge_id``; returns the new count (1-based)."""
        self._check(edge_id)
        self._counts[edge_id] += 1
        return int(self._counts[edge_id])

    def counts(self) -> np.ndarray:
        """Copy of the per-edge count array."""
        return self._counts.copy()

    def reset(self) -> None:
        """Zero all counters."""
        self._counts[:] = 0

    def _check(self, edge_id: int) -> None:
        if not 0 <= edge_id < len(self._counts):
            raise ValueError(
                f"edge id {edge_id} out of range for {len(self._counts)} edges"
            )

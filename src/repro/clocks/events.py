"""Event types shared by clock processes and the simulation engine."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np


@dataclass(frozen=True, order=True)
class EdgeTick:
    """A single clock tick: edge ``edge_id`` fires at absolute ``time``.

    Ordering is by time (then edge id), so ticks sort chronologically.
    """

    time: float
    edge_id: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"tick time must be non-negative, got {self.time}")
        if self.edge_id < 0:
            raise ValueError(f"edge id must be non-negative, got {self.edge_id}")


class ClockProcess(Protocol):
    """Protocol every clock source implements.

    A clock process produces a chronological stream of edge ticks.  The
    engine consumes ticks in batches for speed; a batch is a pair of
    parallel arrays ``(times, edge_ids)`` with ``times`` non-decreasing and
    continuing from the previous batch.
    """

    @property
    def n_edges(self) -> int:
        """Number of edges whose clocks this process models."""
        ...

    def next_batch(self, max_events: int) -> "tuple[np.ndarray, np.ndarray]":
        """Produce up to ``max_events`` further ticks (times, edge ids)."""
        ...

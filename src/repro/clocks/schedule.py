"""Deterministic clock schedules for reproducible unit tests.

These implement the same batch protocol as the Poisson clocks, so any
algorithm can be driven by a scripted tick sequence and its update rule
checked step-by-step without randomness.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


class RoundRobinSchedule:
    """Edges tick cyclically ``0, 1, ..., m-1, 0, ...`` at a fixed spacing.

    The default spacing ``1 / m`` mimics the mean event rate of rate-1
    Poisson clocks (one tick per edge per unit time on average).
    """

    def __init__(self, n_edges: int, *, spacing: "float | None" = None) -> None:
        if n_edges < 1:
            raise ValueError(f"n_edges must be positive, got {n_edges}")
        if spacing is not None and spacing <= 0:
            raise ValueError(f"spacing must be positive, got {spacing}")
        self._n_edges = int(n_edges)
        self._spacing = spacing if spacing is not None else 1.0 / n_edges
        self._tick_index = 0

    @property
    def n_edges(self) -> int:
        """Number of edges in the cycle."""
        return self._n_edges

    def next_batch(self, max_events: int) -> "tuple[np.ndarray, np.ndarray]":
        """Next ``max_events`` ticks of the cycle."""
        if max_events < 1:
            raise ValueError(f"max_events must be positive, got {max_events}")
        indices = self._tick_index + np.arange(max_events, dtype=np.int64)
        self._tick_index += max_events
        times = (indices + 1).astype(np.float64) * self._spacing
        edge_ids = indices % self._n_edges
        return times, edge_ids


class ScriptedSchedule:
    """An explicit finite tick sequence.

    Constructed from ``(time, edge_id)`` pairs with strictly increasing
    times.  Once exhausted, :meth:`next_batch` returns empty arrays, which
    the engine treats as "clock source dried up" and stops.
    """

    def __init__(
        self, ticks: "Iterable[tuple[float, int]]", *, n_edges: "int | None" = None
    ) -> None:
        pairs = [(float(t), int(e)) for t, e in ticks]
        for (t0, _), (t1, _) in zip(pairs, pairs[1:]):
            if t1 <= t0:
                raise ValueError(
                    f"scripted tick times must be strictly increasing, "
                    f"got {t0} then {t1}"
                )
        for t, e in pairs:
            if t < 0:
                raise ValueError(f"tick time must be non-negative, got {t}")
            if e < 0:
                raise ValueError(f"edge id must be non-negative, got {e}")
        self._times = np.array([t for t, _ in pairs], dtype=np.float64)
        self._edges = np.array([e for _, e in pairs], dtype=np.int64)
        inferred = int(self._edges.max()) + 1 if pairs else 0
        self._n_edges = n_edges if n_edges is not None else inferred
        if pairs and int(self._edges.max()) >= self._n_edges:
            raise ValueError(
                f"edge id {int(self._edges.max())} out of range for "
                f"n_edges={self._n_edges}"
            )
        self._cursor = 0

    @classmethod
    def uniform_times(
        cls,
        edge_ids: Sequence[int],
        *,
        spacing: float = 1.0,
        n_edges: "int | None" = None,
    ) -> "ScriptedSchedule":
        """Script the given edges at times ``spacing, 2*spacing, ...``.

        Pass ``n_edges`` explicitly when the script does not mention the
        highest edge id of the graph it will drive.
        """
        if spacing <= 0:
            raise ValueError(f"spacing must be positive, got {spacing}")
        ticks = [(spacing * (i + 1), int(e)) for i, e in enumerate(edge_ids)]
        return cls(ticks, n_edges=n_edges)

    @property
    def n_edges(self) -> int:
        """Declared number of edges (>= 1 + max scripted id)."""
        return self._n_edges

    @property
    def remaining(self) -> int:
        """How many scripted ticks have not been emitted yet."""
        return len(self._times) - self._cursor

    def next_batch(self, max_events: int) -> "tuple[np.ndarray, np.ndarray]":
        """Next scripted ticks (possibly fewer than requested; maybe empty)."""
        if max_events < 1:
            raise ValueError(f"max_events must be positive, got {max_events}")
        lo = self._cursor
        hi = min(lo + max_events, len(self._times))
        self._cursor = hi
        return self._times[lo:hi].copy(), self._edges[lo:hi].copy()

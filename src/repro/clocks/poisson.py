"""Independent Poisson clocks on edges, as in the paper's model.

The paper attaches an i.i.d. rate-1 Poisson clock to every edge.  Rather
than maintaining one timer per edge, we use the superposition theorem: the
union of ``m`` independent Poisson processes with rates ``r_e`` is a single
Poisson process with rate ``R = sum r_e`` in which each event is edge ``e``
with probability ``r_e / R``, independently.  For the homogeneous rate-1
case this means: inter-event gaps are ``Exponential(m)`` and each event
picks a uniformly random edge — two cheap vectorized draws per batch.

With probability 1 no two clocks tick simultaneously, which the paper's
Section 2 relies on; the continuous draws here inherit that property.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import as_generator


class PoissonEdgeClocks:
    """Superposed Poisson edge clocks with per-edge rates (default all 1).

    Parameters
    ----------
    n_edges:
        Number of edges.
    rates:
        Optional per-edge positive rates; defaults to 1 for every edge
        (the paper's model).
    seed:
        Integer seed or :class:`numpy.random.Generator`.
    """

    def __init__(
        self,
        n_edges: int,
        *,
        rates: "np.ndarray | None" = None,
        seed: "int | np.random.Generator | None" = None,
    ) -> None:
        if n_edges < 1:
            raise ValueError(f"n_edges must be positive, got {n_edges}")
        self._n_edges = int(n_edges)
        if rates is None:
            self._rates = None
            self._total_rate = float(n_edges)
            self._edge_probabilities = None
        else:
            rate_array = np.asarray(rates, dtype=np.float64)
            if rate_array.shape != (n_edges,):
                raise ValueError(
                    f"rates must have shape ({n_edges},), got {rate_array.shape}"
                )
            if np.any(rate_array <= 0):
                raise ValueError("all edge rates must be positive")
            self._rates = rate_array.copy()
            self._total_rate = float(rate_array.sum())
            self._edge_probabilities = self._rates / self._total_rate
        self._rng = as_generator(seed)
        self._now = 0.0

    @property
    def n_edges(self) -> int:
        """Number of edges whose clocks this process models."""
        return self._n_edges

    @property
    def total_rate(self) -> float:
        """Rate of the superposed process (``m`` for unit rates)."""
        return self._total_rate

    @property
    def now(self) -> float:
        """Time of the most recently generated tick (0 before any)."""
        return self._now

    def next_batch(self, max_events: int) -> "tuple[np.ndarray, np.ndarray]":
        """Generate the next ``max_events`` ticks.

        Returns parallel arrays ``(times, edge_ids)``; times continue from
        the previous batch and are strictly increasing with probability 1.
        """
        if max_events < 1:
            raise ValueError(f"max_events must be positive, got {max_events}")
        gaps = self._rng.exponential(1.0 / self._total_rate, size=max_events)
        times = self._now + np.cumsum(gaps)
        self._now = float(times[-1])
        if self._edge_probabilities is None:
            edge_ids = self._rng.integers(self._n_edges, size=max_events)
        else:
            edge_ids = self._rng.choice(
                self._n_edges, size=max_events, p=self._edge_probabilities
            )
        return times, edge_ids.astype(np.int64)

    def expected_ticks_per_edge(self, horizon: float) -> np.ndarray:
        """Expected tick count of each edge by absolute time ``horizon``."""
        if horizon < 0:
            raise ValueError(f"horizon must be non-negative, got {horizon}")
        if self._rates is None:
            return np.full(self._n_edges, horizon, dtype=np.float64)
        return self._rates * horizon


class PoissonClockFactory:
    """Picklable ``rng -> clock`` factory for :class:`PoissonEdgeClocks`.

    Monte-Carlo fan-out across worker processes
    (:mod:`repro.engine.backends`) pickles per-replicate specs, which a
    lambda clock factory cannot survive; this object carries the clock
    configuration (edge count and optional per-edge rates) and builds a
    fresh process from each replicate's clock stream.
    """

    def __init__(self, n_edges: int, *, rates: "np.ndarray | None" = None) -> None:
        self.n_edges = int(n_edges)
        # Copy: the caller may reuse (and mutate) one rates buffer across
        # factory constructions, and every replicate reads this array.
        self.rates = (
            None if rates is None else np.array(rates, dtype=np.float64)
        )
        # Validate the configuration eagerly (same checks as the clock).
        PoissonEdgeClocks(self.n_edges, rates=self.rates, seed=0)

    def __call__(self, rng: np.random.Generator) -> PoissonEdgeClocks:
        return PoissonEdgeClocks(self.n_edges, rates=self.rates, seed=rng)

    def __repr__(self) -> str:
        suffix = "" if self.rates is None else ", rates=..."
        return f"PoissonClockFactory({self.n_edges}{suffix})"

"""Edge-clock processes: Poisson clocks (the paper's model) and test schedules."""

from repro.clocks.events import EdgeTick
from repro.clocks.poisson import PoissonClockFactory, PoissonEdgeClocks
from repro.clocks.schedule import RoundRobinSchedule, ScriptedSchedule
from repro.clocks.counters import TickCounters
from repro.clocks.unreliable import (
    FailingEdgeClocks,
    FailingPoissonClockFactory,
    LossyClocks,
    LossyPoissonClockFactory,
)

__all__ = [
    "EdgeTick",
    "PoissonClockFactory",
    "PoissonEdgeClocks",
    "RoundRobinSchedule",
    "ScriptedSchedule",
    "TickCounters",
    "FailingEdgeClocks",
    "FailingPoissonClockFactory",
    "LossyClocks",
    "LossyPoissonClockFactory",
]

"""Edge-clock processes: Poisson clocks (the paper's model) and test schedules."""

from repro.clocks.events import EdgeTick
from repro.clocks.poisson import PoissonEdgeClocks
from repro.clocks.schedule import RoundRobinSchedule, ScriptedSchedule
from repro.clocks.counters import TickCounters
from repro.clocks.unreliable import FailingEdgeClocks, LossyClocks

__all__ = [
    "EdgeTick",
    "PoissonEdgeClocks",
    "RoundRobinSchedule",
    "ScriptedSchedule",
    "TickCounters",
    "FailingEdgeClocks",
    "LossyClocks",
]

"""Failure injection: lossy and dying edge clocks.

Robustness experiments wrap the Poisson process with two failure models:

* :class:`LossyClocks` — each tick is independently dropped with a
  per-edge probability (message loss).  A dropped tick simply never
  reaches the algorithm; by Poisson thinning, edge ``e`` behaves exactly
  like a clock of rate ``1 - p_e``.
* :class:`FailingEdgeClocks` — each edge dies at an exponential lifetime
  (or a scripted instant) and never ticks again (link failure).  Useful
  to ask the paper's obvious operational question: what happens to
  Algorithm A when its *designated* cut edge dies?

Both wrap any inner clock process and preserve the batch protocol, so
simulators are oblivious to the failure model.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.util.rng import as_generator


class LossyClocks:
    """Drop each tick of edge ``e`` independently with probability ``p_e``."""

    def __init__(
        self,
        inner: object,
        drop_probability: "float | Sequence[float]",
        *,
        seed: "int | np.random.Generator | None" = None,
    ) -> None:
        n_edges = int(getattr(inner, "n_edges"))
        probabilities = np.broadcast_to(
            np.asarray(drop_probability, dtype=np.float64), (n_edges,)
        ).copy()
        if np.any(probabilities < 0) or np.any(probabilities >= 1):
            raise ValueError("drop probabilities must lie in [0, 1)")
        self._inner = inner
        self._drop = probabilities
        self._rng = as_generator(seed)

    @property
    def n_edges(self) -> int:
        """Number of edges of the wrapped process."""
        return int(getattr(self._inner, "n_edges"))

    def next_batch(self, max_events: int) -> "tuple[np.ndarray, np.ndarray]":
        """Surviving ticks from the inner process (possibly fewer)."""
        times, edges = self._inner.next_batch(max_events)
        if len(times) == 0:
            return times, edges
        keep = self._rng.random(len(times)) >= self._drop[edges]
        return times[keep], edges[keep]


class FailingEdgeClocks:
    """Edges die permanently; dead edges emit no further ticks.

    Parameters
    ----------
    inner:
        The wrapped clock process.
    failure_times:
        Either a mapping ``edge_id -> absolute death time`` (scripted
        failures; unlisted edges never die) or a positive float ``rate``:
        every edge independently dies at an ``Exponential(rate)`` time.
    """

    def __init__(
        self,
        inner: object,
        failure_times: "Mapping[int, float] | float",
        *,
        seed: "int | np.random.Generator | None" = None,
    ) -> None:
        n_edges = int(getattr(inner, "n_edges"))
        deaths = np.full(n_edges, np.inf)
        if isinstance(failure_times, (int, float)) and not isinstance(
            failure_times, bool
        ):
            rate = float(failure_times)
            if rate <= 0:
                raise ValueError(f"failure rate must be positive, got {rate}")
            rng = as_generator(seed)
            deaths = rng.exponential(1.0 / rate, size=n_edges)
        else:
            for edge_id, death in failure_times.items():
                if not 0 <= int(edge_id) < n_edges:
                    raise ValueError(
                        f"edge id {edge_id} out of range for {n_edges} edges"
                    )
                if death < 0:
                    raise ValueError(f"death time must be >= 0, got {death}")
                deaths[int(edge_id)] = float(death)
        self._inner = inner
        self._deaths = deaths

    @property
    def n_edges(self) -> int:
        """Number of edges of the wrapped process."""
        return int(getattr(self._inner, "n_edges"))

    @property
    def death_times(self) -> np.ndarray:
        """Copy of per-edge death times (inf = immortal)."""
        return self._deaths.copy()

    def next_batch(self, max_events: int) -> "tuple[np.ndarray, np.ndarray]":
        """Ticks of still-alive edges (dead edges' ticks are removed)."""
        times, edges = self._inner.next_batch(max_events)
        if len(times) == 0:
            return times, edges
        alive = times < self._deaths[edges]
        return times[alive], edges[alive]

"""Failure injection: lossy and dying edge clocks.

Robustness experiments wrap the Poisson process with two failure models:

* :class:`LossyClocks` — each tick is independently dropped with a
  per-edge probability (message loss).  A dropped tick simply never
  reaches the algorithm; by Poisson thinning, edge ``e`` behaves exactly
  like a clock of rate ``1 - p_e``.
* :class:`FailingEdgeClocks` — each edge dies at an exponential lifetime
  (or a scripted instant) and never ticks again (link failure).  Useful
  to ask the paper's obvious operational question: what happens to
  Algorithm A when its *designated* cut edge dies?

Both wrap any inner clock process and preserve the batch protocol, so
simulators are oblivious to the failure model.

For Monte-Carlo fan-out across worker processes
(:mod:`repro.engine.backends`), :class:`LossyPoissonClockFactory` and
:class:`FailingPoissonClockFactory` are picklable ``rng -> clock``
factories building each failure model over fresh rate-1 Poisson clocks —
use these instead of lambdas when running with ``n_workers > 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.clocks.poisson import PoissonEdgeClocks
from repro.util.rng import as_generator, derive_child


class LossyClocks:
    """Drop each tick of edge ``e`` independently with probability ``p_e``."""

    def __init__(
        self,
        inner: object,
        drop_probability: "float | Sequence[float]",
        *,
        seed: "int | np.random.Generator | None" = None,
    ) -> None:
        n_edges = int(getattr(inner, "n_edges"))
        probabilities = np.broadcast_to(
            np.asarray(drop_probability, dtype=np.float64), (n_edges,)
        ).copy()
        if np.any(probabilities < 0) or np.any(probabilities >= 1):
            raise ValueError("drop probabilities must lie in [0, 1)")
        self._inner = inner
        self._drop = probabilities
        self._rng = as_generator(seed)

    @property
    def n_edges(self) -> int:
        """Number of edges of the wrapped process."""
        return int(getattr(self._inner, "n_edges"))

    def next_batch(self, max_events: int) -> "tuple[np.ndarray, np.ndarray]":
        """Surviving ticks from the inner process (possibly fewer).

        An unlucky small batch can have every tick dropped; returning it
        empty would read as clock exhaustion to the simulator and end the
        run early, so draw again until something survives or the inner
        process itself runs dry.
        """
        while True:
            times, edges = self._inner.next_batch(max_events)
            if len(times) == 0:
                return times, edges  # inner exhausted for real
            keep = self._rng.random(len(times)) >= self._drop[edges]
            if keep.any():
                return times[keep], edges[keep]


class FailingEdgeClocks:
    """Edges die permanently; dead edges emit no further ticks.

    Parameters
    ----------
    inner:
        The wrapped clock process.
    failure_times:
        Either a mapping ``edge_id -> absolute death time`` (scripted
        failures; unlisted edges never die) or a positive float ``rate``:
        every edge independently dies at an ``Exponential(rate)`` time.
    seed:
        Randomness for the exponential lifetimes.  Only meaningful with a
        float rate; passing it alongside a scripted mapping raises
        ``ValueError`` (the mapping consumes no randomness, so a seed
        there is always a caller mistake).
    """

    def __init__(
        self,
        inner: object,
        failure_times: "Mapping[int, float] | float",
        *,
        seed: "int | np.random.Generator | None" = None,
    ) -> None:
        n_edges = int(getattr(inner, "n_edges"))
        deaths = np.full(n_edges, np.inf)
        if isinstance(failure_times, (int, float)) and not isinstance(
            failure_times, bool
        ):
            rate = float(failure_times)
            if rate <= 0:
                raise ValueError(f"failure rate must be positive, got {rate}")
            rng = as_generator(seed)
            deaths = rng.exponential(1.0 / rate, size=n_edges)
        else:
            if seed is not None:
                raise ValueError(
                    "seed is meaningless with scripted failure_times (a "
                    "mapping draws no randomness); pass a float rate for "
                    "random lifetimes or drop the seed"
                )
            for edge_id, death in failure_times.items():
                if not 0 <= int(edge_id) < n_edges:
                    raise ValueError(
                        f"edge id {edge_id} out of range for {n_edges} edges"
                    )
                if death < 0:
                    raise ValueError(f"death time must be >= 0, got {death}")
                deaths[int(edge_id)] = float(death)
        self._inner = inner
        self._deaths = deaths
        self._last_death = float(np.max(deaths))

    @property
    def n_edges(self) -> int:
        """Number of edges of the wrapped process."""
        return int(getattr(self._inner, "n_edges"))

    @property
    def death_times(self) -> np.ndarray:
        """Copy of per-edge death times (inf = immortal)."""
        return self._deaths.copy()

    def next_batch(self, max_events: int) -> "tuple[np.ndarray, np.ndarray]":
        """Ticks of still-alive edges (dead edges' ticks are removed).

        A batch whose ticks all landed on dead edges is retried (an empty
        return reads as clock exhaustion to the simulator) — unless every
        edge is already past its death time, in which case the process
        really is exhausted and an empty batch is the honest answer.
        """
        while True:
            times, edges = self._inner.next_batch(max_events)
            if len(times) == 0:
                return times, edges
            alive = times < self._deaths[edges]
            if alive.any():
                return times[alive], edges[alive]
            if times[0] >= self._last_death:
                # No edge can ever tick again; report genuine exhaustion.
                return times[:0], edges[:0]


# ----------------------------------------------------------------------
# picklable per-replicate factories (process-pool execution)
# ----------------------------------------------------------------------


def _sibling_stream(rng: np.random.Generator) -> np.random.Generator:
    """An independent generator derived from ``rng`` without advancing it.

    Deriving (not spawning) from the generator's seed sequence leaves
    both the stream and the sequence's child counter untouched, so the
    *inner* Poisson process below consumes exactly the same draws as an
    unwrapped clock built from the same replicate stream.  That makes a
    wrapped run a strict thinning of its unwrapped twin for the whole
    run — the common-random-numbers pairing the experiments lean on —
    while failure decisions stay independent.
    """
    return np.random.default_rng(
        derive_child(rng.bit_generator.seed_seq, 0)
    )


@dataclass(frozen=True)
class LossyPoissonClockFactory:
    """Picklable ``rng -> clock`` factory: lossy rate-1 Poisson clocks.

    The inner Poisson process consumes the replicate's clock stream
    directly; drop decisions draw from a sibling stream (see
    :func:`_sibling_stream`), so the surviving ticks are an exact subset
    of the ticks an un-lossy clock would emit under the same seed.
    """

    n_edges: int
    drop_probability: "float | tuple"

    def __call__(self, rng: np.random.Generator) -> LossyClocks:
        drop = self.drop_probability
        if isinstance(drop, tuple):
            drop = np.asarray(drop, dtype=np.float64)
        return LossyClocks(
            PoissonEdgeClocks(self.n_edges, seed=rng),
            drop,
            seed=_sibling_stream(rng),
        )


@dataclass(frozen=True)
class FailingPoissonClockFactory:
    """Picklable ``rng -> clock`` factory: dying rate-1 Poisson clocks.

    ``failure_times`` follows :class:`FailingEdgeClocks`: a mapping of
    scripted death instants (built seedless — scripted deaths draw no
    randomness) or a float rate for exponential lifetimes.  Lifetimes
    draw from a sibling stream so the inner tick sequence matches an
    unwrapped clock under the same seed (common random numbers).  A
    mapping is normalized to a sorted item tuple so the frozen dataclass
    stays hashable and equality/pickling are canonical.
    """

    n_edges: int
    failure_times: "Mapping[int, float] | tuple | float"

    def __post_init__(self) -> None:
        if isinstance(self.failure_times, Mapping):
            object.__setattr__(
                self,
                "failure_times",
                tuple(sorted(self.failure_times.items())),
            )

    def __call__(self, rng: np.random.Generator) -> FailingEdgeClocks:
        inner = PoissonEdgeClocks(self.n_edges, seed=rng)
        if isinstance(self.failure_times, (int, float)) and not isinstance(
            self.failure_times, bool
        ):
            return FailingEdgeClocks(
                inner, self.failure_times, seed=_sibling_stream(rng)
            )
        return FailingEdgeClocks(inner, dict(self.failure_times))

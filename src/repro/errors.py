"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
downstream users can catch one type.  Subclasses mirror the major
subsystems; they carry plain messages and, where useful, structured
attributes (for example the offending vertex or edge).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Invalid graph construction or query (bad vertex, duplicate edge...)."""


class VertexError(GraphError):
    """A vertex id is out of range or otherwise invalid."""

    def __init__(self, vertex: int, n_vertices: int) -> None:
        self.vertex = vertex
        self.n_vertices = n_vertices
        super().__init__(
            f"vertex {vertex} out of range for graph with {n_vertices} vertices"
        )


class EdgeError(GraphError):
    """An edge is invalid (self-loop, duplicate, unknown endpoint...)."""


class PartitionError(ReproError):
    """A partition does not cover the vertex set, overlaps, or is disconnected."""


class DisconnectedGraphError(GraphError):
    """An operation requires a connected graph but the graph is not connected."""


class AlgorithmError(ReproError):
    """An averaging algorithm was configured or used incorrectly."""


class SimulationError(ReproError):
    """The simulation engine was driven into an invalid state."""


class ConvergenceError(SimulationError):
    """A run failed to converge within its budget.

    Carries the budget that was exhausted so callers can report it.
    """

    def __init__(self, message: str, *, elapsed_time: float, n_events: int) -> None:
        self.elapsed_time = elapsed_time
        self.n_events = n_events
        super().__init__(message)


class SweepError(SimulationError):
    """A parameter sweep was specified or resumed incorrectly."""


class ClusterError(SimulationError):
    """The cluster coordinator or one of its workers failed.

    ``retryable`` distinguishes transient faults (every worker died
    mid-batch but the fleet can be rebuilt — re-executing the same specs
    yields bit-identical results) from deterministic ones (a spec that
    keeps crashing whichever worker runs it).  The engine's round-level
    retry only re-runs a batch when it is set.
    """

    def __init__(self, message: str, *, retryable: bool = False) -> None:
        self.retryable = retryable
        super().__init__(message)


class ClusterAuthError(ClusterError):
    """A peer failed the cluster's HMAC handshake.

    Never retryable: retrying with the same (wrong or missing) token
    would fail identically, so workers exit instead of reconnecting.
    """

    def __init__(self, message: str) -> None:
        super().__init__(message, retryable=False)


class AnalysisError(ReproError):
    """An analysis routine received data it cannot process."""


class ExperimentError(ReproError):
    """An experiment specification is invalid or failed to execute."""


class SerializationError(ReproError):
    """A result object could not be serialized or deserialized."""


class StoreError(ReproError):
    """The persistent results store rejected an operation.

    Raised for schema mismatches, unknown run ids, and database-level
    corruption; messages carry recovery guidance (the store is a pure
    cache of recomputable results, so deleting a damaged database file
    is always safe).
    """

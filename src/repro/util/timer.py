"""Wall-clock timing context manager for harness progress reports."""

from __future__ import annotations

import time


class Timer:
    """Measure elapsed wall-clock time.

    >>> with Timer() as t:
    ...     _ = sum(range(10))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: "float | None" = None
        self._elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is not None:
            self._elapsed = time.perf_counter() - self._start
            self._start = None

    @property
    def elapsed(self) -> float:
        """Seconds elapsed (live while running, frozen after exit)."""
        if self._start is not None:
            return time.perf_counter() - self._start
        return self._elapsed

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"Timer(elapsed={self.elapsed:.6f}s)"

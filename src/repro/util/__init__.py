"""Shared utilities: RNG management, validation, math helpers, rendering, IO."""

from repro.util.rng import RngFactory, as_generator, spawn_generators
from repro.util.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)
from repro.util.mathx import (
    geometric_mean,
    log_ratio,
    relative_error,
    running_mean,
    safe_log,
)
from repro.util.tables import Table
from repro.util.ascii_plot import line_plot, log_log_slope
from repro.util.serialization import from_json_file, to_json_file
from repro.util.timer import Timer

__all__ = [
    "RngFactory",
    "as_generator",
    "spawn_generators",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_type",
    "geometric_mean",
    "log_ratio",
    "relative_error",
    "running_mean",
    "safe_log",
    "Table",
    "line_plot",
    "log_log_slope",
    "from_json_file",
    "to_json_file",
    "Timer",
]

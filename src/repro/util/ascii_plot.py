"""ASCII line plots for experiment "figures".

The paper reproduction runs offline with no plotting stack, so each figure
is rendered as a terminal scatter/line chart.  The charts are intentionally
coarse — their job is to make scaling shapes (linear vs. logarithmic growth,
crossovers) visible in CI logs, not to be publication graphics.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

_MARKERS = "ox+*#@%&"


def line_plot(
    series: "Mapping[str, tuple[Sequence[float], Sequence[float]]]",
    *,
    width: int = 64,
    height: int = 18,
    title: "str | None" = None,
    logx: bool = False,
    logy: bool = False,
) -> str:
    """Render one or more ``name -> (xs, ys)`` series on a shared canvas.

    Each series gets a distinct marker; a legend line maps markers to names.
    ``logx``/``logy`` plot the data on logarithmic axes (data must then be
    strictly positive).
    """
    if not series:
        raise ValueError("line_plot needs at least one series")
    if width < 8 or height < 4:
        raise ValueError("canvas too small; need width >= 8 and height >= 4")

    transformed: dict[str, tuple[list[float], list[float]]] = {}
    for name, (xs, ys) in series.items():
        if len(xs) != len(ys):
            raise ValueError(f"series {name!r} has mismatched x/y lengths")
        if len(xs) == 0:
            raise ValueError(f"series {name!r} is empty")
        txs = [_axis_value(x, logx, name, "x") for x in xs]
        tys = [_axis_value(y, logy, name, "y") for y in ys]
        transformed[name] = (txs, tys)

    all_x = [x for xs, _ in transformed.values() for x in xs]
    all_y = [y for _, ys in transformed.values() for y in ys]
    x_lo, x_hi = min(all_x), max(all_x)
    y_lo, y_hi = min(all_y), max(all_y)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    canvas = [[" "] * width for _ in range(height)]
    for index, (name, (xs, ys)) in enumerate(transformed.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in zip(xs, ys):
            col = int(round((x - x_lo) / x_span * (width - 1)))
            row = int(round((y - y_lo) / y_span * (height - 1)))
            canvas[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    y_top = _axis_label(y_hi, logy)
    y_bot = _axis_label(y_lo, logy)
    label_width = max(len(y_top), len(y_bot))
    for i, row in enumerate(canvas):
        if i == 0:
            prefix = y_top.rjust(label_width)
        elif i == height - 1:
            prefix = y_bot.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * width)
    x_left = _axis_label(x_lo, logx)
    x_right = _axis_label(x_hi, logx)
    gap = max(1, width - len(x_left) - len(x_right))
    lines.append(" " * (label_width + 2) + x_left + " " * gap + x_right)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(transformed)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)


def _axis_value(value: float, log: bool, name: str, axis: str) -> float:
    if log:
        if value <= 0:
            raise ValueError(
                f"series {name!r} has non-positive {axis} value {value} on a log axis"
            )
        return math.log10(value)
    return float(value)


def _axis_label(value: float, log: bool) -> str:
    if log:
        return f"{10 ** value:.3g}"
    return f"{value:.3g}"


def log_log_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Slope of ``log y`` against ``log x`` — the empirical scaling exponent.

    Convenience wrapper used in figure captions, e.g. "vanilla gossip on
    dumbbells: measured exponent 1.02 (theory: 1)".
    """
    from repro.util.mathx import fit_power_law

    exponent, _ = fit_power_law(xs, ys)
    return exponent

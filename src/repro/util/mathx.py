"""Numerical helpers shared by the engine and analysis layers."""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

#: Floor used when taking logs of quantities that may underflow to zero.
LOG_FLOOR = 1e-300


def safe_log(value: float, *, floor: float = LOG_FLOOR) -> float:
    """Natural log clamped below by ``log(floor)`` so zeros don't raise.

    Variance traces legitimately reach exact zero (for example on a two-node
    graph after one vanilla update); analyses that track ``log var`` treat
    that as "converged past measurement range" rather than an error.
    """
    return math.log(max(value, floor))


def log_ratio(numerator: float, denominator: float) -> float:
    """``log(numerator / denominator)`` computed stably via :func:`safe_log`."""
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    return safe_log(numerator) - math.log(denominator)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (0 if any value is zero)."""
    logs = []
    for value in values:
        if value < 0:
            raise ValueError(
                f"geometric mean requires non-negative values, got {value}"
            )
        if value == 0.0:
            return 0.0
        logs.append(math.log(value))
    if not logs:
        raise ValueError("geometric mean of an empty sequence is undefined")
    return math.exp(sum(logs) / len(logs))


def relative_error(measured: float, reference: float) -> float:
    """``|measured - reference| / |reference|``; reference must be non-zero."""
    if reference == 0:
        raise ValueError("relative error undefined for zero reference")
    return abs(measured - reference) / abs(reference)


def running_mean(values: Sequence[float]) -> np.ndarray:
    """Cumulative mean of a sequence (``out[k] = mean(values[: k + 1])``)."""
    array = np.asarray(values, dtype=float)
    if array.ndim != 1:
        raise ValueError("running_mean expects a 1-D sequence")
    if array.size == 0:
        return array.copy()
    return np.cumsum(array) / np.arange(1, array.size + 1)


def quantile(values: Sequence[float], q: float) -> float:
    """Empirical ``q``-quantile (linear interpolation, validated input)."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise ValueError("quantile of an empty sequence is undefined")
    return float(np.quantile(array, q))


def variance(values: Sequence[float]) -> float:
    """Population variance ``mean((x - mean(x))**2)`` as the paper defines it."""
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise ValueError("variance of an empty sequence is undefined")
    return float(np.mean((array - array.mean()) ** 2))


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> tuple[float, float]:
    """Least-squares fit of ``y = a * x**b`` in log-log space.

    Returns ``(exponent b, prefactor a)``.  Used by experiments to report
    measured scaling exponents (for example `T_av ~ n^1.0` for vanilla
    gossip on dumbbells).
    """
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("fit_power_law expects two 1-D sequences of equal length")
    if x.size < 2:
        raise ValueError("fit_power_law needs at least two points")
    if np.any(x <= 0) or np.any(y <= 0):
        raise ValueError("fit_power_law requires strictly positive data")
    slope, intercept = np.polyfit(np.log(x), np.log(y), deg=1)
    return float(slope), float(math.exp(intercept))


def fit_log_law(xs: Sequence[float], ys: Sequence[float]) -> tuple[float, float]:
    """Least-squares fit of ``y = a * log(x) + c``; returns ``(a, c)``."""
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("fit_log_law expects two 1-D sequences of equal length")
    if x.size < 2:
        raise ValueError("fit_log_law needs at least two points")
    if np.any(x <= 0):
        raise ValueError("fit_log_law requires strictly positive x data")
    slope, intercept = np.polyfit(np.log(x), y, deg=1)
    return float(slope), float(intercept)

"""ASCII table rendering for experiment reports.

The benchmark harness prints every reproduced "table" of the paper through
:class:`Table`, so all output shares one format and can be diffed between
runs.  No third-party table library is used (offline constraint).
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


class Table:
    """A simple column-aligned ASCII table.

    >>> t = Table(["n", "T_av"], title="demo")
    >>> t.add_row([16, 3.25])
    >>> t.add_row([32, 7.5])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    demo
    n  | T_av
    ---+-----
    16 | 3.25
    32 | 7.5
    """

    def __init__(
        self,
        columns: Sequence[str],
        *,
        title: "str | None" = None,
        float_format: str = "{:.4g}",
    ) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.columns = [str(c) for c in columns]
        self.title = title
        self.float_format = float_format
        self._rows: list[list[str]] = []

    def add_row(self, values: Iterable[Any]) -> None:
        """Append one row; must have exactly one value per column."""
        row = [self._format(v) for v in values]
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} values but table has {len(self.columns)} columns"
            )
        self._rows.append(row)

    def add_rows(self, rows: Iterable[Iterable[Any]]) -> None:
        """Append several rows."""
        for row in rows:
            self.add_row(row)

    @property
    def n_rows(self) -> int:
        """Number of data rows currently in the table."""
        return len(self._rows)

    def _format(self, value: Any) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return self.float_format.format(value)
        return str(value)

    def render(self) -> str:
        """Render the table as a string (no trailing newline)."""
        widths = [len(c) for c in self.columns]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths)).rstrip()
        rule = "-+-".join("-" * w for w in widths)
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(header)
        lines.append(rule)
        for row in self._rows:
            lines.append(
                " | ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
            )
        return "\n".join(lines)

    def to_rows(self) -> list[list[str]]:
        """Return the formatted rows (useful for assertions in tests)."""
        return [list(row) for row in self._rows]

    def __str__(self) -> str:
        return self.render()

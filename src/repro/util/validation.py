"""Small argument-validation helpers used across the library.

These keep error messages uniform ("name must be positive, got -3") and the
call sites one-liners.  Each helper returns the validated value so it can be
used inline in assignments.
"""

from __future__ import annotations

from typing import Any, TypeVar

T = TypeVar("T")


def check_type(value: Any, expected: "type | tuple[type, ...]", name: str) -> Any:
    """Raise :class:`TypeError` unless ``value`` is an instance of ``expected``."""
    if not isinstance(value, expected):
        if isinstance(expected, tuple):
            names = " or ".join(t.__name__ for t in expected)
        else:
            names = expected.__name__
        raise TypeError(f"{name} must be {names}, got {type(value).__name__}")
    return value


def check_positive(value: float, name: str) -> float:
    """Raise :class:`ValueError` unless ``value`` > 0."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Raise :class:`ValueError` unless ``value`` >= 0."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def check_probability(value: float, name: str) -> float:
    """Raise :class:`ValueError` unless ``value`` lies in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_in_range(
    value: float,
    name: str,
    *,
    low: "float | None" = None,
    high: "float | None" = None,
    low_inclusive: bool = True,
    high_inclusive: bool = True,
) -> float:
    """Raise :class:`ValueError` unless ``value`` lies in the given interval."""
    if low is not None:
        if low_inclusive and value < low:
            raise ValueError(f"{name} must be >= {low}, got {value}")
        if not low_inclusive and value <= low:
            raise ValueError(f"{name} must be > {low}, got {value}")
    if high is not None:
        if high_inclusive and value > high:
            raise ValueError(f"{name} must be <= {high}, got {value}")
        if not high_inclusive and value >= high:
            raise ValueError(f"{name} must be < {high}, got {value}")
    return value


def check_integer(value: Any, name: str) -> int:
    """Coerce numpy/bool-free integers; raise :class:`TypeError` otherwise."""
    import numbers

    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    return int(value)

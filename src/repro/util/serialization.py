"""JSON persistence for experiment results.

Experiment outputs are plain nested dicts/lists/scalars plus numpy types;
this module converts numpy scalars/arrays to built-ins on the way out and
validates on the way in.  Keeping results as JSON makes the benchmark
artifacts (`EXPERIMENTS.md` inputs) diffable and machine-readable.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import SerializationError


def to_jsonable(value: Any) -> Any:
    """Recursively convert ``value`` into JSON-serializable built-ins."""
    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    if isinstance(value, np.ndarray):
        return [to_jsonable(v) for v in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                key = str(key)
            out[key] = to_jsonable(item)
        return out
    if hasattr(value, "to_dict"):
        return to_jsonable(value.to_dict())
    raise SerializationError(
        f"cannot serialize object of type {type(value).__name__} to JSON"
    )


def to_json_file(value: Any, path: "str | Path", *, indent: int = 2) -> Path:
    """Atomically write ``value`` (after :func:`to_jsonable`) to ``path``.

    The document is serialized fully in memory first (a value that fails
    :func:`to_jsonable` never touches the file), written to a same-
    directory temp file, fsynced, and renamed over the target — so a
    crash at any instant leaves either the old complete file or the new
    complete file, never a torn one.  Checkpoint resume depends on this.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(to_jsonable(value), indent=indent, sort_keys=True) + "\n"
    tmp = target.with_name(f".{target.name}.tmp-{os.getpid()}")
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    try:
        # Durability of the rename itself (best effort; not all
        # platforms/filesystems support fsyncing a directory).
        dir_fd = os.open(target.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except OSError:
        pass
    return target


def from_json_file(path: "str | Path") -> Any:
    """Read a JSON file written by :func:`to_json_file`."""
    source = Path(path)
    if not source.exists():
        raise SerializationError(f"no such result file: {source}")
    with open(source, "r", encoding="utf-8") as handle:
        try:
            return json.load(handle)
        except json.JSONDecodeError as exc:
            raise SerializationError(f"invalid JSON in {source}: {exc}") from exc

"""Seeded random-number-generator management.

All stochastic code in the library takes either an integer seed or a
:class:`numpy.random.Generator`.  This module centralizes the coercion
(:func:`as_generator`) and the creation of independent child streams
(:func:`spawn_generators`, :class:`RngFactory`), so replicated experiments
get reproducible yet statistically independent randomness.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

SeedLike = "int | np.random.Generator | np.random.SeedSequence | None"


def as_generator(
    seed: "int | np.random.Generator | np.random.SeedSequence | None",
) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts an existing generator (returned unchanged), an integer seed, a
    :class:`numpy.random.SeedSequence`, or ``None`` (fresh OS entropy).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(f"cannot build a Generator from {type(seed).__name__}")


def derive_child(
    sequence: np.random.SeedSequence, key: int
) -> np.random.SeedSequence:
    """The child ``sequence.spawn()`` would yield at ``key`` — without
    mutating ``sequence``'s child counter.

    Reproducibility-critical: the Monte-Carlo runner's replicate roots
    and the execution backends' per-replicate substreams both derive
    through this one function, so the scheme cannot drift between them.
    """
    return np.random.SeedSequence(
        entropy=sequence.entropy,
        spawn_key=(*sequence.spawn_key, key),
        pool_size=sequence.pool_size,
    )


def spawn_generators(
    seed: "int | np.random.SeedSequence | None", count: int
) -> list[np.random.Generator]:
    """Create ``count`` statistically independent generators from one seed.

    Uses :meth:`numpy.random.SeedSequence.spawn`, the supported mechanism
    for building parallel streams, so replicate ``i`` is reproducible
    regardless of how many replicates run.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(count)]


class RngFactory:
    """A reproducible source of named, independent random streams.

    Each distinct ``name`` passed to :meth:`stream` yields a generator
    seeded from the root seed and the name, so adding a new consumer of
    randomness never perturbs existing streams.

    >>> factory = RngFactory(seed=7)
    >>> a = factory.stream("clocks")
    >>> b = factory.stream("workload")
    >>> a is not b
    True
    """

    def __init__(self, seed: "int | None" = None) -> None:
        self._root = np.random.SeedSequence(seed)
        self._seed = seed
        self._counters: dict[str, int] = {}

    @property
    def seed(self) -> "int | None":
        """The root integer seed this factory was built from (may be None)."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return a fresh generator for stream ``name``.

        Repeated calls with the same name return *new* generators continuing
        a per-name counter, so each call site gets an independent stream
        while remaining reproducible run-to-run.
        """
        index = self._counters.get(name, 0)
        self._counters[name] = index + 1
        entropy = self._root.entropy
        if entropy is None:
            entropy = 0
        child = np.random.SeedSequence(
            entropy=entropy,
            spawn_key=(_stable_name_key(name), index),
        )
        return np.random.default_rng(child)

    def replicate_streams(self, name: str, count: int) -> list[np.random.Generator]:
        """Return ``count`` independent generators for replicated runs."""
        return [self.stream(f"{name}[{i}]") for i in range(count)]

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"RngFactory(seed={self._seed!r})"


def _stable_name_key(name: str) -> int:
    """Hash a stream name to a stable 32-bit key (Python's hash is salted)."""
    acc = 2166136261
    for byte in name.encode("utf-8"):
        acc = (acc ^ byte) * 16777619 % (1 << 32)
    return acc


def iter_seeds(root_seed: "int | None", count: int) -> Iterator[int]:
    """Yield ``count`` distinct 63-bit integer seeds derived from ``root_seed``."""
    sequence = np.random.SeedSequence(root_seed)
    state = sequence.generate_state(count, dtype=np.uint64)
    for value in state:
        yield int(value) & ((1 << 63) - 1)


def sample_without_replacement(
    rng: np.random.Generator, population: Sequence[int], size: int
) -> np.ndarray:
    """Sample ``size`` distinct items from ``population`` (validated)."""
    if size > len(population):
        raise ValueError(
            f"cannot sample {size} items from population of {len(population)}"
        )
    return rng.choice(np.asarray(population), size=size, replace=False)

"""Benchmark E14 — Bandwidth-vs-algorithm: boosted cut clock vs non-convex swap.

Regenerates the experiment's tables/figures at the configured scale and
asserts the predictions.  See EXPERIMENTS.md (E14) for the
paper-vs-measured record this produces.
"""


def test_e14_rate_boost(run_experiment_benchmark):
    run_experiment_benchmark("E14")

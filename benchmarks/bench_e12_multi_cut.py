"""Benchmark E12 — Multi-cut extension: chains of cliques.

Regenerates the experiment's tables/figures at the configured scale and
asserts the predictions.  See EXPERIMENTS.md (E12) for the
paper-vs-measured record this produces.
"""


def test_e12_multi_cut(run_experiment_benchmark):
    run_experiment_benchmark("E12")

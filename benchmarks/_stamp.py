"""Run-stamped benchmark result schema.

Benchmark JSON artifacts under ``benchmarks/results/`` are the repo's
performance trajectory: CI uploads them per PR and local runs refresh
the committed copies.  A bare measurement dict is useless later without
knowing *when* and *on what* it ran, so every artifact is wrapped in one
envelope::

    {
      "schema": "repro-bench/v1",
      "benchmark": "<name>",
      "run": {"timestamp_utc", "git_commit", "python", "platform",
              "cpu_count"},
      "record": {...the measurement...}
    }

``record`` stays sorted/diffable; the ``run`` block is what makes two
artifacts from different machines or commits comparable at all.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from pathlib import Path
from typing import Any, Mapping

SCHEMA = "repro-bench/v1"

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def _git_commit() -> "str | None":
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    commit = out.stdout.strip()
    return commit if out.returncode == 0 and commit else None


def run_stamp() -> "dict[str, Any]":
    """Provenance for one benchmark run (machine, commit, moment)."""
    return {
        "timestamp_utc": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
        ),
        "git_commit": _git_commit(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
    }


def write_result(
    benchmark: str, record: "Mapping[str, Any]", *, filename: "str | None" = None
) -> Path:
    """Write one stamped benchmark artifact into ``benchmarks/results/``.

    Returns the written path.  ``filename`` defaults to
    ``BENCH_<benchmark>.json``.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / (filename or f"BENCH_{benchmark}.json")
    payload = {
        "schema": SCHEMA,
        "benchmark": benchmark,
        "run": run_stamp(),
        "record": dict(record),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path

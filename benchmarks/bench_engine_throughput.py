"""Engine micro-benchmarks: simulator event throughput and spectral cost.

These are true microbenchmarks (multiple rounds) guarding against
performance regressions in the hot loop that every experiment depends on.
"""

from __future__ import annotations

import pytest

from repro.algorithms.nonconvex import NonConvexSparseCutGossip
from repro.algorithms.vanilla import VanillaGossip
from repro.clocks.poisson import PoissonEdgeClocks
from repro.engine.simulator import Simulator
from repro.experiments.workloads import cut_aligned
from repro.graphs.composites import two_expanders
from repro.graphs.spectral import _fiedler_cached, laplacian_spectrum
from repro.graphs.topologies import random_regular_graph

EVENTS = 200_000


@pytest.fixture(scope="module")
def pair():
    return two_expanders(128, 128, degree=8, n_bridges=1, seed=0)


def test_vanilla_event_throughput(benchmark, pair):
    """Events/second of the hot loop under vanilla gossip."""
    x0 = cut_aligned(pair.partition)

    def run():
        simulator = Simulator(pair.graph, VanillaGossip(), x0, seed=1)
        return simulator.run(max_events=EVENTS)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.n_events == EVENTS
    events_per_second = EVENTS / benchmark.stats["mean"]
    benchmark.extra_info["events_per_second"] = events_per_second
    # Regression guard: the loop must stay near the ~1M events/s class.
    assert events_per_second > 100_000


def test_algorithm_a_event_throughput(benchmark, pair):
    """Algorithm A's per-tick dispatch must stay close to vanilla's."""
    x0 = cut_aligned(pair.partition)

    def run():
        algorithm = NonConvexSparseCutGossip(pair.partition, epoch_length=4)
        simulator = Simulator(pair.graph, algorithm, x0, seed=2)
        return simulator.run(max_events=EVENTS)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.n_events == EVENTS
    assert EVENTS / benchmark.stats["mean"] > 80_000


def test_poisson_clock_generation(benchmark):
    """Raw clock-stream generation (vectorized superposition)."""
    clocks = PoissonEdgeClocks(2048, seed=3)

    def run():
        return clocks.next_batch(100_000)

    times, edges = benchmark.pedantic(run, rounds=5, iterations=1)
    assert len(times) == len(edges) == 100_000


def test_spectral_toolkit_cost(benchmark):
    """Dense spectrum of a 256-vertex graph (the Tvan proxy's cost)."""
    graph = random_regular_graph(256, 8, seed=4)

    def run():
        laplacian_spectrum.cache_clear()
        _fiedler_cached.cache_clear()
        return laplacian_spectrum(graph)

    spectrum = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(spectrum) == 256

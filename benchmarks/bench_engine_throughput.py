"""Engine micro-benchmarks: simulator event throughput and spectral cost.

These are true microbenchmarks (multiple rounds) guarding against
performance regressions in the hot loop that every experiment depends on.

``test_kernel_scaling`` additionally persists the scalar-vs-vectorized
replicate-throughput curve to ``results/BENCH_kernel_scaling.json`` —
the committed copy documents the speedup the vectorized lockstep kernel
buys on the E3-class dumbbell grid.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.algorithms.nonconvex import NonConvexSparseCutGossip
from repro.algorithms.vanilla import VanillaGossip
from repro.clocks.poisson import PoissonEdgeClocks
from repro.engine.simulator import Simulator
from repro.experiments.workloads import cut_aligned
from repro.graphs.composites import two_expanders
from repro.graphs.spectral import _fiedler_cached, laplacian_spectrum
from repro.graphs.topologies import random_regular_graph

EVENTS = 200_000


@pytest.fixture(scope="module")
def pair():
    return two_expanders(128, 128, degree=8, n_bridges=1, seed=0)


def test_vanilla_event_throughput(benchmark, pair):
    """Events/second of the hot loop under vanilla gossip."""
    x0 = cut_aligned(pair.partition)

    def run():
        simulator = Simulator(pair.graph, VanillaGossip(), x0, seed=1)
        return simulator.run(max_events=EVENTS)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.n_events == EVENTS
    events_per_second = EVENTS / benchmark.stats["mean"]
    benchmark.extra_info["events_per_second"] = events_per_second
    # Regression guard: the loop must stay near the ~1M events/s class.
    assert events_per_second > 100_000


def test_algorithm_a_event_throughput(benchmark, pair):
    """Algorithm A's per-tick dispatch must stay close to vanilla's."""
    x0 = cut_aligned(pair.partition)

    def run():
        algorithm = NonConvexSparseCutGossip(pair.partition, epoch_length=4)
        simulator = Simulator(pair.graph, algorithm, x0, seed=2)
        return simulator.run(max_events=EVENTS)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.n_events == EVENTS
    assert EVENTS / benchmark.stats["mean"] > 80_000


def test_poisson_clock_generation(benchmark):
    """Raw clock-stream generation (vectorized superposition)."""
    clocks = PoissonEdgeClocks(2048, seed=3)

    def run():
        return clocks.next_batch(100_000)

    times, edges = benchmark.pedantic(run, rounds=5, iterations=1)
    assert len(times) == len(edges) == 100_000


def test_spectral_toolkit_cost(benchmark):
    """Dense spectrum of a 256-vertex graph (the Tvan proxy's cost)."""
    graph = random_regular_graph(256, 8, seed=4)

    def run():
        laplacian_spectrum.cache_clear()
        _fiedler_cached.cache_clear()
        return laplacian_spectrum(graph)

    spectrum = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(spectrum) == 256


# ----------------------------------------------------------------------
# kernel scaling (scalar event loop vs vectorized lockstep batches)
# ----------------------------------------------------------------------

#: E3-class dumbbell size and the per-replicate event budget.  The CI
#: smoke job scales the events down (and disarms the floor); the
#: committed artifact comes from a local run at the defaults.
KERNEL_DUMBBELL_N = int(os.environ.get("REPRO_BENCH_KERNEL_N", "64"))
KERNEL_EVENTS = int(os.environ.get("REPRO_BENCH_KERNEL_EVENTS", "50000"))
#: Replicate-batch widths for the vectorized throughput curve.  The
#: largest width is the headline the speedup floor is asserted on.
KERNEL_WIDTHS = tuple(
    int(token)
    for token in os.environ.get(
        "REPRO_BENCH_KERNEL_WIDTHS", "16,64,256,1024,2048"
    ).split(",")
)
#: Scalar reference width: enough replicates to average the per-run
#: noise without making the scalar side dominate the benchmark's cost.
KERNEL_SCALAR_REPLICATES = int(
    os.environ.get("REPRO_BENCH_KERNEL_SCALAR_REPLICATES", "16")
)
KERNEL_ROUNDS = int(os.environ.get("REPRO_BENCH_KERNEL_ROUNDS", "3"))
#: Headline speedup floor (vectorized at the widest batch vs scalar,
#: single process, replicate-events/second).  0 disarms the assertion —
#: determinism is still verified and the curve still recorded.
KERNEL_SPEEDUP_FLOOR = float(os.environ.get("REPRO_BENCH_KERNEL_SPEEDUP_FLOOR", "10.0"))
#: Floor for the Algorithm A (generalized lockstep loop) curve.  The
#: epoch-aware loop pays for masked statistics and per-row bookkeeping,
#: so its headline is lower than the dense loop's — but still must beat
#: the scalar oracle by a wide margin at full width.
KERNEL_NONCONVEX_FLOOR = float(
    os.environ.get("REPRO_BENCH_KERNEL_NONCONVEX_FLOOR", "5.0")
)
#: Epoch length for the benchmark's Algorithm A arm (the value itself is
#: immaterial to throughput: designated-edge ticks are rare either way).
KERNEL_NONCONVEX_EPOCH = int(os.environ.get("REPRO_BENCH_KERNEL_EPOCH", "4"))


def test_kernel_scaling(benchmark, capsys):
    """Replicate throughput: scalar loop vs vectorized lockstep widths.

    Three properties in one measurement pass, for **both** lockstep
    loops — vanilla gossip exercises the dense loop, Algorithm A the
    epoch-aware generalized loop:

    * **determinism** — at every width, the vectorized kernel's leading
      replicates are bit-identical to the scalar kernel's (checked
      unconditionally; replicate ``i``'s substreams do not depend on how
      many replicates run beside it, so the prefix comparison is exact);
    * **curve** — replicate-events/second per batch width, persisted to
      ``results/BENCH_kernel_scaling.json`` (the crossover at narrow
      widths is part of the record: it is why the auto policy demotes
      tiny batches to the scalar kernel);
    * **speedup** — at the widest batch each loop must beat the scalar
      oracle's per-replicate throughput by its floor (best round against
      best round; both sides are warm).
    """
    from _stamp import write_result

    from repro.engine.backends import AlgorithmFactory
    from repro.engine.results import results_identical
    from repro.engine.runner import MonteCarloRunner
    from repro.graphs.composites import dumbbell_graph

    pair = dumbbell_graph(KERNEL_DUMBBELL_N)
    x0 = cut_aligned(pair.partition)
    arms = {
        "vanilla": VanillaGossip,
        "nonconvex": AlgorithmFactory(
            NonConvexSparseCutGossip,
            pair.partition,
            epoch_length=KERNEL_NONCONVEX_EPOCH,
        ),
    }

    def run(arm, kernel, n_replicates):
        runner = MonteCarloRunner(
            pair.graph, arms[arm], x0, seed=42, kernel=kernel
        )
        start = time.perf_counter()
        results = runner.run(n_replicates, max_events=KERNEL_EVENTS)
        return time.perf_counter() - start, results

    def best_of(arm, kernel, n_replicates):
        """Best wall time over the round budget (first round warms)."""
        times, results = [], None
        for _ in range(KERNEL_ROUNDS):
            seconds, results = run(arm, kernel, n_replicates)
            times.append(seconds)
        return min(times), results

    def measure_arm(arm):
        """One arm's scalar reference + vectorized width curve."""
        # Scalar reference: per-replicate event throughput of the pure
        # Python loop (independent of replicate count — no batching).
        scalar_seconds, scalar_results = best_of(
            arm, "scalar", KERNEL_SCALAR_REPLICATES
        )
        scalar_eps = KERNEL_SCALAR_REPLICATES * KERNEL_EVENTS / scalar_seconds
        curve = {}
        headline = 0.0
        n_prefix = min(KERNEL_SCALAR_REPLICATES, min(KERNEL_WIDTHS))
        for width in KERNEL_WIDTHS:
            seconds, results = best_of(arm, "vectorized", width)
            eps = width * KERNEL_EVENTS / seconds
            headline = eps / scalar_eps
            # Kernel contract: same seeds -> same bytes, at every width.
            assert all(
                results_identical(a, b)
                for a, b in zip(scalar_results[:n_prefix], results[:n_prefix])
            ), f"vectorized {arm} diverged from scalar at width {width}"
            curve[str(width)] = {
                "best_seconds": round(seconds, 4),
                "replicate_events_per_sec": round(eps, 1),
                "speedup_vs_scalar": round(headline, 2),
            }
        return {
            "scalar": {
                "replicates": KERNEL_SCALAR_REPLICATES,
                "best_seconds": round(scalar_seconds, 4),
                "replicate_events_per_sec": round(scalar_eps, 1),
            },
            "vectorized": curve,
            "headline": {
                "width": KERNEL_WIDTHS[-1],
                "speedup_vs_scalar": round(headline, 2),
            },
        }

    vanilla = benchmark.pedantic(
        lambda: measure_arm("vanilla"), rounds=1, iterations=1
    )
    nonconvex = measure_arm("nonconvex")

    record = {
        "grid": (
            f"dumbbell n={KERNEL_DUMBBELL_N} (E3-class), "
            "cut-aligned workload"
        ),
        "events_per_replicate": KERNEL_EVENTS,
        "rounds": KERNEL_ROUNDS,
        "cpu_count": os.cpu_count(),
        # Top-level scalar/vectorized/headline keys stay the vanilla
        # (dense-loop) curve — the shape older tooling reads.
        **vanilla,
        "nonconvex": {
            "algorithm": (
                f"algorithm-A epoch_length={KERNEL_NONCONVEX_EPOCH} "
                "(generalized lockstep loop)"
            ),
            **nonconvex,
        },
    }
    out_path = write_result("kernel_scaling", record)

    benchmark.extra_info["kernel_scaling"] = record["vectorized"]
    benchmark.extra_info["kernel_scaling_nonconvex"] = nonconvex["vectorized"]
    with capsys.disabled():
        print()
        for arm, block in (("vanilla", record), ("nonconvex", nonconvex)):
            scalar_eps = block["scalar"]["replicate_events_per_sec"]
            print(
                f"kernel scaling [{arm}], dumbbell n={KERNEL_DUMBBELL_N}, "
                f"{KERNEL_EVENTS} events/replicate "
                f"(scalar: {scalar_eps / 1e6:.2f}M replicate-events/s):"
            )
            for width, stats in block["vectorized"].items():
                print(
                    f"  width {width:>5}: "
                    f"{stats['replicate_events_per_sec'] / 1e6:6.2f}M ev/s, "
                    f"{stats['speedup_vs_scalar']:5.2f}x"
                )
        print(f"  wrote {out_path}")

    vanilla_headline = vanilla["headline"]["speedup_vs_scalar"]
    nonconvex_headline = nonconvex["headline"]["speedup_vs_scalar"]
    if KERNEL_SPEEDUP_FLOOR <= 0:
        pytest.skip(
            "speedup floor disarmed (REPRO_BENCH_KERNEL_SPEEDUP_FLOOR=0); "
            f"determinism verified, measured {vanilla_headline:.2f}x vanilla, "
            f"{nonconvex_headline:.2f}x nonconvex"
        )
    assert vanilla_headline > KERNEL_SPEEDUP_FLOOR, (
        f"vanilla vectorized speedup {vanilla_headline:.2f}x at width "
        f"{KERNEL_WIDTHS[-1]} below the {KERNEL_SPEEDUP_FLOOR}x floor"
    )
    assert nonconvex_headline > KERNEL_NONCONVEX_FLOOR, (
        f"nonconvex vectorized speedup {nonconvex_headline:.2f}x at width "
        f"{KERNEL_WIDTHS[-1]} below the {KERNEL_NONCONVEX_FLOOR}x floor"
    )

"""Benchmark E6 — Stochastic dominance: log-variance walk vs dominating walk.

Regenerates the experiment's tables/figures at the configured scale and
asserts the paper's shape predictions.  See EXPERIMENTS.md (E6) for the
paper-vs-measured record this produces.
"""


def test_e6_stochastic_dominance(run_experiment_benchmark):
    run_experiment_benchmark("E6")

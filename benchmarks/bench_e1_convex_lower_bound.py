"""Benchmark E1 — Theorem 1: convex lower bound Omega(n1/|E12|) - T_av vs n.

Regenerates the experiment's tables/figures at the configured scale and
asserts the paper's shape predictions.  See EXPERIMENTS.md (E1) for the
paper-vs-measured record this produces.
"""


def test_e1_convex_lower_bound(run_experiment_benchmark):
    run_experiment_benchmark("E1")

"""Benchmark E11 — Geographic gossip on geometric random graphs (reference [6]).

Regenerates the experiment's tables/figures at the configured scale and
asserts the predictions.  See EXPERIMENTS.md (E11) for the
paper-vs-measured record this produces.
"""


def test_e11_geographic_gossip(run_experiment_benchmark):
    run_experiment_benchmark("E11")

"""Benchmark E3 — Headline dumbbell: Omega(n) vs O(log n).

Regenerates the experiment's tables/figures at the configured scale and
asserts the paper's shape predictions.  See EXPERIMENTS.md (E3) for the
paper-vs-measured record this produces.
"""


def test_e3_dumbbell_headline(run_experiment_benchmark):
    run_experiment_benchmark("E3")

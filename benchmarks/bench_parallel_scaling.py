"""Parallel Monte-Carlo scaling: speedup vs worker count.

Runs the E3 headline workload (dumbbell, cut-aligned vector, vanilla
gossip vs Algorithm A replicates) through the serial backend and process
pools of increasing size, recording wall time and speedup per worker
count.  Two properties are asserted:

* **determinism** — every worker count reproduces the serial results
  bit-for-bit (the backend contract; checked unconditionally);
* **speedup** — at 4 workers the fan-out must beat serial by >1.5x.  The
  speedup assertion only arms on machines with >= 4 CPUs: replicate
  fan-out cannot beat serial on fewer cores, so elsewhere the measured
  speedups are recorded in ``extra_info`` without failing the run.

``test_sweep_scaling`` measures the same thing one level up — a whole
E3 *sweep* (configuration x replicate fan-out through the sharded
scheduler) — and persists the throughput trajectory (configs/sec,
replicates/sec per worker count) to ``results/BENCH_sweep_scaling.json``.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.algorithms.nonconvex import NonConvexSparseCutGossip
from repro.algorithms.vanilla import VanillaGossip
from repro.core.epochs import epoch_length_ticks
from repro.engine.backends import (
    AlgorithmFactory,
    ProcessPoolBackend,
    SerialBackend,
)
from repro.engine.results import results_identical
from repro.engine.runner import MonteCarloRunner
from repro.experiments.specs_scaling import convex_budget, nonconvex_budget
from repro.experiments.workloads import cut_aligned
from repro.graphs.composites import dumbbell_graph

#: The e3 headline instance (the largest size of the "default" scale —
#: big enough that worker startup is noise against ~2s of serial work).
DUMBBELL_N = int(os.environ.get("REPRO_BENCH_PARALLEL_N", "128"))
REPLICATES = int(os.environ.get("REPRO_BENCH_PARALLEL_REPLICATES", "8"))
WORKER_COUNTS = (2, 4)
MAX_EVENTS = 5_000_000
#: 4-worker speedup floor; 0 records the numbers without asserting.
#: Disarm it (REPRO_BENCH_SPEEDUP_FLOOR=0) when the workload is scaled
#: down below what amortizes worker spawn — e.g. the CI smoke job,
#: whose ~0.1s serial section can never beat pool startup even on a
#: 4-vCPU runner where the >=4-CPU arming condition holds.
SPEEDUP_FLOOR = float(os.environ.get("REPRO_BENCH_SPEEDUP_FLOOR", "1.5"))


def _build_workload() -> dict:
    pair = dumbbell_graph(DUMBBELL_N)
    x0 = cut_aligned(pair.partition)
    epoch = epoch_length_ticks(pair.partition, constant=3.0)
    return {
        "pair": pair,
        "x0": x0,
        "vanilla": VanillaGossip,
        "algorithm_a": AlgorithmFactory(
            NonConvexSparseCutGossip, pair.partition, epoch_length=epoch
        ),
    }


def _run_headline(workload, backend) -> "tuple[list, list]":
    """One full e3-style measurement pass under the given backend."""
    pair = workload["pair"]
    vanilla = MonteCarloRunner(
        pair.graph, workload["vanilla"], workload["x0"], seed=13,
        backend=backend,
    ).run(
        REPLICATES,
        target_ratio=np.e**-2,
        max_time=convex_budget(pair),
        max_events=MAX_EVENTS,
    )
    algorithm_a = MonteCarloRunner(
        pair.graph, workload["algorithm_a"], workload["x0"], seed=14,
        backend=backend,
    ).run(
        REPLICATES,
        target_ratio=np.e**-2 * 1e-6,
        max_time=nonconvex_budget(pair),
        max_events=MAX_EVENTS,
    )
    return vanilla, algorithm_a


def _assert_identical(first, second):
    assert len(first) == len(second)
    assert all(
        results_identical(a, b) for a, b in zip(first, second)
    ), "process results diverged from serial"


def test_parallel_scaling(benchmark, capsys):
    """Speedup of replicate fan-out on the e3 dumbbell headline workload."""
    pair_workload = _build_workload()

    # Serial reference (also the benchmark's timed section).
    start = time.perf_counter()
    serial = benchmark.pedantic(
        lambda: _run_headline(pair_workload, SerialBackend()),
        rounds=1,
        iterations=1,
    )
    serial_seconds = time.perf_counter() - start

    speedups = {}
    for n_workers in WORKER_COUNTS:
        backend = ProcessPoolBackend(n_workers)
        start = time.perf_counter()
        pooled = _run_headline(pair_workload, backend)
        pooled_seconds = time.perf_counter() - start
        backend.shutdown()  # don't leak idle workers into later benchmarks
        # Contract: fan-out must not change a single bit of any result.
        _assert_identical(serial[0], pooled[0])
        _assert_identical(serial[1], pooled[1])
        speedups[n_workers] = serial_seconds / pooled_seconds

    benchmark.extra_info["serial_seconds"] = serial_seconds
    benchmark.extra_info["speedups"] = {
        str(k): round(v, 3) for k, v in speedups.items()
    }
    benchmark.extra_info["cpu_count"] = os.cpu_count()

    with capsys.disabled():
        print()
        print(f"parallel scaling, dumbbell n={DUMBBELL_N}, "
              f"{REPLICATES} replicates, serial {serial_seconds:.2f}s:")
        for n_workers, speedup in speedups.items():
            print(f"  {n_workers} workers: {speedup:.2f}x")

    if SPEEDUP_FLOOR <= 0:
        pytest.skip(
            "speedup floor disarmed (REPRO_BENCH_SPEEDUP_FLOOR=0); "
            f"determinism verified, measured {speedups}"
        )
    elif (os.cpu_count() or 1) >= 4:
        assert speedups[4] > SPEEDUP_FLOOR, (
            f"4-worker speedup {speedups[4]:.2f}x below the "
            f"{SPEEDUP_FLOOR}x floor (serial {serial_seconds:.2f}s)"
        )
    else:
        pytest.skip(
            f"speedup floor needs >= 4 CPUs (have {os.cpu_count()}); "
            f"determinism verified, measured {speedups}"
        )


# ----------------------------------------------------------------------
# sweep-level throughput (configs/sec through the sharded scheduler)
# ----------------------------------------------------------------------

SWEEP_SIZES = tuple(
    int(token)
    for token in os.environ.get("REPRO_BENCH_SWEEP_SIZES", "32,48,64").split(",")
)


def _run_e3_sweep(backend):
    """One adaptive smoke-budget E3 sweep through the given backend."""
    from repro.engine.sweeps import ReplicateBudget, SweepRunner
    from repro.experiments.specs_sweeps import get_sweep

    spec = get_sweep("E3", scale="smoke").with_axis("n", list(SWEEP_SIZES))
    runner = SweepRunner(
        spec,
        seed=0,
        budget=ReplicateBudget.adaptive(
            target_ci=0.5,
            min_replicates=REPLICATES // 2 or 1,
            max_replicates=2 * REPLICATES,
            round_size=2,
        ),
        backend=backend,
    )
    return runner.run(), runner.stats


def test_sweep_scaling(benchmark, capsys):
    """Whole-grid fan-out: sweep throughput serial vs process pools."""
    from _stamp import write_result

    start = time.perf_counter()
    serial_result, serial_stats = benchmark.pedantic(
        lambda: _run_e3_sweep(SerialBackend()), rounds=1, iterations=1
    )
    serial_seconds = time.perf_counter() - start
    serial_json = json.dumps(serial_result.to_dict(), sort_keys=True)

    record = {
        "sweep": "E3",
        "sizes": list(SWEEP_SIZES),
        "n_configurations": serial_result.n_points,
        "replicates_reported": serial_result.total_replicates,
        "replicates_scheduled": serial_stats["replicates_scheduled"],
        "rounds": serial_stats["rounds"],
        "cpu_count": os.cpu_count(),
        "backends": {
            "serial": {
                "seconds": round(serial_seconds, 4),
                "configs_per_sec": round(serial_result.n_points / serial_seconds, 4),
                "replicates_per_sec": round(
                    serial_stats["replicates_scheduled"] / serial_seconds, 4
                ),
            }
        },
    }
    for n_workers in WORKER_COUNTS:
        backend = ProcessPoolBackend(n_workers)
        start = time.perf_counter()
        pooled_result, pooled_stats = _run_e3_sweep(backend)
        pooled_seconds = time.perf_counter() - start
        backend.shutdown()
        # The sweep contract: scheduling must not change a single byte.
        assert (
            json.dumps(pooled_result.to_dict(), sort_keys=True) == serial_json
        ), f"{n_workers}-worker sweep diverged from serial"
        record["backends"][f"process-{n_workers}"] = {
            "seconds": round(pooled_seconds, 4),
            "configs_per_sec": round(pooled_result.n_points / pooled_seconds, 4),
            "replicates_per_sec": round(
                pooled_stats["replicates_scheduled"] / pooled_seconds, 4
            ),
            "speedup_vs_serial": round(serial_seconds / pooled_seconds, 3),
        }

    # Run-stamped artifact in benchmarks/results/ — the committed copy
    # is the repo's throughput trajectory, CI uploads it per PR.
    out_path = write_result("sweep_scaling", record)

    benchmark.extra_info["sweep_throughput"] = record["backends"]
    with capsys.disabled():
        print()
        print(f"sweep scaling, E3 sizes {list(SWEEP_SIZES)}, "
              f"{record['replicates_scheduled']} replicates scheduled:")
        for label, stats in record["backends"].items():
            print(f"  {label}: {stats['seconds']:.2f}s, "
                  f"{stats['configs_per_sec']:.2f} configs/sec")
        print(f"  wrote {out_path}")

"""Benchmark E8 — Baseline comparison on the dumbbell.

Regenerates the experiment's tables/figures at the configured scale and
asserts the paper's shape predictions.  See EXPERIMENTS.md (E8) for the
paper-vs-measured record this produces.
"""


def test_e8_baselines(run_experiment_benchmark):
    run_experiment_benchmark("E8")

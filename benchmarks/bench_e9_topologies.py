"""Benchmark E9 — Topology robustness + well-connectedness regime.

Regenerates the experiment's tables/figures at the configured scale and
asserts the paper's shape predictions.  See EXPERIMENTS.md (E9) for the
paper-vs-measured record this produces.
"""


def test_e9_topologies(run_experiment_benchmark):
    run_experiment_benchmark("E9")

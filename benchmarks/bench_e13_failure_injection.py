"""Benchmark E13 — Failure injection: designated-edge death and failover.

Regenerates the experiment's tables/figures at the configured scale and
asserts the predictions.  See EXPERIMENTS.md (E13) for the
paper-vs-measured record this produces.
"""


def test_e13_failure_injection(run_experiment_benchmark):
    run_experiment_benchmark("E13")

"""Benchmark E7 — Within-epoch contraction (inequalities 4-8).

Regenerates the experiment's tables/figures at the configured scale and
asserts the paper's shape predictions.  See EXPERIMENTS.md (E7) for the
paper-vs-measured record this produces.
"""


def test_e7_epoch_contraction(run_experiment_benchmark):
    run_experiment_benchmark("E7")

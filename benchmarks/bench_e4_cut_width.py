"""Benchmark E4 — Cut-width sweep: convex ~ n1/|E12|, A insensitive.

Regenerates the experiment's tables/figures at the configured scale and
asserts the paper's shape predictions.  See EXPERIMENTS.md (E4) for the
paper-vs-measured record this produces.
"""


def test_e4_cut_width(run_experiment_benchmark):
    run_experiment_benchmark("E4")

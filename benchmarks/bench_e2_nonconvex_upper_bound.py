"""Benchmark E2 — Theorem 2: Algorithm A inside O(log n (Tvan1+Tvan2)).

Regenerates the experiment's tables/figures at the configured scale and
asserts the paper's shape predictions.  See EXPERIMENTS.md (E2) for the
paper-vs-measured record this produces.
"""


def test_e2_nonconvex_upper_bound(run_experiment_benchmark):
    run_experiment_benchmark("E2")

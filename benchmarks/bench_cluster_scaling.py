"""Cluster vs process-pool sweep throughput (and byte-identity).

Runs the same adaptive E3 sweep ``bench_parallel_scaling.py`` measures,
but through the TCP cluster backend alongside the process pool at equal
worker counts, recording configs/sec and replicates/sec per backend into
``results/BENCH_cluster_scaling.json`` (run-stamped schema).  A third
cluster variant runs under membership churn (one worker joining late,
one draining mid-sweep) so the overhead of elasticity is tracked as its
own trajectory.

Two things are asserted unconditionally, at any scale:

* **byte-identity** — both out-of-process backends reproduce the serial
  artifact exactly (the coordinator's exactly-once assembly is part of
  the reproducibility contract, not just a performance feature);
* **overhead sanity** — the cluster backend carries TCP framing +
  coordination on top of the same replicate work, so its throughput is
  recorded for the trajectory; no speedup floor is armed (worker spawn
  and wire cost dominate at smoke scale exactly as pool spawn does in
  ``bench_parallel_scaling.py``).
"""

from __future__ import annotations

import json
import os
import time

from _stamp import write_result

from repro.engine.backends import ProcessPoolBackend, SerialBackend
from repro.engine.cluster import ClusterBackend
from repro.engine.sweeps import ReplicateBudget, SweepRunner
from repro.experiments.specs_sweeps import get_sweep

REPLICATES = int(os.environ.get("REPRO_BENCH_PARALLEL_REPLICATES", "8"))
SWEEP_SIZES = tuple(
    int(token)
    for token in os.environ.get("REPRO_BENCH_SWEEP_SIZES", "32,48,64").split(",")
)
N_WORKERS = int(os.environ.get("REPRO_BENCH_CLUSTER_WORKERS", "2"))


def _run_e3_sweep(backend):
    spec = get_sweep("E3", scale="smoke").with_axis("n", list(SWEEP_SIZES))
    runner = SweepRunner(
        spec,
        seed=0,
        budget=ReplicateBudget.adaptive(
            target_ci=0.5,
            min_replicates=REPLICATES // 2 or 1,
            max_replicates=2 * REPLICATES,
            round_size=2,
        ),
        backend=backend,
    )
    return runner.run(), runner.stats


def test_cluster_scaling(benchmark, capsys):
    """E3 sweep throughput: serial vs process pool vs TCP cluster."""
    start = time.perf_counter()
    serial_result, serial_stats = benchmark.pedantic(
        lambda: _run_e3_sweep(SerialBackend()), rounds=1, iterations=1
    )
    serial_seconds = time.perf_counter() - start
    serial_json = json.dumps(serial_result.to_dict(), sort_keys=True)

    record = {
        "sweep": "E3",
        "sizes": list(SWEEP_SIZES),
        "n_workers": N_WORKERS,
        "n_configurations": serial_result.n_points,
        "replicates_scheduled": serial_stats["replicates_scheduled"],
        "backends": {
            "serial": {
                "seconds": round(serial_seconds, 4),
                "configs_per_sec": round(
                    serial_result.n_points / serial_seconds, 4
                ),
            }
        },
    }

    contenders = {
        f"process-{N_WORKERS}": ProcessPoolBackend(N_WORKERS),
        f"cluster-{N_WORKERS}": ClusterBackend(N_WORKERS),
        # Membership churn: one worker joins late, the other drains
        # mid-sweep and is replaced for free.  Byte-identity is asserted
        # below exactly as for the healthy fleet; the throughput delta
        # vs the clean cluster run is the recorded cost of elasticity.
        f"cluster-{N_WORKERS}-churn": ClusterBackend(
            N_WORKERS,
            worker_faults=["slow-start:0.5", "drain-after:3"],
        ),
    }
    for label, backend in contenders.items():
        start = time.perf_counter()
        result, stats = _run_e3_sweep(backend)
        seconds = time.perf_counter() - start
        backend.shutdown()
        assert (
            json.dumps(result.to_dict(), sort_keys=True) == serial_json
        ), f"{label} sweep diverged from serial"
        entry = {
            "seconds": round(seconds, 4),
            "configs_per_sec": round(result.n_points / seconds, 4),
            "replicates_per_sec": round(
                stats["replicates_scheduled"] / seconds, 4
            ),
            "speedup_vs_serial": round(serial_seconds / seconds, 3),
        }
        if isinstance(backend, ClusterBackend):
            entry["coordinator_stats"] = dict(backend.stats)
        record["backends"][label] = entry

    out_path = write_result("cluster_scaling", record)
    benchmark.extra_info["cluster_throughput"] = record["backends"]

    with capsys.disabled():
        print()
        print(
            f"cluster scaling, E3 sizes {list(SWEEP_SIZES)}, "
            f"{record['replicates_scheduled']} replicates scheduled:"
        )
        for label, stats in record["backends"].items():
            print(
                f"  {label}: {stats['seconds']:.2f}s, "
                f"{stats['configs_per_sec']:.2f} configs/sec"
            )
        print(f"  wrote {out_path}")

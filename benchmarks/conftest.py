"""Shared benchmark machinery.

Every experiment benchmark follows the same shape: run the experiment at
the configured scale (REPRO_SCALE env var, default "default"), record the
wall time through pytest-benchmark's pedantic mode (one round — these are
measurements of a Monte-Carlo harness, not microbenchmarks), assert every
shape check passed, print the regenerated tables/figures, and persist the
artifacts under ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.reporting import save_report
from repro.experiments.specs import run_experiment

RESULTS_DIR = Path(__file__).resolve().parent / "results"


@pytest.fixture
def experiment_scale() -> str:
    """Scale for experiment benchmarks (env-overridable)."""
    return os.environ.get("REPRO_SCALE", "default")


@pytest.fixture
def run_experiment_benchmark(benchmark, experiment_scale, capsys):
    """Run one experiment under pytest-benchmark and validate its checks."""

    def runner(experiment_id: str):
        report = benchmark.pedantic(
            lambda: run_experiment(experiment_id, scale=experiment_scale),
            rounds=1,
            iterations=1,
        )
        save_report(report, RESULTS_DIR)
        with capsys.disabled():
            print()
            print(report.render())
        failed = [check for check in report.checks if not check.passed]
        assert not failed, (
            f"{experiment_id} failed shape checks: "
            + "; ".join(f"{c.name} ({c.detail})" for c in failed)
        )
        return report

    return runner

"""Benchmark E5 — Balance sweep + swap-gain ablation (fidelity note F1).

Regenerates the experiment's tables/figures at the configured scale and
asserts the paper's shape predictions.  See EXPERIMENTS.md (E5) for the
paper-vs-measured record this produces.
"""


def test_e5_balance_gain_ablation(run_experiment_benchmark):
    run_experiment_benchmark("E5")

"""Benchmark E10 — Epoch-constant C ablation (fidelity note F4).

Regenerates the experiment's tables/figures at the configured scale and
asserts the paper's shape predictions.  See EXPERIMENTS.md (E10) for the
paper-vs-measured record this produces.
"""


def test_e10_epoch_constant(run_experiment_benchmark):
    run_experiment_benchmark("E10")

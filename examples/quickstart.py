"""Quickstart: average across a sparse cut, the paper's way.

Builds the paper's headline graph (two cliques joined by one edge), runs
vanilla gossip and Algorithm A from the adversarial cut-aligned state, and
prints the comparison together with the theorem bounds.

Run:  python examples/quickstart.py [n]
"""

from __future__ import annotations

import sys

from repro import (
    SparseCutAveraging,
    VanillaGossip,
    dumbbell_graph,
    estimate_averaging_time,
    theorem1_lower_bound,
)
from repro.experiments.workloads import cut_aligned


def main(n: int = 64) -> None:
    pair = dumbbell_graph(n)
    graph, partition = pair.graph, pair.partition
    print(f"graph: two K_{n // 2} cliques + one bridge "
          f"({graph.n_vertices} vertices, {graph.n_edges} edges)")

    # The paper's worst-case initial condition: +1 on one side, -1 on the
    # other (all disagreement concentrated across the cut).
    x0 = cut_aligned(partition)

    # --- vanilla gossip: provably Omega(n) here (Theorem 1) ---
    vanilla = estimate_averaging_time(
        graph, VanillaGossip, x0, n_replicates=6, seed=1, max_time=50.0 * n
    )
    bound = theorem1_lower_bound(partition)
    print(f"\nvanilla gossip    T_av ~ {vanilla.estimate:8.2f}   "
          f"(Theorem-1 floor for ANY convex algorithm: {bound:.2f})")

    # --- Algorithm A: the non-convex swap across the designated edge ---
    sca = SparseCutAveraging(graph, partition=partition)
    summary = sca.summary()
    print(f"algorithm A setup: epoch length L = {summary['epoch_length']} "
          f"ticks of the bridge, swap gain = n1*n2/n = "
          f"{sca.build_algorithm().gain:.1f}")
    a_time = sca.averaging_time(x0, n_replicates=6, seed=2)
    print(f"algorithm A       T_av ~ {a_time.estimate:8.2f}   "
          f"(Theorem-2 envelope: {summary['theorem2_upper_bound']:.2f} + "
          f"first-swap latency)")

    print(f"\nspeedup: {vanilla.estimate / a_time.estimate:.1f}x "
          f"(grows like n / log n as n grows)")

    # One concrete run, showing the actual values converge to the mean.
    values = [float(i) for i in range(graph.n_vertices)]
    result = sca.run(values, seed=3, target_ratio=1e-8)
    print(f"\nconcrete run from x = 0..{n - 1}: "
          f"converged to {result.values.mean():.4f} "
          f"(true average {sum(values) / len(values):.4f}) "
          f"after {result.n_events} ticks, t = {result.duration:.2f}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 64)

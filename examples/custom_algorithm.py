"""Extending the library: plug in your own gossip algorithm.

Implements a "greedy cut pump" — a naive attempt to beat the bottleneck
by letting EVERY cut edge push a double-weight convex step — registers it
with the algorithm registry, and races it against vanilla and Algorithm A
on a dumbbell.  (Spoiler, per Theorem 1: a convex step of weight > 1 is
not allowed in class C, and clamping it to stay convex keeps it slow; the
point of the example is the extension API, and the race makes the paper's
message concrete.)

Run:  python examples/custom_algorithm.py
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro import SparseCutAveraging, VanillaGossip, estimate_averaging_time
from repro.algorithms.base import GossipAlgorithm
from repro.algorithms.registry import make_algorithm, register_algorithm
from repro.experiments.workloads import cut_aligned
from repro.graphs.composites import dumbbell_graph
from repro.graphs.partition import Partition
from repro.util.tables import Table


class GreedyCutPump(GossipAlgorithm):
    """Vanilla inside the sides; maximal convex step (full swap) on the cut.

    The most aggressive member of class C on cut edges: alpha = 0 swaps
    the two endpoint values outright.  Still convex, still moves only
    O(1) mass per cut tick, hence still Theorem-1 bound.
    """

    name = "greedy-cut-pump"
    conserves_sum = True
    monotone_variance = True  # alpha = 0 is a permutation: var preserved

    def __init__(self, partition: Partition) -> None:
        self.partition = partition
        self._is_cut_edge = np.zeros(partition.graph.n_edges, dtype=bool)
        self._is_cut_edge[partition.cut_edge_ids] = True

    def on_tick(
        self,
        edge_id: int,
        u: int,
        v: int,
        time: float,
        tick_count: int,
        values: "Sequence[float]",
    ) -> "tuple[float, float] | None":
        if self._is_cut_edge[edge_id]:
            return values[v], values[u]  # full exchange (alpha = 0)
        mean = 0.5 * (values[u] + values[v])
        return mean, mean


def main() -> None:
    pair = dumbbell_graph(48)
    graph, partition = pair.graph, pair.partition
    x0 = cut_aligned(partition)

    register_algorithm(
        "greedy-cut-pump", lambda: GreedyCutPump(partition), overwrite=True
    )
    print("registered custom algorithm:",
          make_algorithm("greedy-cut-pump").name)

    table = Table(["algorithm", "T_av"], title="dumbbell n=48, cut-aligned start")
    for label, factory in [
        ("vanilla", VanillaGossip),
        ("greedy-cut-pump (custom)", lambda: make_algorithm("greedy-cut-pump")),
    ]:
        estimate = estimate_averaging_time(
            graph, factory, x0, n_replicates=4, seed=1, max_time=2000.0
        )
        table.add_row([label, estimate.estimate])

    sca = SparseCutAveraging(graph, partition=partition)
    a_est = sca.averaging_time(x0, n_replicates=4, seed=2)
    table.add_row(["algorithm A", a_est.estimate])
    print()
    print(table.render())
    print("\nTheorem 1 in action: even the most aggressive convex cut rule "
          "cannot beat the bottleneck; the non-convex swap can.")


if __name__ == "__main__":
    main()
